// Design-choice ablation for paper SSV: why rotate within concentric AMD
// rings instead of simpler alternatives? Races HotPotato against
//  * global-rotation: one snake cycle over the whole chip (same averaging
//    idea, no S-NUCA structure),
//  * reactive: measured-temperature-triggered evacuation (no rotation),
//  * PCMig: the DVFS + predictive-migration state of the art,
// on a mixed 16-core workload and a hot 64-core full load. Each machine is
// one campaign (4 schedulers x 1 workload) on the parallel engine.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/global_rotation.hpp"
#include "sched/pcmig.hpp"
#include "sched/reactive.hpp"
#include "workload/benchmark.hpp"
#include "workload/generator.hpp"

namespace {

constexpr const char* kPolicies[] = {
    "HotPotato (AMD rings)",
    "global snake rotation",
    "reactive evacuation",
    "PCMig",
};

void add_contenders(hp::campaign::CampaignSpec& spec) {
    spec.add_scheduler(kPolicies[0], [] {
        return std::make_unique<hp::core::HotPotatoScheduler>();
    });
    spec.add_scheduler(kPolicies[1], [] {
        return std::make_unique<hp::sched::GlobalRotationScheduler>();
    });
    spec.add_scheduler(kPolicies[2], [] {
        return std::make_unique<hp::sched::ReactiveMigrationScheduler>();
    });
    spec.add_scheduler(kPolicies[3], [] {
        return std::make_unique<hp::sched::PcMigScheduler>();
    });
}

void race(const char* title, const hp::campaign::StudySetup& bed,
          const char* workload_label,
          const std::vector<hp::workload::TaskSpec>& tasks,
          std::size_t jobs) {
    hp::sim::SimConfig cfg;
    cfg.max_sim_time_s = 10.0;
    hp::campaign::CampaignSpec spec(bed, cfg);
    add_contenders(spec);
    spec.add_workload(workload_label, tasks);
    const auto out = hp::bench::run_with_progress(spec, jobs);

    std::printf("\n  %s\n", title);
    std::printf("  %-24s | %12s | %11s | %9s | %10s | %9s\n", "policy",
                "makespan", "avg resp", "peak [C]", "migrations", "DTM [ms]");
    std::printf("  -------------------------+--------------+-------------+-----------+------------+----------\n");
    for (const char* label : kPolicies) {
        const auto* rec = hp::campaign::find(out.records, workload_label,
                                             label);
        if (rec == nullptr || rec->failed || !rec->result.all_finished) {
            std::printf("  %-24s | DID NOT FINISH\n", label);
            continue;
        }
        const auto& r = rec->result;
        std::printf("  %-24s | %9.1f ms | %8.1f ms | %9.1f | %10zu | %8.1f\n",
                    label, r.makespan_s * 1e3,
                    r.average_response_time_s() * 1e3, r.peak_temperature_c,
                    r.migrations, r.dtm_throttled_s * 1e3);
    }
}

}  // namespace

int main(int argc, char** argv) {
    hp::bench::print_header(
        "Ablation: AMD-ring rotation vs global rotation vs reactive "
        "evacuation",
        "Shen et al., DATE 2023, SSV (ring structure of Algorithm 2)");

    const std::size_t jobs = hp::bench::jobs_from_args(argc, argv);
    {
        std::vector<hp::workload::TaskSpec> tasks = {
            {&hp::workload::profile_by_name("blackscholes"), 2, 0.0},
            {&hp::workload::profile_by_name("canneal"), 4, 0.0},
            {&hp::workload::profile_by_name("bodytrack"), 4, 0.005},
        };
        race("mixed 3-task workload, 16-core", hp::bench::testbed_16core(),
             "mixed-3task", tasks, jobs);
    }
    {
        const auto tasks = hp::workload::homogeneous_fill(
            hp::workload::profile_by_name("bodytrack"), 64, 11);
        race("full-load bodytrack, 64-core", hp::bench::testbed_64core(),
             "bodytrack-full", tasks, jobs);
    }

    std::printf("\n  expected: HotPotato matches or beats every alternative; global\n");
    std::printf("  rotation pays migration churn on cool threads (canneal) and drags\n");
    std::printf("  memory-bound threads through high-AMD corners; reactive evacuation\n");
    std::printf("  trips DTM because it acts only after the silicon is already hot.\n");
    return 0;
}
