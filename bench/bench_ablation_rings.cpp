// Design-choice ablation for paper SSV: why rotate within concentric AMD
// rings instead of simpler alternatives? Races HotPotato against
//  * global-rotation: one snake cycle over the whole chip (same averaging
//    idea, no S-NUCA structure),
//  * reactive: measured-temperature-triggered evacuation (no rotation),
//  * PCMig: the DVFS + predictive-migration state of the art,
// on a mixed 16-core workload and a hot 64-core full load.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/global_rotation.hpp"
#include "sched/pcmig.hpp"
#include "sched/reactive.hpp"
#include "workload/benchmark.hpp"
#include "workload/generator.hpp"

namespace {

using hp::bench::testbed_16core;
using hp::bench::testbed_64core;
using hp::sim::SimResult;

std::vector<std::pair<const char*, std::unique_ptr<hp::sim::Scheduler>>>
contenders() {
    std::vector<std::pair<const char*, std::unique_ptr<hp::sim::Scheduler>>> v;
    v.emplace_back("HotPotato (AMD rings)",
                   std::make_unique<hp::core::HotPotatoScheduler>());
    v.emplace_back("global snake rotation",
                   std::make_unique<hp::sched::GlobalRotationScheduler>());
    v.emplace_back("reactive evacuation",
                   std::make_unique<hp::sched::ReactiveMigrationScheduler>());
    v.emplace_back("PCMig",
                   std::make_unique<hp::sched::PcMigScheduler>());
    return v;
}

void race(const char* title, const hp::bench::Testbed& bed,
          const std::vector<hp::workload::TaskSpec>& tasks) {
    std::printf("\n  %s\n", title);
    std::printf("  %-24s | %12s | %11s | %9s | %10s | %9s\n", "policy",
                "makespan", "avg resp", "peak [C]", "migrations", "DTM [ms]");
    std::printf("  -------------------------+--------------+-------------+-----------+------------+----------\n");
    for (auto& [label, sched] : contenders()) {
        hp::sim::SimConfig cfg;
        cfg.max_sim_time_s = 10.0;
        hp::sim::Simulator sim = bed.make_sim(cfg);
        sim.add_tasks(tasks);
        const SimResult r = sim.run(*sched);
        if (!r.all_finished) {
            std::printf("  %-24s | DID NOT FINISH\n", label);
            continue;
        }
        std::printf("  %-24s | %9.1f ms | %8.1f ms | %9.1f | %10zu | %8.1f\n",
                    label, r.makespan_s * 1e3,
                    r.average_response_time_s() * 1e3, r.peak_temperature_c,
                    r.migrations, r.dtm_throttled_s * 1e3);
    }
}

}  // namespace

int main() {
    hp::bench::print_header(
        "Ablation: AMD-ring rotation vs global rotation vs reactive "
        "evacuation",
        "Shen et al., DATE 2023, SSV (ring structure of Algorithm 2)");

    {
        std::vector<hp::workload::TaskSpec> tasks = {
            {&hp::workload::profile_by_name("blackscholes"), 2, 0.0},
            {&hp::workload::profile_by_name("canneal"), 4, 0.0},
            {&hp::workload::profile_by_name("bodytrack"), 4, 0.005},
        };
        race("mixed 3-task workload, 16-core", testbed_16core(), tasks);
    }
    {
        const auto tasks = hp::workload::homogeneous_fill(
            hp::workload::profile_by_name("bodytrack"), 64, 11);
        race("full-load bodytrack, 64-core", testbed_64core(), tasks);
    }

    std::printf("\n  expected: HotPotato matches or beats every alternative; global\n");
    std::printf("  rotation pays migration churn on cool threads (canneal) and drags\n");
    std::printf("  memory-bound threads through high-AMD corners; reactive evacuation\n");
    std::printf("  trips DTM because it acts only after the silicon is already hot.\n");
    return 0;
}
