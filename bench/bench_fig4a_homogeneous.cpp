// Reproduces paper Fig. 4(a): comparative evaluation with homogeneous
// workloads. The 64-core S-NUCA many-core is fully loaded with vari-sized
// multi-threaded instances of one PARSEC benchmark (closed system, all
// instances start together); the normalized makespan of HotPotato is
// compared against the state-of-the-art PCMig scheduler for each of the
// eight benchmarks. Paper: 10.72 % average speedup, canneal lowest (0.73 %).
//
// The 16-run grid executes on the parallel campaign engine (--jobs N,
// default one worker per hardware thread); record content and order are
// independent of N.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/pcmig.hpp"
#include "workload/benchmark.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
    hp::bench::print_header(
        "Fig. 4(a): homogeneous workloads, 64-core fully loaded, "
        "HotPotato vs PCMig",
        "Shen et al., DATE 2023, Fig. 4(a): avg 10.72% speedup, canneal 0.73%");

    hp::sim::SimConfig cfg;
    cfg.micro_step_s = 1e-4;
    cfg.max_sim_time_s = 10.0;

    hp::campaign::CampaignSpec spec(hp::bench::testbed_64core(), cfg);
    spec.add_scheduler("PCMig", [] {
        return std::make_unique<hp::sched::PcMigScheduler>();
    });
    spec.add_scheduler("HotPotato", [] {
        return std::make_unique<hp::core::HotPotatoScheduler>();
    });
    for (const auto& profile : hp::workload::parsec_profiles())
        spec.add_workload(profile.name, hp::workload::homogeneous_fill(
                                            profile, 64, /*seed=*/2023));

    const auto out = hp::bench::run_with_progress(
        spec, hp::bench::jobs_from_args(argc, argv));

    std::printf("  %-14s | %12s | %12s | %8s | %9s | %9s\n", "benchmark",
                "PCMig [ms]", "HotPot [ms]", "speedup", "peakT HP", "peakT PCM");
    std::printf("  ---------------+--------------+--------------+----------+-----------+----------\n");

    double geo = 0.0;
    std::size_t count = 0;
    double canneal_speedup = 0.0;
    double max_speedup = -1e9;
    std::string max_name;
    for (const auto& profile : hp::workload::parsec_profiles()) {
        const auto* r_mig =
            hp::campaign::find(out.records, profile.name, "PCMig");
        const auto* r_hp =
            hp::campaign::find(out.records, profile.name, "HotPotato");
        if (r_mig == nullptr || r_hp == nullptr || r_mig->failed ||
            r_hp->failed || !r_mig->result.all_finished ||
            !r_hp->result.all_finished) {
            std::printf("  %-14s | DID NOT FINISH within sim budget\n",
                        profile.name.c_str());
            continue;
        }
        const double speedup =
            (r_mig->result.makespan_s / r_hp->result.makespan_s - 1.0) * 100.0;
        std::printf("  %-14s | %12.1f | %12.1f | %+7.2f%% | %7.1f C | %7.1f C\n",
                    profile.name.c_str(), r_mig->result.makespan_s * 1e3,
                    r_hp->result.makespan_s * 1e3, speedup,
                    r_hp->result.peak_temperature_c,
                    r_mig->result.peak_temperature_c);
        geo += speedup;
        ++count;
        if (profile.name == "canneal") canneal_speedup = speedup;
        if (speedup > max_speedup) {
            max_speedup = speedup;
            max_name = profile.name;
        }
    }
    if (count == 0) return 1;
    const double avg = geo / static_cast<double>(count);
    std::printf("\n  average speedup : %+6.2f %%   (paper: +10.72 %%)\n", avg);
    std::printf("  canneal speedup : %+6.2f %%   (paper: +0.73 %%, the lowest)\n",
                canneal_speedup);
    std::printf("  largest speedup : %+6.2f %% (%s)\n", max_speedup,
                max_name.c_str());
    std::printf("  shape check: average speedup positive       : %s\n",
                avg > 0 ? "PASS" : "FAIL");
    std::printf("  shape check: canneal below average          : %s\n",
                canneal_speedup < avg ? "PASS" : "FAIL");
    std::printf("\n  %s", hp::campaign::summary_markdown(out.summary).c_str());
    return 0;
}
