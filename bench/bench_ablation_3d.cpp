// Future-work extension bench (paper SSVII: "synchronous task rotation with
// 3D S-NUCA many-cores ... using CoMeT"): a 2-layer 32-core stacked S-NUCA
// part. Quantifies (1) the 3D thermal penalty — identical power on the top
// layer runs hotter than on the bottom layer — and (2) that synchronous
// rotation, which freely mixes layers inside an AMD ring, extends to 3D and
// keeps beating the DVFS+async-migration baseline. Part (3) runs as a
// 2-scheduler campaign on the shared StudySetup::stacked_32core() machine.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "core/peak_temperature.hpp"
#include "sched/pcmig.hpp"
#include "workload/benchmark.hpp"

namespace {

using hp::linalg::Vector;

}  // namespace

int main(int argc, char** argv) {
    hp::bench::print_header(
        "Extension: synchronous rotation on a 3D-stacked S-NUCA (2x 4x4 "
        "layers)",
        "Shen et al., DATE 2023, SSVII future work (3D S-NUCA / CoMeT)");

    const hp::campaign::StudySetup s = hp::campaign::StudySetup::stacked_32core();
    const auto& chip = s.chip();
    const auto& model = s.model();
    constexpr double kAmbient = 45.0;
    constexpr double kIdle = 0.3;

    // (1) the 3D penalty: same 5 W core, bottom vs top layer.
    {
        Vector p(32, kIdle);
        p[chip.plan().index_of(1, 1, 0)] = 5.0;
        const Vector bottom = model.steady_state(model.pad_power(p), kAmbient);
        Vector q(32, kIdle);
        q[chip.plan().index_of(1, 1, 1)] = 5.0;
        const Vector top = model.steady_state(model.pad_power(q), kAmbient);
        std::printf("  5 W core steady-state: bottom layer %.1f C, top layer %.1f C"
                    " (3D penalty %.1f C)\n",
                    bottom[chip.plan().index_of(1, 1, 0)],
                    top[chip.plan().index_of(1, 1, 1)],
                    top[chip.plan().index_of(1, 1, 1)] -
                        bottom[chip.plan().index_of(1, 1, 0)]);
    }

    // (2) rotation across layers vs pinned placements.
    {
        hp::core::PeakTemperatureAnalyzer analyzer(s.solver(), kAmbient, kIdle);
        const auto& ring = chip.rings().front();  // spans both layers
        hp::core::RotationRingSpec spec;
        spec.cores = ring.cores;
        spec.slot_power_w.assign(ring.cores.size(), kIdle);
        spec.slot_power_w[0] = 6.0;
        spec.slot_power_w[1] = 6.0;
        std::printf("\n  2x 6 W threads on the centre ring (%zu cores over both layers):\n",
                    ring.cores.size());
        Vector pinned_top(32, kIdle);
        pinned_top[chip.plan().index_of(1, 1, 1)] = 6.0;
        pinned_top[chip.plan().index_of(2, 2, 1)] = 6.0;
        std::printf("    pinned on top layer          : %.1f C\n",
                    analyzer.static_peak(pinned_top));
        Vector pinned_bottom(32, kIdle);
        pinned_bottom[chip.plan().index_of(1, 1, 0)] = 6.0;
        pinned_bottom[chip.plan().index_of(2, 2, 0)] = 6.0;
        std::printf("    pinned on bottom layer       : %.1f C\n",
                    analyzer.static_peak(pinned_bottom));
        for (double tau : {2e-3, 0.5e-3, 0.125e-3})
            std::printf("    rotating, tau = %5.3f ms     : %.1f C\n", tau * 1e3,
                        analyzer.rotation_peak({spec}, tau, 4));
    }

    // (3) end-to-end: HotPotato vs PCMig on a loaded 3D chip.
    {
        hp::sim::SimConfig cfg;
        cfg.max_sim_time_s = 10.0;
        hp::campaign::CampaignSpec spec(s, cfg);
        spec.add_scheduler("PCMig", [] {
            return std::make_unique<hp::sched::PcMigScheduler>();
        });
        spec.add_scheduler("HotPotato", [] {
            return std::make_unique<hp::core::HotPotatoScheduler>();
        });
        spec.add_workload(
            "bodytrack-4x8",
            std::vector<hp::workload::TaskSpec>(
                4, {&hp::workload::profile_by_name("bodytrack"), 8, 0.0}));
        const auto out = hp::bench::run_with_progress(
            spec, hp::bench::jobs_from_args(argc, argv));
        const auto* r_mig =
            hp::campaign::find(out.records, "bodytrack-4x8", "PCMig");
        const auto* r_hp =
            hp::campaign::find(out.records, "bodytrack-4x8", "HotPotato");
        std::printf("\n  full 3D chip, 4x 8-thread bodytrack:\n");
        if (r_mig == nullptr || r_hp == nullptr || r_mig->failed ||
            r_hp->failed) {
            std::printf("    DID NOT FINISH\n");
            return 1;
        }
        std::printf("    %-12s makespan %7.1f ms  peak %5.1f C  migrations %zu\n",
                    "PCMig", r_mig->result.makespan_s * 1e3,
                    r_mig->result.peak_temperature_c, r_mig->result.migrations);
        std::printf("    %-12s makespan %7.1f ms  peak %5.1f C  migrations %zu\n",
                    "HotPotato", r_hp->result.makespan_s * 1e3,
                    r_hp->result.peak_temperature_c, r_hp->result.migrations);
        std::printf("    speedup: %+.2f %%\n",
                    (r_mig->result.makespan_s / r_hp->result.makespan_s - 1.0) *
                        100.0);
    }
    return 0;
}
