// Future-work extension bench (paper SSVII: "synchronous task rotation with
// 3D S-NUCA many-cores ... using CoMeT"): a 2-layer 32-core stacked S-NUCA
// part. Quantifies (1) the 3D thermal penalty — identical power on the top
// layer runs hotter than on the bottom layer — and (2) that synchronous
// rotation, which freely mixes layers inside an AMD ring, extends to 3D and
// keeps beating the DVFS+async-migration baseline.

#include <cstdio>

#include "arch/manycore.hpp"
#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "core/peak_temperature.hpp"
#include "sched/pcmig.hpp"
#include "sim/simulator.hpp"
#include "workload/benchmark.hpp"

namespace {

using hp::arch::ManyCore;
using hp::linalg::Vector;

struct Stacked {
    ManyCore chip = ManyCore::stacked_32core();
    hp::thermal::ThermalModel model{chip.plan(), hp::thermal::RcNetworkConfig{}};
    hp::thermal::MatExSolver solver{model};
};

}  // namespace

int main() {
    hp::bench::print_header(
        "Extension: synchronous rotation on a 3D-stacked S-NUCA (2x 4x4 "
        "layers)",
        "Shen et al., DATE 2023, SSVII future work (3D S-NUCA / CoMeT)");

    Stacked s;
    constexpr double kAmbient = 45.0;
    constexpr double kIdle = 0.3;

    // (1) the 3D penalty: same 5 W core, bottom vs top layer.
    {
        Vector p(32, kIdle);
        p[s.chip.plan().index_of(1, 1, 0)] = 5.0;
        const Vector bottom =
            s.model.steady_state(s.model.pad_power(p), kAmbient);
        Vector q(32, kIdle);
        q[s.chip.plan().index_of(1, 1, 1)] = 5.0;
        const Vector top = s.model.steady_state(s.model.pad_power(q), kAmbient);
        std::printf("  5 W core steady-state: bottom layer %.1f C, top layer %.1f C"
                    " (3D penalty %.1f C)\n",
                    bottom[s.chip.plan().index_of(1, 1, 0)],
                    top[s.chip.plan().index_of(1, 1, 1)],
                    top[s.chip.plan().index_of(1, 1, 1)] -
                        bottom[s.chip.plan().index_of(1, 1, 0)]);
    }

    // (2) rotation across layers vs pinned placements.
    {
        hp::core::PeakTemperatureAnalyzer analyzer(s.solver, kAmbient, kIdle);
        const auto& ring = s.chip.rings().front();  // spans both layers
        hp::core::RotationRingSpec spec;
        spec.cores = ring.cores;
        spec.slot_power_w.assign(ring.cores.size(), kIdle);
        spec.slot_power_w[0] = 6.0;
        spec.slot_power_w[1] = 6.0;
        std::printf("\n  2x 6 W threads on the centre ring (%zu cores over both layers):\n",
                    ring.cores.size());
        Vector pinned_top(32, kIdle);
        pinned_top[s.chip.plan().index_of(1, 1, 1)] = 6.0;
        pinned_top[s.chip.plan().index_of(2, 2, 1)] = 6.0;
        std::printf("    pinned on top layer          : %.1f C\n",
                    analyzer.static_peak(pinned_top));
        Vector pinned_bottom(32, kIdle);
        pinned_bottom[s.chip.plan().index_of(1, 1, 0)] = 6.0;
        pinned_bottom[s.chip.plan().index_of(2, 2, 0)] = 6.0;
        std::printf("    pinned on bottom layer       : %.1f C\n",
                    analyzer.static_peak(pinned_bottom));
        for (double tau : {2e-3, 0.5e-3, 0.125e-3})
            std::printf("    rotating, tau = %5.3f ms     : %.1f C\n", tau * 1e3,
                        analyzer.rotation_peak({spec}, tau, 4));
    }

    // (3) end-to-end: HotPotato vs PCMig on a loaded 3D chip.
    {
        const auto run = [&](hp::sim::Scheduler& sched) {
            hp::sim::SimConfig cfg;
            cfg.max_sim_time_s = 10.0;
            hp::sim::Simulator sim(s.chip, s.model, s.solver, cfg);
            for (int i = 0; i < 4; ++i)
                sim.add_task(
                    {&hp::workload::profile_by_name("bodytrack"), 8, 0.0});
            return sim.run(sched);
        };
        hp::sched::PcMigScheduler pcmig;
        const auto r_mig = run(pcmig);
        hp::core::HotPotatoScheduler hotpotato;
        const auto r_hp = run(hotpotato);
        std::printf("\n  full 3D chip, 4x 8-thread bodytrack:\n");
        std::printf("    %-12s makespan %7.1f ms  peak %5.1f C  migrations %zu\n",
                    "PCMig", r_mig.makespan_s * 1e3, r_mig.peak_temperature_c,
                    r_mig.migrations);
        std::printf("    %-12s makespan %7.1f ms  peak %5.1f C  migrations %zu\n",
                    "HotPotato", r_hp.makespan_s * 1e3, r_hp.peak_temperature_c,
                    r_hp.migrations);
        std::printf("    speedup: %+.2f %%\n",
                    (r_mig.makespan_s / r_hp.makespan_s - 1.0) * 100.0);
    }
    return 0;
}
