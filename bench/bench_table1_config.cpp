// Reproduces paper Table I: core parameters of the simulated S-NUCA
// processor. This binary prints the configuration every other experiment in
// this repository actually uses, so a mismatch with the paper is immediately
// visible.

#include <cstdio>

#include "bench_util.hpp"

int main() {
    using hp::bench::print_header;
    print_header("Table I: Core parameters for simulated S-NUCA processor",
                 "Shen et al., DATE 2023, Table I");

    const auto& chip = hp::bench::testbed_64core().chip();
    const auto& p = chip.params();
    const auto& d = chip.dvfs();

    std::printf("  %-24s | %-36s | %s\n", "Parameter", "Paper", "This repo");
    std::printf("  -------------------------+--------------------------------------+----------------------------\n");
    std::printf("  %-24s | %-36s | %zu\n", "Number of Cores", "64",
                chip.core_count());
    std::printf("  %-24s | %-36s | x86-interval model, %.1f GHz, %.0f nm\n",
                "Core Model", "x86, 4.0 GHz, 14 nm, out-of-order",
                p.peak_frequency_hz / 1e9, p.technology_nm);
    std::printf("  %-24s | %-36s | %zu/%zu KB, %zu-way, %zuB-block\n",
                "L1 I/D cache", "16/16 KB, 8/8-way, 64B-block", p.l1i_kb,
                p.l1d_kb, p.l1_ways, p.cache_block_bytes);
    std::printf("  %-24s | %-36s | %zu KB per core, %zu-way, %zuB-block\n",
                "LLC", "128 KB per core, 16-way, 64B-block", p.llc_bank_kb,
                p.llc_ways, p.cache_block_bytes);
    std::printf("  %-24s | %-36s | %.1f ns per hop\n", "NoC Latency",
                "1.5 ns per hop", p.noc_hop_latency_s * 1e9);
    std::printf("  %-24s | %-36s | %zu bit\n", "NoC link width", "256 bit",
                p.noc_link_width_bits);
    std::printf("  %-24s | %-36s | %.2f mm^2\n", "Area of core", "0.81 mm^2",
                p.core_area_mm2);
    std::printf("  %-24s | %-36s | %.1f-%.1f GHz, %.0f MHz steps\n",
                "DVFS (baselines only)", "100 MHz steps", d.f_min_hz / 1e9,
                d.f_max_hz / 1e9, d.step_hz / 1e6);

    std::printf("\n  Derived S-NUCA heterogeneity (not in Table I, paper SSIII-A):\n");
    std::printf("  %-28s %zu\n", "AMD rings:", chip.rings().size());
    for (const auto& ring : chip.rings())
        std::printf("    ring AMD %-6.2f  cores: %zu   avg LLC latency: %.2f ns\n",
                    ring.amd, ring.cores.size(),
                    chip.llc_access_latency_s(ring.cores.front()) * 1e9);

    // Fig. 3: the concentric AMD-based rotation rings, rendered on the mesh
    // (digit = ring index, 0 = innermost/lowest AMD).
    std::printf("\n  Fig. 3: concentric AMD rotation rings on the 8x8 mesh\n");
    for (std::size_t row = 0; row < chip.plan().rows(); ++row) {
        std::printf("    ");
        for (std::size_t col = 0; col < chip.plan().cols(); ++col)
            std::printf("%zu ", chip.ring_of(chip.plan().index_of(row, col)));
        std::printf("\n");
    }
    return 0;
}
