// Design-choice ablation for paper SSV: the rotation interval tau trades
// migration overhead (small tau => frequent migrations) against thermal
// averaging (large tau => per-core heating between rotations). This bench
// sweeps tau for the Fig. 2 workload and a hotter 4-thread swaptions
// instance, printing response time, peak temperature and DTM activity —
// motivating both the paper's 0.5 ms default and Algorithm 2's
// updateRotationSpeed() adaptivity.

#include <cstdio>

#include "bench_util.hpp"
#include "sched/static_schedulers.hpp"
#include "workload/benchmark.hpp"

namespace {

using hp::bench::testbed_16core;
using hp::sim::SimConfig;
using hp::sim::SimResult;

SimResult run_tau(const char* benchmark_name, std::size_t threads,
                  double tau) {
    SimConfig cfg;
    cfg.micro_step_s = 0.5e-4;
    cfg.max_sim_time_s = 5.0;
    hp::sim::Simulator sim = testbed_16core().make_sim(cfg);
    sim.add_task(hp::workload::TaskSpec{
        &hp::workload::profile_by_name(benchmark_name), threads, 0.0});
    hp::sched::FixedRotationScheduler sched({5, 6, 10, 9}, tau);
    return sim.run(sched);
}

void sweep(const char* benchmark_name, std::size_t threads) {
    std::printf("\n  workload: %zu-thread %s on the centre ring, T_DTM = 70 C\n",
                threads, benchmark_name);
    std::printf("  %-10s | %13s | %9s | %10s | %12s\n", "tau", "response [ms]",
                "peak [C]", "migrations", "DTM time [ms]");
    std::printf("  -----------+---------------+-----------+------------+--------------\n");
    for (double tau : {0.125e-3, 0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3, 16e-3,
                       32e-3, 64e-3}) {
        const SimResult r = run_tau(benchmark_name, threads, tau);
        if (!r.all_finished) {
            std::printf("  %7.3f ms | DID NOT FINISH\n", tau * 1e3);
            continue;
        }
        std::printf("  %7.3f ms | %13.1f | %9.2f | %10zu | %12.1f\n",
                    tau * 1e3, r.tasks.at(0).response_time_s() * 1e3,
                    r.peak_temperature_c, r.migrations,
                    r.dtm_throttled_s * 1e3);
    }
}

}  // namespace

int main() {
    hp::bench::print_header(
        "Ablation: rotation interval tau — migration overhead vs thermal "
        "averaging",
        "Shen et al., DATE 2023, SSV (updateRotationSpeed) + SSVI setup "
        "(0.5 ms initial tau)");

    sweep("blackscholes", 2);
    sweep("x264", 4);

    std::printf("\n  expected shape: response time first falls (less DTM/overhead)\n");
    std::printf("  then rises again as large tau lets cores heat up between rotations.\n");
    return 0;
}
