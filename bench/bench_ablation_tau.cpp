// Design-choice ablation for paper SSV: the rotation interval tau trades
// migration overhead (small tau => frequent migrations) against thermal
// averaging (large tau => per-core heating between rotations). This bench
// sweeps tau for the Fig. 2 workload and a hotter 4-thread swaptions
// instance, printing response time, peak temperature and DTM activity —
// motivating both the paper's 0.5 ms default and Algorithm 2's
// updateRotationSpeed() adaptivity.
//
// The sweep is one campaign: each tau value is a scheduler variant and each
// benchmark instance a workload, executed in parallel via --jobs N.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sched/static_schedulers.hpp"
#include "workload/benchmark.hpp"

namespace {

std::string tau_label(double tau) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "tau-%.3fms", tau * 1e3);
    return buf;
}

}  // namespace

int main(int argc, char** argv) {
    hp::bench::print_header(
        "Ablation: rotation interval tau — migration overhead vs thermal "
        "averaging",
        "Shen et al., DATE 2023, SSV (updateRotationSpeed) + SSVI setup "
        "(0.5 ms initial tau)");

    const std::vector<double> taus = {0.125e-3, 0.25e-3, 0.5e-3, 1e-3, 2e-3,
                                      4e-3,     8e-3,    16e-3,  32e-3, 64e-3};

    hp::sim::SimConfig cfg;
    cfg.micro_step_s = 0.5e-4;
    cfg.max_sim_time_s = 5.0;

    hp::campaign::CampaignSpec spec(hp::bench::testbed_16core(), cfg);
    for (double tau : taus)
        spec.add_scheduler(tau_label(tau), [tau] {
            return std::make_unique<hp::sched::FixedRotationScheduler>(
                std::vector<std::size_t>{5, 6, 10, 9}, tau);
        });

    const struct {
        const char* workload;
        const char* benchmark;
        std::size_t threads;
    } sweeps[] = {{"blackscholes-2", "blackscholes", 2},
                  {"x264-4", "x264", 4}};
    for (const auto& s : sweeps)
        spec.add_workload(
            s.workload,
            {hp::workload::TaskSpec{
                &hp::workload::profile_by_name(s.benchmark), s.threads, 0.0}});

    const auto out = hp::bench::run_with_progress(
        spec, hp::bench::jobs_from_args(argc, argv));

    for (const auto& s : sweeps) {
        std::printf(
            "\n  workload: %zu-thread %s on the centre ring, T_DTM = 70 C\n",
            s.threads, s.benchmark);
        std::printf("  %-10s | %13s | %9s | %10s | %12s\n", "tau",
                    "response [ms]", "peak [C]", "migrations", "DTM time [ms]");
        std::printf("  -----------+---------------+-----------+------------+--------------\n");
        for (double tau : taus) {
            const auto* rec = hp::campaign::find(out.records, s.workload,
                                                 tau_label(tau));
            if (rec == nullptr || rec->failed || !rec->result.all_finished) {
                std::printf("  %7.3f ms | DID NOT FINISH\n", tau * 1e3);
                continue;
            }
            const auto& r = rec->result;
            std::printf("  %7.3f ms | %13.1f | %9.2f | %10zu | %12.1f\n",
                        tau * 1e3, r.tasks.at(0).response_time_s() * 1e3,
                        r.peak_temperature_c, r.migrations,
                        r.dtm_throttled_s * 1e3);
        }
    }

    std::printf("\n  expected shape: response time first falls (less DTM/overhead)\n");
    std::printf("  then rises again as large tau lets cores heat up between rotations.\n");
    std::printf("\n  %s", hp::campaign::summary_markdown(out.summary).c_str());
    return 0;
}
