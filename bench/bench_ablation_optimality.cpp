// Quality-of-heuristic ablation for paper SSV: finding the
// performance-maximising thermally-safe rotation schedule is NP-hard, so
// Algorithm 2 is a greedy heuristic claimed to be near-optimal. On small
// instances (16-core, <= 6 threads) exhaustive search over every
// thread-to-ring assignment x rotation setting is feasible; this bench
// reports the greedy/optimal throughput gap over randomized thread mixes.

#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "core/peak_temperature.hpp"
#include "core/rotation_planner.hpp"
#include "perf/interval_model.hpp"

namespace {

using hp::core::RotationPlan;
using hp::core::RotationPlanner;
using hp::core::ThreadEstimate;

ThreadEstimate random_thread(std::mt19937_64& rng) {
    std::uniform_real_distribution<double> power(1.5, 6.5);
    std::uniform_real_distribution<double> cpi(0.5, 1.2);
    std::uniform_real_distribution<double> apki(0.3, 12.0);
    ThreadEstimate t;
    t.power_w = power(rng);
    t.perf.base_cpi = cpi(rng);
    t.perf.llc_apki = apki(rng);
    t.perf.nominal_power_w = t.power_w;
    return t;
}

}  // namespace

int main() {
    hp::bench::print_header(
        "Ablation: Algorithm 2 greedy heuristic vs exhaustive optimum "
        "(16-core)",
        "Shen et al., DATE 2023, SSV ('NP-hard ... near-optimal solution')");

    const auto& bed = hp::bench::testbed_16core();
    const hp::perf::IntervalPerformanceModel perf(bed.chip());
    const hp::core::PeakTemperatureAnalyzer analyzer(bed.solver(), 45.0, 0.3);
    const RotationPlanner planner(bed.chip(), perf, analyzer);

    std::printf("  %-8s | %7s | %12s | %12s | %7s | %s\n", "threads",
                "trials", "mean gap", "worst gap", "ties", "greedy safe");
    std::printf("  ---------+---------+--------------+--------------+---------+------------\n");

    std::mt19937_64 rng(2023);
    for (std::size_t k : {2u, 3u, 4u, 5u, 6u}) {
        constexpr int kTrials = 12;
        double gap_sum = 0.0, gap_worst = 0.0;
        int ties = 0, safe = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
            std::vector<ThreadEstimate> threads;
            for (std::size_t i = 0; i < k; ++i)
                threads.push_back(random_thread(rng));
            const RotationPlan greedy = planner.plan_greedy(threads, 70.0);
            const RotationPlan optimal = planner.plan_exhaustive(threads, 70.0);
            const double gap =
                1.0 - greedy.throughput_score /
                          std::max(optimal.throughput_score, 1.0);
            gap_sum += gap;
            gap_worst = std::max(gap_worst, gap);
            if (gap < 1e-9) ++ties;
            if (greedy.thermally_safe) ++safe;
        }
        std::printf("  %-8zu | %7d | %11.2f%% | %11.2f%% | %4d/%-2d | %d/%d\n",
                    k, kTrials, 100.0 * gap_sum / kTrials, 100.0 * gap_worst,
                    ties, kTrials, safe, kTrials);
    }

    std::printf("\n  gap = 1 - greedy_throughput / optimal_throughput over\n");
    std::printf("  thermally-safe plans; small mean gaps support the paper's\n");
    std::printf("  near-optimality claim for the greedy ring-assignment heuristic.\n");
    return 0;
}
