// Allocation-instrumented microbenchmark of the thermal hot path.
//
// Times the per-query / per-step cost of every operation the simulator and
// the schedulers sit in all day — steady-state solve, MatEx transient, exact
// analytic peak, the Algorithm-1 rotation peak, and a whole Simulator
// micro-step — and counts heap allocations per call with an instrumented
// global operator new. Each numeric query is measured twice: through the
// legacy value-returning API (which allocates temporaries per call) and
// through the in-place workspace kernels the hot path actually uses.
//
// Emits BENCH_hotpath.json (override with --out PATH) so the perf trajectory
// is tracked across PRs; --smoke cuts repetitions for the tier-1 ctest
// invocation.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "campaign/campaign.hpp"
#include "core/hotpotato.hpp"
#include "core/peak_temperature.hpp"
#include "exec/arena.hpp"
#include "exec/exec.hpp"
#include "linalg/simd.hpp"
#include "sched/static_schedulers.hpp"
#include "sim/simulator.hpp"
#include "thermal/modal_solver.hpp"
#include "thermal/solver.hpp"
#include "workload/benchmark.hpp"
#include "workload/generator.hpp"

// Provenance baked in by bench/CMakeLists.txt; harmless fallbacks keep the
// file compilable outside that build (e.g. compile_commands tooling).
#ifndef HP_BENCH_GIT_SHA
#define HP_BENCH_GIT_SHA "unknown"
#endif
#ifndef HP_BENCH_BUILD_TYPE
#define HP_BENCH_BUILD_TYPE "unknown"
#endif

// --- instrumented allocator --------------------------------------------------
// Counts every path into the global heap. Counting is the only intervention:
// allocation itself is forwarded to malloc, so timings stay representative.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
    return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size ? size : 1))
        return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

struct Case {
    std::string name;
    double ns_per_op = 0.0;
    double allocs_per_op = 0.0;
    double ops = 0.0;
};

std::vector<Case> g_cases;
double g_sink = 0.0;  // defeats dead-code elimination of measured results

/// Runs @p op @p reps times (after one untimed warm-up call) and records
/// wall time and allocation count per call.
template <typename Op>
void measure(const std::string& name, std::size_t reps, Op&& op) {
    g_sink += op();  // warm-up: sizes caches/workspaces, faults pages in
    const std::uint64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) g_sink += op();
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    Case c;
    c.name = name;
    c.ns_per_op = ns / static_cast<double>(reps);
    c.allocs_per_op =
        static_cast<double>(allocs) / static_cast<double>(reps);
    c.ops = static_cast<double>(reps);
    std::printf("  %-40s %12.0f ns/op %10.2f allocs/op\n", c.name.c_str(),
                c.ns_per_op, c.allocs_per_op);
    g_cases.push_back(std::move(c));
}

/// Whole-simulation measurement: ns and allocations per micro-step, averaged
/// over the entire run (setup + epochs included — the strict per-step zero
/// is asserted by tests/alloc_guard_test).
void measure_sim(const std::string& name,
                 const hp::campaign::StudySetup& setup,
                 hp::sim::Scheduler& sched,
                 std::vector<hp::workload::TaskSpec> tasks,
                 double max_time_s) {
    hp::sim::SimConfig cfg;
    cfg.micro_step_s = 1e-4;
    cfg.max_sim_time_s = max_time_s;
    hp::sim::Simulator sim = setup.make_simulator(cfg);
    sim.add_tasks(tasks);
    const std::uint64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    const hp::sim::SimResult r = sim.run(sched);
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    const double steps = r.simulated_time_s / cfg.micro_step_s;
    Case c;
    c.name = name;
    c.ns_per_op = ns / steps;
    c.allocs_per_op = static_cast<double>(allocs) / steps;
    c.ops = steps;
    std::printf("  %-40s %12.0f ns/step %9.2f allocs/step (%.0f steps)\n",
                c.name.c_str(), c.ns_per_op, c.allocs_per_op, steps);
    g_cases.push_back(std::move(c));
}

/// Whole-campaign measurement: wall time and allocations per run with the
/// pool saturated (one worker per hardware thread). Unlike measure(), the
/// campaign is executed once — per-run setup (scheduler, simulator, faults)
/// is part of what the throughput number is supposed to include.
void measure_campaign(const std::string& name,
                      const hp::campaign::CampaignSpec& spec,
                      std::size_t jobs) {
    hp::campaign::CampaignOptions options;
    options.jobs = jobs;
    const std::uint64_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    const hp::campaign::CampaignResult result =
        hp::campaign::run_campaign(spec, options);
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    const std::uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    const double runs = static_cast<double>(result.records.size());
    Case c;
    c.name = name;
    c.ns_per_op = ns / runs;
    c.allocs_per_op = static_cast<double>(allocs) / runs;
    c.ops = runs;
    std::printf("  %-40s %12.0f ns/run %9.2f runs/s (%zu jobs, %.0f runs)\n",
                c.name.c_str(), c.ns_per_op, 1e9 * runs / ns, jobs, runs);
    g_sink += static_cast<double>(result.summary.total_runs);
    g_cases.push_back(std::move(c));
}

/// First "model name" line of /proc/cpuinfo, or "unknown" off-Linux.
std::string cpu_model() {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        if (line.rfind("model name", 0) != 0) continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ') ++begin;
        return line.substr(begin);
    }
    return "unknown";
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

void write_json(const std::string& path, bool smoke) {
    using hp::linalg::simd::active_tier;
    using hp::linalg::simd::tier_name;
    // Host topology + the pin policy the campaign cases ran under: the
    // campaign-throughput numbers depend on worker placement, so the gate
    // (scripts/check_bench.py) warns when these differ between baseline and
    // candidate — mirroring the SIMD dispatch-tier handling above.
    const hp::exec::Topology topo = hp::exec::discover_topology();
    const std::size_t cpus_per_node =
        topo.nodes.empty() ? 0 : topo.nodes.front().cpus.size();
    hp::exec::ExecPolicy policy;
    policy.apply_env_overrides();
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"bench_hotpath\",\n  \"mode\": \""
        << (smoke ? "smoke" : "full") << "\",\n  \"provenance\": {\n"
        << "    \"git_sha\": \"" << json_escape(HP_BENCH_GIT_SHA) << "\",\n"
        << "    \"compiler\": \"" << json_escape(compiler_id()) << "\",\n"
        << "    \"build_type\": \"" << json_escape(HP_BENCH_BUILD_TYPE)
        << "\",\n"
        << "    \"cpu\": \"" << json_escape(cpu_model()) << "\",\n"
        << "    \"numa_nodes\": " << topo.node_count() << ",\n"
        << "    \"cpus_per_node\": " << cpus_per_node << ",\n"
        << "    \"pin_policy\": \"" << hp::exec::to_string(policy.pin)
        << "\",\n"
        << "    \"dispatch\": \"" << tier_name(active_tier()) << "\"\n"
        << "  },\n  \"cases\": [\n";
    for (std::size_t i = 0; i < g_cases.size(); ++i) {
        const Case& c = g_cases[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                      "\"allocs_per_op\": %.3f, \"ops\": %.0f}%s\n",
                      c.name.c_str(), c.ns_per_op, c.allocs_per_op, c.ops,
                      i + 1 < g_cases.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    std::printf("\n  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }
    const std::size_t reps = smoke ? 20 : 2000;

    hp::bench::print_header(
        "Hot-path microbenchmark: thermal kernels and simulator steps",
        "zero-allocation refactor tracking (BENCH_hotpath.json)");

    using namespace hp;
    const campaign::StudySetup& t64 = bench::testbed_64core();
    const thermal::ThermalModel& model = t64.model();
    const thermal::TransientSolver& matex = t64.solver();
    const std::size_t n = model.core_count();

    linalg::Vector core_power(n, 2.0);
    core_power[27] = 6.0;
    core_power[36] = 5.0;
    const linalg::Vector node_power = model.pad_power(core_power);
    const linalg::Vector t_init = model.ambient_equilibrium(45.0);

    std::printf("\n-- value-returning (legacy) APIs, 64-core --\n");
    measure("steady_state/legacy", reps, [&] {
        return model.steady_state(node_power, 45.0)[0];
    });
    measure("transient/legacy", reps, [&] {
        return matex.transient(t_init, node_power, 45.0, 1e-4)[0];
    });
    measure("apply_exponential/legacy", reps, [&] {
        return matex.apply_exponential(t_init, 1e-4)[0];
    });
    measure("peak_exact/legacy", smoke ? 5 : 200, [&] {
        return matex.peak_core_temperature_exact(t_init, node_power, 45.0,
                                                 0.05)
            .temperature_c;
    });

    // Algorithm 1: one realistic 8-slot ring on the 64-core chip.
    core::PeakTemperatureAnalyzer analyzer(matex, 45.0, 0.3);
    core::RotationRingSpec ring;
    ring.cores = {27, 28, 36, 35, 34, 26, 18, 19};
    ring.slot_power_w = {6.0, 5.5, 5.0, 0.3, 0.3, 4.0, 0.3, 0.3};
    const std::vector<core::RotationRingSpec> rings = {ring};
    measure("rotation_peak/legacy", smoke ? 5 : 200, [&] {
        return analyzer.rotation_peak(rings, 0.5e-3, 2);
    });

    std::printf("\n-- in-place workspace kernels (same queries) --\n");
    thermal::ThermalWorkspace ws;
    linalg::Vector out(model.node_count());
    measure("steady_state/workspace", reps, [&] {
        model.steady_state_into(node_power, 45.0, ws, out);
        return out[0];
    });
    measure("transient/workspace", reps, [&] {
        matex.transient_into(t_init, node_power, 45.0, 1e-4, ws, out);
        return out[0];
    });
    measure("apply_exponential/workspace", reps, [&] {
        matex.apply_exponential_into(t_init, 1e-4, ws, out);
        return out[0];
    });
    core::PeakWorkspace peak_ws;
    measure("rotation_peak/workspace", smoke ? 5 : 200, [&] {
        return analyzer.rotation_peak(rings, 0.5e-3, 2, peak_ws);
    });

    std::printf("\n-- whole-simulator micro-steps --\n");
    {
        core::HotPotatoScheduler sched;
        measure_sim("sim_step/hotpotato_16core", bench::testbed_16core(),
                    sched,
                    {workload::TaskSpec{
                        &workload::profile_by_name("blackscholes"), 2, 0.0}},
                    smoke ? 0.02 : 0.25);
    }
    {
        core::HotPotatoScheduler sched;
        measure_sim(
            "sim_step/hotpotato_64core_full", t64, sched,
            workload::homogeneous_fill(workload::profile_by_name("bodytrack"),
                                       64, 1),
            smoke ? 0.01 : 0.1);
    }
    {
        sched::StaticScheduler sched({27, 36});
        measure_sim("sim_step/static_64core", t64, sched,
                    {workload::TaskSpec{
                        &workload::profile_by_name("swaptions"), 2, 0.0}},
                    smoke ? 0.02 : 0.25);
    }

    std::printf("\n-- 256-core scale-up (truncated-modal backend) --\n");
    const campaign::StudySetup& t256 = bench::testbed_256core();
    const thermal::ThermalModel& model256 = t256.model();
    const thermal::TransientSolver& modal256 = t256.solver();
    std::printf("  backend=%s modes=%zu/%zu error_bound=%.3f K\n",
                modal256.backend_name(), modal256.mode_count(),
                modal256.node_count(), modal256.error_bound_c());

    // One-time backend setup at 513 nodes: eigendecomposition, mode cut,
    // banded factorisation, error-bound probes.
    measure("solver_setup_256", smoke ? 1 : 3, [&] {
        return thermal::TruncatedModalSolver(model256,
                                             thermal::SolverConfig::modal())
            .error_bound_c();
    });

    // Algorithm 1 on a 16x16 ring (same 8-slot shape as the 64-core case,
    // centred on the die).
    {
        core::PeakTemperatureAnalyzer analyzer256(modal256, 45.0, 0.3);
        core::RotationRingSpec ring256;
        ring256.cores = {119, 120, 136, 135, 134, 118, 102, 103};
        ring256.slot_power_w = {6.0, 5.5, 5.0, 0.3, 0.3, 4.0, 0.3, 0.3};
        const std::vector<core::RotationRingSpec> rings256 = {ring256};
        core::PeakWorkspace peak_ws256;
        measure("rotation_peak_256", smoke ? 3 : 50, [&] {
            return analyzer256.rotation_peak(rings256, 0.5e-3, 2, peak_ws256);
        });
    }

    // Whole-simulator micro-steps on the 256-core chip (sparse Taylor path).
    {
        core::HotPotatoScheduler sched;
        measure_sim(
            "sim_step_256core", t256, sched,
            workload::homogeneous_fill(workload::profile_by_name("bodytrack"),
                                       16, 1),
            smoke ? 0.01 : 0.1);
    }

    // 1024-core scale-up: full mode only — the one-time 2049-node
    // eigendecomposition behind testbed_1024core() is far too heavy for the
    // tier-1 smoke invocation (smoke coverage stops at 256).
    if (!smoke) {
        std::printf("\n-- 1024-core scale-up (truncated-modal backend) --\n");
        const campaign::StudySetup& t1024 = bench::testbed_1024core();
        const thermal::TransientSolver& modal1024 = t1024.solver();
        std::printf("  backend=%s modes=%zu/%zu error_bound=%.3f K\n",
                    modal1024.backend_name(), modal1024.mode_count(),
                    modal1024.node_count(), modal1024.error_bound_c());

        // Algorithm 1 on a 32x32 ring (the same centred 8-slot shape as the
        // 64/256-core cases).
        {
            core::PeakTemperatureAnalyzer analyzer1024(modal1024, 45.0, 0.3);
            core::RotationRingSpec ring1024;
            ring1024.cores = {495, 496, 528, 527, 526, 494, 462, 463};
            ring1024.slot_power_w = {6.0, 5.5, 5.0, 0.3, 0.3, 4.0, 0.3, 0.3};
            const std::vector<core::RotationRingSpec> rings1024 = {ring1024};
            core::PeakWorkspace peak_ws1024;
            measure("rotation_peak_1024", 20, [&] {
                return analyzer1024.rotation_peak(rings1024, 0.5e-3, 2,
                                                  peak_ws1024);
            });
        }

        // Whole-simulator micro-steps on the 1024-core chip.
        {
            core::HotPotatoScheduler sched;
            measure_sim("sim_step_1024core", t1024, sched,
                        workload::homogeneous_fill(
                            workload::profile_by_name("bodytrack"), 16, 1),
                        0.02);
        }
    }

    std::printf("\n-- execution layer: workspace setup, campaign throughput --\n");

    // Per-run workspace setup cost, heap vs node-local arena (DESIGN.md §12).
    // Each op builds a fresh ThermalWorkspace and warms it with one transient
    // query — exactly what a campaign worker used to pay per run before
    // workspaces moved to per-worker arena-backed scratch. The arena variant
    // resets (keeping its reservation) instead of freeing, so after the first
    // op it touches the heap zero times.
    {
        const std::size_t setup_reps = smoke ? 20 : 500;
        measure("workspace_setup_heap", setup_reps, [&] {
            thermal::ThermalWorkspace fresh;
            matex.transient_into(t_init, node_power, 45.0, 1e-4, fresh, out);
            return out[0];
        });
        exec::Arena arena;
        exec::ArenaResource arena_mr(arena);
        measure("workspace_setup_arena", setup_reps, [&] {
            arena.reset();
            thermal::ThermalWorkspace fresh(&arena_mr);
            matex.transient_into(t_init, node_power, 45.0, 1e-4, fresh, out);
            return out[0];
        });
    }

    // Campaign throughput at saturation: one worker per hardware thread, a
    // seed sweep deep enough to keep every worker busy. Runs/sec includes
    // per-run scheduler/simulator construction and the engine's bookkeeping;
    // ns_per_op (= ns per run) is what the JSON gate tracks.
    {
        const std::size_t jobs =
            std::max<std::size_t>(1, std::thread::hardware_concurrency());
        const std::size_t sweep = std::max<std::size_t>(4, 2 * jobs);

        sim::SimConfig cfg64;
        cfg64.micro_step_s = 1e-4;
        cfg64.max_sim_time_s = smoke ? 0.005 : 0.02;
        campaign::CampaignSpec spec64(t64, cfg64);
        spec64.add_scheduler("hotpotato", [] {
            return std::make_unique<core::HotPotatoScheduler>();
        });
        spec64.add_workload(
            "fill16", workload::homogeneous_fill(
                          workload::profile_by_name("bodytrack"), 16, 1));
        for (std::size_t s = 1; s <= sweep; ++s) spec64.add_seed(s);
        measure_campaign("campaign_run_64core", spec64, jobs);

        sim::SimConfig cfg256;
        cfg256.micro_step_s = 1e-4;
        cfg256.max_sim_time_s = smoke ? 0.001 : 0.005;
        campaign::CampaignSpec spec256(t256, cfg256);
        spec256.add_scheduler("hotpotato", [] {
            return std::make_unique<core::HotPotatoScheduler>();
        });
        spec256.add_workload(
            "fill16", workload::homogeneous_fill(
                          workload::profile_by_name("bodytrack"), 16, 1));
        for (std::size_t s = 1; s <= sweep; ++s) spec256.add_seed(s);
        measure_campaign("campaign_run_256core", spec256, jobs);
    }

    write_json(out_path, smoke);
    return g_sink == 12345.6789 ? 1 : 0;  // g_sink use keeps work alive
}
