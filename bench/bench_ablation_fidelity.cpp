// Model-fidelity ablation: how much do the optional substrate features —
// NoC link contention, sensor-driven DTM, idle-core power gating — move the
// headline numbers? Runs the Fig. 2 rotation case and a 64-core HotPotato
// full load with each knob toggled, quantifying the sensitivity of the
// reproduction to substrate detail.

#include <cstdio>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/static_schedulers.hpp"
#include "workload/benchmark.hpp"
#include "workload/generator.hpp"

namespace {

using hp::bench::testbed_16core;
using hp::bench::testbed_64core;
using hp::sim::SimConfig;
using hp::sim::SimResult;

struct Knobs {
    const char* label;
    bool noc = false;
    bool sensors = false;
    bool gating = false;
};

constexpr Knobs kVariants[] = {
    {"baseline (paper setup)"},
    {"+ NoC contention", true, false, false},
    {"+ sensor DTM", false, true, false},
    {"+ power gating", false, false, true},
    {"+ all three", true, true, true},
};

SimResult run_fig2c(const Knobs& k) {
    SimConfig cfg;
    cfg.max_sim_time_s = 5.0;
    cfg.model_noc_contention = k.noc;
    cfg.dtm_uses_sensors = k.sensors;
    hp::power::PowerParams pwr;
    pwr.power_gating = k.gating;
    hp::sim::Simulator sim(testbed_16core().chip, testbed_16core().model,
                           testbed_16core().solver, cfg, pwr);
    sim.add_task({&hp::workload::profile_by_name("blackscholes"), 2, 0.0});
    hp::sched::FixedRotationScheduler sched({5, 6, 10, 9}, 0.5e-3);
    return sim.run(sched);
}

SimResult run_fullload(const Knobs& k) {
    SimConfig cfg;
    cfg.max_sim_time_s = 10.0;
    cfg.model_noc_contention = k.noc;
    cfg.dtm_uses_sensors = k.sensors;
    hp::power::PowerParams pwr;
    pwr.power_gating = k.gating;
    hp::sim::Simulator sim(testbed_64core().chip, testbed_64core().model,
                           testbed_64core().solver, cfg, pwr);
    sim.add_tasks(hp::workload::homogeneous_fill(
        hp::workload::profile_by_name("x264"), 64, 3));
    hp::core::HotPotatoScheduler sched;
    return sim.run(sched);
}

}  // namespace

int main() {
    hp::bench::print_header(
        "Ablation: substrate fidelity (NoC contention, sensor DTM, power "
        "gating)",
        "robustness check for the whole reproduction (DESIGN.md SS2 "
        "substitutions)");

    std::printf("\n  Fig. 2(c) rotation case (16-core, 2-thread blackscholes):\n");
    std::printf("  %-26s | %13s | %9s | %4s\n", "model variant",
                "response [ms]", "peak [C]", "DTM");
    std::printf("  ---------------------------+---------------+-----------+-----\n");
    for (const Knobs& k : kVariants) {
        const SimResult r = run_fig2c(k);
        std::printf("  %-26s | %13.1f | %9.2f | %zu\n", k.label,
                    r.tasks.at(0).response_time_s() * 1e3,
                    r.peak_temperature_c, r.dtm_triggers);
    }

    std::printf("\n  64-core full-load x264 under HotPotato:\n");
    std::printf("  %-26s | %13s | %9s | %12s\n", "model variant",
                "makespan [ms]", "peak [C]", "energy [J]");
    std::printf("  ---------------------------+---------------+-----------+-------------\n");
    for (const Knobs& k : kVariants) {
        const SimResult r = run_fullload(k);
        std::printf("  %-26s | %13.1f | %9.2f | %12.2f\n", k.label,
                    r.makespan_s * 1e3, r.peak_temperature_c,
                    r.total_energy_j);
    }

    std::printf("\n  expected: the headline response times move by at most a few\n");
    std::printf("  percent under any knob — the reproduction's conclusions do not\n");
    std::printf("  hinge on the simplified substrate details.\n");
    return 0;
}
