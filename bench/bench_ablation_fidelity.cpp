// Model-fidelity ablation: how much do the optional substrate features —
// NoC link contention, sensor-driven DTM, idle-core power gating — move the
// headline numbers? Runs the Fig. 2 rotation case and a 64-core HotPotato
// full load with each knob toggled, quantifying the sensitivity of the
// reproduction to substrate detail.
//
// Each knob combination is a named config variant on the campaign engine's
// config axis (the axis exists precisely because RunSetup spans SimConfig
// *and* PowerParams, so power_gating can vary per run).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/static_schedulers.hpp"
#include "workload/benchmark.hpp"
#include "workload/generator.hpp"

namespace {

using hp::campaign::RunSetup;
using hp::sim::SimResult;

struct Knobs {
    const char* label;
    bool noc = false;
    bool sensors = false;
    bool gating = false;
};

constexpr Knobs kVariants[] = {
    {"baseline (paper setup)"},
    {"+ NoC contention", true, false, false},
    {"+ sensor DTM", false, true, false},
    {"+ power gating", false, false, true},
    {"+ all three", true, true, true},
};

void add_variants(hp::campaign::CampaignSpec& spec) {
    for (const Knobs& k : kVariants)
        spec.add_config(k.label, [k](RunSetup& setup) {
            setup.sim.model_noc_contention = k.noc;
            setup.sim.dtm_uses_sensors = k.sensors;
            setup.power.power_gating = k.gating;
        });
}

}  // namespace

int main(int argc, char** argv) {
    hp::bench::print_header(
        "Ablation: substrate fidelity (NoC contention, sensor DTM, power "
        "gating)",
        "robustness check for the whole reproduction (DESIGN.md SS2 "
        "substitutions)");

    const std::size_t jobs = hp::bench::jobs_from_args(argc, argv);

    // Fig. 2(c) rotation case (16-core, 2-thread blackscholes).
    hp::campaign::CampaignResult fig2c;
    {
        hp::sim::SimConfig cfg;
        cfg.max_sim_time_s = 5.0;
        hp::campaign::CampaignSpec spec(hp::bench::testbed_16core(), cfg);
        spec.add_scheduler("FixedRotation", [] {
            return std::make_unique<hp::sched::FixedRotationScheduler>(
                std::vector<std::size_t>{5, 6, 10, 9}, 0.5e-3);
        });
        spec.add_workload(
            "blackscholes-2",
            {hp::workload::TaskSpec{
                &hp::workload::profile_by_name("blackscholes"), 2, 0.0}});
        add_variants(spec);
        fig2c = hp::bench::run_with_progress(spec, jobs);
    }

    // 64-core full-load x264 under HotPotato.
    hp::campaign::CampaignResult fullload;
    {
        hp::sim::SimConfig cfg;
        cfg.max_sim_time_s = 10.0;
        hp::campaign::CampaignSpec spec(hp::bench::testbed_64core(), cfg);
        spec.add_scheduler("HotPotato", [] {
            return std::make_unique<hp::core::HotPotatoScheduler>();
        });
        spec.add_workload("x264-full",
                          hp::workload::homogeneous_fill(
                              hp::workload::profile_by_name("x264"), 64, 3));
        add_variants(spec);
        fullload = hp::bench::run_with_progress(spec, jobs);
    }

    std::printf("\n  Fig. 2(c) rotation case (16-core, 2-thread blackscholes):\n");
    std::printf("  %-26s | %13s | %9s | %4s\n", "model variant",
                "response [ms]", "peak [C]", "DTM");
    std::printf("  ---------------------------+---------------+-----------+-----\n");
    for (const Knobs& k : kVariants) {
        const auto* rec = hp::campaign::find(fig2c.records, "blackscholes-2",
                                             "FixedRotation", k.label);
        if (rec == nullptr || rec->failed) {
            std::printf("  %-26s | FAILED\n", k.label);
            continue;
        }
        const SimResult& r = rec->result;
        std::printf("  %-26s | %13.1f | %9.2f | %zu\n", k.label,
                    r.tasks.at(0).response_time_s() * 1e3,
                    r.peak_temperature_c, r.dtm_triggers);
    }

    std::printf("\n  64-core full-load x264 under HotPotato:\n");
    std::printf("  %-26s | %13s | %9s | %12s\n", "model variant",
                "makespan [ms]", "peak [C]", "energy [J]");
    std::printf("  ---------------------------+---------------+-----------+-------------\n");
    for (const Knobs& k : kVariants) {
        const auto* rec = hp::campaign::find(fullload.records, "x264-full",
                                             "HotPotato", k.label);
        if (rec == nullptr || rec->failed) {
            std::printf("  %-26s | FAILED\n", k.label);
            continue;
        }
        const SimResult& r = rec->result;
        std::printf("  %-26s | %13.1f | %9.2f | %12.2f\n", k.label,
                    r.makespan_s * 1e3, r.peak_temperature_c,
                    r.total_energy_j);
    }

    std::printf("\n  expected: the headline response times move by at most a few\n");
    std::printf("  percent under any knob — the reproduction's conclusions do not\n");
    std::printf("  hinge on the simplified substrate details.\n");
    return 0;
}
