#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/study_setup.hpp"

namespace hp::bench {

/// Shared paper machines; built once per benchmark binary. The returned
/// setup is immutable and thread-safe, so one instance backs every
/// (possibly parallel) campaign a bench runs — see campaign::StudySetup.
inline const campaign::StudySetup& testbed_16core() {
    static const campaign::StudySetup t = campaign::StudySetup::paper_16core();
    return t;
}

inline const campaign::StudySetup& testbed_64core() {
    static const campaign::StudySetup t = campaign::StudySetup::paper_64core();
    return t;
}

inline const campaign::StudySetup& testbed_256core() {
    static const campaign::StudySetup t = campaign::StudySetup::paper_256core();
    return t;
}

/// 32x32 scale-up machine (2049 thermal nodes). Setup runs a full
/// eigendecomposition, so benches should only touch this in full mode.
inline const campaign::StudySetup& testbed_1024core() {
    static const campaign::StudySetup t =
        campaign::StudySetup::paper_1024core();
    return t;
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("\n=============================================================================\n");
    std::printf("%s\n", title);
    std::printf("  reproduces: %s\n", paper_ref);
    std::printf("=============================================================================\n");
}

/// Worker-thread count for bench campaigns: the value of a "--jobs N"
/// argument when present, else @p fallback (0 = one worker per hardware
/// thread, the bench default — results are deterministic at any value).
inline std::size_t jobs_from_args(int argc, char** argv,
                                  std::size_t fallback = 0) {
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--jobs")
            return static_cast<std::size_t>(std::strtoull(argv[i + 1],
                                                          nullptr, 10));
    return fallback;
}

/// Runs @p spec with @p jobs workers and a completion counter on stderr.
inline campaign::CampaignResult run_with_progress(
    const campaign::CampaignSpec& spec, std::size_t jobs) {
    campaign::CampaignOptions options;
    options.jobs = jobs;
    options.progress = [](const campaign::RunRecord& record, std::size_t done,
                          std::size_t total) {
        std::fprintf(stderr, "  [%zu/%zu] %s (%.1f s)%s\n", done, total,
                     campaign::to_string(record.key).c_str(),
                     record.wall_time_s, record.failed ? " FAILED" : "");
    };
    return campaign::run_campaign(spec, options);
}

}  // namespace hp::bench
