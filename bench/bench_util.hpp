#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "arch/manycore.hpp"
#include "sim/simulator.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"

namespace hp::bench {

/// A chip plus its (expensive, shareable) thermal model and
/// eigendecomposition; build once per benchmark binary.
struct Testbed {
    arch::ManyCore chip;
    thermal::ThermalModel model;
    thermal::MatExSolver solver;

    explicit Testbed(arch::ManyCore c)
        : chip(std::move(c)),
          model(chip.plan(), thermal::RcNetworkConfig{}),
          solver(model) {}

    sim::Simulator make_sim(sim::SimConfig config = {}) const {
        return sim::Simulator(chip, model, solver, config);
    }
};

inline const Testbed& testbed_16core() {
    static const Testbed t{arch::ManyCore::paper_16core()};
    return t;
}

inline const Testbed& testbed_64core() {
    static const Testbed t{arch::ManyCore::paper_64core()};
    return t;
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("\n=============================================================================\n");
    std::printf("%s\n", title);
    std::printf("  reproduces: %s\n", paper_ref);
    std::printf("=============================================================================\n");
}

}  // namespace hp::bench
