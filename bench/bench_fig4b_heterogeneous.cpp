// Reproduces paper Fig. 4(b): comparative evaluation with a heterogeneous
// workload. A random 20-benchmark multi-program multi-threaded workload
// arrives as a Poisson process (open system); the arrival rate sweeps the
// machine from under- to over-loaded. HotPotato's average response time is
// compared against PCMig per load level. Paper: HotPotato wins at every
// load, with the largest gain (up to 12.27 %) at medium load and small gains
// at the under-/over-loaded extremes.
//
// One workload per arrival rate x two schedulers = a 12-run grid on the
// parallel campaign engine (--jobs N, default one worker per hardware
// thread); results are identical at any N.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/pcmig.hpp"
#include "workload/generator.hpp"

namespace {

std::string rate_label(double rate) {
    return "poisson-" + std::to_string(static_cast<long long>(rate));
}

}  // namespace

int main(int argc, char** argv) {
    hp::bench::print_header(
        "Fig. 4(b): heterogeneous open-system workload, HotPotato vs PCMig "
        "across load",
        "Shen et al., DATE 2023, Fig. 4(b): up to 12.27% at medium load");

    const std::vector<double> rates = {10.0, 25.0, 50.0, 100.0, 200.0, 400.0};
    constexpr std::uint64_t kSeed = 7;

    hp::sim::SimConfig cfg;
    cfg.micro_step_s = 1e-4;
    cfg.max_sim_time_s = 30.0;

    hp::campaign::CampaignSpec spec(hp::bench::testbed_64core(), cfg);
    spec.add_scheduler("PCMig", [] {
        return std::make_unique<hp::sched::PcMigScheduler>();
    });
    spec.add_scheduler("HotPotato", [] {
        return std::make_unique<hp::core::HotPotatoScheduler>();
    });
    for (double rate : rates)
        spec.add_workload(
            rate_label(rate),
            hp::workload::poisson_mix(/*task_count=*/20, rate,
                                      /*min_threads=*/2, /*max_threads=*/8,
                                      kSeed));

    const auto out = hp::bench::run_with_progress(
        spec, hp::bench::jobs_from_args(argc, argv));

    std::printf("  %-14s | %14s | %14s | %8s\n", "arrivals/s",
                "PCMig avg [ms]", "HotPot avg [ms]", "speedup");
    std::printf("  ---------------+----------------+----------------+---------\n");

    double best = -1e9, best_rate = 0.0, first = 0.0, last = 0.0;
    for (double rate : rates) {
        const auto* r_mig =
            hp::campaign::find(out.records, rate_label(rate), "PCMig");
        const auto* r_hp =
            hp::campaign::find(out.records, rate_label(rate), "HotPotato");
        if (r_mig == nullptr || r_hp == nullptr || r_mig->failed ||
            r_hp->failed || !r_mig->result.all_finished ||
            !r_hp->result.all_finished) {
            std::printf("  %-14.0f | DID NOT FINISH within sim budget\n", rate);
            continue;
        }
        const double mig_ms = r_mig->result.average_response_time_s() * 1e3;
        const double hp_ms = r_hp->result.average_response_time_s() * 1e3;
        const double speedup = (mig_ms / hp_ms - 1.0) * 100.0;
        std::printf("  %-14.0f | %14.1f | %14.1f | %+7.2f%%\n", rate, mig_ms,
                    hp_ms, speedup);
        if (speedup > best) {
            best = speedup;
            best_rate = rate;
        }
        if (rate == rates.front()) first = speedup;
        if (rate == rates.back()) last = speedup;
    }

    std::printf("\n  peak speedup    : %+6.2f %% at %.0f arrivals/s (paper: up to +12.27 %% at medium load)\n",
                best, best_rate);
    std::printf("  shape check: HotPotato never loses          : %s\n",
                first >= -1.0 && last >= -1.0 && best > 0 ? "PASS" : "FAIL");
    std::printf("  shape check: medium load beats the extremes : %s\n",
                best > first && best > last ? "PASS" : "FAIL");
    std::printf("\n  %s", hp::campaign::summary_markdown(out.summary).c_str());
    return 0;
}
