// Reproduces paper Fig. 4(b): comparative evaluation with a heterogeneous
// workload. A random 20-benchmark multi-program multi-threaded workload
// arrives as a Poisson process (open system); the arrival rate sweeps the
// machine from under- to over-loaded. HotPotato's average response time is
// compared against PCMig per load level. Paper: HotPotato wins at every
// load, with the largest gain (up to 12.27 %) at medium load and small gains
// at the under-/over-loaded extremes.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/pcmig.hpp"
#include "workload/generator.hpp"

namespace {

using hp::bench::testbed_64core;
using hp::sim::SimConfig;
using hp::sim::SimResult;

SimResult run(double arrivals_per_s, hp::sim::Scheduler& sched,
              std::uint64_t seed) {
    SimConfig cfg;
    cfg.micro_step_s = 1e-4;
    cfg.max_sim_time_s = 30.0;
    hp::sim::Simulator sim = testbed_64core().make_sim(cfg);
    sim.add_tasks(
        hp::workload::poisson_mix(/*task_count=*/20, arrivals_per_s,
                                  /*min_threads=*/2, /*max_threads=*/8, seed));
    return sim.run(sched);
}

}  // namespace

int main() {
    hp::bench::print_header(
        "Fig. 4(b): heterogeneous open-system workload, HotPotato vs PCMig "
        "across load",
        "Shen et al., DATE 2023, Fig. 4(b): up to 12.27% at medium load");

    const std::vector<double> rates = {10.0, 25.0, 50.0, 100.0, 200.0, 400.0};
    constexpr std::uint64_t kSeed = 7;

    std::printf("  %-14s | %14s | %14s | %8s\n", "arrivals/s",
                "PCMig avg [ms]", "HotPot avg [ms]", "speedup");
    std::printf("  ---------------+----------------+----------------+---------\n");

    double best = -1e9, best_rate = 0.0, first = 0.0, last = 0.0;
    for (double rate : rates) {
        hp::sched::PcMigScheduler pcmig;
        const SimResult r_mig = run(rate, pcmig, kSeed);
        hp::core::HotPotatoScheduler hotpotato;
        const SimResult r_hp = run(rate, hotpotato, kSeed);
        if (!r_mig.all_finished || !r_hp.all_finished) {
            std::printf("  %-14.0f | DID NOT FINISH within sim budget\n", rate);
            continue;
        }
        const double mig_ms = r_mig.average_response_time_s() * 1e3;
        const double hp_ms = r_hp.average_response_time_s() * 1e3;
        const double speedup = (mig_ms / hp_ms - 1.0) * 100.0;
        std::printf("  %-14.0f | %14.1f | %14.1f | %+7.2f%%\n", rate, mig_ms,
                    hp_ms, speedup);
        if (speedup > best) {
            best = speedup;
            best_rate = rate;
        }
        if (rate == rates.front()) first = speedup;
        if (rate == rates.back()) last = speedup;
    }

    std::printf("\n  peak speedup    : %+6.2f %% at %.0f arrivals/s (paper: up to +12.27 %% at medium load)\n",
                best, best_rate);
    std::printf("  shape check: HotPotato never loses          : %s\n",
                first >= -1.0 && last >= -1.0 && best > 0 ? "PASS" : "FAIL");
    std::printf("  shape check: medium load beats the extremes : %s\n",
                best > first && best > last ? "PASS" : "FAIL");
    return 0;
}
