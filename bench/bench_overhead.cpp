// Reproduces the paper's SSVI "Run-time Overhead" measurement: the time
// HotPotato needs to evaluate a synchronous thread-rotation schedule for a
// fully loaded 64-core many-core (paper: 23.76 us per invocation across
// 10000 runs => 4.75 % of a 0.5 ms rotation epoch). Measured here with
// google-benchmark over the same Algorithm 1 machinery the scheduler calls,
// plus the baselines' per-epoch costs for comparison.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/peak_temperature.hpp"
#include "linalg/vector.hpp"
#include "sched/tsp.hpp"

namespace {

using hp::bench::testbed_64core;
using hp::core::PeakTemperatureAnalyzer;
using hp::core::RotationRingSpec;

constexpr double kAmbient = 45.0;
constexpr double kIdle = 0.3;
constexpr double kTau = 0.5e-3;

/// Fully loaded chip: every ring occupied with threads of varied power.
std::vector<RotationRingSpec> full_load_rings() {
    std::vector<RotationRingSpec> specs;
    std::size_t i = 0;
    for (const auto& ring : testbed_64core().chip().rings()) {
        RotationRingSpec spec;
        spec.cores = ring.cores;
        for (std::size_t j = 0; j < ring.cores.size(); ++j)
            spec.slot_power_w.push_back(2.0 + 0.37 * static_cast<double>((i + j) % 9));
        specs.push_back(std::move(spec));
        ++i;
    }
    return specs;
}

const PeakTemperatureAnalyzer& analyzer() {
    static const PeakTemperatureAnalyzer a(testbed_64core().solver(), kAmbient,
                                           kIdle);
    return a;
}

/// Design-time phase of Algorithm 1 (paper lines 1-7): eigendecomposition is
/// shared with the simulator, so this measures the beta/alpha set-up.
void BM_Algorithm1_DesignTime(benchmark::State& state) {
    const auto& solver = testbed_64core().solver();
    for (auto _ : state) {
        PeakTemperatureAnalyzer a(solver, kAmbient, kIdle);
        benchmark::DoNotOptimize(a.idle_power_w());
    }
}
BENCHMARK(BM_Algorithm1_DesignTime)->Unit(benchmark::kMillisecond);

/// Run-time phase of Algorithm 1 on a fully loaded 64-core chip — the cost
/// of certifying one candidate rotation schedule (the paper's 23.76 us
/// quantity).
void BM_Algorithm1_RotationPeak_FullLoad(benchmark::State& state) {
    const auto rings = full_load_rings();
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzer().rotation_peak(rings, kTau, 2));
}
BENCHMARK(BM_Algorithm1_RotationPeak_FullLoad)->Unit(benchmark::kMicrosecond);

/// Sensitivity to occupancy: k occupied rings.
void BM_Algorithm1_RotationPeak_Rings(benchmark::State& state) {
    auto rings = full_load_rings();
    rings.resize(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzer().rotation_peak(rings, kTau, 2));
}
BENCHMARK(BM_Algorithm1_RotationPeak_Rings)->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMicrosecond);

/// Explicit-schedule variant (Eq. 10 direct) as a function of period delta.
void BM_Algorithm1_SchedulePeak_Delta(benchmark::State& state) {
    const std::size_t delta = static_cast<std::size_t>(state.range(0));
    std::vector<hp::linalg::Vector> schedule;
    for (std::size_t e = 0; e < delta; ++e) {
        hp::linalg::Vector p(64, kIdle);
        for (std::size_t c = e % 4; c < 64; c += 4) p[c] = 4.0;
        schedule.push_back(p);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzer().schedule_peak(schedule, kTau, 2));
}
BENCHMARK(BM_Algorithm1_SchedulePeak_Delta)->RangeMultiplier(2)->Range(1, 16)
    ->Unit(benchmark::kMicrosecond);

/// Static steady-state peak (the no-rotation path of the scheduler).
void BM_Algorithm1_StaticPeak(benchmark::State& state) {
    hp::linalg::Vector power(64, 2.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzer().static_peak(power));
}
BENCHMARK(BM_Algorithm1_StaticPeak)->Unit(benchmark::kMicrosecond);

/// Baseline cost: one TSP budget computation (what PCGov/PCMig pay per
/// epoch).
void BM_Baseline_TspBudget(benchmark::State& state) {
    const hp::sched::TspBudget tsp(testbed_64core().model());
    std::vector<bool> mask(64, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tsp.per_core_budget(mask, kIdle, kAmbient, 70.0));
}
BENCHMARK(BM_Baseline_TspBudget)->Unit(benchmark::kMicrosecond);

/// Baseline cost: one MatEx transient prediction (what PCMig pays per
/// migration check).
void BM_Baseline_MatExPrediction(benchmark::State& state) {
    const auto& tb = testbed_64core();
    const hp::linalg::Vector t0 = tb.model().ambient_equilibrium(kAmbient);
    hp::linalg::Vector power(64, 2.5);
    const hp::linalg::Vector padded = tb.model().pad_power(power);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tb.solver().transient(t0, padded, kAmbient, 5e-3));
}
BENCHMARK(BM_Baseline_MatExPrediction)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
