// Methodological ablation for paper SSIV: accuracy and speed of the
// analytical peak-temperature method (Algorithm 1) against brute-force
// transient simulation of the same rotation. The paper argues the analytical
// method is what makes run-time use feasible; this bench quantifies both the
// agreement (should be ~exact at the sample points) and the speedup.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/peak_temperature.hpp"
#include "linalg/vector.hpp"

namespace {

using hp::bench::testbed_16core;
using hp::core::PeakTemperatureAnalyzer;
using hp::core::RotationRingSpec;
using hp::linalg::Vector;

constexpr double kAmbient = 45.0;
constexpr double kIdle = 0.3;

std::vector<Vector> ring_schedule(const RotationRingSpec& ring,
                                  std::size_t cores) {
    const std::size_t k = ring.cores.size();
    std::vector<Vector> out;
    for (std::size_t epoch = 0; epoch < k; ++epoch) {
        Vector p(cores, kIdle);
        for (std::size_t pos = 0; pos < k; ++pos)
            p[ring.cores[pos]] = ring.slot_power_w[(pos + k - epoch % k) % k];
        out.push_back(p);
    }
    return out;
}

double brute_peak(const std::vector<Vector>& schedule, double tau,
                  int samples, double horizon_s) {
    const auto& tb = testbed_16core();
    Vector t = tb.model().ambient_equilibrium(kAmbient);
    const int periods = static_cast<int>(
        horizon_s / (tau * static_cast<double>(schedule.size()))) + 1;
    double peak = -1e300;
    for (int p = 0; p < periods; ++p) {
        for (const Vector& cp : schedule) {
            const Vector padded = tb.model().pad_power(cp);
            for (int s = 0; s < samples; ++s) {
                t = tb.solver().transient(t, padded, kAmbient, tau / samples);
                for (std::size_t i = 0; i < tb.model().core_count(); ++i)
                    peak = std::max(peak, t[i]);
            }
        }
    }
    return peak;
}

}  // namespace

int main() {
    hp::bench::print_header(
        "Ablation: analytical peak temperature (Algorithm 1) vs brute-force "
        "simulation",
        "Shen et al., DATE 2023, SSIV (method) + SSV complexity analysis");

    const auto& tb = testbed_16core();
    const PeakTemperatureAnalyzer analyzer(tb.solver(), kAmbient, kIdle);
    const RotationRingSpec ring{{5, 6, 10, 9}, {6.2, 5.0, kIdle, kIdle}};
    const auto schedule = ring_schedule(ring, 16);

    std::printf("  %-10s | %12s | %12s | %10s | %12s | %12s | %8s\n", "tau",
                "analytic [C]", "brute [C]", "error [C]", "analytic[us]",
                "brute [ms]", "speedup");
    std::printf("  -----------+--------------+--------------+------------+--------------+--------------+---------\n");

    for (double tau : {0.125e-3, 0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3}) {
        using clock = std::chrono::steady_clock;

        const auto t0 = clock::now();
        double analytic = 0.0;
        constexpr int kReps = 50;
        for (int i = 0; i < kReps; ++i)
            analytic = analyzer.schedule_peak(schedule, tau, 4);
        const auto t1 = clock::now();
        const double brute = brute_peak(schedule, tau, 4, 12.0);
        const auto t2 = clock::now();

        const double us_analytic =
            std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
        const double ms_brute =
            std::chrono::duration<double, std::milli>(t2 - t1).count();
        std::printf("  %7.3f ms | %12.3f | %12.3f | %10.3f | %12.1f | %12.1f | %7.0fx\n",
                    tau * 1e3, analytic, brute, analytic - brute, us_analytic,
                    ms_brute, ms_brute * 1e3 / us_analytic);
    }

    std::printf("\n  note: the residual error is the brute-force run's finite convergence\n");
    std::printf("  horizon plus sampling granularity; the analytic method needs no horizon.\n");
    return 0;
}
