// Reproduces paper Fig. 2: thermal traces of a two-threaded blackscholes
// instance on the central cores of a 16-core S-NUCA many-core under
//   (a) no thermal management at peak frequency (thermally unsustainable),
//   (b) TSP-based DVFS power budgeting,
//   (c) synchronous thread rotation over the four centre cores at 0.5 ms.
// Prints the response times / peak temperatures the paper quotes (68 ms @
// ~80 C, 84 ms, 74 ms) next to the measured values and writes one trace CSV
// per sub-figure for plotting.

#include <cstdio>
#include <filesystem>
#include <memory>

#include "bench_util.hpp"
#include "core/hotpotato.hpp"
#include "sched/static_schedulers.hpp"
#include "sim/trace_io.hpp"
#include "workload/benchmark.hpp"

namespace {

using hp::bench::testbed_16core;
using hp::sim::SimConfig;
using hp::sim::SimResult;

struct Row {
    const char* label;
    double paper_response_ms;
    double paper_peak_c;
    SimResult result;
};

SimResult run_case(hp::sim::Scheduler& sched, double t_dtm,
                   const char* trace_file) {
    SimConfig cfg;
    cfg.micro_step_s = 1e-4;
    cfg.t_dtm_c = t_dtm;
    cfg.trace_interval_s = 0.5e-3;
    cfg.max_sim_time_s = 2.0;
    hp::sim::Simulator sim = testbed_16core().make_simulator(cfg);
    sim.add_task(hp::workload::TaskSpec{
        &hp::workload::profile_by_name("blackscholes"), 2, 0.0});
    SimResult r = sim.run(sched);
    std::filesystem::create_directories("out");
    hp::sim::write_trace_csv(trace_file, r.trace);
    return r;
}

}  // namespace

int main() {
    hp::bench::print_header(
        "Fig. 2: thermal traces, 2-thread blackscholes on 16-core S-NUCA",
        "Shen et al., DATE 2023, Fig. 2(a)-(c) + SSI motivational example");

    std::vector<Row> rows;

    {  // (a) unmanaged at peak frequency; DTM disabled to expose the excursion
        hp::sched::StaticScheduler sched({5, 10});
        rows.push_back({"(a) peak frequency, no management", 68.0, 80.0,
                        run_case(sched, 1e6, "out/fig2a_trace.csv")});
    }
    {  // (b) TSP DVFS budgeting
        hp::sched::TspDvfsScheduler sched({5, 10});
        rows.push_back({"(b) TSP power budgeting (DVFS)", 84.0, 70.0,
                        run_case(sched, 70.0, "out/fig2b_trace.csv")});
    }
    {  // (c) synchronous rotation over the centre ring at 0.5 ms
        hp::sched::FixedRotationScheduler sched({5, 6, 10, 9}, 0.5e-3);
        rows.push_back({"(c) synchronous rotation, tau=0.5ms", 74.0, 70.0,
                        run_case(sched, 70.0, "out/fig2c_trace.csv")});
    }
    {  // bonus: the full HotPotato scheduler on the same workload
        hp::core::HotPotatoScheduler sched;
        rows.push_back({"(+) HotPotato (Algorithm 2)", -1.0, 70.0,
                        run_case(sched, 70.0, "out/fig2_hotpotato_trace.csv")});
    }

    std::printf("  %-36s | %14s | %14s | %9s | %s\n", "policy",
                "response paper", "response here", "peak here", "DTM");
    std::printf("  -------------------------------------+----------------+----------------+-----------+-----\n");
    for (const Row& row : rows) {
        char paper[16];
        if (row.paper_response_ms > 0)
            std::snprintf(paper, sizeof paper, "%.0f ms", row.paper_response_ms);
        else
            std::snprintf(paper, sizeof paper, "n/a");
        std::printf("  %-36s | %14s | %11.1f ms | %7.1f C | %zu\n", row.label,
                    paper, row.result.tasks.at(0).response_time_s() * 1e3,
                    row.result.peak_temperature_c, row.result.dtm_triggers);
    }

    const double resp_a = rows[0].result.tasks[0].response_time_s();
    const double resp_b = rows[1].result.tasks[0].response_time_s();
    const double resp_c = rows[2].result.tasks[0].response_time_s();
    std::printf("\n  rotation overhead vs unmanaged : %5.1f %%  (paper: 8.1 %%)\n",
                (resp_c / resp_a - 1.0) * 100.0);
    std::printf("  rotation speedup vs DVFS       : %5.1f %%  (paper: 11.9 %%)\n",
                (1.0 - resp_c / resp_b) * 100.0);
    std::printf("  shape check: unmanaged < rotation < DVFS response: %s\n",
                (resp_a < resp_c && resp_c < resp_b) ? "PASS" : "FAIL");
    std::printf("  shape check: unmanaged exceeds 70 C threshold   : %s\n",
                rows[0].result.peak_temperature_c > 70.0 ? "PASS" : "FAIL");
    std::printf("  shape check: (b) and (c) stay below threshold   : %s\n",
                (rows[1].result.peak_temperature_c <= 70.5 &&
                 rows[2].result.peak_temperature_c <= 70.5)
                    ? "PASS"
                    : "FAIL");
    std::printf("\n  traces written: out/fig2a_trace.csv out/fig2b_trace.csv out/fig2c_trace.csv out/fig2_hotpotato_trace.csv\n");
    return 0;
}
