// Sustained-load benchmark of the thermal-advice server (DESIGN.md §13).
//
// Brings a real AdviceServer up on a Unix-domain socket (8 workers, 64- and
// 256-core configs, shared concurrent prediction cache) and drives it from
// 1, 8 and 32 blocking client threads cycling a deterministic request mix.
// Reported per leg: sustained qps (ns_per_op = wall ns per answered
// request) and, from the 8-client leg, the client-observed p99 latency
// (ns_per_op of the `server_p99_us` case = p99 in nanoseconds). Cache
// hit/miss/race totals are printed for context.
//
// allocs_per_op is reported as 0.0 by design: request handling allocates
// only inside worker-owned buffers that amortise to zero, and a cross-thread
// allocation gate would be flaky — the regression gate for this benchmark is
// time-only (scripts/check_bench.py, --server-tolerance).
//
// Emits BENCH_server.json (--out PATH overrides); --smoke cuts request
// counts for the tier-1 ctest invocation. Schema matches bench_hotpath so
// check_bench.py can gate both files in one invocation.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/exec.hpp"
#include "linalg/simd.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

#ifndef HP_BENCH_GIT_SHA
#define HP_BENCH_GIT_SHA "unknown"
#endif
#ifndef HP_BENCH_BUILD_TYPE
#define HP_BENCH_BUILD_TYPE "unknown"
#endif

namespace {

using Clock = std::chrono::steady_clock;
using namespace hp::server;

struct Case {
    std::string name;
    double ns_per_op = 0.0;
    double allocs_per_op = 0.0;
    double ops = 0.0;
};

std::vector<Case> g_cases;

/// Deterministic request mix over both served configs: light loads that stay
/// static, saturating loads that walk the τ ladder, and explicit grids.
std::vector<AdviceRequest> request_pool() {
    std::vector<AdviceRequest> pool;
    const auto add = [&](const char* config, std::vector<double> powers,
                         std::vector<double> taus = {}) {
        AdviceRequest request;
        request.config = config;
        request.thread_power_w = std::move(powers);
        request.tau_grid_s = std::move(taus);
        pool.push_back(std::move(request));
    };
    add("paper_64core", {1.0, 1.5, 2.0, 2.5});
    add("paper_64core", std::vector<double>(32, 2.0));
    add("paper_64core", std::vector<double>(64, 3.0));
    add("paper_64core", {6.0, 6.0, 6.0, 6.0, 6.0, 6.0, 6.0, 6.0},
        {0.25e-3, 0.5e-3, 1e-3});
    add("paper_256core", std::vector<double>(16, 2.5));
    add("paper_256core", std::vector<double>(64, 3.5));
    return pool;
}

/// 256-core-only mix for the dedicated scale-up leg: every request lands on
/// the paper_256core bundle (truncated-modal backend), so the leg isolates
/// the large-config serving cost from the mixed pool above.
std::vector<AdviceRequest> request_pool_256() {
    std::vector<AdviceRequest> pool;
    const auto add = [&](std::vector<double> powers,
                         std::vector<double> taus = {}) {
        AdviceRequest request;
        request.config = "paper_256core";
        request.thread_power_w = std::move(powers);
        request.tau_grid_s = std::move(taus);
        pool.push_back(std::move(request));
    };
    add(std::vector<double>(16, 2.5));
    add(std::vector<double>(64, 3.5));
    add(std::vector<double>(128, 2.0));
    add(std::vector<double>(8, 6.0), {0.25e-3, 0.5e-3, 1e-3});
    return pool;
}

struct LegResult {
    double wall_s = 0.0;
    double qps = 0.0;
    std::vector<double> latency_ns;  ///< every request, unsorted
};

/// One load leg: @p clients threads, each its own connection, each issuing
/// @p per_client requests round-robin over the pool (offset by client index
/// so concurrent clients are never in lockstep).
LegResult run_leg(const std::string& socket, std::size_t clients,
                  std::size_t per_client,
                  const std::vector<AdviceRequest>& pool) {
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto start = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            AdviceClient client(socket);
            std::vector<double>& mine = latencies[c];
            mine.reserve(per_client);
            for (std::size_t r = 0; r < per_client; ++r) {
                const AdviceRequest& request = pool[(c + r) % pool.size()];
                const auto t0 = Clock::now();
                (void)client.query(request);
                mine.push_back(std::chrono::duration<double, std::nano>(
                                   Clock::now() - t0)
                                   .count());
            }
        });
    }
    for (std::thread& t : threads) t.join();
    LegResult leg;
    leg.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
    const double total = static_cast<double>(clients * per_client);
    leg.qps = total / leg.wall_s;
    for (std::vector<double>& mine : latencies)
        leg.latency_ns.insert(leg.latency_ns.end(), mine.begin(), mine.end());
    return leg;
}

double percentile_ns(std::vector<double> latencies, double q) {
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1));
    return latencies[rank];
}

std::string cpu_model() {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        if (line.rfind("model name", 0) != 0) continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ') ++begin;
        return line.substr(begin);
    }
    return "unknown";
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

void write_json(const std::string& path, bool smoke) {
    using hp::linalg::simd::active_tier;
    using hp::linalg::simd::tier_name;
    const hp::exec::Topology topo = hp::exec::discover_topology();
    const std::size_t cpus_per_node =
        topo.nodes.empty() ? 0 : topo.nodes.front().cpus.size();
    hp::exec::ExecPolicy policy;
    policy.apply_env_overrides();
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"bench_server\",\n  \"mode\": \""
        << (smoke ? "smoke" : "full") << "\",\n  \"provenance\": {\n"
        << "    \"git_sha\": \"" << json_escape(HP_BENCH_GIT_SHA) << "\",\n"
        << "    \"compiler\": \"" << json_escape(compiler_id()) << "\",\n"
        << "    \"build_type\": \"" << json_escape(HP_BENCH_BUILD_TYPE)
        << "\",\n"
        << "    \"cpu\": \"" << json_escape(cpu_model()) << "\",\n"
        << "    \"numa_nodes\": " << topo.node_count() << ",\n"
        << "    \"cpus_per_node\": " << cpus_per_node << ",\n"
        << "    \"pin_policy\": \"" << hp::exec::to_string(policy.pin)
        << "\",\n"
        << "    \"dispatch\": \"" << tier_name(active_tier()) << "\"\n"
        << "  },\n  \"cases\": [\n";
    for (std::size_t i = 0; i < g_cases.size(); ++i) {
        const Case& c = g_cases[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                      "\"allocs_per_op\": %.3f, \"ops\": %.0f}%s\n",
                      c.name.c_str(), c.ns_per_op, c.allocs_per_op, c.ops,
                      i + 1 < g_cases.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    std::printf("\n  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_server.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    hp::bench::print_header(
        "Advice-server benchmark: sustained qps and tail latency",
        "request-serving throughput tracking (BENCH_server.json)");

    ServerConfig config;
    config.socket_path =
        "/tmp/hp_bench_server_" + std::to_string(::getpid()) + ".sock";
    config.threads = 8;
    config.configs = {"paper_64core", "paper_256core"};

    std::printf("\n  building bundles (64- and 256-core)...\n");
    const auto setup_start = Clock::now();
    AdviceServer server(config);
    std::printf("  server up in %.2f s: %zu workers, cache %zu entries\n",
                std::chrono::duration<double>(Clock::now() - setup_start)
                    .count(),
                config.threads, config.cache_entries);

    const std::vector<AdviceRequest> pool = request_pool();
    const std::size_t per_client = smoke ? 25 : 500;

    // Warm the caches and the τ ladder once so every leg measures
    // steady-state serving, not first-touch evaluation.
    run_leg(config.socket_path, 1, pool.size(), pool);

    std::vector<double> p99_pool_ns;
    for (const std::size_t clients : {std::size_t{1}, std::size_t{8},
                                      std::size_t{32}}) {
        const LegResult leg =
            run_leg(config.socket_path, clients, per_client, pool);
        Case c;
        c.name = "server_qps_" + std::to_string(clients) +
                 (clients == 1 ? "client" : "clients");
        c.ns_per_op = 1e9 / leg.qps;  // wall ns per answered request
        c.ops = static_cast<double>(clients * per_client);
        std::printf(
            "  %-28s %10.0f qps %12.0f ns/req  p50 %7.0f us  p99 %7.0f us\n",
            c.name.c_str(), leg.qps, c.ns_per_op,
            percentile_ns(leg.latency_ns, 0.50) / 1e3,
            percentile_ns(leg.latency_ns, 0.99) / 1e3);
        g_cases.push_back(std::move(c));
        if (clients == 8) p99_pool_ns = leg.latency_ns;
    }

    // Tail latency from the 8-client leg (the gated configuration):
    // ns_per_op carries the p99 in nanoseconds so the shared tooling's
    // ns-based comparison applies unchanged.
    Case p99;
    p99.name = "server_p99_us";
    p99.ns_per_op = percentile_ns(p99_pool_ns, 0.99);
    p99.ops = static_cast<double>(p99_pool_ns.size());
    std::printf("  %-28s %10.1f us\n", p99.name.c_str(),
                p99.ns_per_op / 1e3);
    g_cases.push_back(std::move(p99));

    // Dedicated 256-core leg: 8 clients, every request on the paper_256core
    // bundle — the batched modal hot path end to end through advise().
    {
        const std::vector<AdviceRequest> pool256 = request_pool_256();
        run_leg(config.socket_path, 1, pool256.size(), pool256);  // warm-up
        const std::size_t clients = 8;
        const LegResult leg =
            run_leg(config.socket_path, clients, per_client, pool256);
        Case c;
        c.name = "server_qps_256core";
        c.ns_per_op = 1e9 / leg.qps;
        c.ops = static_cast<double>(clients * per_client);
        std::printf(
            "  %-28s %10.0f qps %12.0f ns/req  p50 %7.0f us  p99 %7.0f us\n",
            c.name.c_str(), leg.qps, c.ns_per_op,
            percentile_ns(leg.latency_ns, 0.50) / 1e3,
            percentile_ns(leg.latency_ns, 0.99) / 1e3);
        g_cases.push_back(std::move(c));
        Case p99_256;
        p99_256.name = "server_p99_256core_us";
        p99_256.ns_per_op = percentile_ns(leg.latency_ns, 0.99);
        p99_256.ops = static_cast<double>(leg.latency_ns.size());
        std::printf("  %-28s %10.1f us\n", p99_256.name.c_str(),
                    p99_256.ns_per_op / 1e3);
        g_cases.push_back(std::move(p99_256));
    }

    // Cache effectiveness, for the log and the JSON reader's context.
    std::uint64_t hits = 0, misses = 0, races = 0;
    const hp::obs::MetricsSnapshot snapshot = server.metrics();
    for (const auto& counter : snapshot.counters) {
        if (counter.name == "server.cache_hits") hits = counter.value;
        if (counter.name == "server.cache_misses") misses = counter.value;
        if (counter.name == "server.cache_races") races = counter.value;
    }
    const double lookups = static_cast<double>(hits + misses);
    std::printf(
        "  cache: %llu hits / %llu misses / %llu races (%.1f%% hit rate), "
        "%llu requests served\n",
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        static_cast<unsigned long long>(races),
        lookups > 0 ? 100.0 * static_cast<double>(hits) / lookups : 0.0,
        static_cast<unsigned long long>(server.requests_served()));

    server.stop();
    write_json(out_path, smoke);
    return 0;
}
