// Fault-injection campaign: the graceful-degradation showcase.
//
// A hot two-task workload runs under HotPotato on the 16-core part while a
// scripted fault campaign (written to CSV and loaded back, the same path the
// --faults CLI flag uses) kills one core permanently and corrupts two thermal
// sensors mid-run. The run must survive: the rings re-form without the dead
// core, the voting filter masks the lying sensors, and the watchdog keeps the
// excursion bounded. A second run with injection disabled demonstrates that
// the fault subsystem is bit-for-bit transparent when unused.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "arch/manycore.hpp"
#include "core/hotpotato.hpp"
#include "fault/fault_io.hpp"
#include "report/resilience.hpp"
#include "sim/simulator.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"
#include "workload/benchmark.hpp"

int main() {
    using namespace hp;

    arch::ManyCore chip = arch::ManyCore::paper_16core();
    thermal::ThermalModel model(chip.plan(), thermal::RcNetworkConfig{});
    thermal::MatExSolver solver(model);

    // --- the campaign script, round-tripped through the CSV format --------
    fault::FaultSchedule schedule;
    schedule.events.push_back({0.01, fault::FaultKind::kSensorStuck, 2,
                               0.0, 30.0});   // sensor 2 reads cold forever
    schedule.events.push_back({0.015, fault::FaultKind::kSensorSpike, 9,
                               0.03, 30.0});  // sensor 9 spikes +30 C briefly
    schedule.events.push_back({0.02, fault::FaultKind::kCorePermanent, 5,
                               0.0, 0.0});    // core 5 dies at t = 20 ms

    const std::string csv_path = "fault_campaign.csv";
    {
        std::ofstream csv(csv_path);
        fault::write_fault_schedule(csv, schedule);
    }
    std::cout << "fault schedule (" << csv_path << "):\n";
    fault::write_fault_schedule(std::cout, schedule);
    std::cout << "\n";

    const auto run_once = [&](bool inject) {
        sim::SimConfig cfg;
        cfg.max_sim_time_s = 5.0;
        if (inject)
            cfg.fault_schedule = fault::read_fault_schedule_file(csv_path);
        sim::Simulator sim(chip, model, solver, cfg);
        sim.add_task({&workload::profile_by_name("blackscholes"), 2, 0.0});
        sim.add_task({&workload::profile_by_name("swaptions"), 4, 0.005});
        core::HotPotatoScheduler hp;
        return sim.run(hp);
    };

    const sim::SimResult faulty = run_once(true);
    std::cout << "--- campaign run (core loss + 2 lying sensors) ---\n"
              << "all finished       : "
              << (faulty.all_finished ? "yes" : "NO") << "\n"
              << "peak temperature   : " << faulty.peak_temperature_c
              << " C (limit 70 C)\n"
              << "makespan           : " << faulty.makespan_s << " s\n"
              << report::render_resilience(faulty.resilience)
              << "fault log:\n";
    report::write_fault_log(std::cout, faulty.resilience);

    const sim::SimResult clean_a = run_once(false);
    const sim::SimResult clean_b = run_once(false);
    const bool transparent =
        clean_a.makespan_s == clean_b.makespan_s &&
        clean_a.peak_temperature_c == clean_b.peak_temperature_c &&
        clean_a.total_energy_j == clean_b.total_energy_j &&
        clean_a.resilience.faults_injected == 0;
    std::cout << "\n--- injection disabled ---\n"
              << "peak temperature   : " << clean_a.peak_temperature_c
              << " C\n"
              << "makespan           : " << clean_a.makespan_s << " s\n"
              << "deterministic      : " << (transparent ? "yes" : "NO")
              << " (two fault-free runs are bit-identical)\n"
              << "slowdown from fault: "
              << (faulty.makespan_s / clean_a.makespan_s - 1.0) * 100.0
              << " %\n";

    std::remove(csv_path.c_str());
    return faulty.all_finished && transparent ? 0 : 1;
}
