// Fault-injection campaign: the graceful-degradation showcase.
//
// A hot two-task workload runs under HotPotato on the 16-core part while a
// scripted fault campaign (written to CSV and loaded back, the same path the
// --faults CLI flag uses) kills one core permanently and corrupts two thermal
// sensors mid-run. The run must survive: the rings re-form without the dead
// core, the voting filter masks the lying sensors, and the watchdog keeps the
// excursion bounded.
//
// The whole study is one campaign grid — configs {faulty, clean} x seeds
// {1, 2} — executed by the parallel engine. The clean runs double as the
// transparency check: fault_seed only feeds the fault injector, so the two
// clean records must be bit-identical, demonstrating the fault subsystem is
// bit-for-bit transparent when unused.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/study_setup.hpp"
#include "core/hotpotato.hpp"
#include "fault/fault_io.hpp"
#include "report/resilience.hpp"
#include "workload/benchmark.hpp"

int main() {
    using namespace hp;

    // --- the campaign script, round-tripped through the CSV format --------
    fault::FaultSchedule schedule;
    schedule.events.push_back({0.01, fault::FaultKind::kSensorStuck, 2,
                               0.0, 30.0});   // sensor 2 reads cold forever
    schedule.events.push_back({0.015, fault::FaultKind::kSensorSpike, 9,
                               0.03, 30.0});  // sensor 9 spikes +30 C briefly
    schedule.events.push_back({0.02, fault::FaultKind::kCorePermanent, 5,
                               0.0, 0.0});    // core 5 dies at t = 20 ms

    std::filesystem::create_directories("out");
    const std::string csv_path = "out/fault_campaign.csv";
    {
        std::ofstream csv(csv_path);
        fault::write_fault_schedule(csv, schedule);
    }
    std::cout << "fault schedule (" << csv_path << "):\n";
    fault::write_fault_schedule(std::cout, schedule);
    std::cout << "\n";

    sim::SimConfig cfg;
    cfg.max_sim_time_s = 5.0;
    campaign::CampaignSpec spec(campaign::StudySetup::paper_16core(), cfg);
    spec.add_scheduler("HotPotato", [] {
        return std::make_unique<core::HotPotatoScheduler>();
    });
    spec.add_workload(
        "blackscholes+swaptions",
        {workload::TaskSpec{&workload::profile_by_name("blackscholes"), 2,
                            0.0},
         workload::TaskSpec{&workload::profile_by_name("swaptions"), 4,
                            0.005}});
    spec.add_config("faulty", [&csv_path](campaign::RunSetup& setup) {
        setup.sim.fault_schedule = fault::read_fault_schedule_file(csv_path);
    });
    spec.add_config("clean", nullptr);
    spec.add_seed(1).add_seed(2);

    campaign::CampaignOptions options;
    options.jobs = 0;  // one worker per hardware thread
    const auto out = campaign::run_campaign(spec, options);

    const std::uint64_t seed1 = 1, seed2 = 2;
    const auto* faulty = campaign::find(out.records, "blackscholes+swaptions",
                                        "HotPotato", "faulty", &seed1);
    const auto* clean_a = campaign::find(out.records, "blackscholes+swaptions",
                                         "HotPotato", "clean", &seed1);
    const auto* clean_b = campaign::find(out.records, "blackscholes+swaptions",
                                         "HotPotato", "clean", &seed2);
    if (faulty == nullptr || clean_a == nullptr || clean_b == nullptr ||
        faulty->failed || clean_a->failed || clean_b->failed) {
        std::cout << "campaign run FAILED\n";
        return 1;
    }

    std::cout << "--- campaign run (core loss + 2 lying sensors) ---\n"
              << "all finished       : "
              << (faulty->result.all_finished ? "yes" : "NO") << "\n"
              << "peak temperature   : " << faulty->result.peak_temperature_c
              << " C (limit 70 C)\n"
              << "makespan           : " << faulty->result.makespan_s << " s\n"
              << report::render_resilience(faulty->result.resilience)
              << "fault log:\n";
    report::write_fault_log(std::cout, faulty->result.resilience);

    const bool transparent =
        clean_a->result.makespan_s == clean_b->result.makespan_s &&
        clean_a->result.peak_temperature_c ==
            clean_b->result.peak_temperature_c &&
        clean_a->result.total_energy_j == clean_b->result.total_energy_j &&
        clean_a->result.resilience.faults_injected == 0;
    std::cout << "\n--- injection disabled ---\n"
              << "peak temperature   : " << clean_a->result.peak_temperature_c
              << " C\n"
              << "makespan           : " << clean_a->result.makespan_s << " s\n"
              << "deterministic      : " << (transparent ? "yes" : "NO")
              << " (two fault-free runs are bit-identical)\n"
              << "slowdown from fault: "
              << (faulty->result.makespan_s / clean_a->result.makespan_s -
                  1.0) * 100.0
              << " %\n"
              << "\n" << campaign::summary_markdown(out.summary);

    std::remove(csv_path.c_str());
    return faulty->result.all_finished && transparent ? 0 : 1;
}
