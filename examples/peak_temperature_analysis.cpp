// Analytical what-if exploration with the paper's peak-temperature method
// (Algorithm 1) — no simulation involved. Given a set of threads with known
// power draws assigned to an AMD ring, compute the exact periodic
// steady-state peak temperature for a sweep of rotation intervals and thread
// counts, and find the slowest thermally-safe rotation.
//
// This is the design-space exploration a system integrator would run before
// committing to a rotation policy.

#include <cstdio>
#include <vector>

#include "arch/manycore.hpp"
#include "core/peak_temperature.hpp"
#include "core/rotation_planner.hpp"
#include "perf/interval_model.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"

int main() {
    using namespace hp;

    arch::ManyCore chip = arch::ManyCore::paper_16core();
    thermal::ThermalModel model(chip.plan(), thermal::RcNetworkConfig{});
    thermal::MatExSolver solver(model);

    constexpr double kAmbient = 45.0;
    constexpr double kIdle = 0.3;
    constexpr double kDtm = 70.0;
    const core::PeakTemperatureAnalyzer analyzer(solver, kAmbient, kIdle);

    // The centre ring of the 16-core chip (cores 5-6-10-9 in cycle order).
    const arch::AmdRing& ring = chip.rings().front();
    std::printf("rotation ring: %zu cores, AMD %.2f\n", ring.cores.size(),
                ring.amd);

    std::printf("\npeak temperature [C] by thread count and rotation interval"
                " (threads at 6 W):\n");
    std::printf("  %-8s", "threads");
    const std::vector<double> taus = {0.125e-3, 0.5e-3, 2e-3, 8e-3};
    for (double tau : taus) std::printf(" | tau=%5.3fms", tau * 1e3);
    std::printf(" | static\n  ---------+-------------+-------------+------------"
                "-+-------------+-------\n");

    for (std::size_t threads = 1; threads <= ring.cores.size(); ++threads) {
        core::RotationRingSpec spec;
        spec.cores = ring.cores;
        spec.slot_power_w.assign(ring.cores.size(), kIdle);
        for (std::size_t t = 0; t < threads; ++t) spec.slot_power_w[t] = 6.0;

        std::printf("  %-8zu", threads);
        for (double tau : taus) {
            const double peak = analyzer.rotation_peak({spec}, tau, 4);
            std::printf(" | %8.2f %s", peak, peak < kDtm ? "ok " : "HOT");
        }
        // Static placement (no rotation) for comparison.
        linalg::Vector power(chip.core_count(), kIdle);
        for (std::size_t t = 0; t < threads; ++t)
            power[ring.cores[t]] = 6.0;
        const double st = analyzer.static_peak(power);
        std::printf(" | %.2f %s\n", st, st < kDtm ? "ok" : "HOT");
    }

    // The scheduler question: slowest safe rotation for 2 hot threads.
    core::RotationRingSpec two;
    two.cores = ring.cores;
    two.slot_power_w = {6.0, 6.0, kIdle, kIdle};
    std::printf("\nslowest thermally-safe rotation for 2x6W threads: ");
    double chosen = -1.0;
    for (double tau = 8e-3; tau >= 0.1e-3; tau *= 0.5) {
        if (analyzer.rotation_peak({two}, tau, 4) < kDtm - 1.0) {
            chosen = tau;
            break;
        }
    }
    if (chosen > 0)
        std::printf("tau = %.3f ms\n", chosen * 1e3);
    else
        std::printf("none - needs a bigger ring or DVFS\n");

    // Per-ring rotation intervals (extension beyond the paper's single tau):
    // the hot inner ring must rotate fast, but a warm middle ring can rotate
    // an order of magnitude slower at almost no thermal cost.
    core::RotationRingSpec middle;
    middle.cores = chip.rings()[1].cores;
    middle.slot_power_w.assign(middle.cores.size(), kIdle);
    middle.slot_power_w[0] = 5.0;
    std::printf("\nper-ring tau (inner 2x6W + middle 1x5W):\n");
    for (double mid_tau : {0.5e-3, 4e-3, 8e-3})
        std::printf("  inner 0.5 ms, middle %5.1f ms -> peak %.2f C\n",
                    mid_tau * 1e3,
                    analyzer.rotation_peak({two, middle},
                                           std::vector<double>{0.5e-3, mid_tau},
                                           4));

    // Design-time planning (Algorithm 2 offline): where should a mixed
    // thread set live, and how fast should it rotate?
    perf::IntervalPerformanceModel perf_model(chip);
    const core::RotationPlanner planner(chip, perf_model, analyzer);
    std::vector<core::ThreadEstimate> threads = {
        {6.0, {.base_cpi = 0.5, .llc_apki = 0.5, .nominal_power_w = 6.0}},
        {6.0, {.base_cpi = 0.5, .llc_apki = 0.5, .nominal_power_w = 6.0}},
        {1.8, {.base_cpi = 1.0, .llc_apki = 12.0, .nominal_power_w = 1.6}},
    };
    const core::RotationPlan plan = planner.plan_greedy(threads, kDtm);
    std::printf("\ngreedy plan for {hot, hot, memory-bound}:\n");
    for (std::size_t i = 0; i < threads.size(); ++i)
        std::printf("  thread %zu (%.1f W) -> ring %zu (AMD %.2f)\n", i,
                    threads[i].power_w, plan.ring_of_thread[i],
                    chip.rings()[plan.ring_of_thread[i]].amd);
    std::printf("  rotation: %s, tau = %.3f ms, predicted peak %.2f C (%s)\n",
                plan.rotation_on ? "on" : "off", plan.tau_s * 1e3,
                plan.predicted_peak_c,
                plan.thermally_safe ? "safe" : "UNSAFE");
    return 0;
}
