// Terminal thermal heatmap: runs the Fig. 2 motivational workload under a
// chosen policy and renders per-core temperature snapshots of the 4x4 chip
// as ANSI-free ASCII heatmaps over time — the quickest way to *see* the
// rotation averaging heat across the centre ring.
//
// Usage: thermal_heatmap [static|rotation|hotpotato|pcmig]

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <memory>

#include "arch/manycore.hpp"
#include "core/hotpotato.hpp"
#include "sched/pcmig.hpp"
#include "sched/static_schedulers.hpp"
#include "sim/simulator.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"
#include "workload/benchmark.hpp"

namespace {

/// Maps a temperature to a density glyph: ambient '.' up to '#' at the DTM
/// threshold and '@' beyond.
char glyph(double t_c) {
    static constexpr const char* kScale = ".:-=+*%#@";
    const double lo = 45.0, hi = 70.0;
    if (t_c >= hi) return '@';
    const double alpha = (t_c - lo) / (hi - lo);
    const int idx = static_cast<int>(alpha * 8.0);
    return kScale[std::clamp(idx, 0, 8)];
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hp;
    const char* mode = argc > 1 ? argv[1] : "rotation";

    arch::ManyCore chip = arch::ManyCore::paper_16core();
    thermal::ThermalModel model(chip.plan(), thermal::RcNetworkConfig{});
    thermal::MatExSolver solver(model);

    sim::SimConfig cfg;
    cfg.trace_interval_s = 1e-3;
    if (std::strcmp(mode, "static") == 0) cfg.t_dtm_c = 1000.0;  // expose it
    sim::Simulator sim(chip, model, solver, cfg);
    sim.add_task({&workload::profile_by_name("blackscholes"), 2, 0.0});

    std::unique_ptr<sim::Scheduler> sched;
    if (std::strcmp(mode, "static") == 0)
        sched = std::make_unique<sched::StaticScheduler>(
            std::vector<std::size_t>{5, 10});
    else if (std::strcmp(mode, "rotation") == 0)
        sched = std::make_unique<sched::FixedRotationScheduler>(
            std::vector<std::size_t>{5, 6, 10, 9}, 0.5e-3);
    else if (std::strcmp(mode, "hotpotato") == 0)
        sched = std::make_unique<core::HotPotatoScheduler>();
    else if (std::strcmp(mode, "pcmig") == 0)
        sched = std::make_unique<sched::PcMigScheduler>();
    else {
        std::fprintf(stderr,
                     "usage: thermal_heatmap [static|rotation|hotpotato|pcmig]\n");
        return 2;
    }

    const sim::SimResult r = sim.run(*sched);

    std::printf("2-thread blackscholes on 16-core, policy: %s\n", mode);
    std::printf("scale: '.' = 45 C ... '#' = 70 C, '@' beyond threshold\n\n");

    // Six snapshots spread over the run, shown side by side.
    const std::size_t snapshots = 6;
    std::vector<std::size_t> picks;
    for (std::size_t s = 0; s < snapshots; ++s)
        picks.push_back(s * (r.trace.size() - 1) / (snapshots - 1));

    for (std::size_t s : picks) std::printf("t=%-6.0fms   ", r.trace[s].time_s * 1e3);
    std::printf("\n");
    for (std::size_t row = 0; row < 4; ++row) {
        for (std::size_t s : picks) {
            const auto& sample = r.trace[s];
            for (std::size_t col = 0; col < 4; ++col)
                std::printf("%c%c",
                            glyph(sample.core_temperature_c[row * 4 + col]),
                            ' ');
            std::printf("    ");
        }
        std::printf("\n");
    }

    std::printf("\nresponse %.1f ms, peak %.1f C, %zu migrations, %zu DTM triggers\n",
                r.tasks.at(0).response_time_s() * 1e3, r.peak_temperature_c,
                r.migrations, r.dtm_triggers);
    return 0;
}
