// Open-system scenario (the paper's Fig. 4(b) setting as an application):
// a 64-core S-NUCA server receives a Poisson stream of multi-threaded jobs
// and must maximise responsiveness under the 70 C limit. Runs HotPotato and
// prints a per-task log plus aggregate statistics, and writes a thermal
// trace CSV for plotting.
//
// Usage: open_system [arrivals_per_s] [task_count] [seed]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "arch/manycore.hpp"
#include "core/hotpotato.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_io.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
    using namespace hp;

    const double rate = argc > 1 ? std::atof(argv[1]) : 60.0;
    const std::size_t tasks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    arch::ManyCore chip = arch::ManyCore::paper_64core();
    thermal::ThermalModel model(chip.plan(), thermal::RcNetworkConfig{});
    thermal::MatExSolver solver(model);

    sim::SimConfig config;
    config.max_sim_time_s = 60.0;
    config.trace_interval_s = 2e-3;
    sim::Simulator simulator(chip, model, solver, config);
    simulator.add_tasks(workload::poisson_mix(tasks, rate, 2, 8, seed));

    core::HotPotatoScheduler scheduler;
    const sim::SimResult result = simulator.run(scheduler);
    std::filesystem::create_directories("out");
    sim::write_trace_csv("out/open_system_trace.csv", result.trace);

    std::printf("open system: %zu tasks at %.0f arrivals/s (seed %llu)\n\n",
                tasks, rate, static_cast<unsigned long long>(seed));
    std::printf("  %-4s %-14s %3s | %9s %9s %9s | %9s\n", "id", "benchmark",
                "thr", "arrive", "start", "finish", "response");
    for (const sim::TaskResult& t : result.tasks)
        std::printf("  %-4zu %-14s %3zu | %7.1fms %7.1fms %7.1fms | %7.1fms\n",
                    t.id, t.benchmark.c_str(), t.threads, t.arrival_s * 1e3,
                    t.start_s * 1e3, t.finish_s * 1e3,
                    t.response_time_s() * 1e3);

    std::printf("\n  all finished        : %s\n",
                result.all_finished ? "yes" : "NO");
    std::printf("  average response    : %.1f ms\n",
                result.average_response_time_s() * 1e3);
    std::printf("  makespan            : %.1f ms\n", result.makespan_s * 1e3);
    std::printf("  peak temperature    : %.1f C\n", result.peak_temperature_c);
    std::printf("  DTM triggers        : %zu (%.1f ms throttled)\n",
                result.dtm_triggers, result.dtm_throttled_s * 1e3);
    std::printf("  migrations          : %zu\n", result.migrations);
    std::printf("  trace written       : out/open_system_trace.csv\n");
    return 0;
}
