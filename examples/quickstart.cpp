// Quickstart: simulate a 16-core S-NUCA many-core running a two-threaded
// blackscholes instance under the HotPotato scheduler and print what
// happened.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "arch/manycore.hpp"
#include "core/hotpotato.hpp"
#include "sim/simulator.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"
#include "workload/benchmark.hpp"

int main() {
    using namespace hp;

    // 1. The machine: a 4x4 S-NUCA mesh with the paper's Table I parameters.
    //    AMD rings (the rotation domains) are derived automatically.
    arch::ManyCore chip = arch::ManyCore::paper_16core();
    std::printf("chip: %zu cores, %zu AMD rings\n", chip.core_count(),
                chip.rings().size());

    // 2. The thermal substrate: a layered RC network (silicon + spreader +
    //    sink) for the floorplan, and the MatEx eigendecomposition that both
    //    the simulator and HotPotato's Algorithm 1 share.
    thermal::ThermalModel model(chip.plan(), thermal::RcNetworkConfig{});
    thermal::MatExSolver solver(model);

    // 3. The workload: PARSEC-calibrated profiles ship with the library.
    const workload::BenchmarkProfile& bs =
        workload::profile_by_name("blackscholes");

    // 4. The simulation: paper defaults — 45 C ambient, 70 C DTM threshold.
    sim::SimConfig config;
    config.trace_interval_s = 1e-3;  // keep a thermal trace
    sim::Simulator simulator(chip, model, solver, config);
    simulator.add_task(workload::TaskSpec{&bs, /*threads=*/2, /*arrival=*/0.0});

    // 5. The scheduler: HotPotato with the paper's parameters (tau = 0.5 ms,
    //    headroom delta = 1 C).
    core::HotPotatoScheduler scheduler;
    const sim::SimResult result = simulator.run(scheduler);

    // 6. Results.
    std::printf("finished: %s\n", result.all_finished ? "yes" : "no");
    for (const sim::TaskResult& t : result.tasks)
        std::printf("task %zu (%s, %zu threads): response %.1f ms\n", t.id,
                    t.benchmark.c_str(), t.threads,
                    t.response_time_s() * 1e3);
    std::printf("peak temperature : %.1f C (threshold %.0f C)\n",
                result.peak_temperature_c, config.t_dtm_c);
    std::printf("DTM triggers     : %zu\n", result.dtm_triggers);
    std::printf("thread migrations: %zu\n", result.migrations);
    std::printf("final rotation   : %s (tau = %.2f ms)\n",
                scheduler.rotation_enabled() ? "on" : "off",
                scheduler.rotation_interval_s() * 1e3);
    return 0;
}
