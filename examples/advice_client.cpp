// Thermal-advice server round trip (DESIGN.md §13).
//
// Brings the advice daemon up in-process on a private Unix-domain socket —
// exactly what `hotpotato_sim serve --socket ...` runs — then queries it
// through the blocking client library for three workloads on the paper's
// 64-core S-NUCA chip: a light set that stays static, a saturating set
// that needs rotation, and one with a caller-chosen τ grid. Run against an
// already-running daemon by passing its socket path as argv[1] (the
// in-process server is skipped).

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"

namespace {

void show(const char* label, const hp::server::AdviceResponse& response) {
    std::printf("%-24s rotation=%s tau=%.6g s  peak=%.2f +/- %.2f C  %s\n",
                label, response.rotation_on ? "on " : "off",
                response.tau_s, response.predicted_peak_c,
                response.error_bound_c,
                response.thermally_safe ? "safe" : "UNSAFE at every tau");
    std::printf("%-24s cores:", "");
    for (std::uint32_t core : response.core_of_thread)
        std::printf(" %u", core);
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hp::server;

    std::unique_ptr<AdviceServer> local;
    std::string socket_path;
    if (argc > 1) {
        socket_path = argv[1];
        std::printf("connecting to running daemon at %s\n",
                    socket_path.c_str());
    } else {
        ServerConfig config;
        config.socket_path =
            "/tmp/hp_advice_example_" + std::to_string(::getpid()) + ".sock";
        config.threads = 2;
        config.configs = {"paper_64core"};
        local = std::make_unique<AdviceServer>(config);
        socket_path = local->socket_path();
        std::printf("started in-process daemon on %s\n", socket_path.c_str());
    }

    AdviceClient client(socket_path);

    AdviceRequest light;
    light.config = "paper_64core";
    light.thread_power_w = {1.0, 1.5, 2.0, 2.5};
    show("4 light threads", client.query(light));

    AdviceRequest heavy;
    heavy.config = "paper_64core";
    heavy.thread_power_w.assign(16, 4.0);
    show("16 x 4.0 W", client.query(heavy));

    AdviceRequest custom = heavy;
    custom.tau_grid_s = {0.5e-3, 1e-3, 2e-3};
    show("16 x 4.0 W, own taus", client.query(custom));

    if (local) {
        local->stop();
        std::printf("served %llu requests\n",
                    static_cast<unsigned long long>(
                        local->requests_served()));
    }
    return 0;
}
