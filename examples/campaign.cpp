// Comparison campaign: runs every scheduler in the library against a small
// workload matrix on the 64-core part using the parallel campaign engine,
// prints a markdown table and writes out/campaign.csv — the template for
// downstream scheduling studies built on this library.
//
// Pass --jobs N to parallelise (0 = one worker per hardware thread). The
// records and out/campaign.csv are byte-identical at every N; only the wall
// clock printed at the end changes.
//
// The run is checkpointed to out/campaign.journal: kill it mid-grid and
// pass --resume to restore the completed runs and execute only the rest —
// the merged records (and the CSV) come out identical to an uninterrupted
// run. The CSV itself is published atomically (tmp + rename).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/study_setup.hpp"
#include "core/hotpotato.hpp"
#include "core/hotpotato_dvfs.hpp"
#include "sched/global_rotation.hpp"
#include "sched/pcgov.hpp"
#include "sched/pcmig.hpp"
#include "sched/reactive.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
    using namespace hp;

    std::size_t jobs = 1;
    bool resume = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--jobs" && i + 1 < argc)
            jobs = static_cast<std::size_t>(
                std::strtoull(argv[i + 1], nullptr, 10));
        if (std::string(argv[i]) == "--resume") resume = true;
    }

    sim::SimConfig cfg;
    cfg.max_sim_time_s = 20.0;
    campaign::CampaignSpec spec(campaign::StudySetup::paper_64core(), cfg);

    spec.add_scheduler("HotPotato", [] {
        return std::make_unique<core::HotPotatoScheduler>();
    });
    spec.add_scheduler("HotPotato+DVFS", [] {
        return std::make_unique<core::HotPotatoDvfsScheduler>();
    });
    spec.add_scheduler("PCMig", [] {
        return std::make_unique<sched::PcMigScheduler>();
    });
    spec.add_scheduler("PCGov", [] {
        return std::make_unique<sched::PcGovScheduler>();
    });
    spec.add_scheduler("reactive", [] {
        return std::make_unique<sched::ReactiveMigrationScheduler>();
    });
    spec.add_scheduler("global-rotation", [] {
        return std::make_unique<sched::GlobalRotationScheduler>();
    });

    spec.add_workload("full-bodytrack",
                      workload::homogeneous_fill(
                          workload::profile_by_name("bodytrack"), 64, 1));
    spec.add_workload("full-canneal",
                      workload::homogeneous_fill(
                          workload::profile_by_name("canneal"), 64, 1));
    spec.add_workload("poisson-medium",
                      workload::poisson_mix(20, 100.0, 2, 8, 7));

    std::filesystem::create_directories("out");
    campaign::CampaignOptions options;
    options.jobs = jobs;
    if (resume && std::filesystem::exists("out/campaign.journal"))
        options.resume_path = "out/campaign.journal";
    else
        options.journal_path = "out/campaign.journal";
    options.progress = [](const campaign::RunRecord& record, std::size_t done,
                          std::size_t total) {
        std::fprintf(stderr, "[%zu/%zu] %s\n", done, total,
                     campaign::to_string(record.key).c_str());
    };
    const campaign::CampaignResult out = campaign::run_campaign(spec, options);

    std::cout << campaign::to_markdown(out.records);
    campaign::write_csv_file("out/campaign.csv", out.records);
    std::printf("\nwrote out/campaign.csv (%zu runs, %zu resumed)\n",
                out.records.size(), out.summary.resumed_runs);
    std::cout << "\n" << campaign::summary_markdown(out.summary);
    return out.summary.failed_runs == 0 ? 0 : 1;
}
