// Comparison campaign: runs every scheduler in the library against a small
// workload matrix on the 64-core part using report::ComparisonRunner, prints
// a markdown table and writes campaign.csv — the template for downstream
// scheduling studies built on this library.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "arch/manycore.hpp"
#include "core/hotpotato.hpp"
#include "core/hotpotato_dvfs.hpp"
#include "report/comparison.hpp"
#include "sched/global_rotation.hpp"
#include "sched/pcgov.hpp"
#include "sched/pcmig.hpp"
#include "sched/reactive.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"
#include "workload/generator.hpp"

int main() {
    using namespace hp;

    arch::ManyCore chip = arch::ManyCore::paper_64core();
    thermal::ThermalModel model(chip.plan(), thermal::RcNetworkConfig{});
    thermal::MatExSolver solver(model);

    sim::SimConfig cfg;
    cfg.max_sim_time_s = 20.0;
    report::ComparisonRunner runner(chip, model, solver, cfg);

    runner.add_scheduler("HotPotato", [] {
        return std::make_unique<core::HotPotatoScheduler>();
    });
    runner.add_scheduler("HotPotato+DVFS", [] {
        return std::make_unique<core::HotPotatoDvfsScheduler>();
    });
    runner.add_scheduler("PCMig", [] {
        return std::make_unique<sched::PcMigScheduler>();
    });
    runner.add_scheduler("PCGov", [] {
        return std::make_unique<sched::PcGovScheduler>();
    });
    runner.add_scheduler("reactive", [] {
        return std::make_unique<sched::ReactiveMigrationScheduler>();
    });
    runner.add_scheduler("global-rotation", [] {
        return std::make_unique<sched::GlobalRotationScheduler>();
    });

    runner.add_workload("full-bodytrack",
                        workload::homogeneous_fill(
                            workload::profile_by_name("bodytrack"), 64, 1));
    runner.add_workload("full-canneal",
                        workload::homogeneous_fill(
                            workload::profile_by_name("canneal"), 64, 1));
    runner.add_workload("poisson-medium",
                        workload::poisson_mix(20, 100.0, 2, 8, 7));

    const auto records = runner.run_all();

    std::cout << report::to_markdown(records);
    std::ofstream csv("campaign.csv");
    report::write_csv(csv, records);
    std::printf("\nwrote campaign.csv (%zu runs)\n", records.size());
    return 0;
}
