// Scheduler face-off on a custom chip: builds a 6x6 S-NUCA many-core with a
// user-tweaked cooling solution and races every scheduler in the library —
// static, TSP-DVFS, PCGov, PCMig, fixed rotation and HotPotato — on the same
// mixed workload. Demonstrates that the library is not hard-wired to the
// paper's two configurations.

#include <cstdio>
#include <memory>
#include <vector>

#include "arch/manycore.hpp"
#include "core/hotpotato.hpp"
#include "sched/pcgov.hpp"
#include "sched/pcmig.hpp"
#include "sched/static_schedulers.hpp"
#include "sim/simulator.hpp"
#include "thermal/matex.hpp"
#include "thermal/rc_network.hpp"
#include "workload/benchmark.hpp"

int main() {
    using namespace hp;

    // A 36-core part with a cheaper (weaker) cooling solution than Table I.
    arch::ManyCore chip(6, 6);
    thermal::RcNetworkConfig cooling;
    cooling.sink_to_ambient_resistance_per_core *= 1.3;  // smaller heat sink
    thermal::ThermalModel model(chip.plan(), cooling);
    thermal::MatExSolver solver(model);

    const auto workload_of = [](sim::Simulator& sim) {
        sim.add_task(workload::TaskSpec{
            &workload::profile_by_name("blackscholes"), 2, 0.0});
        sim.add_task(workload::TaskSpec{
            &workload::profile_by_name("bodytrack"), 4, 0.0});
        sim.add_task(workload::TaskSpec{
            &workload::profile_by_name("canneal"), 4, 0.005});
        sim.add_task(workload::TaskSpec{
            &workload::profile_by_name("swaptions"), 4, 0.010});
    };

    struct Entry {
        const char* label;
        std::unique_ptr<sim::Scheduler> scheduler;
    };
    std::vector<Entry> entries;
    entries.push_back({"static (no mgmt)",
                       std::make_unique<sched::StaticScheduler>()});
    entries.push_back({"TSP-DVFS", std::make_unique<sched::TspDvfsScheduler>()});
    entries.push_back({"PCGov", std::make_unique<sched::PcGovScheduler>()});
    entries.push_back({"PCMig", std::make_unique<sched::PcMigScheduler>()});
    entries.push_back({"HotPotato", std::make_unique<core::HotPotatoScheduler>()});

    std::printf("6x6 custom chip, 4-task mixed workload, T_DTM = 70 C\n\n");
    std::printf("  %-18s | %12s | %9s | %11s | %10s | %8s\n", "scheduler",
                "makespan", "peak [C]", "avg resp", "migrations", "DTM [ms]");
    std::printf("  -------------------+--------------+-----------+-------------+------------+---------\n");
    for (Entry& e : entries) {
        sim::SimConfig config;
        config.max_sim_time_s = 10.0;
        sim::Simulator sim(chip, model, solver, config);
        workload_of(sim);
        const sim::SimResult r = sim.run(*e.scheduler);
        std::printf("  %-18s | %9.1f ms | %9.1f | %8.1f ms | %10zu | %8.1f\n",
                    e.label, r.makespan_s * 1e3, r.peak_temperature_c,
                    r.average_response_time_s() * 1e3, r.migrations,
                    r.dtm_throttled_s * 1e3);
    }
    std::printf("\n(the static scheduler trips DTM; the managed ones should not)\n");
    return 0;
}
