// Scheduler face-off on a custom chip: builds a 6x6 S-NUCA many-core with a
// user-tweaked cooling solution and races every scheduler in the library —
// static, TSP-DVFS, PCGov, PCMig and HotPotato — on the same mixed workload.
// Demonstrates that the library is not hard-wired to the paper's two
// configurations, and that StudySetup::custom() makes a bespoke machine a
// one-liner campaign substrate.

#include <cstdio>
#include <memory>
#include <vector>

#include "arch/manycore.hpp"
#include "campaign/campaign.hpp"
#include "campaign/study_setup.hpp"
#include "core/hotpotato.hpp"
#include "sched/pcgov.hpp"
#include "sched/pcmig.hpp"
#include "sched/static_schedulers.hpp"
#include "thermal/rc_network.hpp"
#include "workload/benchmark.hpp"

int main() {
    using namespace hp;

    // A 36-core part with a cheaper (weaker) cooling solution than Table I.
    thermal::RcNetworkConfig cooling;
    cooling.sink_to_ambient_resistance_per_core *= 1.3;  // smaller heat sink
    const campaign::StudySetup setup =
        campaign::StudySetup::custom(arch::ManyCore(6, 6), cooling);

    sim::SimConfig config;
    config.max_sim_time_s = 10.0;
    campaign::CampaignSpec spec(setup, config);

    const char* kPolicies[] = {"static (no mgmt)", "TSP-DVFS", "PCGov",
                               "PCMig", "HotPotato"};
    spec.add_scheduler(kPolicies[0], [] {
        return std::make_unique<sched::StaticScheduler>();
    });
    spec.add_scheduler(kPolicies[1], [] {
        return std::make_unique<sched::TspDvfsScheduler>();
    });
    spec.add_scheduler(kPolicies[2], [] {
        return std::make_unique<sched::PcGovScheduler>();
    });
    spec.add_scheduler(kPolicies[3], [] {
        return std::make_unique<sched::PcMigScheduler>();
    });
    spec.add_scheduler(kPolicies[4], [] {
        return std::make_unique<core::HotPotatoScheduler>();
    });

    spec.add_workload(
        "mixed-4task",
        {workload::TaskSpec{&workload::profile_by_name("blackscholes"), 2, 0.0},
         workload::TaskSpec{&workload::profile_by_name("bodytrack"), 4, 0.0},
         workload::TaskSpec{&workload::profile_by_name("canneal"), 4, 0.005},
         workload::TaskSpec{&workload::profile_by_name("swaptions"), 4,
                            0.010}});

    const auto out = campaign::run_campaign(spec);

    std::printf("6x6 custom chip, 4-task mixed workload, T_DTM = 70 C\n\n");
    std::printf("  %-18s | %12s | %9s | %11s | %10s | %8s\n", "scheduler",
                "makespan", "peak [C]", "avg resp", "migrations", "DTM [ms]");
    std::printf("  -------------------+--------------+-----------+-------------+------------+---------\n");
    for (const char* label : kPolicies) {
        const auto* rec = campaign::find(out.records, "mixed-4task", label);
        if (rec == nullptr || rec->failed) {
            std::printf("  %-18s | FAILED\n", label);
            continue;
        }
        const sim::SimResult& r = rec->result;
        std::printf("  %-18s | %9.1f ms | %9.1f | %8.1f ms | %10zu | %8.1f\n",
                    label, r.makespan_s * 1e3, r.peak_temperature_c,
                    r.average_response_time_s() * 1e3, r.migrations,
                    r.dtm_throttled_s * 1e3);
    }
    std::printf("\n(the static scheduler trips DTM; the managed ones should not)\n");
    return 0;
}
