// Command-line driver for the interval thermal simulator — the tool a
// downstream user runs without writing C++. See `--help` for the full flag
// reference; all logic lives in src/cli so it is unit-tested.
//
//   hotpotato_sim --rows 8 --cols 8 --scheduler hotpotato
//                 --tasks 20 --rate 100 --trace run.csv

#include <cstdio>
#include <iostream>
#include <vector>

#include "cli/options.hpp"

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const hp::cli::CliOptions options = hp::cli::parse(args);
        if (options.help) {
            std::cout << hp::cli::usage();
            return 0;
        }
        return hp::cli::run(options, std::cout);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n\n%s", e.what(),
                     hp::cli::usage().c_str());
        return 2;
    }
}
