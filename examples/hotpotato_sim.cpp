// Command-line driver for the interval thermal simulator — the tool a
// downstream user runs without writing C++. See `--help` for the full flag
// reference; all logic lives in src/cli so it is unit-tested.
//
//   hotpotato_sim --rows 8 --cols 8 --scheduler hotpotato
//                 --tasks 20 --rate 100 --trace run.csv

#include <iostream>
#include <vector>

#include "cli/options.hpp"

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    // run_cli implements the documented exit-code contract (see --help):
    // 0 ok, 1 partial failure, 2 config error, 3 journal corruption.
    return hp::cli::run_cli(args, std::cout, std::cerr);
}
