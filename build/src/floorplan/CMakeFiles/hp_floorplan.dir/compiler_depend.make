# Empty compiler generated dependencies file for hp_floorplan.
# This may be replaced when dependencies are built.
