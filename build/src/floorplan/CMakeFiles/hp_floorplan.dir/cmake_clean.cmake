file(REMOVE_RECURSE
  "CMakeFiles/hp_floorplan.dir/floorplan.cpp.o"
  "CMakeFiles/hp_floorplan.dir/floorplan.cpp.o.d"
  "libhp_floorplan.a"
  "libhp_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
