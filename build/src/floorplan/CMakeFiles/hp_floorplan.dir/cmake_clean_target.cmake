file(REMOVE_RECURSE
  "libhp_floorplan.a"
)
