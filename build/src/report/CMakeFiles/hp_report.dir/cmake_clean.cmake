file(REMOVE_RECURSE
  "CMakeFiles/hp_report.dir/comparison.cpp.o"
  "CMakeFiles/hp_report.dir/comparison.cpp.o.d"
  "libhp_report.a"
  "libhp_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
