# Empty compiler generated dependencies file for hp_report.
# This may be replaced when dependencies are built.
