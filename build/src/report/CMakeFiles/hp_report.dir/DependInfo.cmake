
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/comparison.cpp" "src/report/CMakeFiles/hp_report.dir/comparison.cpp.o" "gcc" "src/report/CMakeFiles/hp_report.dir/comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/hp_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/hp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/hp_floorplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
