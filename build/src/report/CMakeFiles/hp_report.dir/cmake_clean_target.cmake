file(REMOVE_RECURSE
  "libhp_report.a"
)
