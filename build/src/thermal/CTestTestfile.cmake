# CMake generated Testfile for 
# Source directory: /root/repo/src/thermal
# Build directory: /root/repo/build/src/thermal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
