
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/matex.cpp" "src/thermal/CMakeFiles/hp_thermal.dir/matex.cpp.o" "gcc" "src/thermal/CMakeFiles/hp_thermal.dir/matex.cpp.o.d"
  "/root/repo/src/thermal/rc_network.cpp" "src/thermal/CMakeFiles/hp_thermal.dir/rc_network.cpp.o" "gcc" "src/thermal/CMakeFiles/hp_thermal.dir/rc_network.cpp.o.d"
  "/root/repo/src/thermal/reference_integrator.cpp" "src/thermal/CMakeFiles/hp_thermal.dir/reference_integrator.cpp.o" "gcc" "src/thermal/CMakeFiles/hp_thermal.dir/reference_integrator.cpp.o.d"
  "/root/repo/src/thermal/sensors.cpp" "src/thermal/CMakeFiles/hp_thermal.dir/sensors.cpp.o" "gcc" "src/thermal/CMakeFiles/hp_thermal.dir/sensors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/hp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/hp_floorplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
