file(REMOVE_RECURSE
  "CMakeFiles/hp_thermal.dir/matex.cpp.o"
  "CMakeFiles/hp_thermal.dir/matex.cpp.o.d"
  "CMakeFiles/hp_thermal.dir/rc_network.cpp.o"
  "CMakeFiles/hp_thermal.dir/rc_network.cpp.o.d"
  "CMakeFiles/hp_thermal.dir/reference_integrator.cpp.o"
  "CMakeFiles/hp_thermal.dir/reference_integrator.cpp.o.d"
  "CMakeFiles/hp_thermal.dir/sensors.cpp.o"
  "CMakeFiles/hp_thermal.dir/sensors.cpp.o.d"
  "libhp_thermal.a"
  "libhp_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
