# Empty dependencies file for hp_thermal.
# This may be replaced when dependencies are built.
