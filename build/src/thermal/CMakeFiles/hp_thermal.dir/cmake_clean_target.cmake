file(REMOVE_RECURSE
  "libhp_thermal.a"
)
