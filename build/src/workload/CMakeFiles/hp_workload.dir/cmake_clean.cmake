file(REMOVE_RECURSE
  "CMakeFiles/hp_workload.dir/benchmark.cpp.o"
  "CMakeFiles/hp_workload.dir/benchmark.cpp.o.d"
  "CMakeFiles/hp_workload.dir/generator.cpp.o"
  "CMakeFiles/hp_workload.dir/generator.cpp.o.d"
  "CMakeFiles/hp_workload.dir/workload_io.cpp.o"
  "CMakeFiles/hp_workload.dir/workload_io.cpp.o.d"
  "libhp_workload.a"
  "libhp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
