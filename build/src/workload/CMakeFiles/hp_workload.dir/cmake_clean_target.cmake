file(REMOVE_RECURSE
  "libhp_workload.a"
)
