# Empty compiler generated dependencies file for hp_workload.
# This may be replaced when dependencies are built.
