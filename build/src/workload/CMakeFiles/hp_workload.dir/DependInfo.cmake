
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark.cpp" "src/workload/CMakeFiles/hp_workload.dir/benchmark.cpp.o" "gcc" "src/workload/CMakeFiles/hp_workload.dir/benchmark.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/hp_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/hp_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/workload_io.cpp" "src/workload/CMakeFiles/hp_workload.dir/workload_io.cpp.o" "gcc" "src/workload/CMakeFiles/hp_workload.dir/workload_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/hp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/hp_floorplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
