file(REMOVE_RECURSE
  "CMakeFiles/hp_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/hp_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/hp_linalg.dir/expm.cpp.o"
  "CMakeFiles/hp_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/hp_linalg.dir/lu.cpp.o"
  "CMakeFiles/hp_linalg.dir/lu.cpp.o.d"
  "libhp_linalg.a"
  "libhp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
