file(REMOVE_RECURSE
  "libhp_linalg.a"
)
