file(REMOVE_RECURSE
  "CMakeFiles/hp_core.dir/hotpotato.cpp.o"
  "CMakeFiles/hp_core.dir/hotpotato.cpp.o.d"
  "CMakeFiles/hp_core.dir/hotpotato_dvfs.cpp.o"
  "CMakeFiles/hp_core.dir/hotpotato_dvfs.cpp.o.d"
  "CMakeFiles/hp_core.dir/peak_temperature.cpp.o"
  "CMakeFiles/hp_core.dir/peak_temperature.cpp.o.d"
  "CMakeFiles/hp_core.dir/rotation_planner.cpp.o"
  "CMakeFiles/hp_core.dir/rotation_planner.cpp.o.d"
  "libhp_core.a"
  "libhp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
