# Empty compiler generated dependencies file for hp_core.
# This may be replaced when dependencies are built.
