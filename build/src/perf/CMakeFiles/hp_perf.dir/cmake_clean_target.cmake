file(REMOVE_RECURSE
  "libhp_perf.a"
)
