# Empty dependencies file for hp_perf.
# This may be replaced when dependencies are built.
