file(REMOVE_RECURSE
  "CMakeFiles/hp_perf.dir/interval_model.cpp.o"
  "CMakeFiles/hp_perf.dir/interval_model.cpp.o.d"
  "libhp_perf.a"
  "libhp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
