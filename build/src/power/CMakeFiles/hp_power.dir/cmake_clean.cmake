file(REMOVE_RECURSE
  "CMakeFiles/hp_power.dir/power_model.cpp.o"
  "CMakeFiles/hp_power.dir/power_model.cpp.o.d"
  "libhp_power.a"
  "libhp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
