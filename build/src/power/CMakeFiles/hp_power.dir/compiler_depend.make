# Empty compiler generated dependencies file for hp_power.
# This may be replaced when dependencies are built.
