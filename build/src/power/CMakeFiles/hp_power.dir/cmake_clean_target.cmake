file(REMOVE_RECURSE
  "libhp_power.a"
)
