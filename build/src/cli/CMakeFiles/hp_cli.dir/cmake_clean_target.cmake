file(REMOVE_RECURSE
  "libhp_cli.a"
)
