file(REMOVE_RECURSE
  "CMakeFiles/hp_cli.dir/options.cpp.o"
  "CMakeFiles/hp_cli.dir/options.cpp.o.d"
  "libhp_cli.a"
  "libhp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
