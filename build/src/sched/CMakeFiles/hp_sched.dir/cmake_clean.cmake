file(REMOVE_RECURSE
  "CMakeFiles/hp_sched.dir/global_rotation.cpp.o"
  "CMakeFiles/hp_sched.dir/global_rotation.cpp.o.d"
  "CMakeFiles/hp_sched.dir/pcgov.cpp.o"
  "CMakeFiles/hp_sched.dir/pcgov.cpp.o.d"
  "CMakeFiles/hp_sched.dir/pcmig.cpp.o"
  "CMakeFiles/hp_sched.dir/pcmig.cpp.o.d"
  "CMakeFiles/hp_sched.dir/placement.cpp.o"
  "CMakeFiles/hp_sched.dir/placement.cpp.o.d"
  "CMakeFiles/hp_sched.dir/reactive.cpp.o"
  "CMakeFiles/hp_sched.dir/reactive.cpp.o.d"
  "CMakeFiles/hp_sched.dir/static_schedulers.cpp.o"
  "CMakeFiles/hp_sched.dir/static_schedulers.cpp.o.d"
  "CMakeFiles/hp_sched.dir/tsp.cpp.o"
  "CMakeFiles/hp_sched.dir/tsp.cpp.o.d"
  "libhp_sched.a"
  "libhp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
