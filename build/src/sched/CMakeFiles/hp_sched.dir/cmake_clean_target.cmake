file(REMOVE_RECURSE
  "libhp_sched.a"
)
