# Empty dependencies file for hp_sched.
# This may be replaced when dependencies are built.
