file(REMOVE_RECURSE
  "libhp_mem.a"
)
