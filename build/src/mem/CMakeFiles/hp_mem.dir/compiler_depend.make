# Empty compiler generated dependencies file for hp_mem.
# This may be replaced when dependencies are built.
