file(REMOVE_RECURSE
  "CMakeFiles/hp_mem.dir/memory_system.cpp.o"
  "CMakeFiles/hp_mem.dir/memory_system.cpp.o.d"
  "libhp_mem.a"
  "libhp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
