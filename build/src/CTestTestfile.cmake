# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("linalg")
subdirs("floorplan")
subdirs("noc")
subdirs("mem")
subdirs("thermal")
subdirs("arch")
subdirs("power")
subdirs("perf")
subdirs("workload")
subdirs("sim")
subdirs("sched")
subdirs("core")
subdirs("cli")
subdirs("report")
