file(REMOVE_RECURSE
  "libhp_sim.a"
)
