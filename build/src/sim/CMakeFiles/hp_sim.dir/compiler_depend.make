# Empty compiler generated dependencies file for hp_sim.
# This may be replaced when dependencies are built.
