file(REMOVE_RECURSE
  "CMakeFiles/hp_sim.dir/simulator.cpp.o"
  "CMakeFiles/hp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hp_sim.dir/trace_io.cpp.o"
  "CMakeFiles/hp_sim.dir/trace_io.cpp.o.d"
  "libhp_sim.a"
  "libhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
