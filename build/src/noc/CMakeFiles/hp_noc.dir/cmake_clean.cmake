file(REMOVE_RECURSE
  "CMakeFiles/hp_noc.dir/mesh.cpp.o"
  "CMakeFiles/hp_noc.dir/mesh.cpp.o.d"
  "CMakeFiles/hp_noc.dir/traffic.cpp.o"
  "CMakeFiles/hp_noc.dir/traffic.cpp.o.d"
  "libhp_noc.a"
  "libhp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
