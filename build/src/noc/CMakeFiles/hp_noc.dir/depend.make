# Empty dependencies file for hp_noc.
# This may be replaced when dependencies are built.
