file(REMOVE_RECURSE
  "libhp_noc.a"
)
