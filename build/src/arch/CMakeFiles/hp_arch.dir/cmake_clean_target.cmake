file(REMOVE_RECURSE
  "libhp_arch.a"
)
