# Empty compiler generated dependencies file for hp_arch.
# This may be replaced when dependencies are built.
