file(REMOVE_RECURSE
  "CMakeFiles/hp_arch.dir/dvfs.cpp.o"
  "CMakeFiles/hp_arch.dir/dvfs.cpp.o.d"
  "CMakeFiles/hp_arch.dir/manycore.cpp.o"
  "CMakeFiles/hp_arch.dir/manycore.cpp.o.d"
  "libhp_arch.a"
  "libhp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
