file(REMOVE_RECURSE
  "CMakeFiles/hotpotato_sim.dir/hotpotato_sim.cpp.o"
  "CMakeFiles/hotpotato_sim.dir/hotpotato_sim.cpp.o.d"
  "hotpotato_sim"
  "hotpotato_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpotato_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
