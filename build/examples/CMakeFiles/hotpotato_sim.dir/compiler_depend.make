# Empty compiler generated dependencies file for hotpotato_sim.
# This may be replaced when dependencies are built.
