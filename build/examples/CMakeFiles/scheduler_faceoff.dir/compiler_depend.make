# Empty compiler generated dependencies file for scheduler_faceoff.
# This may be replaced when dependencies are built.
