# Empty compiler generated dependencies file for campaign.
# This may be replaced when dependencies are built.
