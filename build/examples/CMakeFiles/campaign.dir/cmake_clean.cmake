file(REMOVE_RECURSE
  "CMakeFiles/campaign.dir/campaign.cpp.o"
  "CMakeFiles/campaign.dir/campaign.cpp.o.d"
  "campaign"
  "campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
