# Empty compiler generated dependencies file for thermal_heatmap.
# This may be replaced when dependencies are built.
