file(REMOVE_RECURSE
  "CMakeFiles/thermal_heatmap.dir/thermal_heatmap.cpp.o"
  "CMakeFiles/thermal_heatmap.dir/thermal_heatmap.cpp.o.d"
  "thermal_heatmap"
  "thermal_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
