# Empty compiler generated dependencies file for peak_temperature_analysis.
# This may be replaced when dependencies are built.
