file(REMOVE_RECURSE
  "CMakeFiles/peak_temperature_analysis.dir/peak_temperature_analysis.cpp.o"
  "CMakeFiles/peak_temperature_analysis.dir/peak_temperature_analysis.cpp.o.d"
  "peak_temperature_analysis"
  "peak_temperature_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_temperature_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
