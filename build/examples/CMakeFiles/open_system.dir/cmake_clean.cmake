file(REMOVE_RECURSE
  "CMakeFiles/open_system.dir/open_system.cpp.o"
  "CMakeFiles/open_system.dir/open_system.cpp.o.d"
  "open_system"
  "open_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
