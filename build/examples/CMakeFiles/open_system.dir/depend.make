# Empty dependencies file for open_system.
# This may be replaced when dependencies are built.
