# Empty compiler generated dependencies file for bench_fig4b_heterogeneous.
# This may be replaced when dependencies are built.
