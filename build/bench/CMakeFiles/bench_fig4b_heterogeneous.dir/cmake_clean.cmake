file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_heterogeneous.dir/bench_fig4b_heterogeneous.cpp.o"
  "CMakeFiles/bench_fig4b_heterogeneous.dir/bench_fig4b_heterogeneous.cpp.o.d"
  "bench_fig4b_heterogeneous"
  "bench_fig4b_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
