file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fidelity.dir/bench_ablation_fidelity.cpp.o"
  "CMakeFiles/bench_ablation_fidelity.dir/bench_ablation_fidelity.cpp.o.d"
  "bench_ablation_fidelity"
  "bench_ablation_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
