# Empty dependencies file for bench_ablation_fidelity.
# This may be replaced when dependencies are built.
