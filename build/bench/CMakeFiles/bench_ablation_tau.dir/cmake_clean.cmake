file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tau.dir/bench_ablation_tau.cpp.o"
  "CMakeFiles/bench_ablation_tau.dir/bench_ablation_tau.cpp.o.d"
  "bench_ablation_tau"
  "bench_ablation_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
