# Empty compiler generated dependencies file for bench_ablation_tau.
# This may be replaced when dependencies are built.
