file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_traces.dir/bench_fig2_traces.cpp.o"
  "CMakeFiles/bench_fig2_traces.dir/bench_fig2_traces.cpp.o.d"
  "bench_fig2_traces"
  "bench_fig2_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
