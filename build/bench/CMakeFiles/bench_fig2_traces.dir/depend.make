# Empty dependencies file for bench_fig2_traces.
# This may be replaced when dependencies are built.
