file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_3d.dir/bench_ablation_3d.cpp.o"
  "CMakeFiles/bench_ablation_3d.dir/bench_ablation_3d.cpp.o.d"
  "bench_ablation_3d"
  "bench_ablation_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
