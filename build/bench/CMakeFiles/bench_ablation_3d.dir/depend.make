# Empty dependencies file for bench_ablation_3d.
# This may be replaced when dependencies are built.
