file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_homogeneous.dir/bench_fig4a_homogeneous.cpp.o"
  "CMakeFiles/bench_fig4a_homogeneous.dir/bench_fig4a_homogeneous.cpp.o.d"
  "bench_fig4a_homogeneous"
  "bench_fig4a_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
