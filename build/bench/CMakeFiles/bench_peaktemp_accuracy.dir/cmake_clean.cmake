file(REMOVE_RECURSE
  "CMakeFiles/bench_peaktemp_accuracy.dir/bench_peaktemp_accuracy.cpp.o"
  "CMakeFiles/bench_peaktemp_accuracy.dir/bench_peaktemp_accuracy.cpp.o.d"
  "bench_peaktemp_accuracy"
  "bench_peaktemp_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peaktemp_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
