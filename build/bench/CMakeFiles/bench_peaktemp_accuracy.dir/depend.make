# Empty dependencies file for bench_peaktemp_accuracy.
# This may be replaced when dependencies are built.
