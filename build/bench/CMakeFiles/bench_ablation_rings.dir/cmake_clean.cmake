file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rings.dir/bench_ablation_rings.cpp.o"
  "CMakeFiles/bench_ablation_rings.dir/bench_ablation_rings.cpp.o.d"
  "bench_ablation_rings"
  "bench_ablation_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
