# Empty dependencies file for bench_ablation_rings.
# This may be replaced when dependencies are built.
