# Empty compiler generated dependencies file for bench_ablation_optimality.
# This may be replaced when dependencies are built.
