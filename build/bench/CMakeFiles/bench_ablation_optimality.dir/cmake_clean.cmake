file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optimality.dir/bench_ablation_optimality.cpp.o"
  "CMakeFiles/bench_ablation_optimality.dir/bench_ablation_optimality.cpp.o.d"
  "bench_ablation_optimality"
  "bench_ablation_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
