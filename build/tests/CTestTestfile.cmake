# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/floorplan_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/power_perf_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/peak_temperature_test[1]_include.cmake")
include("/root/repo/build/tests/tsp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hotpotato_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/hotpotato_dvfs_test[1]_include.cmake")
include("/root/repo/build/tests/stacked_test[1]_include.cmake")
include("/root/repo/build/tests/workload_io_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/memory_system_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/rotation_planner_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sensors_test[1]_include.cmake")
include("/root/repo/build/tests/power_gating_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/matex_peak_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
