file(REMOVE_RECURSE
  "CMakeFiles/hotpotato_test.dir/hotpotato_test.cpp.o"
  "CMakeFiles/hotpotato_test.dir/hotpotato_test.cpp.o.d"
  "hotpotato_test"
  "hotpotato_test.pdb"
  "hotpotato_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpotato_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
