# Empty compiler generated dependencies file for hotpotato_test.
# This may be replaced when dependencies are built.
