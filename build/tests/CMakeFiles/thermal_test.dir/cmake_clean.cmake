file(REMOVE_RECURSE
  "CMakeFiles/thermal_test.dir/thermal_test.cpp.o"
  "CMakeFiles/thermal_test.dir/thermal_test.cpp.o.d"
  "thermal_test"
  "thermal_test.pdb"
  "thermal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
