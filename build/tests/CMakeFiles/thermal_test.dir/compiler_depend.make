# Empty compiler generated dependencies file for thermal_test.
# This may be replaced when dependencies are built.
