file(REMOVE_RECURSE
  "CMakeFiles/workload_io_test.dir/workload_io_test.cpp.o"
  "CMakeFiles/workload_io_test.dir/workload_io_test.cpp.o.d"
  "workload_io_test"
  "workload_io_test.pdb"
  "workload_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
