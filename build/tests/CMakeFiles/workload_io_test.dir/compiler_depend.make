# Empty compiler generated dependencies file for workload_io_test.
# This may be replaced when dependencies are built.
