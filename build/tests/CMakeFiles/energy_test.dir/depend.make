# Empty dependencies file for energy_test.
# This may be replaced when dependencies are built.
