file(REMOVE_RECURSE
  "CMakeFiles/power_gating_test.dir/power_gating_test.cpp.o"
  "CMakeFiles/power_gating_test.dir/power_gating_test.cpp.o.d"
  "power_gating_test"
  "power_gating_test.pdb"
  "power_gating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_gating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
