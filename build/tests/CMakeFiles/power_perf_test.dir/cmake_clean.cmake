file(REMOVE_RECURSE
  "CMakeFiles/power_perf_test.dir/power_perf_test.cpp.o"
  "CMakeFiles/power_perf_test.dir/power_perf_test.cpp.o.d"
  "power_perf_test"
  "power_perf_test.pdb"
  "power_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
