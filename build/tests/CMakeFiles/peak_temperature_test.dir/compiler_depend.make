# Empty compiler generated dependencies file for peak_temperature_test.
# This may be replaced when dependencies are built.
