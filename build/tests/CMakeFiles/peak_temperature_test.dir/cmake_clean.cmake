file(REMOVE_RECURSE
  "CMakeFiles/peak_temperature_test.dir/peak_temperature_test.cpp.o"
  "CMakeFiles/peak_temperature_test.dir/peak_temperature_test.cpp.o.d"
  "peak_temperature_test"
  "peak_temperature_test.pdb"
  "peak_temperature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_temperature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
