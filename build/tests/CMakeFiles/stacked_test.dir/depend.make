# Empty dependencies file for stacked_test.
# This may be replaced when dependencies are built.
