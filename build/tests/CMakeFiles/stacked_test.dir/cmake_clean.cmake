file(REMOVE_RECURSE
  "CMakeFiles/stacked_test.dir/stacked_test.cpp.o"
  "CMakeFiles/stacked_test.dir/stacked_test.cpp.o.d"
  "stacked_test"
  "stacked_test.pdb"
  "stacked_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
