file(REMOVE_RECURSE
  "CMakeFiles/arch_test.dir/arch_test.cpp.o"
  "CMakeFiles/arch_test.dir/arch_test.cpp.o.d"
  "arch_test"
  "arch_test.pdb"
  "arch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
