file(REMOVE_RECURSE
  "CMakeFiles/hotpotato_dvfs_test.dir/hotpotato_dvfs_test.cpp.o"
  "CMakeFiles/hotpotato_dvfs_test.dir/hotpotato_dvfs_test.cpp.o.d"
  "hotpotato_dvfs_test"
  "hotpotato_dvfs_test.pdb"
  "hotpotato_dvfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpotato_dvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
