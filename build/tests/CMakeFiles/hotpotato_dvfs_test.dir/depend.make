# Empty dependencies file for hotpotato_dvfs_test.
# This may be replaced when dependencies are built.
