file(REMOVE_RECURSE
  "CMakeFiles/sensors_test.dir/sensors_test.cpp.o"
  "CMakeFiles/sensors_test.dir/sensors_test.cpp.o.d"
  "sensors_test"
  "sensors_test.pdb"
  "sensors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
