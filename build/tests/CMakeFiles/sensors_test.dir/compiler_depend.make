# Empty compiler generated dependencies file for sensors_test.
# This may be replaced when dependencies are built.
