file(REMOVE_RECURSE
  "CMakeFiles/rotation_planner_test.dir/rotation_planner_test.cpp.o"
  "CMakeFiles/rotation_planner_test.dir/rotation_planner_test.cpp.o.d"
  "rotation_planner_test"
  "rotation_planner_test.pdb"
  "rotation_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotation_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
