# Empty compiler generated dependencies file for rotation_planner_test.
# This may be replaced when dependencies are built.
