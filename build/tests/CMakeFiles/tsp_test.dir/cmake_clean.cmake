file(REMOVE_RECURSE
  "CMakeFiles/tsp_test.dir/tsp_test.cpp.o"
  "CMakeFiles/tsp_test.dir/tsp_test.cpp.o.d"
  "tsp_test"
  "tsp_test.pdb"
  "tsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
