# Empty dependencies file for tsp_test.
# This may be replaced when dependencies are built.
