file(REMOVE_RECURSE
  "CMakeFiles/memory_system_test.dir/memory_system_test.cpp.o"
  "CMakeFiles/memory_system_test.dir/memory_system_test.cpp.o.d"
  "memory_system_test"
  "memory_system_test.pdb"
  "memory_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
