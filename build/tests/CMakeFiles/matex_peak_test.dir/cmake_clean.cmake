file(REMOVE_RECURSE
  "CMakeFiles/matex_peak_test.dir/matex_peak_test.cpp.o"
  "CMakeFiles/matex_peak_test.dir/matex_peak_test.cpp.o.d"
  "matex_peak_test"
  "matex_peak_test.pdb"
  "matex_peak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matex_peak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
