# Empty dependencies file for matex_peak_test.
# This may be replaced when dependencies are built.
