#!/usr/bin/env python3
"""Bench-regression gate: compare fresh bench JSONs to the committed baseline.

Usage:
    check_bench.py CANDIDATE [CANDIDATE ...]
                   [--baseline BENCH_hotpath_smoke.json [BENCH_server_smoke.json ...]]
                   [--tolerance 0.25] [--server-tolerance 1.0]
                   [--floor-ns 2000] [--alloc-slack 0.5]

Candidates and baselines may each be several files (bench_hotpath and
bench_server emit the same JSON schema); their case lists are merged before
comparison, so one invocation gates the whole bench surface. Every file must
have been measured in the same bench mode (the "mode" field), because smoke
runs amortize warmup over far fewer steps than full runs — the
whole-simulator cases systematically measure several times slower per step
in smoke mode, so a cross-mode comparison gates nothing but the mode
difference. The repo commits two baselines per benchmark:
BENCH_hotpath.json / BENCH_server.json (full mode, the perf-trajectory
artefacts) and BENCH_hotpath_smoke.json / BENCH_server_smoke.json (smoke
mode, what CI's bench job and the ctest smoke runs actually execute).
Regenerate them whenever the hot path or the server intentionally changes:

    build/bench/bench_hotpath --out BENCH_hotpath.json
    build/bench/bench_hotpath --smoke --out BENCH_hotpath_smoke.json
    build/bench/bench_server   --out BENCH_server.json
    build/bench/bench_server   --smoke --out BENCH_server_smoke.json

A candidate case regresses when BOTH hold:

  * ns_per_op exceeds baseline * (1 + tolerance), and
  * the absolute increase exceeds --floor-ns (shields sub-microsecond cases
    from timer noise on loaded CI runners).

Cases whose name starts with "server_" use --server-tolerance (default 1.0 =
+100%) instead of --tolerance: they measure sustained qps and tail latency
of a multi-threaded daemon through real sockets, which swings with runner
load far more than the single-threaded hot-path cases. Cross-machine runs
are additionally flagged by the provenance warnings (warn-only, as for every
case).

allocs_per_op is gated much tighter: the zero-allocation contract is exact,
so any increase beyond --alloc-slack (default 0.5, absorbing warmup-fraction
jitter in smoke mode's short runs) fails. Cases present only in one file are
reported but never fail the gate (smoke and full mode measure the same case
names today; this keeps the gate usable if a mode ever drops one).

Exit code 0 = no regression, 1 = regression, 2 = bad invocation/input.
"""

import argparse
import json
import sys

# Cases a candidate run must contain (see --require). The 256-core entries
# gate the modal backend's scaling claim; the campaign entries gate the
# execution layer's throughput claim (pinned workers + arena workspaces);
# the server entries gate the advice daemon's sustained-load claim.
REQUIRED_CASES = ("solver_setup_256", "sim_step_256core", "rotation_peak_256",
                  "campaign_run_64core", "campaign_run_256core",
                  "server_qps_8clients", "server_p99_us",
                  "server_qps_256core", "server_p99_256core_us")

# Additionally required in full mode only: the 1024-core scale-up entries.
# bench_hotpath skips them in smoke mode (the one-time 2049-node
# eigendecomposition is too heavy for the tier-1 ctest invocation), so they
# gate the full-mode perf-trajectory artefact but not the smoke baseline.
REQUIRED_CASES_FULL = ("sim_step_1024core", "rotation_peak_1024")


def load_cases(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        print(f"check_bench: {path} has no cases", file=sys.stderr)
        sys.exit(2)
    out = {}
    for c in cases:
        try:
            out[c["name"]] = (float(c["ns_per_op"]), float(c["allocs_per_op"]))
        except (KeyError, TypeError, ValueError) as e:
            print(f"check_bench: malformed case in {path}: {c!r} ({e})",
                  file=sys.stderr)
            sys.exit(2)
    provenance = doc.get("provenance")
    if not isinstance(provenance, dict):
        provenance = {}
    return doc.get("mode", "unknown"), provenance, out


def load_merged(paths, role):
    """Loads several bench JSONs and merges their case dicts. All files must
    agree on the bench mode; a case name appearing twice is an invocation
    error (the same file passed twice, or two runs of one benchmark)."""
    mode = None
    provenance = {}
    merged = {}
    for path in paths:
        file_mode, file_prov, cases = load_cases(path)
        if mode is None:
            mode = file_mode
            provenance = file_prov
        elif file_mode != mode:
            print(f"check_bench: {role} files mix modes — {paths[0]} is "
                  f"'{mode}' but {path} is '{file_mode}'", file=sys.stderr)
            sys.exit(2)
        duplicates = set(merged) & set(cases)
        if duplicates:
            print(f"check_bench: case(s) {sorted(duplicates)} appear in more "
                  f"than one {role} file (at {path})", file=sys.stderr)
            sys.exit(2)
        merged.update(cases)
    return mode, provenance, merged


def warn_provenance(base_prov, cand_prov):
    """Warns (never fails) when the timing comparison crosses machines,
    SIMD dispatch tiers or build types — ns_per_op is only meaningful
    against a baseline measured in the same environment."""
    if not base_prov or not cand_prov:
        which = [name for name, p in (("baseline", base_prov),
                                      ("candidate", cand_prov)) if not p]
        print(f"check_bench: WARNING — no provenance in {' and '.join(which)} "
              "(old bench_hotpath build?); cannot verify the runs are "
              "comparable", file=sys.stderr)
        return
    for field in ("cpu", "dispatch", "build_type", "compiler"):
        base = base_prov.get(field, "unknown")
        cand = cand_prov.get(field, "unknown")
        if base != cand:
            print(f"check_bench: WARNING — {field} differs: baseline "
                  f"'{base}' vs candidate '{cand}'; timings are not "
                  "comparable across "
                  f"{'machines' if field == 'cpu' else field + 's'} and the "
                  "time gate may misfire either way", file=sys.stderr)
    # Host topology / pinning provenance (warn-only, like dispatch): the
    # campaign_run_* throughput cases saturate one worker per hardware
    # thread, so a different node count, CPUs-per-node or pin policy shifts
    # those timings without any code regression.
    for field in ("numa_nodes", "cpus_per_node", "pin_policy"):
        base = base_prov.get(field, "unknown")
        cand = cand_prov.get(field, "unknown")
        if base != cand:
            print(f"check_bench: WARNING — topology field {field} differs: "
                  f"baseline '{base}' vs candidate '{cand}'; the "
                  "campaign-throughput cases scale with worker placement and "
                  "their time gate may misfire either way", file=sys.stderr)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("candidates", nargs="+", metavar="CANDIDATE",
                    help="fresh bench JSON(s) to check; case lists are merged")
    ap.add_argument("--baseline", nargs="+",
                    default=["BENCH_hotpath_smoke.json"],
                    help="committed baseline JSON(s); case lists are merged")
    ap.add_argument("--allow-mode-mismatch", action="store_true",
                    help="compare across bench modes anyway (see docstring)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative ns_per_op headroom (default 0.25 = +25%%)")
    ap.add_argument("--server-tolerance", type=float, default=1.0,
                    help="relative headroom for server_* cases (default 1.0 "
                         "= +100%%; daemon qps/latency swing with runner "
                         "load)")
    ap.add_argument("--floor-ns", type=float, default=2000.0,
                    help="absolute ns_per_op slack floor (default 2000)")
    ap.add_argument("--alloc-slack", type=float, default=0.5,
                    help="allowed allocs_per_op increase (default 0.5)")
    ap.add_argument("--require", action="append", default=None,
                    metavar="CASE",
                    help="case name that must be present in the candidate "
                         "(repeatable; default: the 256-core scale-up and "
                         "server-load entries). Pass --require '' to require "
                         "nothing.")
    args = ap.parse_args()

    base_mode, base_prov, baseline = load_merged(args.baseline, "baseline")
    cand_mode, cand_prov, candidate = load_merged(args.candidates,
                                                  "candidate")
    warn_provenance(base_prov, cand_prov)
    if base_mode != cand_mode and not args.allow_mode_mismatch:
        print(f"check_bench: mode mismatch — baseline is '{base_mode}' but "
              f"candidate is '{cand_mode}'; smoke and full runs are not "
              "comparable (pass --allow-mode-mismatch to override)",
              file=sys.stderr)
        sys.exit(2)

    # The 256-core scale-up and server-load entries are load-bearing (they
    # gate the modal backend's scaling claim and the advice daemon's
    # throughput claim): their absence from a fresh run is a failure, not a
    # skip.
    required = (args.require if args.require is not None
                else list(REQUIRED_CASES)
                + (list(REQUIRED_CASES_FULL) if cand_mode == "full" else []))
    missing_required = [n for n in required if n and n not in candidate]
    if missing_required:
        print("check_bench: required case(s) missing from candidate: "
              + ", ".join(missing_required), file=sys.stderr)
        return 1

    failures = []
    print(f"{'case':<34} {'base ns':>12} {'now ns':>12} "
          f"{'ratio':>7} {'base a/op':>10} {'now a/op':>9}")
    for name in sorted(set(baseline) | set(candidate)):
        if name not in candidate:
            print(f"{name:<34} (missing from candidate — skipped)")
            continue
        if name not in baseline:
            print(f"{name:<34} (new case, no baseline — skipped)")
            continue
        base_ns, base_allocs = baseline[name]
        now_ns, now_allocs = candidate[name]
        tolerance = (args.server_tolerance if name.startswith("server_")
                     else args.tolerance)
        ratio = now_ns / base_ns if base_ns > 0 else float("inf")
        verdicts = []
        if (now_ns > base_ns * (1.0 + tolerance)
                and now_ns - base_ns > args.floor_ns):
            verdicts.append(f"time regressed {ratio:.2f}x")
        if now_allocs > base_allocs + args.alloc_slack:
            verdicts.append(
                f"allocs regressed {base_allocs:.3f} -> {now_allocs:.3f}")
        flag = "  FAIL: " + "; ".join(verdicts) if verdicts else ""
        print(f"{name:<34} {base_ns:>12.1f} {now_ns:>12.1f} "
              f"{ratio:>6.2f}x {base_allocs:>10.3f} {now_allocs:>9.3f}{flag}")
        if verdicts:
            failures.append((name, verdicts))

    if failures:
        print(f"\ncheck_bench: {len(failures)} regressed case(s):",
              file=sys.stderr)
        for name, verdicts in failures:
            print(f"  {name}: {'; '.join(verdicts)}", file=sys.stderr)
        return 1
    print("\ncheck_bench: OK — no regressions "
          f"(tolerance +{args.tolerance:.0%}, server +"
          f"{args.server_tolerance:.0%}, floor {args.floor_ns:.0f} ns, "
          f"alloc slack {args.alloc_slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
