#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: build-test matrix (gcc + clang ×
# Debug + Release with -Werror), ASan/UBSan and TSan legs, the server-soak
# leg (concurrent-cache stress + loopback advice-server suite under both
# sanitizers), the SIMD-dispatch,
# forced-modal-solver and execution-placement (pinned + no-NUMA fallback)
# suite reruns, the clang-format check and the
# bench-regression gate — each leg skipped (not failed) when
# this machine lacks the tool it needs, so the script is useful on minimal
# containers and full workstations alike.
#
# Usage: scripts/ci_local.sh [--quick]
#   --quick   first available compiler only, Release only (pre-push check)
#
# Exit code 0 = every leg that ran passed; any failure aborts immediately.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)
BUILD_ROOT="$ROOT/build-ci"
JOBS=$(nproc 2>/dev/null || echo 2)
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

note() { printf '\n==== %s ====\n' "$*"; }
skip() { printf -- '---- skipped: %s\n' "$*"; }

GENERATOR_ARGS=()
command -v ninja >/dev/null 2>&1 && GENERATOR_ARGS=(-G Ninja)

LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                 -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# configure_build_test <dir> <extra cmake args...>
configure_build_test() {
  local dir="$1"; shift
  mkdir -p "$dir"
  cmake -S "$ROOT" -B "$dir" "${GENERATOR_ARGS[@]}" "${LAUNCHER_ARGS[@]}" \
        "$@" >"$dir.configure.log" 2>&1 ||
    { cat "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

# ---- build-test matrix -----------------------------------------------------
COMPILERS=()
command -v g++ >/dev/null 2>&1 && COMPILERS+=("gcc:g++")
command -v clang++ >/dev/null 2>&1 && COMPILERS+=("clang:clang++")
[[ ${#COMPILERS[@]} -eq 0 ]] && { echo "no C++ compiler found" >&2; exit 1; }

BUILD_TYPES=(Debug Release)
if [[ $QUICK -eq 1 ]]; then
  COMPILERS=("${COMPILERS[0]}")
  BUILD_TYPES=(Release)
fi

for entry in "${COMPILERS[@]}"; do
  name="${entry%%:*}" cxx="${entry##*:}"
  for build_type in "${BUILD_TYPES[@]}"; do
    note "build-test: $name $build_type (-Werror)"
    configure_build_test "$BUILD_ROOT/$name-$build_type" \
      -DCMAKE_CXX_COMPILER="$cxx" \
      -DCMAKE_BUILD_TYPE="$build_type" \
      -DHOTPOTATO_WERROR=ON
  done
done

# ---- sanitizer legs --------------------------------------------------------
has_sanitizer() {  # has_sanitizer <comma-list>
  echo 'int main() { return 0; }' >"$BUILD_ROOT/san_probe.cpp"
  c++ "-fsanitize=$1" -o "$BUILD_ROOT/san_probe" "$BUILD_ROOT/san_probe.cpp" \
    >/dev/null 2>&1
}
mkdir -p "$BUILD_ROOT"

if [[ $QUICK -eq 0 ]] && has_sanitizer address,undefined; then
  note "asan-ubsan"
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=halt_on_error=1 \
  configure_build_test "$BUILD_ROOT/asan" \
    -DCMAKE_BUILD_TYPE=Debug -DHOTPOTATO_SANITIZE=address,undefined
elif [[ $QUICK -eq 0 ]]; then
  skip "asan-ubsan (toolchain lacks -fsanitize=address,undefined)"
fi

if [[ $QUICK -eq 0 ]] && has_sanitizer thread; then
  note "tsan"
  TSAN_OPTIONS=halt_on_error=1 \
  configure_build_test "$BUILD_ROOT/tsan" \
    -DCMAKE_BUILD_TYPE=Debug -DHOTPOTATO_SANITIZE=thread
elif [[ $QUICK -eq 0 ]]; then
  skip "tsan (toolchain lacks -fsanitize=thread)"
fi

# ---- server soak -----------------------------------------------------------
# Mirrors the `server-soak` CI job: the 32-thread concurrent-cache stress
# (ConcurrentCache*) and the loopback advice-server suite (Server*), whose
# concurrent-clients test byte-compares every answer against the
# single-threaded batch path, repeated under each sanitizer build from the
# legs above. Reuses those build trees — only the repetition and the filter
# are soak-specific.
SOAK_RE='ConcurrentCache|Server'
if [[ $QUICK -eq 0 && -d "$BUILD_ROOT/tsan" ]]; then
  note "server-soak: cache stress + loopback suite under TSan (x3)"
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$BUILD_ROOT/tsan" --output-on-failure -j "$JOBS" \
      --repeat until-fail:3 -R "$SOAK_RE"
elif [[ $QUICK -eq 0 ]]; then
  skip "server-soak TSan leg (no tsan build dir)"
fi
if [[ $QUICK -eq 0 && -d "$BUILD_ROOT/asan" ]]; then
  note "server-soak: cache stress + loopback suite under ASan/UBSan (x3)"
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$BUILD_ROOT/asan" --output-on-failure -j "$JOBS" \
      --repeat until-fail:3 -R "$SOAK_RE"
elif [[ $QUICK -eq 0 ]]; then
  skip "server-soak ASan leg (no asan build dir)"
fi

# ---- SIMD dispatch tiers ---------------------------------------------------
# Mirrors the `dispatch` CI job: the full suite must pass with the dispatch
# forced to each tier. Reuses the first Release build; no reconfigure needed
# because the tier is chosen at runtime from HOTPOTATO_DISPATCH.
DISPATCH_DIR="$BUILD_ROOT/${COMPILERS[0]%%:*}-Release"
if [[ -d "$DISPATCH_DIR" ]]; then
  for tier in avx2 scalar; do
    note "dispatch: full suite under HOTPOTATO_DISPATCH=$tier"
    HOTPOTATO_DISPATCH="$tier" \
      ctest --test-dir "$DISPATCH_DIR" --output-on-failure -j "$JOBS"
  done
else
  skip "dispatch (no Release build dir)"
fi

# ---- forced modal solver ---------------------------------------------------
# Mirrors the `modal-solver` CI job: HOTPOTATO_SOLVER overrides auto backend
# selection, so every unpinned StudySetup/make_solver call in the suite runs
# on the truncated-modal thermal solver. Reuses the first Release build; the
# backend is chosen at runtime from the environment.
MODAL_DIR="$BUILD_ROOT/${COMPILERS[0]%%:*}-Release"
if [[ -d "$MODAL_DIR" ]]; then
  note "modal solver: full suite under HOTPOTATO_SOLVER=modal"
  HOTPOTATO_SOLVER=modal \
    ctest --test-dir "$MODAL_DIR" --output-on-failure -j "$JOBS"
  # The modal hot path rides the batched SpMM/matmat kernels, so the forced
  # modal suite also runs under each pinned dispatch tier (scalar guards the
  # portable fallback, avx2 the vectorised lane-major kernels).
  for tier in scalar avx2; do
    note "modal solver: full suite under HOTPOTATO_SOLVER=modal HOTPOTATO_DISPATCH=$tier"
    HOTPOTATO_SOLVER=modal HOTPOTATO_DISPATCH="$tier" \
      ctest --test-dir "$MODAL_DIR" --output-on-failure -j "$JOBS"
  done
else
  skip "modal solver (no Release build dir)"
fi

# ---- fault matrix ----------------------------------------------------------
# Mirrors the `fault-matrix` CI job: the resilience suite (kill-and-resume,
# journal corruption, deadline watchdog, retry against an intermittently-
# failing scheduler factory, CLI exit codes) under ASan+UBSan, repeated to
# shake out scheduling-dependent flakiness. Reuses the asan build when the
# full leg ran; otherwise falls back to the first build-test tree.
FAULT_MATRIX_RE='ResumeAfterKill|Journal|Resume\.|RetryPolicy|FailureClassification|DeadlineWatchdog|AtomicExports|JsonExport|CliExitCodes|CliRun\.Campaign'
FAULT_DIR="$BUILD_ROOT/asan"
[[ -d "$FAULT_DIR" ]] || FAULT_DIR="$BUILD_ROOT/${COMPILERS[0]%%:*}-${BUILD_TYPES[0]}"
if [[ -d "$FAULT_DIR" ]]; then
  note "fault matrix: resilience suite in $FAULT_DIR (x2)"
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$FAULT_DIR" --output-on-failure -j "$JOBS" \
      --repeat until-fail:2 -R "$FAULT_MATRIX_RE"
else
  skip "fault matrix (no build dir)"
fi

# ---- execution placement ---------------------------------------------------
# Mirrors the `numa-exec` CI job. First the campaign + resilience suites with
# HOTPOTATO_PIN=compact (run_campaign's env override pins every worker, and
# records must stay bit-identical); then a separate HOTPOTATO_EXEC_NUMA=OFF
# build whose topology discovery is the single-node fallback unconditionally —
# what a host without sysfs/NUMA support gets.
EXEC_MATRIX_RE='Campaign|Exec|Arena|Topology|CpuList|Pin|WorkerScratch|Resume|Journal|Retry|DeadlineWatchdog|AllocGuard|StudySetup'
EXEC_DIR="$BUILD_ROOT/${COMPILERS[0]%%:*}-Release"
if [[ -d "$EXEC_DIR" ]]; then
  note "numa-exec: campaign + resilience suites under HOTPOTATO_PIN=compact"
  HOTPOTATO_PIN=compact \
    ctest --test-dir "$EXEC_DIR" --output-on-failure -j "$JOBS" \
      -R "$EXEC_MATRIX_RE"
else
  skip "numa-exec pinned leg (no Release build dir)"
fi
if [[ $QUICK -eq 0 ]]; then
  note "numa-exec: full suite with HOTPOTATO_EXEC_NUMA=OFF (forced fallback)"
  configure_build_test "$BUILD_ROOT/nonuma" \
    -DCMAKE_BUILD_TYPE=Release \
    -DHOTPOTATO_WERROR=ON \
    -DHOTPOTATO_EXEC_NUMA=OFF
else
  skip "numa-exec no-NUMA build (--quick)"
fi

# ---- format ----------------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format check"
  find src tests bench examples \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
    xargs -0 clang-format --dry-run -Werror
else
  skip "clang-format (not installed)"
fi

# ---- bench regression gate -------------------------------------------------
# Mirrors the `bench` CI job: both smoke benchmarks, gated together in one
# check_bench.py invocation against the committed smoke baselines.
if command -v python3 >/dev/null 2>&1; then
  note "bench regression gate (smoke: hotpath + server)"
  BENCH_DIR="$BUILD_ROOT/${COMPILERS[0]%%:*}-Release"
  [[ -d "$BENCH_DIR" ]] || BENCH_DIR="$BUILD_ROOT/$(ls "$BUILD_ROOT" | grep -m1 Release || true)"
  cmake --build "$BENCH_DIR" -j "$JOBS" --target bench_hotpath bench_server
  "$BENCH_DIR/bench/bench_hotpath" --smoke --out "$BUILD_ROOT/bench_smoke.json"
  "$BENCH_DIR/bench/bench_server" --smoke --out "$BUILD_ROOT/bench_server_smoke.json"
  python3 scripts/check_bench.py \
    "$BUILD_ROOT/bench_smoke.json" "$BUILD_ROOT/bench_server_smoke.json" \
    --baseline BENCH_hotpath_smoke.json BENCH_server_smoke.json
else
  skip "bench gate (python3 not installed)"
fi

note "ci_local: all legs that ran passed"
