#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace hp::fault {

/// Deterministic, seeded fault injector driven by a scripted FaultSchedule.
///
/// The simulator advances the injector once per micro-step; the injector
/// activates events whose onset has passed and expires finished windows,
/// reporting both transitions so the simulator can evict threads from dying
/// cores and hand recovered cores back. Sensor corruption is applied through
/// corrupt_reading(), which the SensorBank invokes per raw sample — the
/// injector never sees ground truth except through that hook.
///
/// All behaviour is a pure function of (schedule, seed, query times): two
/// runs with the same inputs inject bit-identical faults.
class FaultInjector {
public:
    /// @p core_count bounds the valid fault targets; throws
    /// std::invalid_argument when the schedule fails validation.
    FaultInjector(FaultSchedule schedule, std::size_t core_count,
                  std::uint64_t seed = 1);

    /// Activates / expires events up to @p now. Newly started events are
    /// appended to @p started, newly ended (transient recoveries, closed
    /// sensor windows) to @p ended; either may be null.
    void advance(double now, std::vector<FaultEvent>* started = nullptr,
                 std::vector<FaultEvent>* ended = nullptr);

    /// True while @p core is offline (transient window or permanent loss).
    bool core_failed(std::size_t core) const;
    std::size_t failed_core_count() const;

    /// True while any fault is active on @p sensor.
    bool sensor_faulty(std::size_t sensor) const;

    /// Runs an otherwise-healthy raw reading of @p sensor through the active
    /// sensor faults. Returns NaN for a dropped-out sensor.
    double corrupt_reading(std::size_t sensor, double reading, double now);

    /// True — and consumes the abort — when a rotation issued at @p now falls
    /// into an active abort window (one-shot aborts fire once; windowed
    /// aborts drop every rotation inside the window).
    bool consume_rotation_abort(double now);

    /// Attaches an observability counter bumped every time corrupt_reading()
    /// actually alters (or drops) a reading. Null detaches; the counter must
    /// outlive the injector.
    void set_corruption_counter(obs::Counter* counter) {
        corruptions_ = counter;
    }

    /// Every applied transition (onset and recovery), in time order.
    const std::vector<FaultLogEntry>& log() const { return log_; }
    std::size_t injected_count() const { return injected_; }
    /// Faults currently in their active window.
    std::size_t active_fault_count() const { return active_.size(); }

private:
    struct Active {
        FaultEvent event;
        double end_s = 0.0;   ///< infinity for permanent faults
        bool one_shot_abort = false;
        bool consumed = false;
    };

    void record(double now, const FaultEvent& e, std::string note);

    std::vector<FaultEvent> events_;   // sorted by onset
    std::size_t next_event_ = 0;
    std::vector<Active> active_;
    std::vector<bool> core_failed_;
    std::vector<FaultLogEntry> log_;
    obs::Counter* corruptions_ = nullptr;
    std::size_t injected_ = 0;
    std::mt19937_64 rng_;
    std::uniform_real_distribution<double> jitter_{-0.1, 0.1};
};

}  // namespace hp::fault
