#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hp::fault {

namespace {
constexpr double kForever = std::numeric_limits<double>::infinity();

bool is_sensor_kind(FaultKind k) {
    return k == FaultKind::kSensorStuck || k == FaultKind::kSensorDrift ||
           k == FaultKind::kSensorSpike || k == FaultKind::kSensorDropout;
}
}  // namespace

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::kSensorStuck: return "sensor_stuck";
        case FaultKind::kSensorDrift: return "sensor_drift";
        case FaultKind::kSensorSpike: return "sensor_spike";
        case FaultKind::kSensorDropout: return "sensor_dropout";
        case FaultKind::kCoreTransient: return "core_transient";
        case FaultKind::kCorePermanent: return "core_permanent";
        case FaultKind::kRotationAbort: return "rotation_abort";
    }
    return "unknown";
}

std::optional<FaultKind> kind_from_string(std::string_view name) {
    for (FaultKind k :
         {FaultKind::kSensorStuck, FaultKind::kSensorDrift,
          FaultKind::kSensorSpike, FaultKind::kSensorDropout,
          FaultKind::kCoreTransient, FaultKind::kCorePermanent,
          FaultKind::kRotationAbort})
        if (name == to_string(k)) return k;
    return std::nullopt;
}

std::vector<std::string> FaultSchedule::validate(
    std::size_t core_count) const {
    std::vector<std::string> violations;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent& e = events[i];
        const std::string where = "event " + std::to_string(i) + " (" +
                                  to_string(e.kind) + "): ";
        if (e.time_s < 0.0)
            violations.push_back(where + "negative onset time");
        if (!std::isfinite(e.time_s) || !std::isfinite(e.duration_s) ||
            !std::isfinite(e.magnitude))
            violations.push_back(where + "non-finite field");
        if (e.kind != FaultKind::kRotationAbort && e.target >= core_count)
            violations.push_back(where + "target " +
                                 std::to_string(e.target) + " out of range (" +
                                 std::to_string(core_count) + " cores)");
        if (e.kind == FaultKind::kCoreTransient && e.duration_s <= 0.0)
            violations.push_back(where +
                                 "transient core failure needs duration > 0");
    }
    return violations;
}

FaultInjector::FaultInjector(FaultSchedule schedule, std::size_t core_count,
                             std::uint64_t seed)
    : events_(std::move(schedule.events)),
      core_failed_(core_count, false),
      rng_(seed) {
    const std::vector<std::string> violations =
        FaultSchedule{events_}.validate(core_count);
    if (!violations.empty()) {
        std::string msg = "FaultInjector: invalid schedule:";
        for (const std::string& v : violations) msg += "\n  - " + v;
        throw std::invalid_argument(msg);
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.time_s < b.time_s;
                     });
}

void FaultInjector::record(double now, const FaultEvent& e, std::string note) {
    log_.push_back(FaultLogEntry{now, e.kind, e.target, std::move(note)});
}

void FaultInjector::advance(double now, std::vector<FaultEvent>* started,
                            std::vector<FaultEvent>* ended) {
    // Expire finished windows first so a back-to-back schedule on the same
    // target sees the old fault gone before the new one lands.
    for (std::size_t i = 0; i < active_.size();) {
        Active& a = active_[i];
        const bool spent = a.one_shot_abort && a.consumed;
        if (now >= a.end_s || spent) {
            if (a.event.kind == FaultKind::kCoreTransient) {
                core_failed_[a.event.target] = false;
                record(now, a.event, "core recovered");
            } else if (!spent) {
                record(now, a.event, "fault window closed");
            }
            if (ended) ended->push_back(a.event);
            active_[i] = active_.back();
            active_.pop_back();
        } else {
            ++i;
        }
    }

    while (next_event_ < events_.size() &&
           events_[next_event_].time_s <= now) {
        const FaultEvent& e = events_[next_event_++];
        Active a;
        a.event = e;
        switch (e.kind) {
            case FaultKind::kCorePermanent:
                a.end_s = kForever;
                core_failed_[e.target] = true;
                record(now, e, "core failed permanently");
                break;
            case FaultKind::kCoreTransient:
                a.end_s = e.time_s + e.duration_s;
                core_failed_[e.target] = true;
                record(now, e, "core failed (transient)");
                break;
            case FaultKind::kRotationAbort:
                a.one_shot_abort = e.duration_s <= 0.0;
                a.end_s = a.one_shot_abort ? kForever
                                           : e.time_s + e.duration_s;
                record(now, e, "rotation abort armed");
                break;
            default:  // sensor faults
                a.end_s = e.duration_s > 0.0 ? e.time_s + e.duration_s
                                             : kForever;
                record(now, e, "sensor fault active");
                break;
        }
        ++injected_;
        active_.push_back(std::move(a));
        if (started) started->push_back(e);
    }
}

bool FaultInjector::core_failed(std::size_t core) const {
    return core < core_failed_.size() && core_failed_[core];
}

std::size_t FaultInjector::failed_core_count() const {
    std::size_t n = 0;
    for (bool f : core_failed_)
        if (f) ++n;
    return n;
}

bool FaultInjector::sensor_faulty(std::size_t sensor) const {
    for (const Active& a : active_)
        if (is_sensor_kind(a.event.kind) && a.event.target == sensor)
            return true;
    return false;
}

double FaultInjector::corrupt_reading(std::size_t sensor, double reading,
                                      double now) {
    bool altered = false;
    for (const Active& a : active_) {
        const FaultEvent& e = a.event;
        if (e.target != sensor) continue;
        switch (e.kind) {
            case FaultKind::kSensorStuck:
                reading = e.magnitude;
                altered = true;
                break;
            case FaultKind::kSensorDrift:
                reading += e.magnitude * (now - e.time_s);
                altered = true;
                break;
            case FaultKind::kSensorSpike:
                // Seeded +/-10% jitter: spikes are noisy in real silicon, but
                // two runs with the same seed spike identically.
                reading += e.magnitude * (1.0 + jitter_(rng_));
                altered = true;
                break;
            case FaultKind::kSensorDropout:
                if (corruptions_) corruptions_->add();
                return std::numeric_limits<double>::quiet_NaN();
            default:
                break;
        }
    }
    if (altered && corruptions_) corruptions_->add();
    return reading;
}

bool FaultInjector::consume_rotation_abort(double now) {
    for (Active& a : active_) {
        if (a.event.kind != FaultKind::kRotationAbort) continue;
        if (a.one_shot_abort && a.consumed) continue;
        a.consumed = true;
        record(now, a.event, "rotation aborted");
        return true;
    }
    return false;
}

}  // namespace hp::fault
