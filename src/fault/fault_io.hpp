#pragma once

#include <iosfwd>
#include <string>

#include "fault/fault.hpp"

namespace hp::fault {

/// Fault-schedule CSV format (one event per line, '#' comments allowed):
///
///     time_s,kind,target,duration_s,magnitude
///     0.010,sensor_stuck,3,0,45.0
///     0.015,core_permanent,5,0,0
///     0.020,rotation_abort,0,0.002,0
///
/// `kind` is one of: sensor_stuck, sensor_drift, sensor_spike,
/// sensor_dropout, core_transient, core_permanent, rotation_abort. A header
/// line starting with "time_s" is accepted and skipped. Malformed rows are
/// rejected with a std::runtime_error naming the source (@p source_name /
/// file path) and line number — never a bare std::stod exception.

/// Parses a schedule from @p in; @p source_name labels diagnostics.
FaultSchedule read_fault_schedule(std::istream& in,
                                  const std::string& source_name = "<stream>");

/// Convenience overload reading @p path; throws std::runtime_error when the
/// file cannot be opened.
FaultSchedule read_fault_schedule_file(const std::string& path);

/// Writes @p schedule in the same CSV format (round-trips with the reader).
void write_fault_schedule(std::ostream& out, const FaultSchedule& schedule);

}  // namespace hp::fault
