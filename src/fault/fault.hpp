#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hp::fault {

/// Kinds of injected hardware faults.
///
/// Sensor faults corrupt what the thermal sensor reports (ground truth is
/// untouched); core faults take a core offline (fail-stop: the core draws no
/// power and cannot host a thread); rotation aborts drop a synchronous
/// rotation mid-flight, leaving the mapping unchanged.
enum class FaultKind {
    kSensorStuck,    ///< sensor reports a constant value (magnitude, °C)
    kSensorDrift,    ///< reading drifts by magnitude °C/s since onset
    kSensorSpike,    ///< reading offset by ~magnitude °C (seeded jitter)
    kSensorDropout,  ///< sensor returns no reading at all
    kCoreTransient,  ///< core offline for duration_s, then recovers
    kCorePermanent,  ///< core offline for the rest of the run
    kRotationAbort,  ///< rotations issued in the window are dropped
};

/// Canonical lower-snake name (the fault-schedule CSV vocabulary).
const char* to_string(FaultKind kind);

/// Inverse of to_string(); nullopt for unknown names.
std::optional<FaultKind> kind_from_string(std::string_view name);

/// One scripted fault.
struct FaultEvent {
    double time_s = 0.0;          ///< onset (simulated seconds)
    FaultKind kind = FaultKind::kSensorStuck;
    std::size_t target = 0;       ///< sensor/core index; unused for aborts
    /// Active window; <= 0 means "until the end of the run" for sensor
    /// faults, is ignored for permanent core failures, and makes a rotation
    /// abort one-shot (drop exactly the next rotation).
    double duration_s = 0.0;
    double magnitude = 0.0;       ///< stuck value / drift rate / spike °C
};

/// A scripted fault campaign: what goes wrong, and when.
struct FaultSchedule {
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /// Structural violations (bad kind/target/duration combinations) for
    /// @p core_count cores, all at once; empty when valid.
    std::vector<std::string> validate(std::size_t core_count) const;
};

/// One applied fault (or recovery), as recorded during a run.
struct FaultLogEntry {
    double time_s = 0.0;
    FaultKind kind = FaultKind::kSensorStuck;
    std::size_t target = 0;
    std::string note;
};

}  // namespace hp::fault
