#include "fault/fault_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hp::fault {

namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& what) {
    throw std::runtime_error("fault_io: " + source + ":" +
                             std::to_string(line) + ": " + what);
}

/// Strips comments and surrounding whitespace; true if anything remains.
bool clean_line(std::string& line) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\r';
    };
    while (!line.empty() && is_space(line.front())) line.erase(line.begin());
    while (!line.empty() && is_space(line.back())) line.pop_back();
    return !line.empty();
}

double parse_field_double(const std::string& source, std::size_t line_no,
                          const std::string& field, const std::string& value) {
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return v;
    } catch (const std::exception&) {
        fail(source, line_no, "bad " + field + " '" + value + "'");
    }
}

std::size_t parse_field_index(const std::string& source, std::size_t line_no,
                              const std::string& field,
                              const std::string& value) {
    try {
        std::size_t used = 0;
        const unsigned long long v = std::stoull(value, &used);
        if (used != value.size() || value.front() == '-')
            throw std::invalid_argument(value);
        return static_cast<std::size_t>(v);
    } catch (const std::exception&) {
        fail(source, line_no, "bad " + field + " '" + value + "'");
    }
}

}  // namespace

FaultSchedule read_fault_schedule(std::istream& in,
                                  const std::string& source_name) {
    FaultSchedule schedule;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!clean_line(line)) continue;
        if (line.rfind("time_s", 0) == 0) continue;  // optional header row

        std::vector<std::string> fields;
        std::stringstream row(line);
        std::string field;
        while (std::getline(row, field, ',')) fields.push_back(field);
        if (fields.size() != 5)
            fail(source_name, line_no,
                 "expected 5 fields (time_s,kind,target,duration_s,magnitude)"
                 ", got " + std::to_string(fields.size()));

        FaultEvent e;
        e.time_s = parse_field_double(source_name, line_no, "time_s",
                                      fields[0]);
        const auto kind = kind_from_string(fields[1]);
        if (!kind)
            fail(source_name, line_no, "unknown fault kind '" + fields[1] +
                                           "'");
        e.kind = *kind;
        e.target = parse_field_index(source_name, line_no, "target",
                                     fields[2]);
        e.duration_s = parse_field_double(source_name, line_no, "duration_s",
                                          fields[3]);
        e.magnitude = parse_field_double(source_name, line_no, "magnitude",
                                         fields[4]);
        if (e.time_s < 0.0)
            fail(source_name, line_no, "negative time_s");
        schedule.events.push_back(e);
    }
    return schedule;
}

FaultSchedule read_fault_schedule_file(const std::string& path) {
    std::ifstream file(path);
    if (!file)
        throw std::runtime_error("fault_io: cannot open " + path);
    return read_fault_schedule(file, path);
}

void write_fault_schedule(std::ostream& out, const FaultSchedule& schedule) {
    out << "time_s,kind,target,duration_s,magnitude\n";
    for (const FaultEvent& e : schedule.events)
        out << e.time_s << ',' << to_string(e.kind) << ',' << e.target << ','
            << e.duration_s << ',' << e.magnitude << '\n';
}

}  // namespace hp::fault
