#include "power/power_model.hpp"

// max_frequency_within is a header-only template; this translation unit
// exists so the library has a stable archive member for the module.

namespace hp::power {}
