#pragma once

#include "arch/dvfs.hpp"

namespace hp::power {

/// Parameters of the per-core power model.
struct PowerParams {
    /// Leakage-dominated power of an idle core at the reference temperature
    /// (paper §VI: idle core power 0.3 W).
    double idle_power_w = 0.3;
    /// Fractional leakage increase per Kelvin above the reference temperature
    /// (linearised exponential leakage; creates the usual positive
    /// temperature-power feedback every thermal manager must respect).
    double leakage_temp_coeff_per_k = 0.01;
    double leakage_ref_celsius = 45.0;
    /// Reference operating point at which benchmark nominal powers are given.
    double f_ref_hz = 4.0e9;
    double v_ref = 1.20;

    // --- power gating (C-states) ------------------------------------------
    /// Gate idle cores after they have been unoccupied for gate_after_idle_s
    /// (off by default; see the simulator's gating logic).
    bool power_gating = false;
    /// Residual power of a gated core (retention rails only).
    double gated_power_w = 0.02;
    /// Idle dwell time before the core is gated.
    double gate_after_idle_s = 1e-3;
    /// Stall a thread pays when scheduled onto a gated core (rail ramp +
    /// state restore). Makes rotating through gated holes a real cost.
    double wakeup_latency_s = 10e-6;
};

/// McPAT-analogue per-core power model.
///
/// An active core consumes
///   P = P_nom * (V/V_ref)^2 * activity  +  P_leak(T)
/// where P_nom is the benchmark phase's dynamic power at the reference
/// operating point, activity is the instruction throughput relative to that
/// reference point (perf::IntervalPerformanceModel::power_activity — dynamic
/// energy per instruction is constant at fixed voltage, so throughput times
/// V^2 gives dynamic power), and P_leak(T) is the temperature-dependent
/// leakage an idle core also pays.
class PowerModel {
public:
    PowerModel(PowerParams params, arch::DvfsParams dvfs)
        : params_(params), dvfs_(dvfs) {}

    const PowerParams& params() const { return params_; }

    /// Leakage power at die temperature @p temperature_c; this is the entire
    /// power of an idle core.
    double idle_power_w(double temperature_c) const {
        const double dt = temperature_c - params_.leakage_ref_celsius;
        const double scale = 1.0 + params_.leakage_temp_coeff_per_k * dt;
        return params_.idle_power_w * (scale > 0.1 ? scale : 0.1);
    }

    /// Total power of a core running a thread: V^2- and throughput-scaled
    /// dynamic power plus leakage. @p activity is the relative instruction
    /// throughput (1.0 at the reference operating point).
    double active_power_w(double nominal_power_w, double freq_hz,
                          double activity, double temperature_c) const {
        const double v = dvfs_.voltage_for(freq_hz);
        const double dynamic = nominal_power_w * (v / params_.v_ref) *
                               (v / params_.v_ref) * activity;
        return dynamic + idle_power_w(temperature_c);
    }

    /// The highest DVFS level whose total power stays within @p budget_w;
    /// @p activity_of maps a candidate frequency to the relative throughput
    /// at that frequency (activity depends on f via memory stalls). Returns
    /// f_min if even that exceeds the budget.
    template <typename ActivityOf>
    double max_frequency_within(double budget_w, double nominal_power_w,
                                ActivityOf&& activity_of,
                                double temperature_c) const {
        double best = dvfs_.f_min_hz;
        for (double f : dvfs_.levels()) {
            if (active_power_w(nominal_power_w, f, activity_of(f),
                               temperature_c) <= budget_w)
                best = f;
            else
                break;
        }
        return best;
    }

private:
    PowerParams params_;
    arch::DvfsParams dvfs_;
};

}  // namespace hp::power
