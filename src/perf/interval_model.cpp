#include "perf/interval_model.hpp"

#include <stdexcept>

namespace hp::perf {

IntervalPerformanceModel::IntervalPerformanceModel(const arch::ManyCore& chip,
                                                   PerfParams params)
    : chip_(&chip), params_(params) {
    if (params_.refill_mlp <= 0.0)
        throw std::invalid_argument(
            "IntervalPerformanceModel: refill MLP must be positive");
    for (std::size_t c = 1; c < chip.core_count(); ++c)
        if (chip.amd(c) < chip.amd(reference_core_)) reference_core_ = c;
    if (params_.model_dram)
        memory_ = std::make_shared<const mem::MemorySystem>(chip, params_.dram);
}

double IntervalPerformanceModel::effective_cpi(
    const PhasePoint& phase, std::size_t core, double freq_hz,
    double extra_llc_latency_s) const {
    double per_access_latency_s =
        chip_->llc_access_latency_s(core) + extra_llc_latency_s;
    if (memory_)
        per_access_latency_s +=
            memory_->access_penalty_s(phase.llc_miss_ratio);
    const double memory_cycles_per_instr =
        phase.llc_apki / 1000.0 * per_access_latency_s * freq_hz;
    return phase.base_cpi + memory_cycles_per_instr;
}

double IntervalPerformanceModel::instructions_per_second(
    const PhasePoint& phase, std::size_t core, double freq_hz,
    double extra_llc_latency_s) const {
    return freq_hz / effective_cpi(phase, core, freq_hz, extra_llc_latency_s);
}

double IntervalPerformanceModel::power_activity(const PhasePoint& phase,
                                                std::size_t core,
                                                double freq_hz,
                                                double f_ref_hz) const {
    return instructions_per_second(phase, core, freq_hz) /
           instructions_per_second(phase, reference_core_, f_ref_hz);
}

double IntervalPerformanceModel::migration_stall_s(
    std::size_t destination) const {
    const double lines =
        static_cast<double>(chip_->private_state_bytes()) /
        static_cast<double>(chip_->params().cache_block_bytes);
    const double refill_s = lines *
                            chip_->llc_access_latency_s(destination) /
                            params_.refill_mlp;
    return params_.migration_base_overhead_s + refill_s;
}

}  // namespace hp::perf
