#pragma once

#include <cstddef>
#include <memory>

#include "arch/manycore.hpp"
#include "mem/memory_system.hpp"

namespace hp::perf {

/// Performance characteristics of one execution phase of a thread, the unit
/// of work the interval model consumes (a Sniper-style CPI stack reduced to
/// its compute, LLC and DRAM components).
struct PhasePoint {
    double base_cpi = 0.5;          ///< cycles/instr excluding memory stalls
    double llc_apki = 1.0;          ///< LLC accesses per kilo-instruction
    double nominal_power_w = 5.0;   ///< dynamic W at (f_ref, V_ref), full activity
    double llc_miss_ratio = 0.0;    ///< fraction of LLC accesses going to DRAM
};

/// Tunables of the interval performance model.
struct PerfParams {
    /// Fixed OS/context-switch cost of one thread migration, seconds.
    double migration_base_overhead_s = 30e-6;
    /// Memory-level parallelism assumed while the private caches refill from
    /// the shared LLC after a migration.
    double refill_mlp = 4.0;
    /// Model the DRAM tier (LLC misses pay the bank->MC->DRAM round trip).
    bool model_dram = true;
    mem::DramParams dram;
};

/// Interval (CPI-stack) performance model for S-NUCA many-cores.
///
/// Effective CPI on a given core at a given frequency is
///   CPI_eff = CPI_base + APKI/1000 * latency_LLC(core) * f
/// i.e. the memory component scales with the core's AMD-dependent average
/// LLC round trip and grows with frequency (memory-bound threads gain little
/// from high f or from DVFS-down — exactly the asymmetry HotPotato's
/// CPI-sorted migration heuristic exploits).
class IntervalPerformanceModel {
public:
    explicit IntervalPerformanceModel(const arch::ManyCore& chip,
                                      PerfParams params = {});

    const arch::ManyCore& chip() const { return *chip_; }
    const PerfParams& params() const { return params_; }

    /// Cycles per instruction of @p phase on @p core at @p freq_hz.
    /// @p extra_llc_latency_s adds per-access delay on top of the zero-load
    /// LLC round trip (the NoC contention term, see noc::TrafficModel).
    double effective_cpi(const PhasePoint& phase, std::size_t core,
                         double freq_hz,
                         double extra_llc_latency_s = 0.0) const;

    /// Instruction throughput (instructions/second).
    double instructions_per_second(const PhasePoint& phase, std::size_t core,
                                   double freq_hz,
                                   double extra_llc_latency_s = 0.0) const;

    /// Dynamic-power activity: instruction throughput relative to the
    /// reference operating point (an AMD-minimal core at @p f_ref_hz).
    /// Dynamic energy per instruction is roughly constant at fixed voltage,
    /// so P_dyn = P_nominal * (V/V_ref)^2 * activity; memory-bound threads
    /// and outer-ring cores burn proportionally less power.
    double power_activity(const PhasePoint& phase, std::size_t core,
                          double freq_hz, double f_ref_hz) const;

    /// Core with the smallest AMD (the reference for power_activity).
    std::size_t reference_core() const { return reference_core_; }

    /// The DRAM tier, or nullptr when PerfParams::model_dram is off.
    const mem::MemorySystem* memory_system() const { return memory_.get(); }

    /// Wall-clock stall a thread pays when migrating onto @p destination:
    /// fixed OS overhead plus demand-refill of the private L1 state through
    /// the destination's average LLC latency.
    double migration_stall_s(std::size_t destination) const;

private:
    const arch::ManyCore* chip_;
    PerfParams params_;
    std::size_t reference_core_ = 0;
    std::shared_ptr<const mem::MemorySystem> memory_;
};

}  // namespace hp::perf
