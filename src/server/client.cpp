#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace hp::server {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void write_full(int fd, const std::uint8_t* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
        // MSG_NOSIGNAL: a server that hung up mid-write surfaces as EPIPE,
        // never as a process-killing SIGPIPE.
        const ssize_t n =
            ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("advice client: write");
        }
        done += static_cast<std::size_t>(n);
    }
}

void read_full(int fd, std::uint8_t* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, data + done, size - done);
        if (n == 0)
            throw std::runtime_error(
                "advice client: connection closed by server");
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("advice client: read");
        }
        done += static_cast<std::size_t>(n);
    }
}

}  // namespace

AdviceClient::AdviceClient(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("advice client: socket path too long: " +
                                 socket_path);
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw_errno("advice client: socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throw_errno("advice client: connect to " + socket_path);
    }
}

AdviceClient::~AdviceClient() { close(); }

AdviceClient::AdviceClient(AdviceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

AdviceClient& AdviceClient::operator=(AdviceClient&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

void AdviceClient::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void AdviceClient::send_request(const AdviceRequest& request) {
    if (fd_ < 0) throw std::runtime_error("advice client: not connected");
    buffer_.clear();
    encode_request(request, buffer_);
    write_full(fd_, buffer_.data(), buffer_.size());
}

std::vector<std::uint8_t> AdviceClient::raw_query(
    const AdviceRequest& request) {
    send_request(request);
    std::uint8_t header[8];
    read_full(fd_, header, sizeof(header));
    const std::size_t payload_len = check_frame_header(header, kResponseMagic);
    std::vector<std::uint8_t> payload(payload_len);
    read_full(fd_, payload.data(), payload.size());
    return payload;
}

AdviceResponse AdviceClient::query(const AdviceRequest& request) {
    const std::vector<std::uint8_t> payload = raw_query(request);
    return decode_response(payload.data(), payload.size());
}

}  // namespace hp::server
