#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "server/advice.hpp"
#include "thermal/solver.hpp"

namespace hp::server {

/// Everything needed to bring the daemon up. Plain data, validated by the
/// AdviceServer constructor.
struct ServerConfig {
    /// Filesystem path of the AF_UNIX listening socket. A stale socket file
    /// from a dead server is unlinked; any other file type is an error.
    std::string socket_path;
    /// Fixed worker-thread pool size.
    std::size_t threads = 4;
    /// Config tags served (StudySetup::known_names() namespace); one
    /// read-only bundle (plus per-NUMA-node replicas) and one shared
    /// concurrent cache per tag.
    std::vector<std::string> configs = {"paper_64core"};
    /// Solver backend selection for every bundle.
    thermal::SolverConfig solver = {};
    /// Worker pinning / NUMA replication, as in campaign runs. Environment
    /// overrides (HOTPOTATO_PIN / HOTPOTATO_NUMA) are applied at startup.
    exec::ExecPolicy exec = {};
    /// Evaluation defaults applied to every request.
    AdviceDefaults defaults = {};
    /// Shared concurrent prediction cache (per config tag); 0 disables.
    std::size_t cache_entries = 4096;
    int listen_backlog = 128;
    /// Per-read/write stall budget: a connection that stalls mid-frame (or
    /// stops reading its response) longer than this is dropped, so a
    /// misbehaving client can hold a worker for at most this long.
    int io_timeout_ms = 5000;
};

/// The thermal-advice daemon: accepts framed AdviceRequests over a
/// Unix-domain socket and answers them from a fixed pool of worker threads.
///
/// Architecture (DESIGN.md §13): one dispatcher thread owns the listening
/// socket and every idle connection in a poll() set; a connection with a
/// readable request is handed to the work queue, a worker reads exactly one
/// frame, answers it, and parks the connection back with the dispatcher.
/// Workers never share mutable state: each owns an arena (node-bound under
/// NUMA), its AdviceScratch, and its metrics registry. The AdviceBundles are
/// strictly read-only and replicated per NUMA node on first use by a worker
/// of that node; the per-config ConcurrentPeakCache is the only shared
/// writable structure, and it is lock-free.
///
/// stop() is graceful: the listening socket closes immediately, connections
/// with a request already in flight (bytes readable, or a frame mid-read)
/// are answered, idle connections are closed, then all threads join. The
/// destructor calls stop().
class AdviceServer {
public:
    /// Builds every bundle (the expensive eigen-work happens here), binds
    /// the socket and starts the dispatcher + workers; on return the server
    /// is accepting connections. Throws std::invalid_argument /
    /// std::runtime_error on bad config or socket errors.
    explicit AdviceServer(ServerConfig config);
    ~AdviceServer();

    AdviceServer(const AdviceServer&) = delete;
    AdviceServer& operator=(const AdviceServer&) = delete;

    const ServerConfig& config() const { return config_; }
    const std::string& socket_path() const { return config_.socket_path; }
    bool running() const {
        return !stopping_.load(std::memory_order_acquire);
    }

    /// Graceful shutdown; idempotent, callable from any thread.
    void stop();

    /// server.* observability: request/error counters and the latency
    /// histogram merged across workers, cache hit/miss/race counters summed
    /// across configs, plus derived gauges — server.qps (requests over
    /// uptime) and server.latency_p50_us / server.latency_p99_us
    /// (interpolated from the merged histogram). Callable while serving.
    obs::MetricsSnapshot metrics() const;

    std::uint64_t requests_served() const {
        return requests_total_.load(std::memory_order_relaxed);
    }

private:
    struct ConfigState;
    struct WorkerState;

    void dispatcher_loop();
    void worker_loop(std::size_t index);
    /// Serves one request on @p fd. Returns false when the connection must
    /// close (EOF, protocol violation, write failure).
    bool serve_one(int fd, WorkerState& worker);
    const AdviceBundle& bundle_for(ConfigState& state, int node);
    ConfigState* find_config(const std::string& tag);

    ServerConfig config_;
    exec::Topology topology_;
    std::vector<exec::WorkerPlacement> placements_;
    std::vector<std::unique_ptr<ConfigState>> configs_;
    std::vector<std::unique_ptr<WorkerState>> workers_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};  ///< dispatcher re-arm/wake self-pipe

    std::atomic<bool> stopping_{false};
    std::thread dispatcher_;
    std::vector<std::thread> threads_;

    // Dispatcher <-> worker handoff.
    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<int> ready_fds_;        ///< readable, awaiting a worker
    std::deque<int> parked_fds_;       ///< answered, awaiting re-arm
    bool dispatcher_done_ = false;

    std::mutex stop_mutex_;  ///< serializes stop() callers (joins once)
    bool stopped_ = false;
    bool replicate_bundles_ = false;

    std::atomic<std::uint64_t> requests_total_{0};
    std::chrono::steady_clock::time_point started_at_;
};

}  // namespace hp::server
