#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hp::server {

/// Wire protocol of the thermal-advice server: length-prefixed binary frames
/// over a Unix-domain stream socket.
///
///   frame    := magic:u32 | payload_len:u32 | payload
///   request  := config_len:u16 | config bytes
///             | thread_count:u32 | thread_power_w:f64 × thread_count
///             | tau_count:u32    | tau_grid_s:f64 × tau_count
///   response := status:u8 (0 = ok, 1 = error)
///     ok     | rotation_on:u8 | thermally_safe:u8
///            | tau_s:f64 | predicted_peak_c:f64 | error_bound_c:f64
///            | thread_count:u32 | core_of_thread:u32 × thread_count
///            | core_count:u32   | peak_core_c:f64 × core_count
///     error  | message_len:u32 | message bytes
///
/// Integers and double bit patterns are host byte order: both ends of an
/// AF_UNIX socket are the same machine by construction, so no swapping.
/// Every malformed frame is rejected with a ProtocolError whose message
/// carries the source file:line of the failing check — the server relays it
/// verbatim in an error response, so a misbehaving client learns exactly
/// which protocol invariant it broke.

/// Raised on any framing/encoding violation. what() starts with file:line.
class ProtocolError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

constexpr std::uint32_t kRequestMagic = 0x48505251u;   // "HPRQ"
constexpr std::uint32_t kResponseMagic = 0x48505253u;  // "HPRS"
/// Frame payload hard cap: generous for the largest stock chip (a 1024-core
/// response is ~12 KiB) while bounding what one client can make the server
/// buffer.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
/// Request-side sanity caps, enforced before any allocation is sized by
/// untrusted input.
constexpr std::uint32_t kMaxThreads = 65536;
constexpr std::uint32_t kMaxTauGrid = 1024;
constexpr std::uint32_t kMaxConfigLen = 256;

/// One advice query: which stock chip configuration ("paper_64core", ... —
/// see StudySetup::known_names()), the sustained power of each thread to
/// place, and an optional τ grid to certify against (empty = the server's
/// default ladder).
struct AdviceRequest {
    std::string config;
    std::vector<double> thread_power_w;
    std::vector<double> tau_grid_s;

    bool operator==(const AdviceRequest&) const = default;
};

/// The server's answer: a thermally-safe assignment (core per thread, in
/// request order), the chosen rotation setting, the certified peak and its
/// a-priori error bound, plus the full per-core peak map at the chosen
/// setting.
struct AdviceResponse {
    std::uint8_t rotation_on = 0;
    std::uint8_t thermally_safe = 0;
    double tau_s = 0.0;
    double predicted_peak_c = 0.0;
    double error_bound_c = 0.0;
    std::vector<std::uint32_t> core_of_thread;
    std::vector<double> peak_core_c;

    bool operator==(const AdviceResponse&) const = default;
};

/// Serialisation. encode_* appends a complete frame (magic + length +
/// payload) to @p out; decode_* parses one payload (the bytes after the
/// 8-byte header) and throws ProtocolError on any violation.
void encode_request(const AdviceRequest& request,
                    std::vector<std::uint8_t>& out);
AdviceRequest decode_request(const std::uint8_t* payload, std::size_t size);

void encode_response(const AdviceResponse& response,
                     std::vector<std::uint8_t>& out);
void encode_error_response(const std::string& message,
                           std::vector<std::uint8_t>& out);
/// Parses a response payload. An error response throws std::runtime_error
/// carrying the server's message unless @p error_out is non-null, in which
/// case the message lands there and an empty response is returned.
AdviceResponse decode_response(const std::uint8_t* payload, std::size_t size,
                               std::string* error_out = nullptr);

/// Validates a frame header (first 8 bytes already read): checks the magic
/// and the payload length cap, returning the payload length. Throws
/// ProtocolError otherwise.
std::uint32_t check_frame_header(const std::uint8_t header[8],
                                 std::uint32_t expected_magic);

}  // namespace hp::server
