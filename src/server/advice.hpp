#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>
#include <vector>

#include "campaign/study_setup.hpp"
#include "core/concurrent_peak_cache.hpp"
#include "core/peak_temperature.hpp"
#include "server/protocol.hpp"
#include "thermal/solver.hpp"

namespace hp::server {

/// Evaluation defaults the server applies to every request of a bundle —
/// mirrors SimConfig's thermal contract (DTM threshold, ambient) and
/// HotPotatoParams' τ ladder so an advice answer matches what the run-time
/// scheduler would certify.
struct AdviceDefaults {
    double t_dtm_c = 70.0;
    double ambient_c = 45.0;
    /// Safety margin under the DTM threshold; an assignment is advised as
    /// safe when its certified peak stays below t_dtm_c - headroom_delta_c.
    double headroom_delta_c = 1.0;
    std::size_t samples_per_epoch = 2;
    /// Default τ grid (ascending), used when a request carries none.
    std::vector<double> tau_ladder_s = {0.125e-3, 0.25e-3, 0.5e-3,
                                        1e-3,     2e-3,    4e-3};
};

/// The expensive, immutable, strictly-read-only half of advice serving for
/// one chip configuration: the StudySetup bundle plus the Algorithm-1
/// analyzer built over its solver. Construction pairs solver and model by
/// model_signature (the StudySetup invariant) and performs the analyzer's
/// design-time phase; afterwards every member is const and any number of
/// request threads may query concurrently (one PeakWorkspace per thread).
///
/// replicate() deep-copies the whole bundle — StudySetup::replicate() plus a
/// fresh analyzer over the replica's solver — for per-NUMA-node instances,
/// exactly as the campaign engine replicates StudySetups (PR 8).
class AdviceBundle {
public:
    AdviceBundle(campaign::StudySetup setup, AdviceDefaults defaults);

    const campaign::StudySetup& setup() const { return setup_; }
    const AdviceDefaults& defaults() const { return defaults_; }
    const core::PeakTemperatureAnalyzer& analyzer() const {
        return *analyzer_;
    }
    std::uint64_t backend_signature() const { return backend_signature_; }
    double idle_power_w() const { return idle_power_w_; }
    std::size_t core_count() const;

    /// Upper bound on cache-key length for this bundle (sizes the shared
    /// concurrent cache).
    std::size_t max_key_words() const;

    AdviceBundle replicate() const;

private:
    campaign::StudySetup setup_;
    AdviceDefaults defaults_;
    std::unique_ptr<core::PeakTemperatureAnalyzer> analyzer_;
    std::uint64_t backend_signature_ = 0;
    double idle_power_w_ = 0.0;
};

/// Per-worker mutable state for advise(): the arena-backed Algorithm-1
/// workspace plus staging buffers reused across requests. Never shared
/// between threads.
class AdviceScratch {
public:
    AdviceScratch() = default;
    /// All grown buffers come from @p mr (the worker's node-local arena).
    explicit AdviceScratch(std::pmr::memory_resource* mr) : workspace_(mr) {}

private:
    friend AdviceResponse advise(const AdviceBundle&, const AdviceRequest&,
                                 AdviceScratch&, core::ConcurrentPeakCache*);
    core::PeakWorkspace workspace_;
    core::CacheKey key_;
    std::vector<core::RotationRingSpec> rings_;
    std::vector<double> qpower_;        ///< quantised thread powers
    std::vector<double> taus_;          ///< descending scan grid
    linalg::Vector static_power_;       ///< per-core static candidate
    std::vector<double> map_;           ///< per-core peak staging
};

/// Answers one request against @p bundle: places threads ring-greedily
/// (lowest-AMD ring first, in request order), then certifies the cheapest
/// safe rotation setting — static if the pinned placement already holds the
/// limit, otherwise the slowest safe τ on the grid, otherwise the fastest
/// rung flagged unsafe. Scan evaluations are memoised in @p cache (may be
/// null) under backend_signature-prefixed quantised keys; the chosen
/// setting's full peak map is always evaluated fresh, so responses are
/// bit-identical with the cache on, off, shared or racing — the cache can
/// change only how fast the scan runs, never what is answered.
///
/// Throws std::invalid_argument on semantically invalid requests (unknown
/// sizes, non-finite powers, more threads than cores...).
AdviceResponse advise(const AdviceBundle& bundle,
                      const AdviceRequest& request, AdviceScratch& scratch,
                      core::ConcurrentPeakCache* cache);

/// The single-threaded reference path: every request evaluated in order
/// with a private scratch and no cache. The soak tests byte-compare server
/// responses against this.
std::vector<AdviceResponse> advise_batch(
    const AdviceBundle& bundle, const std::vector<AdviceRequest>& requests);

}  // namespace hp::server
