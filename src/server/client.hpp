#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace hp::server {

/// Minimal blocking client for the thermal-advice daemon: one AF_UNIX
/// connection, synchronous query()/raw_query() calls. Used by the tests,
/// the soak, the server bench and the example client; not thread-safe (one
/// client per thread — connections are cheap).
class AdviceClient {
public:
    /// Connects immediately; throws std::runtime_error when the server is
    /// not there.
    explicit AdviceClient(const std::string& socket_path);
    ~AdviceClient();

    AdviceClient(AdviceClient&& other) noexcept;
    AdviceClient& operator=(AdviceClient&& other) noexcept;
    AdviceClient(const AdviceClient&) = delete;
    AdviceClient& operator=(const AdviceClient&) = delete;

    /// Sends one request and blocks for the answer. Throws
    /// std::runtime_error carrying the server's message on an error
    /// response, ProtocolError on a malformed response frame, or
    /// std::runtime_error on transport failure.
    AdviceResponse query(const AdviceRequest& request);

    /// Like query(), but returns the raw response payload bytes (after the
    /// frame header) without decoding — what the soak byte-compares against
    /// the batch path's encoding. Error responses come back as bytes too.
    std::vector<std::uint8_t> raw_query(const AdviceRequest& request);

    bool connected() const { return fd_ >= 0; }
    void close();

private:
    void send_request(const AdviceRequest& request);
    int fd_ = -1;
    std::vector<std::uint8_t> buffer_;
};

}  // namespace hp::server
