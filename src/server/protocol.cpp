#include "server/protocol.hpp"

#include <cstdio>
#include <cstring>

namespace hp::server {
namespace {

// Every protocol check funnels through this macro so the thrown message
// pins the exact invariant that failed — the server relays it to the
// offending client verbatim.
#define HP_PROTO_FAIL(msg)                                              \
    throw ProtocolError(std::string(__FILE__) + ":" +                   \
                        std::to_string(__LINE__) + ": " + (msg))

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
    out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    const std::size_t n = out.size();
    out.resize(n + sizeof v);
    std::memcpy(out.data() + n, &v, sizeof v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    const std::size_t n = out.size();
    out.resize(n + sizeof v);
    std::memcpy(out.data() + n, &v, sizeof v);
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
    const std::size_t n = out.size();
    out.resize(n + sizeof v);
    std::memcpy(out.data() + n, &v, sizeof v);
}

/// Bounds-checked read cursor over one frame payload.
class Cursor {
public:
    Cursor(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size) {}

    std::uint8_t u8() {
        need(1, "u8");
        return data_[pos_++];
    }
    std::uint16_t u16() {
        need(2, "u16");
        std::uint16_t v;
        std::memcpy(&v, data_ + pos_, sizeof v);
        pos_ += sizeof v;
        return v;
    }
    std::uint32_t u32() {
        need(4, "u32");
        std::uint32_t v;
        std::memcpy(&v, data_ + pos_, sizeof v);
        pos_ += sizeof v;
        return v;
    }
    double f64() {
        need(8, "f64");
        double v;
        std::memcpy(&v, data_ + pos_, sizeof v);
        pos_ += sizeof v;
        return v;
    }
    std::string bytes(std::size_t n, const char* what) {
        need(n, what);
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }
    void done() {
        if (pos_ != size_)
            HP_PROTO_FAIL("trailing garbage: payload has " +
                          std::to_string(size_ - pos_) +
                          " byte(s) past the last field");
    }

private:
    void need(std::size_t n, const char* what) {
        if (size_ - pos_ < n)
            HP_PROTO_FAIL("truncated payload: need " + std::to_string(n) +
                          " byte(s) for " + what + " at offset " +
                          std::to_string(pos_) + " of " +
                          std::to_string(size_));
    }
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

void frame(std::vector<std::uint8_t>& out, std::uint32_t magic,
           std::size_t header_at) {
    const std::size_t payload = out.size() - header_at - 8;
    if (payload > kMaxPayloadBytes)
        HP_PROTO_FAIL("encoded payload exceeds kMaxPayloadBytes");
    const std::uint32_t len = static_cast<std::uint32_t>(payload);
    std::memcpy(out.data() + header_at, &magic, 4);
    std::memcpy(out.data() + header_at + 4, &len, 4);
}

std::size_t begin_frame(std::vector<std::uint8_t>& out) {
    const std::size_t at = out.size();
    out.resize(at + 8);  // patched by frame()
    return at;
}

}  // namespace

std::uint32_t check_frame_header(const std::uint8_t header[8],
                                 std::uint32_t expected_magic) {
    std::uint32_t magic, len;
    std::memcpy(&magic, header, 4);
    std::memcpy(&len, header + 4, 4);
    if (magic != expected_magic)
        HP_PROTO_FAIL("bad frame magic 0x" + [&] {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%08x", magic);
            return std::string(buf);
        }());
    if (len > kMaxPayloadBytes)
        HP_PROTO_FAIL("frame payload length " + std::to_string(len) +
                      " exceeds cap " + std::to_string(kMaxPayloadBytes));
    return len;
}

void encode_request(const AdviceRequest& request,
                    std::vector<std::uint8_t>& out) {
    if (request.config.size() > kMaxConfigLen)
        HP_PROTO_FAIL("config tag longer than kMaxConfigLen");
    if (request.thread_power_w.size() > kMaxThreads)
        HP_PROTO_FAIL("thread count exceeds kMaxThreads");
    if (request.tau_grid_s.size() > kMaxTauGrid)
        HP_PROTO_FAIL("tau grid exceeds kMaxTauGrid");
    const std::size_t at = begin_frame(out);
    put_u16(out, static_cast<std::uint16_t>(request.config.size()));
    out.insert(out.end(), request.config.begin(), request.config.end());
    put_u32(out, static_cast<std::uint32_t>(request.thread_power_w.size()));
    for (double p : request.thread_power_w) put_f64(out, p);
    put_u32(out, static_cast<std::uint32_t>(request.tau_grid_s.size()));
    for (double t : request.tau_grid_s) put_f64(out, t);
    frame(out, kRequestMagic, at);
}

AdviceRequest decode_request(const std::uint8_t* payload, std::size_t size) {
    Cursor c(payload, size);
    AdviceRequest request;
    const std::uint16_t config_len = c.u16();
    if (config_len > kMaxConfigLen)
        HP_PROTO_FAIL("config tag length " + std::to_string(config_len) +
                      " exceeds cap " + std::to_string(kMaxConfigLen));
    request.config = c.bytes(config_len, "config tag");
    const std::uint32_t threads = c.u32();
    if (threads > kMaxThreads)
        HP_PROTO_FAIL("thread count " + std::to_string(threads) +
                      " exceeds cap " + std::to_string(kMaxThreads));
    request.thread_power_w.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i)
        request.thread_power_w.push_back(c.f64());
    const std::uint32_t taus = c.u32();
    if (taus > kMaxTauGrid)
        HP_PROTO_FAIL("tau grid size " + std::to_string(taus) +
                      " exceeds cap " + std::to_string(kMaxTauGrid));
    request.tau_grid_s.reserve(taus);
    for (std::uint32_t i = 0; i < taus; ++i)
        request.tau_grid_s.push_back(c.f64());
    c.done();
    return request;
}

void encode_response(const AdviceResponse& response,
                     std::vector<std::uint8_t>& out) {
    const std::size_t at = begin_frame(out);
    put_u8(out, 0);  // status ok
    put_u8(out, response.rotation_on);
    put_u8(out, response.thermally_safe);
    put_f64(out, response.tau_s);
    put_f64(out, response.predicted_peak_c);
    put_f64(out, response.error_bound_c);
    put_u32(out, static_cast<std::uint32_t>(response.core_of_thread.size()));
    for (std::uint32_t core : response.core_of_thread) put_u32(out, core);
    put_u32(out, static_cast<std::uint32_t>(response.peak_core_c.size()));
    for (double t : response.peak_core_c) put_f64(out, t);
    frame(out, kResponseMagic, at);
}

void encode_error_response(const std::string& message,
                           std::vector<std::uint8_t>& out) {
    const std::size_t at = begin_frame(out);
    put_u8(out, 1);  // status error
    std::string clipped = message.substr(0, 4096);
    put_u32(out, static_cast<std::uint32_t>(clipped.size()));
    out.insert(out.end(), clipped.begin(), clipped.end());
    frame(out, kResponseMagic, at);
}

AdviceResponse decode_response(const std::uint8_t* payload, std::size_t size,
                               std::string* error_out) {
    Cursor c(payload, size);
    AdviceResponse response;
    const std::uint8_t status = c.u8();
    if (status == 1) {
        const std::uint32_t len = c.u32();
        std::string message = c.bytes(len, "error message");
        c.done();
        if (error_out) {
            *error_out = std::move(message);
            return response;
        }
        throw std::runtime_error("advice server error: " + message);
    }
    if (status != 0)
        HP_PROTO_FAIL("unknown response status " + std::to_string(status));
    if (error_out) error_out->clear();
    response.rotation_on = c.u8();
    response.thermally_safe = c.u8();
    response.tau_s = c.f64();
    response.predicted_peak_c = c.f64();
    response.error_bound_c = c.f64();
    const std::uint32_t threads = c.u32();
    if (threads > kMaxThreads)
        HP_PROTO_FAIL("response thread count exceeds cap");
    response.core_of_thread.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i)
        response.core_of_thread.push_back(c.u32());
    const std::uint32_t cores = c.u32();
    if (cores > kMaxThreads)
        HP_PROTO_FAIL("response core count exceeds cap");
    response.peak_core_c.reserve(cores);
    for (std::uint32_t i = 0; i < cores; ++i)
        response.peak_core_c.push_back(c.f64());
    c.done();
    return response;
}

}  // namespace hp::server
