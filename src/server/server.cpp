#include "server/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "campaign/study_setup.hpp"
#include "core/concurrent_peak_cache.hpp"
#include "exec/arena.hpp"
#include "server/protocol.hpp"

namespace hp::server {
namespace {

/// Dispatcher poll tick — also the stop-flag latency of every thread.
constexpr int kPollTickMs = 100;
/// After stop(): how long an open connection gets to reveal an in-flight
/// request before it is closed.
constexpr int kDrainGraceMs = 100;

const std::vector<double>& latency_bounds_us() {
    static const std::vector<double> bounds = {
        50.0,     100.0,    200.0,    500.0,     1000.0,    2000.0,
        5000.0,   10000.0,  20000.0,  50000.0,   100000.0,  200000.0,
        500000.0, 1000000.0};
    return bounds;
}

bool poll_fd(int fd, short events, int timeout_ms) {
    pollfd p{fd, events, 0};
    for (;;) {
        const int rc = ::poll(&p, 1, timeout_ms);
        if (rc > 0) return true;
        if (rc == 0) return false;
        if (errno != EINTR) return false;
    }
}

/// 1 = got all @p n bytes; 0 = clean EOF before the first byte (and
/// @p eof_ok); -1 = error, timeout, or EOF mid-buffer. The per-stall
/// @p timeout_ms budget only engages through the EAGAIN->poll path, which
/// requires the fd to be non-blocking (see accept4 in dispatcher_loop).
int read_full(int fd, std::uint8_t* buf, std::size_t n, bool eof_ok,
              int timeout_ms) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t rc = ::read(fd, buf + got, n - got);
        if (rc > 0) {
            got += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc == 0) return (got == 0 && eof_ok) ? 0 : -1;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!poll_fd(fd, POLLIN, timeout_ms)) return -1;
            continue;
        }
        return -1;
    }
    return 1;
}

bool write_full(int fd, const std::uint8_t* buf, std::size_t n,
                int timeout_ms) {
    std::size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL: a client that hung up mid-response surfaces as
        // EPIPE (drop the connection), never as a process-killing SIGPIPE.
        const ssize_t rc = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
        if (rc > 0) {
            put += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc < 0 && errno == EINTR) continue;
        if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!poll_fd(fd, POLLOUT, timeout_ms)) return false;
            continue;
        }
        return false;
    }
    return true;
}

}  // namespace

/// One config tag's serving state: the read-only base bundle, per-NUMA-node
/// replicas (copy-on-first-use, as the campaign engine replicates
/// StudySetups) and the tag's shared lock-free prediction cache.
struct AdviceServer::ConfigState {
    struct NodeReplica {
        std::once_flag once;
        std::optional<AdviceBundle> bundle;
    };

    ConfigState(std::string tag_, AdviceBundle base_, std::size_t nodes)
        : tag(std::move(tag_)), base(std::move(base_)), replicas(nodes) {}

    std::string tag;
    AdviceBundle base;
    std::vector<NodeReplica> replicas;
    core::ConcurrentPeakCache cache;
};

/// Per-worker mutable state. Everything here belongs to exactly one worker
/// thread; the mutex only guards the metrics registry against concurrent
/// metrics() snapshots.
struct AdviceServer::WorkerState {
    mutable std::mutex obs_mutex;
    obs::MetricsRegistry registry;
    obs::Counter* requests = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* request_errors = nullptr;
    obs::Histogram* latency_us = nullptr;
    int node = -1;
    AdviceScratch* scratch = nullptr;  ///< points into worker_loop's frame
    std::vector<std::uint8_t> in_buf;
    std::vector<std::uint8_t> out_buf;
};

AdviceServer::AdviceServer(ServerConfig config) : config_(std::move(config)) {
    if (config_.socket_path.empty())
        throw std::invalid_argument("AdviceServer: socket_path is required");
    if (config_.threads == 0)
        throw std::invalid_argument(
            "AdviceServer: at least one worker thread");
    if (config_.configs.empty())
        throw std::invalid_argument(
            "AdviceServer: at least one config tag to serve");
    if (config_.io_timeout_ms <= 0)
        throw std::invalid_argument(
            "AdviceServer: io_timeout_ms must be positive");

    config_.exec.apply_env_overrides();
    topology_ = config_.exec.resolve_topology();
    placements_ =
        exec::plan_pinning(topology_, config_.threads, config_.exec.pin);
    int max_node = -1;
    for (const exec::WorkerPlacement& p : placements_)
        max_node = std::max(max_node, p.node);
    replicate_bundles_ =
        config_.exec.numa && topology_.multi_node() && max_node >= 0;
    const std::size_t replica_slots =
        replicate_bundles_ ? static_cast<std::size_t>(max_node) + 1 : 0;

    // Bundles first (the expensive part, and the part most likely to throw
    // on a bad tag) — nothing to unwind yet.
    for (const std::string& tag : config_.configs) {
        if (find_config(tag))
            throw std::invalid_argument(
                "AdviceServer: duplicate config tag '" + tag + "'");
        AdviceBundle base(campaign::StudySetup::by_name(tag, config_.solver),
                          config_.defaults);
        auto state = std::make_unique<ConfigState>(tag, std::move(base),
                                                   replica_slots);
        if (config_.cache_entries)
            state->cache.configure(config_.cache_entries,
                                   state->base.max_key_words());
        configs_.push_back(std::move(state));
    }

    for (std::size_t i = 0; i < config_.threads; ++i) {
        auto w = std::make_unique<WorkerState>();
        w->requests = &w->registry.counter("server.requests");
        w->protocol_errors =
            &w->registry.counter("server.errors.protocol");
        w->request_errors = &w->registry.counter("server.errors.request");
        w->latency_us =
            &w->registry.histogram("server.latency_us", latency_bounds_us());
        workers_.push_back(std::move(w));
    }

    // Socket + self-pipe. From here on, failures must unwind the fds.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path))
        throw std::invalid_argument("AdviceServer: socket path longer than " +
                                    std::to_string(sizeof(addr.sun_path) - 1) +
                                    " bytes");
    std::memcpy(addr.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size() + 1);
    struct stat st{};
    if (::lstat(config_.socket_path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode))
            throw std::runtime_error("AdviceServer: '" + config_.socket_path +
                                     "' exists and is not a socket");
        ::unlink(config_.socket_path.c_str());  // stale socket of a dead server
    }
    listen_fd_ =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error(std::string("AdviceServer: socket(): ") +
                                 std::strerror(errno));
    const auto fail = [&](const char* what) {
        const int err = errno;
        if (listen_fd_ >= 0) ::close(listen_fd_);
        if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
        if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
        ::unlink(config_.socket_path.c_str());
        throw std::runtime_error(std::string("AdviceServer: ") + what + ": " +
                                 std::strerror(err));
    };
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
        fail("bind()");
    if (::listen(listen_fd_, config_.listen_backlog) != 0) fail("listen()");
    if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) fail("pipe2()");

    started_at_ = std::chrono::steady_clock::now();
    try {
        dispatcher_ = std::thread([this] { dispatcher_loop(); });
        threads_.reserve(config_.threads);
        for (std::size_t i = 0; i < config_.threads; ++i)
            threads_.emplace_back([this, i] { worker_loop(i); });
    } catch (...) {
        // std::thread construction can throw under resource exhaustion.
        // ~AdviceServer never runs for a throwing constructor, so destroying
        // the still-joinable thread members would call std::terminate —
        // stop() joins whatever did start and releases the fds/socket file.
        stop();
        throw;
    }
}

AdviceServer::~AdviceServer() { stop(); }

AdviceServer::ConfigState* AdviceServer::find_config(const std::string& tag) {
    for (auto& state : configs_)
        if (state->tag == tag) return state.get();
    return nullptr;
}

const AdviceBundle& AdviceServer::bundle_for(ConfigState& state, int node) {
    if (!replicate_bundles_ || node < 0 ||
        static_cast<std::size_t>(node) >= state.replicas.size())
        return state.base;
    ConfigState::NodeReplica& replica =
        state.replicas[static_cast<std::size_t>(node)];
    // First worker on the node pays one deep copy (tables only, never an
    // eigensolve); first touch lands the pages node-local.
    std::call_once(replica.once,
                   [&] { replica.bundle.emplace(state.base.replicate()); });
    return *replica.bundle;
}

void AdviceServer::dispatcher_loop() {
    std::vector<int> idle;
    std::vector<pollfd> pfds;
    const auto collect_parked = [&] {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        idle.insert(idle.end(), parked_fds_.begin(), parked_fds_.end());
        parked_fds_.clear();
    };
    while (!stopping_.load(std::memory_order_acquire)) {
        collect_parked();
        pfds.clear();
        pfds.push_back({listen_fd_, POLLIN, 0});
        pfds.push_back({wake_pipe_[0], POLLIN, 0});
        for (int fd : idle) pfds.push_back({fd, POLLIN, 0});
        const int rc = ::poll(pfds.data(), pfds.size(), kPollTickMs);
        if (rc < 0 && errno != EINTR) {
            // Fatal poll error: fail the whole server, not just this loop.
            // Without stopping_ set, workers would wait forever on the
            // queue_cv_ predicate (it needs stopping_ && dispatcher_done_)
            // and running() would report true while nothing is accepted.
            stopping_.store(true, std::memory_order_release);
            break;
        }
        if (rc <= 0) continue;
        if (pfds[1].revents & POLLIN) {
            std::uint8_t drain[64];
            while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
            }
        }
        // Compact idle first (it is rebuilt from the polled entries), THEN
        // accept — a connection accepted this very tick must survive into
        // the next poll set, not be clobbered by the compaction.
        bool dispatched = false;
        std::size_t keep = 0;
        for (std::size_t i = 2; i < pfds.size(); ++i) {
            const int fd = pfds[i].fd;
            if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                std::lock_guard<std::mutex> lock(queue_mutex_);
                ready_fds_.push_back(fd);
                dispatched = true;
            } else {
                idle[keep++] = fd;
            }
        }
        idle.resize(keep);
        if (pfds[0].revents & POLLIN) {
            for (;;) {
                // SOCK_NONBLOCK is load-bearing: accepted sockets do NOT
                // inherit O_NONBLOCK from the listener, and the stall
                // timeout in read_full/write_full only engages via the
                // EAGAIN->poll path. A blocking fd would let one half-sent
                // frame park a worker in read() forever.
                const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                          SOCK_CLOEXEC | SOCK_NONBLOCK);
                if (cfd < 0) break;  // EAGAIN: accepted everything pending
                idle.push_back(cfd);
            }
        }
        if (dispatched) queue_cv_.notify_all();
    }

    // Shutdown sweep: in-flight requests (bytes already readable within the
    // grace window) are dispatched for a final answer; idle connections
    // close.
    collect_parked();
    if (!idle.empty()) {
        pfds.clear();
        for (int fd : idle) pfds.push_back({fd, POLLIN, 0});
        ::poll(pfds.data(), pfds.size(), kDrainGraceMs);
        std::lock_guard<std::mutex> lock(queue_mutex_);
        for (const pollfd& p : pfds) {
            if (p.revents & (POLLIN | POLLHUP | POLLERR))
                ready_fds_.push_back(p.fd);
            else
                ::close(p.fd);
        }
    }
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        dispatcher_done_ = true;
    }
    queue_cv_.notify_all();
}

void AdviceServer::worker_loop(std::size_t index) {
    WorkerState& worker = *workers_[index];
    const exec::WorkerPlacement place =
        index < placements_.size() ? placements_[index]
                                   : exec::WorkerPlacement{};
    worker.node = place.node;
    if (place.cpu >= 0) exec::pin_current_thread(place.cpu);
    // Shared-nothing worker scratch: every long-lived buffer (the
    // Algorithm-1 workspace above all) carved from an arena bound to the
    // worker's NUMA node, exactly as campaign workers do.
    exec::Arena arena(config_.exec.arena_block_bytes,
                      config_.exec.numa ? place.node : -1);
    exec::ArenaResource arena_mr(arena);
    AdviceScratch scratch(&arena_mr);
    worker.scratch = &scratch;

    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [&] {
                return !ready_fds_.empty() ||
                       (stopping_.load(std::memory_order_acquire) &&
                        dispatcher_done_);
            });
            if (ready_fds_.empty()) break;  // stopping and fully drained
            fd = ready_fds_.front();
            ready_fds_.pop_front();
        }
        bool keep = serve_one(fd, worker);
        if (stopping_.load(std::memory_order_acquire)) {
            // Drain: answer whatever this connection already has in flight,
            // then close it — never park during shutdown.
            while (keep && poll_fd(fd, POLLIN, kDrainGraceMs))
                keep = serve_one(fd, worker);
            ::close(fd);
            continue;
        }
        if (!keep) {
            ::close(fd);
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            parked_fds_.push_back(fd);
        }
        const std::uint8_t one = 1;
        [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &one, 1);
    }
    worker.scratch = nullptr;
}

bool AdviceServer::serve_one(int fd, WorkerState& worker) {
    const int io_timeout_ms = config_.io_timeout_ms;
    std::uint8_t header[8];
    const int got =
        read_full(fd, header, sizeof header, /*eof_ok=*/true, io_timeout_ms);
    if (got == 0) return false;  // client hung up between requests
    worker.out_buf.clear();
    if (got < 0) return false;   // torn header / timeout: nothing to answer
    try {
        const std::uint32_t len = check_frame_header(header, kRequestMagic);
        worker.in_buf.resize(len);
        if (len != 0 && read_full(fd, worker.in_buf.data(), len,
                                  /*eof_ok=*/false, io_timeout_ms) != 1)
            return false;  // frame truncated on the wire
    } catch (const ProtocolError& e) {
        // Broken framing: report (with the protocol.cpp file:line of the
        // violated check) and drop the connection — the byte stream cannot
        // be resynchronised.
        {
            std::lock_guard<std::mutex> lock(worker.obs_mutex);
            worker.protocol_errors->add();
        }
        encode_error_response(e.what(), worker.out_buf);
        write_full(fd, worker.out_buf.data(), worker.out_buf.size(),
                   io_timeout_ms);
        return false;
    }

    const auto t0 = std::chrono::steady_clock::now();
    bool close_after = false;
    try {
        const AdviceRequest request =
            decode_request(worker.in_buf.data(), worker.in_buf.size());
        ConfigState* state = find_config(request.config);
        if (!state) {
            std::string known;
            for (const auto& s : configs_) {
                if (!known.empty()) known += ", ";
                known += s->tag;
            }
            throw std::invalid_argument("advise: config tag '" +
                                        request.config +
                                        "' not served (serving: " + known +
                                        ")");
        }
        const AdviceBundle& bundle = bundle_for(*state, worker.node);
        const AdviceResponse response =
            advise(bundle, request, *worker.scratch,
                   config_.cache_entries ? &state->cache : nullptr);
        encode_response(response, worker.out_buf);
    } catch (const ProtocolError& e) {
        // Malformed payload: answered, then closed (framing is suspect).
        {
            std::lock_guard<std::mutex> lock(worker.obs_mutex);
            worker.protocol_errors->add();
        }
        encode_error_response(e.what(), worker.out_buf);
        close_after = true;
    } catch (const std::exception& e) {
        // Semantically invalid request: answered; the connection (and its
        // framing) is intact, so it stays open.
        {
            std::lock_guard<std::mutex> lock(worker.obs_mutex);
            worker.request_errors->add();
        }
        encode_error_response(e.what(), worker.out_buf);
    }
    // Tally BEFORE writing the answer: once the response bytes hit the
    // socket a client may act on them — including reading the served-count
    // metrics — so an increment after the write could still be in flight.
    if (!close_after) {
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count();
        {
            std::lock_guard<std::mutex> lock(worker.obs_mutex);
            worker.requests->add();
            worker.latency_us->observe(us);
        }
        requests_total_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!write_full(fd, worker.out_buf.data(), worker.out_buf.size(),
                    io_timeout_ms))
        return false;
    return !close_after;
}

void AdviceServer::stop() {
    std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    if (stopped_) return;
    stopping_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        // (queue state untouched; the lock orders the flag with waiters)
    }
    queue_cv_.notify_all();
    const std::uint8_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &one, 1);
    if (dispatcher_.joinable()) dispatcher_.join();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    // Workers only ever exit with the ready queue empty, but a worker that
    // raced the shutdown sweep may have parked one last connection.
    for (int fd : parked_fds_) ::close(fd);
    parked_fds_.clear();
    for (int fd : ready_fds_) ::close(fd);
    ready_fds_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    ::unlink(config_.socket_path.c_str());
    stopped_ = true;
}

obs::MetricsSnapshot AdviceServer::metrics() const {
    std::vector<obs::MetricsSnapshot> snaps;
    snaps.reserve(workers_.size() + 1);
    for (const auto& worker : workers_) {
        std::lock_guard<std::mutex> lock(worker->obs_mutex);
        snaps.push_back(worker->registry.snapshot());
    }
    obs::MetricsSnapshot merged = obs::merge(snaps);

    // Derived instruments: cache totals (shared, so read once here rather
    // than double-counted per worker) and the qps / latency-quantile gauges.
    obs::MetricsRegistry derived;
    std::uint64_t hits = 0, misses = 0, races = 0;
    for (const auto& state : configs_) {
        const core::ConcurrentPeakCache::Stats s = state->cache.stats();
        hits += s.hits;
        misses += s.misses;
        races += s.races;
    }
    derived.counter("server.cache_hits").add(hits);
    derived.counter("server.cache_misses").add(misses);
    derived.counter("server.cache_races").add(races);
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at_)
            .count();
    const double requests =
        static_cast<double>(requests_total_.load(std::memory_order_relaxed));
    derived.gauge("server.uptime_s").set(uptime_s);
    derived.gauge("server.qps").set(uptime_s > 0.0 ? requests / uptime_s
                                                   : 0.0);
    for (const auto& h : merged.histograms) {
        if (h.name != "server.latency_us") continue;
        derived.gauge("server.latency_p50_us")
            .set(obs::Histogram::histogram_quantile(h.bounds, h.counts, 0.50));
        derived.gauge("server.latency_p99_us")
            .set(obs::Histogram::histogram_quantile(h.bounds, h.counts, 0.99));
    }
    snaps.clear();
    snaps.push_back(std::move(merged));
    snaps.push_back(derived.snapshot());
    return obs::merge(snaps);
}

}  // namespace hp::server
