#include "server/advice.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arch/manycore.hpp"
#include "core/peak_cache.hpp"
#include "power/power_model.hpp"

namespace hp::server {
namespace {

// Key-space discriminators so a static and a rotation evaluation of the
// same powers can never alias (the backend_signature prefix already
// separates solver backends and chip models).
constexpr std::uint64_t kStaticTag = 0x5354415449435f50ull;  // "STATIC_P"
constexpr std::uint64_t kRotationTag = 0x524f544154455f50ull;  // "ROTATE_P"

template <typename Compute>
double eval_cached(core::ConcurrentPeakCache* cache,
                   const core::CacheKey& key, Compute&& compute) {
    double value;
    if (cache && cache->lookup(key.data(), key.size(), &value)) return value;
    value = compute();
    if (cache) cache->insert(key.data(), key.size(), value);
    return value;
}

}  // namespace

AdviceBundle::AdviceBundle(campaign::StudySetup setup, AdviceDefaults defaults)
    : setup_(std::move(setup)), defaults_(std::move(defaults)) {
    // Idle power evaluated conservatively at the DTM threshold, matching
    // HotPotato's run-time analyzer construction.
    power::PowerModel power(power::PowerParams{}, setup_.chip().dvfs());
    idle_power_w_ = power.idle_power_w(defaults_.t_dtm_c);
    analyzer_ = std::make_unique<core::PeakTemperatureAnalyzer>(
        setup_.solver(), defaults_.ambient_c, idle_power_w_);
    backend_signature_ = setup_.solver().backend_signature();
}

std::size_t AdviceBundle::core_count() const {
    return setup_.chip().core_count();
}

std::size_t AdviceBundle::max_key_words() const {
    // Static key: sig + tag + count + one word per core.
    // Rotation key: sig + tag + τ + ring count + one word per ring (size)
    // + one word per core (slot power). The rotation form dominates.
    return 4 + setup_.chip().rings().size() + core_count();
}

AdviceBundle AdviceBundle::replicate() const {
    return AdviceBundle(setup_.replicate(), defaults_);
}

AdviceResponse advise(const AdviceBundle& bundle,
                      const AdviceRequest& request, AdviceScratch& scratch,
                      core::ConcurrentPeakCache* cache) {
    const arch::ManyCore& chip = bundle.setup().chip();
    const std::vector<arch::AmdRing>& rings = chip.rings();
    const AdviceDefaults& d = bundle.defaults();
    const std::size_t n = chip.core_count();
    const std::size_t threads = request.thread_power_w.size();

    // --- semantic validation (protocol-level framing was already checked) --
    if (threads > n)
        throw std::invalid_argument(
            "advise: " + std::to_string(threads) + " threads exceed the " +
            std::to_string(n) + " cores of config '" + request.config + "'");
    for (double p : request.thread_power_w)
        if (!std::isfinite(p) || p < 0.0)
            throw std::invalid_argument(
                "advise: thread power must be finite and non-negative");
    for (double t : request.tau_grid_s)
        if (!std::isfinite(t) || t <= 0.0)
            throw std::invalid_argument(
                "advise: tau grid entries must be finite and positive");

    // --- quantise (same grid as the run-time schedulers, which is what
    // makes cache hits bit-identical to fresh evaluations) -----------------
    scratch.qpower_.resize(threads);
    for (std::size_t t = 0; t < threads; ++t)
        scratch.qpower_[t] = core::quantise_power_w(request.thread_power_w[t]);

    // --- scan grid, slowest (largest τ) first ------------------------------
    scratch.taus_ =
        request.tau_grid_s.empty() ? d.tau_ladder_s : request.tau_grid_s;
    std::sort(scratch.taus_.begin(), scratch.taus_.end(),
              std::greater<double>());
    scratch.taus_.erase(
        std::unique(scratch.taus_.begin(), scratch.taus_.end()),
        scratch.taus_.end());

    // --- placement: request order into the lowest-AMD rings ----------------
    // The online scheduler places *arriving* threads one at a time
    // (Algorithm 2); the oracle answers for a complete thread set, so it
    // fills the performance-preferred low-AMD rings in request order and
    // certifies the whole assignment per rotation setting below.
    AdviceResponse response;
    response.core_of_thread.resize(threads);
    scratch.rings_.resize(rings.size());
    for (std::size_t r = 0; r < rings.size(); ++r) {
        scratch.rings_[r].cores = rings[r].cores;
        scratch.rings_[r].slot_power_w.assign(rings[r].cores.size(),
                                              bundle.idle_power_w());
    }
    {
        std::size_t ring = 0, slot = 0;
        for (std::size_t t = 0; t < threads; ++t) {
            while (slot >= rings[ring].cores.size()) {
                ++ring;
                slot = 0;
            }
            scratch.rings_[ring].slot_power_w[slot] = scratch.qpower_[t];
            response.core_of_thread[t] =
                static_cast<std::uint32_t>(rings[ring].cores[slot]);
            ++slot;
        }
    }

    const double limit = d.t_dtm_c - d.headroom_delta_c;
    const core::PeakTemperatureAnalyzer& analyzer = bundle.analyzer();
    response.error_bound_c = bundle.setup().solver().error_bound_c();
    scratch.map_.resize(n);

    // --- static candidate (rotation off) -----------------------------------
    if (scratch.static_power_.size() != n) scratch.static_power_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        scratch.static_power_[i] = bundle.idle_power_w();
    for (std::size_t t = 0; t < threads; ++t)
        scratch.static_power_[response.core_of_thread[t]] =
            scratch.qpower_[t];

    scratch.key_.clear();
    scratch.key_.push(bundle.backend_signature());
    scratch.key_.push(kStaticTag);
    scratch.key_.push(static_cast<std::uint64_t>(n));
    for (std::size_t i = 0; i < n; ++i)
        scratch.key_.push(scratch.static_power_[i]);
    const double static_peak = eval_cached(cache, scratch.key_, [&] {
        return analyzer.static_peak(scratch.static_power_,
                                    scratch.workspace_);
    });

    if (static_peak < limit) {
        response.rotation_on = 0;
        response.tau_s = 0.0;
        response.thermally_safe = 1;
        // The chosen setting's map is always evaluated fresh; its scalar is
        // the same deterministic computation the (possibly cached) scan
        // value came from, so the response carries identical bits either
        // way.
        response.predicted_peak_c = analyzer.static_peak_map(
            scratch.static_power_, scratch.workspace_, scratch.map_.data());
        response.peak_core_c = scratch.map_;
        return response;
    }

    // --- rotation scan: slowest safe τ, else fastest-and-unsafe ------------
    double chosen_tau = scratch.taus_.back();  // fastest rung as fallback
    bool safe = false;
    for (double tau : scratch.taus_) {
        scratch.key_.clear();
        scratch.key_.push(bundle.backend_signature());
        scratch.key_.push(kRotationTag);
        scratch.key_.push(tau);
        scratch.key_.push(static_cast<std::uint64_t>(scratch.rings_.size()));
        for (const core::RotationRingSpec& ring : scratch.rings_) {
            scratch.key_.push(
                static_cast<std::uint64_t>(ring.slot_power_w.size()));
            for (double p : ring.slot_power_w) scratch.key_.push(p);
        }
        const double peak = eval_cached(cache, scratch.key_, [&] {
            return analyzer.rotation_peak(scratch.rings_, tau,
                                          d.samples_per_epoch,
                                          scratch.workspace_);
        });
        if (peak < limit) {
            chosen_tau = tau;
            safe = true;
            break;
        }
    }

    response.rotation_on = 1;
    response.tau_s = chosen_tau;
    response.predicted_peak_c =
        analyzer.rotation_peak_map(scratch.rings_, chosen_tau,
                                   d.samples_per_epoch, scratch.workspace_,
                                   scratch.map_.data());
    response.peak_core_c = scratch.map_;
    response.thermally_safe =
        (safe || response.predicted_peak_c < limit) ? 1 : 0;
    return response;
}

std::vector<AdviceResponse> advise_batch(
    const AdviceBundle& bundle, const std::vector<AdviceRequest>& requests) {
    AdviceScratch scratch;
    std::vector<AdviceResponse> responses;
    responses.reserve(requests.size());
    for (const AdviceRequest& request : requests)
        responses.push_back(advise(bundle, request, scratch,
                                   /*cache=*/nullptr));
    return responses;
}

}  // namespace hp::server
