#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace hp::obs {

/// Preallocated flight-recorder ring of trace Events.
///
/// The full capacity is allocated at construction; record() writes into the
/// ring without ever touching the heap, so it is safe inside the simulator's
/// zero-allocation micro-step. On overflow the oldest events are overwritten
/// (flight-recorder policy — the tail of a run is usually the interesting
/// part) and the drop is counted, so exports can state what was lost instead
/// of silently truncating.
class TraceBuffer {
public:
    /// @p capacity = 0 disables tracing entirely (record() is a no-op).
    explicit TraceBuffer(std::size_t capacity);

    void record(const Event& e) noexcept;

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return size_; }
    /// Events recorded over the buffer's lifetime (kept + dropped).
    std::uint64_t recorded() const { return recorded_; }
    /// Events overwritten by the flight-recorder overflow policy.
    std::uint64_t dropped() const { return recorded_ - size_; }

    /// Retained events, oldest first. Allocates — not for the hot path.
    std::vector<Event> snapshot() const;

    void clear();

private:
    std::vector<Event> ring_;
    std::size_t head_ = 0;  ///< index of the oldest retained event
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
};

/// Events as CSV: `time_s,kind,arg0,arg1,value`, oldest first. Output is a
/// pure function of the event list (fixed formatting, no wall-clock or host
/// data), so two identical runs export byte-identical files at any campaign
/// worker count.
void write_events_csv(std::ostream& out, const std::vector<Event>& events);

/// Events as a Chrome `trace_event` JSON document (load via
/// chrome://tracing or Perfetto). Every event becomes an instant event with
/// ts in microseconds of *simulated* time; @p process_name labels the pid-0
/// metadata row. Byte-deterministic like the CSV export.
void write_chrome_trace(std::ostream& out, const std::vector<Event>& events,
                        const std::string& process_name);

/// Parses a CSV written by write_events_csv (round-trips). Malformed rows
/// are rejected with a std::runtime_error naming @p source_name and the
/// line number.
std::vector<Event> read_events_csv(std::istream& in,
                                   const std::string& source_name = "<stream>");

}  // namespace hp::obs
