#include "obs/recorder.hpp"

namespace hp::obs {

const char* to_string(Phase phase) {
    switch (phase) {
        case Phase::kMatexSolve: return "matex_solve";
        case Phase::kPeakAnalysis: return "peak_analysis";
        case Phase::kSchedulerEpoch: return "scheduler_epoch";
        case Phase::kCount: break;
    }
    return "unknown";
}

Recorder::Recorder(const RecorderConfig& config)
    : trace_(config.trace_capacity) {}

MetricsSnapshot Recorder::snapshot() const {
    MetricsSnapshot out = registry_.snapshot();
    for (std::size_t i = 0; i < phases_.size(); ++i) {
        if (phases_[i].calls == 0) continue;
        out.phases.push_back({to_string(static_cast<Phase>(i)),
                              phases_[i].calls, phases_[i].total_s});
    }
    out.events_recorded = trace_.recorded();
    out.events_dropped = trace_.dropped();
    return out;
}

}  // namespace hp::obs
