#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace hp::obs {

/// Monotone event count. add() is a single increment — safe and
/// allocation-free inside the simulator micro-step.
struct Counter {
    std::uint64_t value = 0;
    void add(std::uint64_t delta = 1) noexcept { value += delta; }
};

/// Last-written scalar (peak temperature, migrations/sec, ...).
struct Gauge {
    double value = 0.0;
    void set(double v) noexcept { value = v; }
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// overflow bucket counts the rest. Bounds are fixed at registration, so
/// observe() is a small scan over a preallocated array — allocation-free.
class Histogram {
public:
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double x) noexcept;

    const std::vector<double>& bounds() const { return bounds_; }
    /// bounds().size() + 1 entries; the last is the overflow bucket.
    const std::vector<std::uint64_t>& counts() const { return counts_; }
    std::uint64_t total() const;

    /// Quantile estimate, q in [0, 1]. See histogram_quantile().
    double quantile(double q) const {
        return histogram_quantile(bounds_, counts_, q);
    }

    /// Fixed-bucket quantile estimate over (bounds, counts) as laid out by
    /// Histogram: finds the bucket holding the ceil(q·total)-th observation
    /// and interpolates linearly inside it, assuming non-negative
    /// observations (bucket 0 spans [0, bounds[0]]). The overflow bucket
    /// reports its lower bound — the estimate saturates at bounds.back().
    /// Returns 0 for an empty histogram. Exposed as a free-standing helper
    /// so snapshot consumers (HistogramValue) can use it too.
    static double histogram_quantile(const std::vector<double>& bounds,
                                     const std::vector<std::uint64_t>& counts,
                                     double q);

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
};

/// Value copy of a registry (plus the recorder's phase timers and trace
/// accounting) at one instant. This is what lands in campaign RunRecords and
/// what the JSON/markdown renderers consume. Counters, gauges and histograms
/// are pure functions of the simulated run — deterministic at any worker
/// count; phase timings and any wall-derived values are host observability
/// only.
struct MetricsSnapshot {
    struct CounterValue {
        std::string name;
        std::uint64_t value = 0;
        bool operator==(const CounterValue&) const = default;
    };
    struct GaugeValue {
        std::string name;
        double value = 0.0;
        bool operator==(const GaugeValue&) const = default;
    };
    struct HistogramValue {
        std::string name;
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;
        bool operator==(const HistogramValue&) const = default;
    };
    /// Scoped phase timer aggregate. `calls` is deterministic (how many
    /// times the phase ran); `total_s` is host wall time.
    struct PhaseValue {
        std::string name;
        std::uint64_t calls = 0;
        double total_s = 0.0;
        bool operator==(const PhaseValue&) const = default;
    };

    std::vector<CounterValue> counters;      ///< sorted by name
    std::vector<GaugeValue> gauges;          ///< sorted by name
    std::vector<HistogramValue> histograms;  ///< sorted by name
    std::vector<PhaseValue> phases;          ///< fixed Phase order
    std::uint64_t events_recorded = 0;
    std::uint64_t events_dropped = 0;

    bool empty() const {
        return counters.empty() && gauges.empty() && histograms.empty() &&
               phases.empty() && events_recorded == 0;
    }
    bool operator==(const MetricsSnapshot&) const = default;
};

/// Name-addressed registry of counters, gauges and histograms.
///
/// Registration (find-or-create) may allocate and is meant for setup paths —
/// simulator construction, scheduler initialize(), epoch hooks. The returned
/// references are stable for the registry's lifetime (deque storage), so hot
/// paths hold them as pointers and never look names up per step.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /// Find-or-create. An existing histogram keeps its original bounds
    /// (@p upper_bounds is ignored then); bounds must be ascending.
    Histogram& histogram(const std::string& name,
                         std::vector<double> upper_bounds);

    /// Deterministically ordered (name-sorted) copy of all instruments.
    MetricsSnapshot snapshot() const;

private:
    template <typename T>
    struct Named {
        std::string name;
        T value;
    };

    // Deques: stable addresses across registrations.
    std::deque<Named<Counter>> counters_;
    std::deque<Named<Gauge>> gauges_;
    std::deque<Named<Histogram>> histograms_;
};

/// Snapshot as a compact JSON object (one line). Gauge/phase doubles use
/// %.17g so parse_metrics_json() round-trips them bit-exactly.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// Parses exactly the object write_metrics_json() emits (key order free).
/// Throws std::runtime_error on malformed input.
MetricsSnapshot parse_metrics_json(const std::string& text);

/// Snapshot as a human-readable markdown block.
std::string metrics_markdown(const MetricsSnapshot& snapshot);

/// Campaign-level roll-up: counters, histogram buckets (matching bounds),
/// phase calls/times and event totals sum; gauges keep the maximum (they
/// describe per-run peaks). Union of names, name-sorted. Histograms with
/// mismatched bounds keep the first occurrence's buckets.
MetricsSnapshot merge(const std::vector<MetricsSnapshot>& snapshots);

}  // namespace hp::obs
