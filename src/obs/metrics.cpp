#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hp::obs {

// --- instruments -------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument("Histogram: bounds must be ascending");
}

void Histogram::observe(double x) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    ++counts_[i];
}

std::uint64_t Histogram::total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts_) sum += c;
    return sum;
}

double Histogram::histogram_quantile(const std::vector<double>& bounds,
                                     const std::vector<std::uint64_t>& counts,
                                     double q) {
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) total += c;
    if (total == 0 || counts.empty()) return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the target observation, 1-based; q = 0 targets the first.
    const double rank = std::max(1.0, q * static_cast<double>(total));
    double cum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double in_bucket = static_cast<double>(counts[i]);
        if (cum + in_bucket < rank) {
            cum += in_bucket;
            continue;
        }
        if (i >= bounds.size())  // overflow bucket: saturate at its floor
            return bounds.empty() ? 0.0 : bounds.back();
        const double lo = i == 0 ? 0.0 : bounds[i - 1];
        const double hi = bounds[i];
        if (in_bucket <= 0.0) return hi;
        return lo + (hi - lo) * ((rank - cum) / in_bucket);
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

// --- registry ----------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
    for (auto& c : counters_)
        if (c.name == name) return c.value;
    counters_.push_back({name, Counter{}});
    return counters_.back().value;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    for (auto& g : gauges_)
        if (g.name == name) return g.value;
    gauges_.push_back({name, Gauge{}});
    return gauges_.back().value;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
    for (auto& h : histograms_)
        if (h.name == name) return h.value;
    histograms_.push_back({name, Histogram(std::move(upper_bounds))});
    return histograms_.back().value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot out;
    for (const auto& c : counters_)
        out.counters.push_back({c.name, c.value.value});
    for (const auto& g : gauges_)
        out.gauges.push_back({g.name, g.value.value});
    for (const auto& h : histograms_)
        out.histograms.push_back(
            {h.name, h.value.bounds(), h.value.counts()});
    const auto by_name = [](const auto& a, const auto& b) {
        return a.name < b.name;
    };
    std::sort(out.counters.begin(), out.counters.end(), by_name);
    std::sort(out.gauges.begin(), out.gauges.end(), by_name);
    std::sort(out.histograms.begin(), out.histograms.end(), by_name);
    return out;
}

// --- JSON --------------------------------------------------------------------

namespace {

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& s) {
    out << "{\"events_recorded\": " << s.events_recorded
        << ", \"events_dropped\": " << s.events_dropped;
    out << ", \"counters\": {";
    for (std::size_t i = 0; i < s.counters.size(); ++i)
        out << (i ? ", " : "") << '"' << s.counters[i].name
            << "\": " << s.counters[i].value;
    out << "}, \"gauges\": {";
    for (std::size_t i = 0; i < s.gauges.size(); ++i)
        out << (i ? ", " : "") << '"' << s.gauges[i].name
            << "\": " << fmt_double(s.gauges[i].value);
    out << "}, \"histograms\": {";
    for (std::size_t i = 0; i < s.histograms.size(); ++i) {
        const auto& h = s.histograms[i];
        out << (i ? ", " : "") << '"' << h.name << "\": {\"bounds\": [";
        for (std::size_t j = 0; j < h.bounds.size(); ++j)
            out << (j ? ", " : "") << fmt_double(h.bounds[j]);
        out << "], \"counts\": [";
        for (std::size_t j = 0; j < h.counts.size(); ++j)
            out << (j ? ", " : "") << h.counts[j];
        out << "]}";
    }
    out << "}, \"phases\": {";
    for (std::size_t i = 0; i < s.phases.size(); ++i) {
        const auto& p = s.phases[i];
        out << (i ? ", " : "") << '"' << p.name << "\": {\"calls\": "
            << p.calls << ", \"total_s\": " << fmt_double(p.total_s) << "}";
    }
    out << "}}";
}

namespace {

/// Recursive-descent parser for the exact value shapes write_metrics_json
/// emits: objects, arrays, strings without escapes, and numbers. Kept local
/// and strict — this is a round-trip reader for our own output, not a
/// general JSON library.
class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    void expect(char c) {
        skip_ws();
        if (i_ >= s_.size() || s_[i_] != c)
            fail(std::string("expected '") + c + "'");
        ++i_;
    }
    bool consume(char c) {
        skip_ws();
        if (i_ < s_.size() && s_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }
    char peek() {
        skip_ws();
        return i_ < s_.size() ? s_[i_] : '\0';
    }
    std::string parse_string() {
        expect('"');
        std::string out;
        while (i_ < s_.size() && s_[i_] != '"') out += s_[i_++];
        expect('"');
        return out;
    }
    double parse_number() {
        skip_ws();
        const char* start = s_.c_str() + i_;
        char* end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start) fail("expected a number");
        i_ += static_cast<std::size_t>(end - start);
        return v;
    }
    std::uint64_t parse_uint() {
        skip_ws();
        const char* start = s_.c_str() + i_;
        char* end = nullptr;
        const unsigned long long v = std::strtoull(start, &end, 10);
        if (end == start) fail("expected an unsigned integer");
        i_ += static_cast<std::size_t>(end - start);
        return v;
    }
    void end() {
        skip_ws();
        if (i_ != s_.size()) fail("trailing characters");
    }
    [[noreturn]] void fail(const std::string& why) {
        throw std::runtime_error("parse_metrics_json at offset " +
                                 std::to_string(i_) + ": " + why);
    }

private:
    void skip_ws() {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
                s_[i_] == '\r'))
            ++i_;
    }

    const std::string& s_;
    std::size_t i_ = 0;
};

}  // namespace

MetricsSnapshot parse_metrics_json(const std::string& text) {
    MetricsSnapshot out;
    Parser p(text);
    p.expect('{');
    if (!p.consume('}')) {
        do {
            const std::string key = p.parse_string();
            p.expect(':');
            if (key == "events_recorded") {
                out.events_recorded = p.parse_uint();
            } else if (key == "events_dropped") {
                out.events_dropped = p.parse_uint();
            } else if (key == "counters") {
                p.expect('{');
                if (!p.consume('}')) {
                    do {
                        MetricsSnapshot::CounterValue c;
                        c.name = p.parse_string();
                        p.expect(':');
                        c.value = p.parse_uint();
                        out.counters.push_back(std::move(c));
                    } while (p.consume(','));
                    p.expect('}');
                }
            } else if (key == "gauges") {
                p.expect('{');
                if (!p.consume('}')) {
                    do {
                        MetricsSnapshot::GaugeValue g;
                        g.name = p.parse_string();
                        p.expect(':');
                        g.value = p.parse_number();
                        out.gauges.push_back(std::move(g));
                    } while (p.consume(','));
                    p.expect('}');
                }
            } else if (key == "histograms") {
                p.expect('{');
                if (!p.consume('}')) {
                    do {
                        MetricsSnapshot::HistogramValue h;
                        h.name = p.parse_string();
                        p.expect(':');
                        p.expect('{');
                        do {
                            const std::string field = p.parse_string();
                            p.expect(':');
                            p.expect('[');
                            if (field == "bounds") {
                                if (p.peek() != ']')
                                    do {
                                        h.bounds.push_back(p.parse_number());
                                    } while (p.consume(','));
                            } else if (field == "counts") {
                                if (p.peek() != ']')
                                    do {
                                        h.counts.push_back(p.parse_uint());
                                    } while (p.consume(','));
                            } else {
                                p.fail("unknown histogram field: " + field);
                            }
                            p.expect(']');
                        } while (p.consume(','));
                        p.expect('}');
                        out.histograms.push_back(std::move(h));
                    } while (p.consume(','));
                    p.expect('}');
                }
            } else if (key == "phases") {
                p.expect('{');
                if (!p.consume('}')) {
                    do {
                        MetricsSnapshot::PhaseValue ph;
                        ph.name = p.parse_string();
                        p.expect(':');
                        p.expect('{');
                        do {
                            const std::string field = p.parse_string();
                            p.expect(':');
                            if (field == "calls")
                                ph.calls = p.parse_uint();
                            else if (field == "total_s")
                                ph.total_s = p.parse_number();
                            else
                                p.fail("unknown phase field: " + field);
                        } while (p.consume(','));
                        p.expect('}');
                        out.phases.push_back(std::move(ph));
                    } while (p.consume(','));
                    p.expect('}');
                }
            } else {
                p.fail("unknown key: " + key);
            }
        } while (p.consume(','));
        p.expect('}');
    }
    p.end();
    return out;
}

// --- markdown ----------------------------------------------------------------

std::string metrics_markdown(const MetricsSnapshot& s) {
    std::ostringstream out;
    if (!s.counters.empty() || !s.gauges.empty()) {
        out << "| metric | value |\n|---|---|\n";
        for (const auto& c : s.counters)
            out << "| " << c.name << " | " << c.value << " |\n";
        out.setf(std::ios::fixed);
        out.precision(4);
        for (const auto& g : s.gauges)
            out << "| " << g.name << " | " << g.value << " |\n";
        out.unsetf(std::ios::fixed);
    }
    for (const auto& h : s.histograms) {
        out << "\n" << h.name << ":";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            out << " ";
            if (i < h.bounds.size())
                out << "<=" << h.bounds[i];
            else
                out << ">" << (h.bounds.empty() ? 0.0 : h.bounds.back());
            out << ": " << h.counts[i];
        }
        out << "\n";
    }
    if (!s.phases.empty()) {
        out << "\n| phase | calls | total [ms] |\n|---|---|---|\n";
        out.setf(std::ios::fixed);
        out.precision(3);
        for (const auto& p : s.phases)
            out << "| " << p.name << " | " << p.calls << " | "
                << p.total_s * 1e3 << " |\n";
        out.unsetf(std::ios::fixed);
    }
    if (s.events_recorded > 0 || s.events_dropped > 0)
        out << "\nevents: " << s.events_recorded << " recorded, "
            << s.events_dropped << " dropped (ring overflow)\n";
    return out.str();
}

// --- merge -------------------------------------------------------------------

MetricsSnapshot merge(const std::vector<MetricsSnapshot>& snapshots) {
    MetricsSnapshot out;
    for (const MetricsSnapshot& s : snapshots) {
        out.events_recorded += s.events_recorded;
        out.events_dropped += s.events_dropped;
        for (const auto& c : s.counters) {
            auto it = std::find_if(
                out.counters.begin(), out.counters.end(),
                [&](const auto& existing) { return existing.name == c.name; });
            if (it == out.counters.end())
                out.counters.push_back(c);
            else
                it->value += c.value;
        }
        for (const auto& g : s.gauges) {
            auto it = std::find_if(
                out.gauges.begin(), out.gauges.end(),
                [&](const auto& existing) { return existing.name == g.name; });
            if (it == out.gauges.end())
                out.gauges.push_back(g);
            else
                it->value = std::max(it->value, g.value);
        }
        for (const auto& h : s.histograms) {
            auto it = std::find_if(
                out.histograms.begin(), out.histograms.end(),
                [&](const auto& existing) { return existing.name == h.name; });
            if (it == out.histograms.end()) {
                out.histograms.push_back(h);
            } else if (it->bounds == h.bounds) {
                for (std::size_t i = 0; i < it->counts.size(); ++i)
                    it->counts[i] += h.counts[i];
            }  // mismatched bounds: keep the first occurrence's buckets
        }
        for (const auto& ph : s.phases) {
            auto it = std::find_if(
                out.phases.begin(), out.phases.end(),
                [&](const auto& existing) { return existing.name == ph.name; });
            if (it == out.phases.end()) {
                out.phases.push_back(ph);
            } else {
                it->calls += ph.calls;
                it->total_s += ph.total_s;
            }
        }
    }
    const auto by_name = [](const auto& a, const auto& b) {
        return a.name < b.name;
    };
    std::sort(out.counters.begin(), out.counters.end(), by_name);
    std::sort(out.gauges.begin(), out.gauges.end(), by_name);
    std::sort(out.histograms.begin(), out.histograms.end(), by_name);
    return out;
}

}  // namespace hp::obs
