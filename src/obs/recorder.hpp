#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hp::obs {

/// Instrumented phases timed by ScopedPhase. A fixed enum (not a string
/// registry) so the hot path indexes an array instead of hashing names.
enum class Phase : std::uint8_t {
    kMatexSolve,      ///< MatEx transient solve inside a micro-step
    kPeakAnalysis,    ///< Algorithm-1 / peak-temperature prediction
    kSchedulerEpoch,  ///< scheduler on_epoch decision logic
    kCount,
};

/// Stable lower_snake_case name of @p phase (metrics export).
const char* to_string(Phase phase);

struct RecorderConfig {
    /// Events retained by the trace ring; 0 disables event tracing while
    /// keeping metrics live.
    std::size_t trace_capacity = 16384;
};

/// Per-run observability sink: one trace ring + one metrics registry + the
/// phase-timer aggregates. The simulator and schedulers hold a Recorder* and
/// treat nullptr as "observability off" — every instrumentation site is a
/// single pointer test away from zero work, and nothing in this class is
/// reachable from the hot path once registration has happened.
///
/// Threading contract: a Recorder belongs to exactly one run (one simulator)
/// at a time. Campaign workers create a fresh Recorder per run on their own
/// thread; there is no cross-thread sharing and no locking.
class Recorder {
public:
    explicit Recorder(const RecorderConfig& config = {});

    /// Event tracing (allocation-free once constructed).
    void record(const Event& e) noexcept { trace_.record(e); }
    const TraceBuffer& trace() const { return trace_; }
    std::vector<Event> events() const { return trace_.snapshot(); }

    /// Instrument registration — setup paths only (may allocate). Returned
    /// references stay valid for the Recorder's lifetime.
    Counter& counter(const std::string& name) { return registry_.counter(name); }
    Gauge& gauge(const std::string& name) { return registry_.gauge(name); }
    Histogram& histogram(const std::string& name,
                         std::vector<double> upper_bounds) {
        return registry_.histogram(name, std::move(upper_bounds));
    }

    /// Phase-timer hot path: add one timed invocation of @p phase.
    void add_phase_time(Phase phase, double seconds) noexcept {
        auto& agg = phases_[static_cast<std::size_t>(phase)];
        ++agg.calls;
        agg.total_s += seconds;
    }

    /// Registry + phase timers + trace accounting, deterministically ordered.
    MetricsSnapshot snapshot() const;

private:
    struct PhaseAggregate {
        std::uint64_t calls = 0;
        double total_s = 0.0;
    };

    TraceBuffer trace_;
    MetricsRegistry registry_;
    std::array<PhaseAggregate, static_cast<std::size_t>(Phase::kCount)>
        phases_{};
};

/// RAII wall-clock timer feeding Recorder::add_phase_time. Null-safe: with a
/// null recorder both ends collapse to a pointer test, so instrumented code
/// needs no branching of its own.
class ScopedPhase {
public:
    ScopedPhase(Recorder* recorder, Phase phase) noexcept
        : recorder_(recorder), phase_(phase) {
        if (recorder_) start_ = std::chrono::steady_clock::now();
    }
    ~ScopedPhase() {
        if (recorder_)
            recorder_->add_phase_time(
                phase_, std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
    }

    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

private:
    Recorder* recorder_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_{};
};

}  // namespace hp::obs
