#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace hp::obs {

const char* to_string(EventKind kind) {
    switch (kind) {
        case EventKind::kTaskStart: return "task_start";
        case EventKind::kTaskFinish: return "task_finish";
        case EventKind::kRotation: return "rotation";
        case EventKind::kRotationAbort: return "rotation_abort";
        case EventKind::kMigration: return "migration";
        case EventKind::kDvfsChange: return "dvfs_change";
        case EventKind::kDtmEngage: return "dtm_engage";
        case EventKind::kDtmRelease: return "dtm_release";
        case EventKind::kWatchdogTrip: return "watchdog_trip";
        case EventKind::kWatchdogRelease: return "watchdog_release";
        case EventKind::kFaultStart: return "fault_start";
        case EventKind::kFaultEnd: return "fault_end";
        case EventKind::kTauAdapt: return "tau_adapt";
        case EventKind::kSensorFallback: return "sensor_fallback";
        case EventKind::kCancelled: return "cancelled";
        case EventKind::kDivergence: return "divergence";
    }
    return "unknown";
}

namespace {

/// Inverse of to_string; throws on an unknown name.
EventKind kind_from_string(const std::string& name,
                           const std::string& where) {
    for (int k = 0; k <= static_cast<int>(EventKind::kDivergence); ++k) {
        const EventKind kind = static_cast<EventKind>(k);
        if (name == to_string(kind)) return kind;
    }
    throw std::runtime_error(where + ": unknown event kind: " + name);
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity) {}

void TraceBuffer::record(const Event& e) noexcept {
    if (ring_.empty()) return;  // tracing disabled
    ring_[(head_ + size_) % ring_.size()] = e;
    if (size_ < ring_.size())
        ++size_;
    else
        head_ = (head_ + 1) % ring_.size();  // overwrite the oldest
    ++recorded_;
}

std::vector<Event> TraceBuffer::snapshot() const {
    std::vector<Event> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void TraceBuffer::clear() {
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
}

void write_events_csv(std::ostream& out, const std::vector<Event>& events) {
    out << "time_s,kind,arg0,arg1,value\n";
    char buf[160];
    for (const Event& e : events) {
        std::snprintf(buf, sizeof buf, "%.12g,%s,%u,%u,%.12g\n", e.time_s,
                      to_string(e.kind), e.arg0, e.arg1, e.value);
        out << buf;
    }
}

void write_chrome_trace(std::ostream& out, const std::vector<Event>& events,
                        const std::string& process_name) {
    out << "{\"traceEvents\":[\n"
        << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":\"" << process_name << "\"}}";
    char buf[256];
    for (const Event& e : events) {
        // Instant events on the simulated-time axis; tid partitions by the
        // event's primary subject (core/thread/task) so Perfetto lanes stay
        // readable. "s":"t" scopes the marker to its lane.
        std::snprintf(buf, sizeof buf,
                      ",\n{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                      "\"pid\":0,\"tid\":%u,\"s\":\"t\",\"args\":{"
                      "\"arg0\":%u,\"arg1\":%u,\"value\":%.12g}}",
                      to_string(e.kind), e.time_s * 1e6, e.arg1, e.arg0,
                      e.arg1, e.value);
        out << buf;
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<Event> read_events_csv(std::istream& in,
                                   const std::string& source_name) {
    std::vector<Event> events;
    std::string line;
    std::size_t line_no = 0;
    const auto fail = [&](const std::string& why) {
        throw std::runtime_error(source_name + ":" +
                                 std::to_string(line_no) + ": " + why);
    };
    while (std::getline(in, line)) {
        ++line_no;
        if (line_no == 1) {
            if (line != "time_s,kind,arg0,arg1,value")
                fail("bad header: " + line);
            continue;
        }
        if (line.empty()) continue;
        // Split into exactly five fields.
        std::vector<std::string> fields;
        std::string current;
        for (char c : line) {
            if (c == ',') {
                fields.push_back(current);
                current.clear();
            } else {
                current += c;
            }
        }
        fields.push_back(current);
        if (fields.size() != 5)
            fail("expected 5 fields, got " + std::to_string(fields.size()));
        const auto number = [&](const std::string& text) {
            char* end = nullptr;
            const double v = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0')
                fail("bad numeric field: " + text);
            return v;
        };
        Event e;
        e.time_s = number(fields[0]);
        e.kind = kind_from_string(fields[1],
                                  source_name + ":" + std::to_string(line_no));
        e.arg0 = static_cast<std::uint32_t>(number(fields[2]));
        e.arg1 = static_cast<std::uint32_t>(number(fields[3]));
        e.value = number(fields[4]);
        events.push_back(e);
    }
    return events;
}

}  // namespace hp::obs
