#pragma once

#include <cstdint>

namespace hp::obs {

/// Event taxonomy of the observability layer (DESIGN.md §8). Every kind is a
/// discrete, per-run occurrence the simulator or a scheduler emits into the
/// trace ring; continuous signals (temperatures, power) stay in the decimated
/// thermal trace (sim::TraceSample), not here.
enum class EventKind : std::uint8_t {
    kTaskStart,        ///< arg0 = task id, arg1 = thread count
    kTaskFinish,       ///< arg0 = task id, value = response time [s]
    kRotation,         ///< arg0 = cycle length, arg1 = first core of cycle
    kRotationAbort,    ///< a rotation dropped by an injected abort
    kMigration,        ///< arg0 = thread id, arg1 = destination core
    kDvfsChange,       ///< arg0 = core, value = new frequency [Hz]
    kDtmEngage,        ///< value = triggering (masked) temperature [C]
    kDtmRelease,       ///< value = releasing temperature [C]
    kWatchdogTrip,     ///< value = true hottest-core temperature [C]
    kWatchdogRelease,  ///< value = time-to-recover of this engagement [s]
    kFaultStart,       ///< arg0 = fault::FaultKind, arg1 = target
    kFaultEnd,         ///< arg0 = fault::FaultKind, arg1 = target
    kTauAdapt,         ///< arg0 = rotation on (0/1), value = new tau [s]
    kSensorFallback,   ///< arg0 = engaged (0/1)
    kCancelled,        ///< arg0 = sim::CancelReason, value = sim time [s]
    kDivergence,       ///< arg0 = offending node, value = temperature [C]
};

/// Returns the stable lower_snake_case name of @p kind (trace export).
const char* to_string(EventKind kind);

/// One fixed-size trace record. Plain data, no owned memory: recording an
/// Event into a warmed ring buffer never touches the heap. The meaning of
/// arg0/arg1/value is per-kind (see EventKind).
struct Event {
    double time_s = 0.0;  ///< simulated time — never host wall time
    EventKind kind = EventKind::kTaskStart;
    std::uint32_t arg0 = 0;
    std::uint32_t arg1 = 0;
    double value = 0.0;

    bool operator==(const Event& other) const {
        return time_s == other.time_s && kind == other.kind &&
               arg0 == other.arg0 && arg1 == other.arg1 &&
               value == other.value;
    }
};

}  // namespace hp::obs
