#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/dvfs.hpp"
#include "floorplan/floorplan.hpp"

namespace hp::arch {

/// Cache and NoC parameters of the simulated S-NUCA processor
/// (paper Table I).
struct SnucaParams {
    double peak_frequency_hz = 4.0e9;
    double technology_nm = 14.0;
    std::size_t l1i_kb = 16;
    std::size_t l1d_kb = 16;
    std::size_t l1_ways = 8;
    std::size_t llc_bank_kb = 128;  ///< per-core slice of the shared LLC
    std::size_t llc_ways = 16;
    std::size_t cache_block_bytes = 64;
    double noc_hop_latency_s = 1.5e-9;
    std::size_t noc_link_width_bits = 256;
    double core_area_mm2 = 0.81;
    double llc_bank_access_latency_s = 5.0e-9;  ///< bank lookup, excl. NoC
    /// Stacked silicon layers (1 = planar; >1 = 3D S-NUCA, the paper's
    /// future-work target). Layer crossings cost one NoC hop (TSV).
    std::size_t layers = 1;
};

/// One concentric AMD ring: the set of cores sharing the same Average
/// Manhattan Distance, listed in rotation (cyclic) order.
struct AmdRing {
    double amd = 0.0;                 ///< hops, average over all cores
    std::vector<std::size_t> cores;   ///< rotation order around the centre
};

/// Micro-architecturally homogeneous S-NUCA many-core on a mesh NoC.
///
/// Captures the two structural facts every scheduler in this repo exploits:
///  * a core's average LLC latency grows with its Average Manhattan Distance
///    (AMD) from the other cores (performance heterogeneity), and
///  * cores of equal AMD form concentric rings that are performance- and
///    thermal-wise homogeneous — the rotation domains of HotPotato.
///
/// Thread safety: immutable after construction — the AMD/ring tables are
/// precomputed and all accessors are const. Safe to share read-only across
/// concurrent simulations (see campaign::StudySetup).
class ManyCore {
public:
    /// Builds a @p rows x @p cols mesh with parameters @p params and DVFS
    /// table @p dvfs.
    ManyCore(std::size_t rows, std::size_t cols, SnucaParams params = {},
             DvfsParams dvfs = {});

    /// Convenience 64-core (8x8) configuration of paper Table I.
    static ManyCore paper_64core();
    /// Convenience 16-core (4x4) configuration of the motivational example.
    static ManyCore paper_16core();
    /// 3D-stacked 32-core part: two 4x4 layers (the paper's future-work
    /// direction, after CoMeT).
    static ManyCore stacked_32core();

    const floorplan::GridFloorplan& plan() const { return plan_; }
    const SnucaParams& params() const { return params_; }
    const DvfsParams& dvfs() const { return dvfs_; }
    std::size_t core_count() const { return plan_.core_count(); }

    /// Average Manhattan Distance of @p core to all cores (incl. itself), in
    /// NoC hops; the S-NUCA performance/thermal heterogeneity metric.
    double amd(std::size_t core) const;

    /// Concentric AMD rings, ascending by AMD (rings[0] is the centre).
    const std::vector<AmdRing>& rings() const { return rings_; }

    /// Ring index (into rings()) that @p core belongs to.
    std::size_t ring_of(std::size_t core) const;

    /// Average latency of one LLC access issued by @p core: bank lookup plus
    /// the round trip over the XY-routed mesh to a uniformly distributed bank
    /// (static address interleaving), i.e. 2 * AMD * hop latency.
    double llc_access_latency_s(std::size_t core) const;

    /// Total private cache state a migrating thread loses (L1I + L1D), bytes.
    std::size_t private_state_bytes() const;

private:
    void build_rings();

    floorplan::GridFloorplan plan_;
    SnucaParams params_;
    DvfsParams dvfs_;
    std::vector<double> amd_;
    std::vector<AmdRing> rings_;
    std::vector<std::size_t> ring_of_core_;
};

}  // namespace hp::arch
