#pragma once

#include <cstddef>
#include <vector>

namespace hp::arch {

/// DVFS operating-point table: evenly spaced frequency levels with a linear
/// voltage-frequency relation, matching the paper's setup of fine-grained
/// 100 MHz steps between 1 GHz and the 4 GHz peak.
struct DvfsParams {
    double f_min_hz = 1.0e9;
    double f_max_hz = 4.0e9;
    double step_hz = 0.1e9;   ///< paper: PCMig performs DVFS at 100 MHz steps
    double v_min = 0.60;      ///< supply voltage at f_min
    double v_max = 1.20;      ///< supply voltage at f_max

    /// Supply voltage for frequency @p f_hz (linear V-f; clamped to range).
    double voltage_for(double f_hz) const;

    /// All selectable frequency levels, ascending.
    std::vector<double> levels() const;

    /// Highest level that is <= @p f_hz, clamped into [f_min, f_max].
    double quantize_down(double f_hz) const;

    /// Number of levels.
    std::size_t level_count() const;
};

}  // namespace hp::arch
