#include "arch/dvfs.hpp"

#include <algorithm>
#include <cmath>

namespace hp::arch {

double DvfsParams::voltage_for(double f_hz) const {
    const double f = std::clamp(f_hz, f_min_hz, f_max_hz);
    if (f_max_hz == f_min_hz) return v_max;
    const double alpha = (f - f_min_hz) / (f_max_hz - f_min_hz);
    return v_min + alpha * (v_max - v_min);
}

std::vector<double> DvfsParams::levels() const {
    std::vector<double> out;
    for (double f = f_min_hz; f <= f_max_hz + 0.5 * step_hz; f += step_hz)
        out.push_back(std::min(f, f_max_hz));
    return out;
}

double DvfsParams::quantize_down(double f_hz) const {
    if (f_hz >= f_max_hz) return f_max_hz;
    if (f_hz <= f_min_hz) return f_min_hz;
    const double steps = std::floor((f_hz - f_min_hz) / step_hz);
    return f_min_hz + steps * step_hz;
}

std::size_t DvfsParams::level_count() const {
    return static_cast<std::size_t>(
               std::floor((f_max_hz - f_min_hz) / step_hz + 1e-9)) +
           1;
}

}  // namespace hp::arch
