#include "arch/manycore.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace hp::arch {

ManyCore::ManyCore(std::size_t rows, std::size_t cols, SnucaParams params,
                   DvfsParams dvfs)
    : plan_(rows, cols, params.core_area_mm2, params.layers),
      params_(params),
      dvfs_(dvfs) {
    const std::size_t n = plan_.core_count();
    amd_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t total_hops = 0;
        for (std::size_t j = 0; j < n; ++j)
            total_hops += plan_.manhattan_hops(i, j);
        amd_[i] = static_cast<double>(total_hops) / static_cast<double>(n);
    }
    build_rings();
}

ManyCore ManyCore::paper_64core() { return ManyCore(8, 8); }

ManyCore ManyCore::paper_16core() { return ManyCore(4, 4); }

ManyCore ManyCore::stacked_32core() {
    SnucaParams params;
    params.layers = 2;
    return ManyCore(4, 4, params);
}

void ManyCore::build_rings() {
    // Group cores by AMD (quantised to suppress floating-point noise); equal
    // AMD implies symmetric position relative to the chip centre.
    std::map<long long, AmdRing> groups;
    for (std::size_t i = 0; i < core_count(); ++i) {
        const long long key = std::llround(amd_[i] * 1e6);
        AmdRing& ring = groups[key];
        ring.amd = amd_[i];
        ring.cores.push_back(i);
    }

    // Order each ring's cores cyclically (by angle around the chip centre) so
    // that "rotate by one slot" moves every thread to an adjacent position.
    const double centre_row = (static_cast<double>(plan_.rows()) - 1.0) / 2.0;
    const double centre_col = (static_cast<double>(plan_.cols()) - 1.0) / 2.0;
    rings_.clear();
    for (auto& [key, ring] : groups) {
        std::sort(ring.cores.begin(), ring.cores.end(),
                  [&](std::size_t a, std::size_t b) {
                      const auto& ta = plan_.tile(a);
                      const auto& tb = plan_.tile(b);
                      const double ang_a =
                          std::atan2(static_cast<double>(ta.row) - centre_row,
                                     static_cast<double>(ta.col) - centre_col);
                      const double ang_b =
                          std::atan2(static_cast<double>(tb.row) - centre_row,
                                     static_cast<double>(tb.col) - centre_col);
                      if (ang_a != ang_b) return ang_a < ang_b;
                      // Stacked cores at the same (row, col) share the angle;
                      // keep them adjacent in the cycle so the rotation hop
                      // between them is a single cheap TSV crossing.
                      if (ta.layer != tb.layer) return ta.layer < tb.layer;
                      return a < b;
                  });
        rings_.push_back(std::move(ring));
    }

    ring_of_core_.assign(core_count(), 0);
    for (std::size_t r = 0; r < rings_.size(); ++r)
        for (std::size_t core : rings_[r].cores) ring_of_core_[core] = r;
}

double ManyCore::amd(std::size_t core) const {
    if (core >= amd_.size())
        throw std::out_of_range("ManyCore::amd: core index out of range");
    return amd_[core];
}

std::size_t ManyCore::ring_of(std::size_t core) const {
    if (core >= ring_of_core_.size())
        throw std::out_of_range("ManyCore::ring_of: core index out of range");
    return ring_of_core_[core];
}

double ManyCore::llc_access_latency_s(std::size_t core) const {
    return params_.llc_bank_access_latency_s +
           2.0 * amd(core) * params_.noc_hop_latency_s;
}

std::size_t ManyCore::private_state_bytes() const {
    return (params_.l1i_kb + params_.l1d_kb) * 1024;
}

}  // namespace hp::arch
