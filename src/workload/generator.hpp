#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/benchmark.hpp"

namespace hp::workload {

/// A benchmark instance to be injected into the simulator.
struct TaskSpec {
    const BenchmarkProfile* profile = nullptr;
    std::size_t thread_count = 2;
    double arrival_s = 0.0;
};

/// Fig. 4(a) workload: fully loads @p core_budget cores with vari-sized
/// multi-threaded instances of a single benchmark, all arriving at t = 0
/// (closed system). Instance sizes cycle deterministically through
/// {2, 4, 8, 4, ...} drawn with @p seed so that thread counts sum exactly to
/// @p core_budget.
std::vector<TaskSpec> homogeneous_fill(const BenchmarkProfile& profile,
                                       std::size_t core_budget,
                                       std::uint64_t seed);

/// Fig. 4(b) workload: a random multi-program mix of @p task_count instances
/// drawn uniformly from the eight PARSEC profiles with thread counts in
/// [min_threads, max_threads], arriving as a Poisson process of rate
/// @p arrivals_per_s (open system).
std::vector<TaskSpec> poisson_mix(std::size_t task_count,
                                  double arrivals_per_s,
                                  std::size_t min_threads,
                                  std::size_t max_threads,
                                  std::uint64_t seed);

}  // namespace hp::workload
