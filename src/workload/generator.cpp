#include "workload/generator.hpp"

#include <random>
#include <stdexcept>

namespace hp::workload {

std::vector<TaskSpec> homogeneous_fill(const BenchmarkProfile& profile,
                                       std::size_t core_budget,
                                       std::uint64_t seed) {
    if (core_budget < 2)
        throw std::invalid_argument("homogeneous_fill: need at least 2 cores");
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pick(0, 2);
    static constexpr std::size_t kSizes[] = {2, 4, 8};

    std::vector<TaskSpec> out;
    std::size_t used = 0;
    while (used < core_budget) {
        std::size_t threads = kSizes[pick(rng)];
        if (used + threads > core_budget) threads = core_budget - used;
        if (threads < 2) {
            // A single leftover core cannot host a 2-thread minimum instance;
            // grow the previous task instead.
            if (!out.empty()) out.back().thread_count += threads;
            break;
        }
        out.push_back(TaskSpec{&profile, threads, 0.0});
        used += threads;
    }
    return out;
}

std::vector<TaskSpec> poisson_mix(std::size_t task_count,
                                  double arrivals_per_s,
                                  std::size_t min_threads,
                                  std::size_t max_threads,
                                  std::uint64_t seed) {
    if (arrivals_per_s <= 0.0)
        throw std::invalid_argument("poisson_mix: rate must be positive");
    if (min_threads < 2 || max_threads < min_threads)
        throw std::invalid_argument("poisson_mix: bad thread-count range");

    std::mt19937_64 rng(seed);
    const auto& profiles = parsec_profiles();
    std::uniform_int_distribution<std::size_t> pick_bench(0,
                                                          profiles.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_threads(min_threads,
                                                            max_threads);
    std::exponential_distribution<double> inter_arrival(arrivals_per_s);

    std::vector<TaskSpec> out;
    out.reserve(task_count);
    double t = 0.0;
    for (std::size_t i = 0; i < task_count; ++i) {
        if (i > 0) t += inter_arrival(rng);
        out.push_back(TaskSpec{&profiles[pick_bench(rng)], pick_threads(rng), t});
    }
    return out;
}

}  // namespace hp::workload
