#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "perf/interval_model.hpp"

namespace hp::workload {

/// One barrier-delimited phase of a multi-threaded benchmark.
///
/// Each phase gives the master thread (role 0) and every worker thread
/// (roles >= 1) an instruction budget; a budget of zero means that role is
/// idle (blocked on the barrier) for the whole phase. The phase ends when all
/// threads with non-zero budgets retire them — this reproduces the
/// master/worker alternation visible in the paper's Fig. 2 blackscholes
/// trace.
struct PhaseSpec {
    std::string label;
    double master_instructions = 0.0;
    double worker_instructions = 0.0;
    perf::PhasePoint perf;
};

/// A synthetic stand-in for one PARSEC benchmark with sim-small input.
///
/// Real PARSEC binaries are not runnable in this environment; profiles are
/// calibrated so that (CPI, memory intensity, power, phase structure) match
/// the paper's qualitative characterisation — see DESIGN.md §2.
struct BenchmarkProfile {
    std::string name;
    std::vector<PhaseSpec> phases;
    std::size_t default_threads = 2;

    /// Sum of all instruction budgets for an instance with @p threads threads
    /// (workers = threads - 1).
    double total_instructions(std::size_t threads) const;
};

/// The eight PARSEC benchmarks the paper evaluates (streamcluster, x264,
/// bodytrack, canneal, blackscholes, dedup, fluidanimate, swaptions), in
/// that order.
const std::vector<BenchmarkProfile>& parsec_profiles();

/// Lookup by name; throws std::invalid_argument for an unknown benchmark.
const BenchmarkProfile& profile_by_name(std::string_view name);

}  // namespace hp::workload
