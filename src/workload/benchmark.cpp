#include "workload/benchmark.hpp"

#include <stdexcept>

namespace hp::workload {

double BenchmarkProfile::total_instructions(std::size_t threads) const {
    const double workers =
        threads > 0 ? static_cast<double>(threads - 1) : 0.0;
    double total = 0.0;
    for (const PhaseSpec& p : phases)
        total += p.master_instructions + workers * p.worker_instructions;
    return total;
}

namespace {

/// Shorthand for a perf::PhasePoint literal.
perf::PhasePoint pp(double cpi, double apki, double watts,
                    double miss_ratio = 0.0) {
    return perf::PhasePoint{.base_cpi = cpi,
                            .llc_apki = apki,
                            .nominal_power_w = watts,
                            .llc_miss_ratio = miss_ratio};
}

std::vector<BenchmarkProfile> make_profiles() {
    std::vector<BenchmarkProfile> v;

    // streamcluster: memory-heavy clustering with repeated barrier-separated
    // passes over the point set; the master re-centres between passes.
    v.push_back(BenchmarkProfile{
        .name = "streamcluster",
        .phases =
            {
                {"load", 10e6, 0.0, pp(0.9, 8.0, 3.7, 0.05)},
                {"pass1", 60e6, 60e6, pp(0.9, 8.0, 3.7, 0.05)},
                {"recenter1", 15e6, 0.0, pp(0.9, 8.0, 3.7, 0.05)},
                {"pass2", 60e6, 60e6, pp(0.9, 8.0, 3.7, 0.05)},
                {"recenter2", 15e6, 0.0, pp(0.9, 8.0, 3.7, 0.05)},
                {"pass3", 60e6, 60e6, pp(0.9, 8.0, 3.7, 0.05)},
                {"recenter3", 15e6, 0.0, pp(0.9, 8.0, 3.7, 0.05)},
                {"pass4", 60e6, 60e6, pp(0.9, 8.0, 3.7, 0.05)},
                {"recenter4", 15e6, 0.0, pp(0.9, 8.0, 3.7, 0.05)},
                {"pass5", 60e6, 60e6, pp(0.9, 8.0, 3.7, 0.05)},
            },
        .default_threads = 4,
    });

    // x264: frame pipeline with serial rate-control passes between parallel
    // encode bursts.
    v.push_back(BenchmarkProfile{
        .name = "x264",
        .phases =
            {
                {"setup", 40e6, 0.0, pp(0.65, 2.0, 4.2, 0.02)},
                {"gop1", 110e6, 110e6, pp(0.65, 2.0, 4.2, 0.02)},
                {"ratectl1", 30e6, 0.0, pp(0.65, 2.0, 4.2, 0.02)},
                {"gop2", 110e6, 110e6, pp(0.65, 2.0, 4.2, 0.02)},
                {"ratectl2", 30e6, 0.0, pp(0.65, 2.0, 4.2, 0.02)},
                {"gop3", 110e6, 110e6, pp(0.65, 2.0, 4.2, 0.02)},
                {"flush", 30e6, 0.0, pp(0.65, 2.0, 4.2, 0.02)},
            },
        .default_threads = 4,
    });

    // bodytrack: per-frame alternation between a serial tracking step and a
    // parallel particle-evaluation step.
    v.push_back(BenchmarkProfile{
        .name = "bodytrack",
        .phases =
            {
                {"frame1-prep", 30e6, 0.0, pp(0.7, 1.5, 5.0, 0.02)},
                {"frame1-eval", 80e6, 80e6, pp(0.7, 1.5, 5.0, 0.02)},
                {"frame2-prep", 30e6, 0.0, pp(0.7, 1.5, 5.0, 0.02)},
                {"frame2-eval", 80e6, 80e6, pp(0.7, 1.5, 5.0, 0.02)},
                {"frame3-prep", 30e6, 0.0, pp(0.7, 1.5, 5.0, 0.02)},
                {"frame3-eval", 80e6, 80e6, pp(0.7, 1.5, 5.0, 0.02)},
                {"frame4-prep", 30e6, 0.0, pp(0.7, 1.5, 5.0, 0.02)},
                {"frame4-eval", 80e6, 80e6, pp(0.7, 1.5, 5.0, 0.02)},
            },
        .default_threads = 4,
    });

    // canneal: cache-aggressive simulated annealing — the paper's coolest,
    // most memory-bound benchmark (lowest speedup potential in Fig. 4a).
    v.push_back(BenchmarkProfile{
        .name = "canneal",
        .phases =
            {
                {"netlist-load", 40e6, 0.0, pp(1.0, 12.0, 1.6, 0.08)},
                {"anneal", 150e6, 150e6, pp(1.0, 12.0, 1.6, 0.08)},
                {"final", 20e6, 0.0, pp(1.0, 12.0, 1.6, 0.08)},
            },
        .default_threads = 4,
    });

    // blackscholes: the paper's motivational example — serial data
    // preparation (master), parallel pricing (workers), serial wrap-up; hot
    // and compute-bound.
    v.push_back(BenchmarkProfile{
        .name = "blackscholes",
        .phases =
            {
                {"prep", 175e6, 0.0, pp(0.55, 0.5, 5.7, 0.01)},
                {"price", 0.0, 210e6, pp(0.55, 0.5, 5.7, 0.01)},
                {"wrapup", 91e6, 0.0, pp(0.55, 0.5, 5.7, 0.01)},
            },
        .default_threads = 2,
    });

    // dedup: pipelined compression; the master chunks/re-anchors between
    // parallel compression bursts.
    v.push_back(BenchmarkProfile{
        .name = "dedup",
        .phases =
            {
                {"chunk", 40e6, 0.0, pp(0.8, 4.0, 3.6, 0.04)},
                {"compress1", 130e6, 130e6, pp(0.8, 4.0, 3.6, 0.04)},
                {"rechunk", 40e6, 0.0, pp(0.8, 4.0, 3.6, 0.04)},
                {"compress2", 130e6, 130e6, pp(0.8, 4.0, 3.6, 0.04)},
                {"reassemble", 40e6, 0.0, pp(0.8, 4.0, 3.6, 0.04)},
            },
        .default_threads = 4,
    });

    // fluidanimate: iterative SPH solver; each timestep ends in a serial
    // cell-redistribution step on the master.
    v.push_back(BenchmarkProfile{
        .name = "fluidanimate",
        .phases =
            {
                {"step1", 90e6, 90e6, pp(0.75, 3.0, 3.4, 0.03)},
                {"redist1", 25e6, 0.0, pp(0.75, 3.0, 3.4, 0.03)},
                {"step2", 90e6, 90e6, pp(0.75, 3.0, 3.4, 0.03)},
                {"redist2", 25e6, 0.0, pp(0.75, 3.0, 3.4, 0.03)},
                {"step3", 90e6, 90e6, pp(0.75, 3.0, 3.4, 0.03)},
                {"redist3", 25e6, 0.0, pp(0.75, 3.0, 3.4, 0.03)},
                {"step4", 90e6, 90e6, pp(0.75, 3.0, 3.4, 0.03)},
            },
        .default_threads = 4,
    });

    // swaptions: Monte-Carlo pricing — compute-bound and hot per active
    // core; the master only distributes work and collects results.
    v.push_back(BenchmarkProfile{
        .name = "swaptions",
        .phases =
            {
                {"setup", 20e6, 0.0, pp(0.5, 0.3, 3.4, 0.01)},
                {"simulate", 0.0, 600e6, pp(0.5, 0.3, 3.4, 0.01)},
                {"collect", 15e6, 0.0, pp(0.5, 0.3, 3.4, 0.01)},
            },
        .default_threads = 4,
    });

    return v;
}

}  // namespace

const std::vector<BenchmarkProfile>& parsec_profiles() {
    static const std::vector<BenchmarkProfile> profiles = make_profiles();
    return profiles;
}

const BenchmarkProfile& profile_by_name(std::string_view name) {
    for (const BenchmarkProfile& p : parsec_profiles())
        if (p.name == name) return p;
    throw std::invalid_argument("profile_by_name: unknown benchmark '" +
                                std::string(name) + "'");
}

}  // namespace hp::workload
