#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/benchmark.hpp"
#include "workload/generator.hpp"

namespace hp::workload {

/// Text formats for user-defined workloads, so downstream users can describe
/// benchmarks and task mixes without recompiling.
///
/// Benchmark profile format (one directive per line, '#' comments):
///
///     benchmark <name>
///     threads <default_thread_count>
///     phase <label> <master_Minstr> <worker_Minstr> <cpi> <apki> <watts> [miss_ratio]
///     phase ...
///     end
///
/// Instruction budgets are given in millions. Several `benchmark` blocks may
/// appear in one file.
///
/// Task-list format (one task per line):
///
///     task <benchmark-name> <threads> <arrival_seconds>
///
/// Task lines resolve benchmark names against the profiles passed in (plus
/// the built-in PARSEC set).

/// Parses benchmark profile blocks from @p in. Malformed input is rejected
/// with a std::runtime_error naming the source (@p source_name / file path)
/// and line number — never a bare numeric-conversion exception.
std::vector<BenchmarkProfile> read_profiles(
    std::istream& in, const std::string& source_name = "<stream>");
std::vector<BenchmarkProfile> read_profiles_file(const std::string& path);

/// Writes @p profiles in the same format (round-trips with read_profiles).
void write_profiles(std::ostream& out,
                    const std::vector<BenchmarkProfile>& profiles);

/// Parses a task list; benchmark names are resolved against @p profiles
/// first, then the built-in PARSEC profiles. The returned TaskSpecs point
/// into @p profiles / the built-in set, which must outlive them. Throws
/// std::runtime_error carrying the source name and line number on malformed
/// input or unknown benchmark names.
std::vector<TaskSpec> read_tasks(std::istream& in,
                                 const std::vector<BenchmarkProfile>& profiles,
                                 const std::string& source_name = "<stream>");
std::vector<TaskSpec> read_tasks_file(
    const std::string& path, const std::vector<BenchmarkProfile>& profiles);

/// Writes @p tasks in the same format (round-trips with read_tasks).
void write_tasks(std::ostream& out, const std::vector<TaskSpec>& tasks);

}  // namespace hp::workload
