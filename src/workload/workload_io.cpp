#include "workload/workload_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hp::workload {

namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& what) {
    throw std::runtime_error("workload_io: " + source + ":" +
                             std::to_string(line) + ": " + what);
}

/// Strips comments and surrounding whitespace; returns true if anything
/// remains.
bool clean_line(std::string& line) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
    while (!line.empty() && is_space(line.front())) line.erase(line.begin());
    while (!line.empty() && is_space(line.back())) line.pop_back();
    return !line.empty();
}

std::ifstream open_or_throw(const std::string& path) {
    std::ifstream file(path);
    if (!file)
        throw std::runtime_error("workload_io: cannot open " + path);
    return file;
}

}  // namespace

std::vector<BenchmarkProfile> read_profiles(std::istream& in,
                                            const std::string& source_name) {
    std::vector<BenchmarkProfile> out;
    BenchmarkProfile current;
    bool in_block = false;
    std::string line;
    std::size_t line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        if (!clean_line(line)) continue;
        std::istringstream fields(line);
        std::string keyword;
        fields >> keyword;

        if (keyword == "benchmark") {
            if (in_block) fail(source_name, line_no, "nested 'benchmark' (missing 'end'?)");
            current = BenchmarkProfile{};
            if (!(fields >> current.name))
                fail(source_name, line_no, "'benchmark' needs a name");
            in_block = true;
        } else if (keyword == "threads") {
            if (!in_block) fail(source_name, line_no, "'threads' outside benchmark block");
            if (!(fields >> current.default_threads) ||
                current.default_threads < 1)
                fail(source_name, line_no, "'threads' needs a positive count");
        } else if (keyword == "phase") {
            if (!in_block) fail(source_name, line_no, "'phase' outside benchmark block");
            PhaseSpec phase;
            double master_m = 0.0, worker_m = 0.0;
            if (!(fields >> phase.label >> master_m >> worker_m >>
                  phase.perf.base_cpi >> phase.perf.llc_apki >>
                  phase.perf.nominal_power_w))
                fail(source_name, line_no,
                     "'phase' needs: label master_Minstr worker_Minstr cpi "
                     "apki watts [miss_ratio]");
            fields >> phase.perf.llc_miss_ratio;  // optional trailing field
            if (master_m < 0.0 || worker_m < 0.0 || phase.perf.base_cpi <= 0.0 ||
                phase.perf.llc_apki < 0.0 || phase.perf.nominal_power_w <= 0.0 ||
                phase.perf.llc_miss_ratio < 0.0 ||
                phase.perf.llc_miss_ratio > 1.0)
                fail(source_name, line_no, "'phase' values out of range");
            phase.master_instructions = master_m * 1e6;
            phase.worker_instructions = worker_m * 1e6;
            current.phases.push_back(std::move(phase));
        } else if (keyword == "end") {
            if (!in_block) fail(source_name, line_no, "'end' without 'benchmark'");
            if (current.phases.empty())
                fail(source_name, line_no, "benchmark '" + current.name + "' has no phases");
            out.push_back(std::move(current));
            in_block = false;
        } else {
            fail(source_name, line_no, "unknown directive '" + keyword + "'");
        }
    }
    if (in_block) fail(source_name, line_no, "unterminated benchmark block");
    return out;
}

std::vector<BenchmarkProfile> read_profiles_file(const std::string& path) {
    auto file = open_or_throw(path);
    return read_profiles(file, path);
}

void write_profiles(std::ostream& out,
                    const std::vector<BenchmarkProfile>& profiles) {
    for (const BenchmarkProfile& p : profiles) {
        out << "benchmark " << p.name << '\n';
        out << "threads " << p.default_threads << '\n';
        for (const PhaseSpec& phase : p.phases)
            out << "phase " << phase.label << ' '
                << phase.master_instructions / 1e6 << ' '
                << phase.worker_instructions / 1e6 << ' '
                << phase.perf.base_cpi << ' ' << phase.perf.llc_apki << ' '
                << phase.perf.nominal_power_w << ' '
                << phase.perf.llc_miss_ratio << '\n';
        out << "end\n";
    }
}

std::vector<TaskSpec> read_tasks(
    std::istream& in, const std::vector<BenchmarkProfile>& profiles,
    const std::string& source_name) {
    const auto resolve = [&](const std::string& name,
                             std::size_t line_no) -> const BenchmarkProfile* {
        for (const BenchmarkProfile& p : profiles)
            if (p.name == name) return &p;
        for (const BenchmarkProfile& p : parsec_profiles())
            if (p.name == name) return &p;
        fail(source_name, line_no, "unknown benchmark '" + name + "'");
    };

    std::vector<TaskSpec> out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!clean_line(line)) continue;
        std::istringstream fields(line);
        std::string keyword, name;
        TaskSpec spec;
        if (!(fields >> keyword) || keyword != "task")
            fail(source_name, line_no, "expected 'task <benchmark> <threads> <arrival_s>'");
        if (!(fields >> name >> spec.thread_count >> spec.arrival_s))
            fail(source_name, line_no, "'task' needs: benchmark threads arrival_seconds");
        if (spec.thread_count < 1 || spec.arrival_s < 0.0)
            fail(source_name, line_no, "'task' values out of range");
        spec.profile = resolve(name, line_no);
        out.push_back(spec);
    }
    return out;
}

std::vector<TaskSpec> read_tasks_file(
    const std::string& path, const std::vector<BenchmarkProfile>& profiles) {
    auto file = open_or_throw(path);
    return read_tasks(file, profiles, path);
}

void write_tasks(std::ostream& out, const std::vector<TaskSpec>& tasks) {
    for (const TaskSpec& t : tasks)
        out << "task " << (t.profile ? t.profile->name : "?") << ' '
            << t.thread_count << ' ' << t.arrival_s << '\n';
}

}  // namespace hp::workload
