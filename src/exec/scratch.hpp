#pragma once

#include <memory>
#include <memory_resource>
#include <typeindex>
#include <unordered_map>
#include <utility>

namespace hp::exec {

/// Per-worker bag of long-lived scratch objects, keyed by type. A campaign
/// worker creates one WorkerScratch over its node-local memory resource;
/// schedulers and simulators then borrow their workspaces from it via
/// `slot<T>()` instead of owning fresh copies per run. The first request
/// for a T constructs it (passing the worker's memory_resource* when T has
/// such a constructor, so its buffers land in the arena); later requests —
/// including from the next run on this worker — return the same object.
///
/// Only types whose state is fully overwritten before use may live here:
/// sharing a slot across runs must be observationally identical to a fresh
/// object, or campaign determinism across --jobs breaks. Workspaces
/// (ThermalWorkspace, PeakWorkspace) qualify; PredictionCaches do not —
/// their hit/miss counters would depend on worker run history.
///
/// Not thread-safe; each worker owns its own WorkerScratch.
class WorkerScratch {
public:
    explicit WorkerScratch(
        std::pmr::memory_resource* mr = std::pmr::get_default_resource())
        : mr_(mr) {}

    WorkerScratch(const WorkerScratch&) = delete;
    WorkerScratch& operator=(const WorkerScratch&) = delete;

    /// The memory resource scratch objects should allocate from (the
    /// worker's node-local arena, or the default resource when the worker
    /// runs without one).
    std::pmr::memory_resource* resource() const { return mr_; }

    /// Returns the worker's instance of T, constructing it on first use —
    /// with the worker's memory_resource* when T is constructible from one,
    /// default-constructed otherwise.
    template <typename T>
    T& slot() {
        auto it = slots_.find(std::type_index(typeid(T)));
        if (it == slots_.end()) {
            std::unique_ptr<T> obj;
            if constexpr (std::is_constructible_v<T,
                                                  std::pmr::memory_resource*>) {
                obj = std::make_unique<T>(mr_);
            } else {
                obj = std::make_unique<T>();
            }
            it = slots_
                     .emplace(std::type_index(typeid(T)),
                              Holder{obj.release(), [](void* p) {
                                         delete static_cast<T*>(p);
                                     }})
                     .first;
        }
        return *static_cast<T*>(it->second.ptr);
    }

    ~WorkerScratch() {
        for (auto& [key, holder] : slots_) holder.destroy(holder.ptr);
    }

private:
    struct Holder {
        void* ptr;
        void (*destroy)(void*);
    };

    std::pmr::memory_resource* mr_;
    std::unordered_map<std::type_index, Holder> slots_;
};

}  // namespace hp::exec
