#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "exec/topology.hpp"

namespace hp::exec {

/// How campaign workers are bound to CPUs. `kAuto` resolves at plan time:
/// no pinning on single-node hosts (the kernel already does the right
/// thing), otherwise compact while one node can hold every worker and
/// spread beyond that.
enum class PinPolicy { kAuto, kNone, kCompact, kSpread };

/// Parses "auto|none|compact|spread"; nullopt on anything else so callers
/// can produce their own usage error.
std::optional<PinPolicy> parse_pin_policy(const std::string& text);
const char* to_string(PinPolicy policy);

/// Where one worker lands: the CPU it is pinned to and the NUMA node that
/// CPU belongs to. cpu == -1 means "not pinned" (node is still -1 then, and
/// node-local placement features treat the worker as node 0).
struct WorkerPlacement {
    int cpu = -1;
    int node = -1;
};

/// Deterministic pure function mapping (topology, worker count, policy) to
/// one placement per worker:
///   kNone    -> all {-1,-1}
///   kCompact -> fill nodes in ascending id order, CPUs in ascending order,
///               wrapping when workers exceed CPUs
///   kSpread  -> round-robin across nodes, taking each node's CPUs in order
///   kAuto    -> kNone on single-node topologies; else kCompact when the
///               first node can hold every worker, kSpread otherwise
/// Being pure and host-independent (given a topology) makes it unit-testable
/// without pinning anything.
std::vector<WorkerPlacement> plan_pinning(const Topology& topology,
                                          std::size_t workers,
                                          PinPolicy policy);

/// Best-effort sched_setaffinity of the calling thread to a single CPU.
/// Returns false (never throws) when the kernel refuses — restricted
/// containers, CPU offline since discovery — because pinning is an
/// optimisation, not a correctness requirement.
bool pin_current_thread(int cpu);

/// CPUs the calling thread may currently run on (sched_getaffinity), empty
/// on failure. Used by tests to round-trip pin_current_thread.
std::vector<int> current_affinity();

}  // namespace hp::exec
