#include "exec/exec.hpp"

#include <cstdlib>
#include <string>

namespace hp::exec {

ExecPolicy& ExecPolicy::apply_env_overrides() {
    if (const char* pin_env = std::getenv("HOTPOTATO_PIN")) {
        if (auto parsed = parse_pin_policy(pin_env)) pin = *parsed;
    }
    if (const char* numa_env = std::getenv("HOTPOTATO_NUMA")) {
        const std::string v(numa_env);
        if (v == "on" || v == "1") numa = true;
        if (v == "off" || v == "0") numa = false;
    }
    return *this;
}

}  // namespace hp::exec
