#pragma once

#include <cstddef>
#include <optional>

#include "exec/affinity.hpp"
#include "exec/arena.hpp"
#include "exec/scratch.hpp"
#include "exec/topology.hpp"

namespace hp::exec {

/// Placement policy for a campaign (or any worker pool): how workers are
/// pinned and whether node-local memory placement is used. Plain data with
/// value semantics; the engine resolves it against the host topology (or
/// the injected one) at launch.
struct ExecPolicy {
    PinPolicy pin = PinPolicy::kAuto;
    /// Master switch for NUMA features (node-bound arenas, per-node bundle
    /// replication). Pinning still happens when `pin` says so; with numa
    /// off, arenas are unbound and every worker shares the global bundle.
    bool numa = true;
    /// Block size hint for each worker's arena.
    std::size_t arena_block_bytes = Arena::kDefaultBlockBytes;
    /// Test seam: when set, used instead of discover_topology(). Lets tests
    /// exercise multi-node planning/replication on single-node hosts.
    std::optional<Topology> topology;

    /// Environment overrides, mirroring HOTPOTATO_SOLVER / HOTPOTATO_DISPATCH:
    /// HOTPOTATO_PIN=auto|none|compact|spread and HOTPOTATO_NUMA=on|off|1|0
    /// take precedence over the in-code (and CLI) values. Unknown values are
    /// ignored. Returns *this for chaining.
    ExecPolicy& apply_env_overrides();

    /// The topology this policy resolves to: the injected one if set, else
    /// host discovery (which itself degrades to single-node).
    Topology resolve_topology() const {
        return topology ? *topology : discover_topology();
    }
};

}  // namespace hp::exec
