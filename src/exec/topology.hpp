#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hp::exec {

/// One NUMA node: its id and the CPUs it hosts (sorted ascending). CPU
/// numbering is the kernel's; holes (offline CPUs) are simply absent.
struct TopologyNode {
    int id = 0;
    std::vector<int> cpus;
};

/// Host memory/CPU topology as the execution layer sees it: NUMA nodes in
/// ascending id order, each with its CPU list. A Topology is plain data —
/// it can be constructed by discovery (sysfs), by tests (fixtures or
/// hand-built fakes) or by the single-node fallback, and every consumer
/// (pinning plans, arena binding, per-node replication) treats it the same.
struct Topology {
    std::vector<TopologyNode> nodes;

    /// Degenerate one-node topology covering @p cpu_count CPUs (0..n-1) —
    /// what discovery falls back to when the host exposes no NUMA
    /// information. Placement-wise it makes every NUMA feature a no-op.
    static Topology single_node(std::size_t cpu_count);

    std::size_t node_count() const { return nodes.size(); }
    bool multi_node() const { return nodes.size() > 1; }
    std::size_t cpu_count() const;
    /// Node hosting @p cpu, or -1 when the CPU is not in the topology.
    int node_of(int cpu) const;
};

/// Parses a kernel cpulist string ("0-3,8,10-11") into a sorted CPU vector.
/// Throws std::invalid_argument on malformed input (discovery catches this
/// and falls back; tests assert it).
std::vector<int> parse_cpu_list(const std::string& text);

/// CPUs the calling thread may run on right now (sched_getaffinity), or
/// hardware_concurrency as a best guess where that is unavailable.
std::size_t online_cpu_count();

/// Reads the host topology from @p sysfs_node_dir (node*/cpulist entries).
/// Any failure — directory missing, no node entries, malformed cpulist —
/// degrades to Topology::single_node(online_cpu_count()), so callers never
/// need libnuma or a NUMA kernel to run. With the build configured as
/// HOTPOTATO_EXEC_NUMA=OFF the *default* call returns the single-node
/// fallback unconditionally (the forced no-NUMA CI leg); explicit paths are
/// still parsed, keeping fixture tests meaningful in both builds.
Topology discover_topology();
Topology discover_topology(const std::string& sysfs_node_dir);

}  // namespace hp::exec
