#include "exec/affinity.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace hp::exec {

std::optional<PinPolicy> parse_pin_policy(const std::string& text) {
    if (text == "auto") return PinPolicy::kAuto;
    if (text == "none") return PinPolicy::kNone;
    if (text == "compact") return PinPolicy::kCompact;
    if (text == "spread") return PinPolicy::kSpread;
    return std::nullopt;
}

const char* to_string(PinPolicy policy) {
    switch (policy) {
        case PinPolicy::kAuto: return "auto";
        case PinPolicy::kNone: return "none";
        case PinPolicy::kCompact: return "compact";
        case PinPolicy::kSpread: return "spread";
    }
    return "?";
}

std::vector<WorkerPlacement> plan_pinning(const Topology& topology,
                                          std::size_t workers,
                                          PinPolicy policy) {
    std::vector<WorkerPlacement> plan(workers);
    if (workers == 0 || topology.nodes.empty() || topology.cpu_count() == 0)
        return plan;

    if (policy == PinPolicy::kAuto) {
        if (!topology.multi_node()) return plan;  // == kNone
        policy = workers <= topology.nodes.front().cpus.size()
                     ? PinPolicy::kCompact
                     : PinPolicy::kSpread;
    }
    if (policy == PinPolicy::kNone) return plan;

    if (policy == PinPolicy::kCompact) {
        // Flatten nodes-then-CPUs in order and wrap.
        std::vector<WorkerPlacement> slots;
        slots.reserve(topology.cpu_count());
        for (const TopologyNode& node : topology.nodes)
            for (int cpu : node.cpus) slots.push_back({cpu, node.id});
        for (std::size_t w = 0; w < workers; ++w)
            plan[w] = slots[w % slots.size()];
        return plan;
    }

    // kSpread: round-robin the nodes, each node handing out CPUs in order
    // (wrapping within the node when revisited past its CPU count).
    std::vector<std::size_t> next_cpu(topology.nodes.size(), 0);
    for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t n = w % topology.nodes.size();
        const TopologyNode& node = topology.nodes[n];
        plan[w] = {node.cpus[next_cpu[n] % node.cpus.size()], node.id};
        ++next_cpu[n];
    }
    return plan;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
    if (cpu < 0) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

std::vector<int> current_affinity() {
    std::vector<int> cpus;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0)
        for (int c = 0; c < CPU_SETSIZE; ++c)
            if (CPU_ISSET(c, &set)) cpus.push_back(c);
#endif
    return cpus;
}

}  // namespace hp::exec
