#pragma once

#include <cstddef>
#include <memory_resource>
#include <new>
#include <vector>

namespace hp::exec {

/// Monotonic bump allocator over chained memory blocks, optionally bound to
/// a NUMA node. Allocation is a pointer bump; there is no per-allocation
/// free. `reset()` rewinds every block while keeping the reservation, so a
/// worker can reuse the same pages run after run (the point: after warm-up
/// the arena never touches the system allocator again and every byte lives
/// on the worker's node).
///
/// Node binding is best-effort: pages are advised to the node with the raw
/// mbind syscall when the platform has it, and the first-touch policy of
/// the pinned worker covers the rest. Binding failure (no NUMA kernel,
/// cpuset-restricted container, HOTPOTATO_EXEC_NUMA=OFF build) is silently
/// ignored — placement may never affect correctness, only locality.
///
/// Not thread-safe; each worker owns its own Arena.
class Arena {
public:
    /// @param block_bytes  size of each mapped block (rounded up to page
    ///                     size); later blocks grow geometrically so a
    ///                     mis-sized hint costs a few extra mmaps, not O(n).
    /// @param numa_node    node to bind pages to, or -1 for no binding.
    explicit Arena(std::size_t block_bytes = kDefaultBlockBytes,
                   int numa_node = -1);
    ~Arena();

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// Bump-allocates @p bytes aligned to @p align (power of two). Grows by
    /// mapping a new block when the current one is exhausted; throws
    /// std::bad_alloc only if the OS refuses memory outright.
    void* allocate(std::size_t bytes,
                   std::size_t align = alignof(std::max_align_t));

    /// Rewinds every block to empty without unmapping. Reservation and node
    /// binding are kept; high_water() is kept too (it is a lifetime peak).
    void reset();

    /// Total bytes currently mapped by this arena.
    std::size_t bytes_reserved() const { return bytes_reserved_; }
    /// Peak bytes ever live at once across the arena's lifetime.
    std::size_t high_water() const { return high_water_; }
    /// Bytes currently live (allocated since the last reset).
    std::size_t bytes_used() const { return bytes_used_; }
    int numa_node() const { return numa_node_; }

    static constexpr std::size_t kDefaultBlockBytes = 8u << 20;  // 8 MiB

private:
    struct Block {
        char* base = nullptr;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    Block& grow(std::size_t min_bytes);

    std::vector<Block> blocks_;
    std::size_t block_bytes_;
    std::size_t bytes_reserved_ = 0;
    std::size_t bytes_used_ = 0;
    std::size_t high_water_ = 0;
    int numa_node_;
};

/// std::pmr::memory_resource view of an Arena, so std::pmr containers (and
/// the pmr-backed linalg::Vector / workspaces) can carve their storage from
/// a worker's node-local arena. Deallocation is a no-op — memory comes back
/// only via Arena::reset() — which is exactly right for grow-only workspace
/// buffers that live as long as the worker.
class ArenaResource final : public std::pmr::memory_resource {
public:
    explicit ArenaResource(Arena& arena) : arena_(&arena) {}

private:
    void* do_allocate(std::size_t bytes, std::size_t align) override {
        return arena_->allocate(bytes, align);
    }
    void do_deallocate(void*, std::size_t, std::size_t) override {}
    bool do_is_equal(
        const std::pmr::memory_resource& other) const noexcept override {
        const auto* o = dynamic_cast<const ArenaResource*>(&other);
        return o != nullptr && o->arena_ == arena_;
    }

    Arena* arena_;
};

}  // namespace hp::exec
