#include "exec/topology.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace hp::exec {

Topology Topology::single_node(std::size_t cpu_count) {
    Topology topo;
    TopologyNode node;
    node.id = 0;
    node.cpus.reserve(cpu_count);
    for (std::size_t c = 0; c < cpu_count; ++c)
        node.cpus.push_back(static_cast<int>(c));
    topo.nodes.push_back(std::move(node));
    return topo;
}

std::size_t Topology::cpu_count() const {
    std::size_t n = 0;
    for (const TopologyNode& node : nodes) n += node.cpus.size();
    return n;
}

int Topology::node_of(int cpu) const {
    for (const TopologyNode& node : nodes)
        if (std::binary_search(node.cpus.begin(), node.cpus.end(), cpu))
            return node.id;
    return -1;
}

std::vector<int> parse_cpu_list(const std::string& text) {
    std::vector<int> cpus;
    std::size_t pos = 0;
    const auto parse_int = [&]() -> int {
        std::size_t start = pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos == start)
            throw std::invalid_argument("parse_cpu_list: expected a number in '" +
                                        text + "'");
        return std::stoi(text.substr(start, pos - start));
    };
    // Skip trailing whitespace/newline the sysfs files carry.
    const auto at_end = [&] {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
        return pos >= text.size();
    };
    if (at_end()) return cpus;  // empty list (memory-only node)
    for (;;) {
        const int first = parse_int();
        int last = first;
        if (pos < text.size() && text[pos] == '-') {
            ++pos;
            last = parse_int();
        }
        if (last < first)
            throw std::invalid_argument("parse_cpu_list: descending range in '" +
                                        text + "'");
        for (int c = first; c <= last; ++c) cpus.push_back(c);
        if (at_end()) break;
        if (text[pos] != ',')
            throw std::invalid_argument("parse_cpu_list: unexpected '" +
                                        std::string(1, text[pos]) + "' in '" +
                                        text + "'");
        ++pos;
        if (at_end())
            throw std::invalid_argument("parse_cpu_list: trailing ',' in '" +
                                        text + "'");
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

std::size_t online_cpu_count() {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const int n = CPU_COUNT(&set);
        if (n > 0) return static_cast<std::size_t>(n);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

Topology discover_topology(const std::string& sysfs_node_dir) {
    namespace fs = std::filesystem;
    Topology topo;
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(sysfs_node_dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("node", 0) != 0) continue;
        const std::string id_text = name.substr(4);
        if (id_text.empty() ||
            !std::all_of(id_text.begin(), id_text.end(), [](unsigned char c) {
                return std::isdigit(c);
            }))
            continue;
        std::ifstream cpulist(entry.path() / "cpulist");
        if (!cpulist) continue;
        std::stringstream buffer;
        buffer << cpulist.rdbuf();
        std::vector<int> cpus;
        try {
            cpus = parse_cpu_list(buffer.str());
        } catch (const std::invalid_argument&) {
            return Topology::single_node(online_cpu_count());
        }
        if (cpus.empty()) continue;  // memory-only node: no CPUs to place on
        TopologyNode node;
        node.id = std::stoi(id_text);
        node.cpus = std::move(cpus);
        topo.nodes.push_back(std::move(node));
    }
    if (ec || topo.nodes.empty())
        return Topology::single_node(online_cpu_count());
    std::sort(topo.nodes.begin(), topo.nodes.end(),
              [](const TopologyNode& a, const TopologyNode& b) {
                  return a.id < b.id;
              });
    return topo;
}

Topology discover_topology() {
#if defined(HP_EXEC_NO_NUMA)
    // Forced fallback build (HOTPOTATO_EXEC_NUMA=OFF): behave exactly like a
    // host that exposes no NUMA information.
    return Topology::single_node(online_cpu_count());
#else
    return discover_topology("/sys/devices/system/node");
#endif
}

}  // namespace hp::exec
