#include "exec/arena.hpp"

#include <cstdlib>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#if !defined(HP_EXEC_NO_NUMA)
#include <sys/syscall.h>
#if __has_include(<numaif.h>)
#include <numaif.h>
#else
// Raw-syscall fallback so node binding works without libnuma headers.
#define HP_EXEC_LOCAL_MPOL_BIND 2
#endif
#endif  // !HP_EXEC_NO_NUMA
#endif  // __linux__

namespace hp::exec {
namespace {

std::size_t page_size() {
#if defined(__linux__)
    const long ps = ::sysconf(_SC_PAGESIZE);
    if (ps > 0) return static_cast<std::size_t>(ps);
#endif
    return 4096;
}

std::size_t round_up(std::size_t v, std::size_t to) {
    return (v + to - 1) / to * to;
}

void bind_to_node(void* base, std::size_t size, int node) {
#if defined(__linux__) && !defined(HP_EXEC_NO_NUMA)
    if (node < 0) return;
#if defined(HP_EXEC_LOCAL_MPOL_BIND)
    const int mode = HP_EXEC_LOCAL_MPOL_BIND;
#else
    const int mode = MPOL_BIND;
#endif
    // mbind wants a nodemask of unsigned longs; one word covers node < 64,
    // which is every machine this will see. Best-effort: errors ignored.
    unsigned long mask = 1ul << (node % (8 * sizeof(unsigned long)));
    (void)::syscall(SYS_mbind, base, size, mode, &mask,
                    8 * sizeof(unsigned long) + 1, 0u);
#else
    (void)base;
    (void)size;
    (void)node;
#endif
}

void* map_block(std::size_t size, int node) {
#if defined(__linux__)
    void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) return nullptr;
    bind_to_node(base, size, node);
#if defined(MADV_HUGEPAGE)
    (void)::madvise(base, size, MADV_HUGEPAGE);
#endif
    return base;
#else
    (void)node;
    return std::aligned_alloc(alignof(std::max_align_t), size);
#endif
}

void unmap_block(void* base, std::size_t size) {
#if defined(__linux__)
    ::munmap(base, size);
#else
    (void)size;
    std::free(base);
#endif
}

}  // namespace

Arena::Arena(std::size_t block_bytes, int numa_node)
    : block_bytes_(round_up(block_bytes == 0 ? kDefaultBlockBytes : block_bytes,
                            page_size())),
      numa_node_(numa_node) {}

Arena::~Arena() {
    for (Block& b : blocks_) unmap_block(b.base, b.size);
}

Arena::Block& Arena::grow(std::size_t min_bytes) {
    // Geometric growth: each new block at least doubles the largest so far,
    // so a mis-sized block hint costs O(log n) maps, not O(n).
    std::size_t size = block_bytes_;
    if (!blocks_.empty()) size = blocks_.back().size * 2;
    if (size < min_bytes) size = round_up(min_bytes, page_size());
    void* base = map_block(size, numa_node_);
    if (base == nullptr) throw std::bad_alloc();
    blocks_.push_back({static_cast<char*>(base), size, 0});
    bytes_reserved_ += size;
    return blocks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    Block* block = blocks_.empty() ? nullptr : &blocks_.back();
    if (block != nullptr) {
        const std::size_t aligned = round_up(block->used, align);
        if (aligned + bytes <= block->size) {
            void* p = block->base + aligned;
            bytes_used_ += (aligned - block->used) + bytes;
            block->used = aligned + bytes;
            if (bytes_used_ > high_water_) high_water_ = bytes_used_;
            return p;
        }
    }
    Block& fresh = grow(bytes + align);
    const std::size_t aligned = round_up(0, align);  // base is page-aligned
    void* p = fresh.base + aligned;
    fresh.used = aligned + bytes;
    bytes_used_ += fresh.used;
    if (bytes_used_ > high_water_) high_water_ = bytes_used_;
    return p;
}

void Arena::reset() {
    for (Block& b : blocks_) b.used = 0;
    bytes_used_ = 0;
}

}  // namespace hp::exec
