#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hp::floorplan {

/// Geometry of one core tile in a grid floorplan.
struct CoreTile {
    std::size_t index = 0;  ///< linear core id, row-major within layer
    std::size_t row = 0;
    std::size_t col = 0;
    std::size_t layer = 0;  ///< 0 = closest to the heat spreader/sink
    double x_mm = 0.0;      ///< lower-left corner
    double y_mm = 0.0;
    double width_mm = 0.0;
    double height_mm = 0.0;
};

/// Rectangular grid floorplan of identical square core tiles, optionally
/// 3D-stacked (multiple silicon layers, CoMeT-style).
///
/// This is the physical layout shared by the thermal RC network builder
/// (adjacency -> lateral/vertical conductances) and the S-NUCA architecture
/// model (Manhattan distances -> NoC/TSV hop counts). Core ids are row-major
/// within a layer, layers stacked: id = layer*rows*cols + row*cols + col.
/// Layer 0 sits on the heat spreader; higher layers are farther from the
/// cooling stack.
class GridFloorplan {
public:
    /// Builds @p layers stacked @p rows x @p cols grids of square tiles of
    /// @p core_area_mm2. Throws std::invalid_argument for an empty grid or
    /// non-positive area.
    GridFloorplan(std::size_t rows, std::size_t cols, double core_area_mm2,
                  std::size_t layers = 1);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t layers() const { return layers_; }
    /// Tiles per layer.
    std::size_t layer_core_count() const { return rows_ * cols_; }
    std::size_t core_count() const { return rows_ * cols_ * layers_; }
    double core_area_mm2() const { return core_area_mm2_; }
    double core_edge_mm() const { return edge_mm_; }

    /// Linear index of the tile at (@p layer, @p row, @p col);
    /// bounds-checked.
    std::size_t index_of(std::size_t row, std::size_t col,
                         std::size_t layer = 0) const;

    /// Tile geometry for core @p index; bounds-checked.
    const CoreTile& tile(std::size_t index) const;

    /// Same-layer shared-edge neighbours of core @p index (2-4 tiles).
    std::vector<std::size_t> neighbors(std::size_t index) const;

    /// Vertically adjacent tiles in neighbouring layers (0-2 tiles).
    std::vector<std::size_t> stack_neighbors(std::size_t index) const;

    /// Manhattan distance in hops between two cores, counting one hop per
    /// grid step and one per layer crossing (TSV); equals the XY(Z)-routed
    /// NoC hop count between their routers.
    std::size_t manhattan_hops(std::size_t a, std::size_t b) const;

private:
    void check_index(std::size_t index) const;

    std::size_t rows_;
    std::size_t cols_;
    std::size_t layers_;
    double core_area_mm2_;
    double edge_mm_;
    std::vector<CoreTile> tiles_;
};

}  // namespace hp::floorplan
