#include "floorplan/floorplan.hpp"

namespace hp::floorplan {

GridFloorplan::GridFloorplan(std::size_t rows, std::size_t cols,
                             double core_area_mm2, std::size_t layers)
    : rows_(rows), cols_(cols), layers_(layers), core_area_mm2_(core_area_mm2) {
    if (rows == 0 || cols == 0 || layers == 0)
        throw std::invalid_argument("GridFloorplan: grid must be non-empty");
    if (core_area_mm2 <= 0.0)
        throw std::invalid_argument("GridFloorplan: core area must be positive");
    edge_mm_ = std::sqrt(core_area_mm2);
    tiles_.reserve(rows * cols * layers);
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                tiles_.push_back(CoreTile{
                    .index = (l * rows + r) * cols + c,
                    .row = r,
                    .col = c,
                    .layer = l,
                    .x_mm = static_cast<double>(c) * edge_mm_,
                    .y_mm = static_cast<double>(r) * edge_mm_,
                    .width_mm = edge_mm_,
                    .height_mm = edge_mm_,
                });
            }
        }
    }
}

std::size_t GridFloorplan::index_of(std::size_t row, std::size_t col,
                                    std::size_t layer) const {
    if (row >= rows_ || col >= cols_ || layer >= layers_)
        throw std::out_of_range("GridFloorplan::index_of: out of range");
    return (layer * rows_ + row) * cols_ + col;
}

const CoreTile& GridFloorplan::tile(std::size_t index) const {
    check_index(index);
    return tiles_[index];
}

std::vector<std::size_t> GridFloorplan::neighbors(std::size_t index) const {
    check_index(index);
    const CoreTile& t = tiles_[index];
    std::vector<std::size_t> out;
    out.reserve(4);
    if (t.row > 0) out.push_back(index_of(t.row - 1, t.col, t.layer));
    if (t.row + 1 < rows_) out.push_back(index_of(t.row + 1, t.col, t.layer));
    if (t.col > 0) out.push_back(index_of(t.row, t.col - 1, t.layer));
    if (t.col + 1 < cols_) out.push_back(index_of(t.row, t.col + 1, t.layer));
    return out;
}

std::vector<std::size_t> GridFloorplan::stack_neighbors(
    std::size_t index) const {
    check_index(index);
    const CoreTile& t = tiles_[index];
    std::vector<std::size_t> out;
    out.reserve(2);
    if (t.layer > 0) out.push_back(index_of(t.row, t.col, t.layer - 1));
    if (t.layer + 1 < layers_) out.push_back(index_of(t.row, t.col, t.layer + 1));
    return out;
}

std::size_t GridFloorplan::manhattan_hops(std::size_t a, std::size_t b) const {
    check_index(a);
    check_index(b);
    const CoreTile& ta = tiles_[a];
    const CoreTile& tb = tiles_[b];
    const auto diff = [](std::size_t x, std::size_t y) {
        return x > y ? x - y : y - x;
    };
    return diff(ta.row, tb.row) + diff(ta.col, tb.col) +
           diff(ta.layer, tb.layer);
}

void GridFloorplan::check_index(std::size_t index) const {
    if (index >= tiles_.size())
        throw std::out_of_range("GridFloorplan: core index out of range");
}

}  // namespace hp::floorplan
