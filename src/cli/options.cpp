#include "cli/options.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "arch/manycore.hpp"
#include "campaign/atomic_file.hpp"
#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "core/hotpotato.hpp"
#include "exec/affinity.hpp"
#include "core/hotpotato_dvfs.hpp"
#include "fault/fault_io.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "report/failures.hpp"
#include "report/resilience.hpp"
#include "sched/pcgov.hpp"
#include "sched/pcmig.hpp"
#include "sched/reactive.hpp"
#include "sched/global_rotation.hpp"
#include "sched/static_schedulers.hpp"
#include "server/server.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_io.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "workload/workload_io.hpp"

namespace hp::cli {

std::string usage() {
    return R"(hotpotato_sim - interval thermal simulation of S-NUCA many-cores

machine:
  --rows N --cols N        mesh dimensions           (default 8x8)
  --layers N               stacked silicon layers    (default 1)
  --solver NAME            thermal solver backend: auto | dense | modal
                           (default auto: dense up to the SolverConfig node
                           threshold, truncated-modal above; the
                           HOTPOTATO_SOLVER environment variable overrides
                           auto selection)
  --solver-tol K           modal truncation tolerance in kelvin
                           (default 0.01; ignored by --solver dense)

policy:
  --scheduler NAME         hotpotato | hotpotato-dvfs | pcmig | pcgov |
                           tsp-dvfs | static | reactive | global-rotation
                                                     (default hotpotato)
  --no-peak-cache          disable the peak-prediction memo (hotpotato,
                           hotpotato-dvfs, pcmig); results are bit-identical
                           either way, only evaluation counts change

fidelity:
  --noc-contention         model NoC link queueing on LLC latency
  --sensors                DTM driven by quantised/noisy thermal sensors
  --power-gating           gate idle cores (wake penalty on arrival)

workload (pick one):
  --tasks-file PATH        explicit task list ("task <bench> <thr> <arr_s>")
  --benchmark NAME         homogeneous full-chip fill of one benchmark
  (default)                Poisson mix: --tasks N --rate R --min-threads N
                           --max-threads N --seed S
  --profiles-file PATH     extra benchmark definitions usable by name

simulation:
  --t-dtm C                DTM threshold             (default 70)
  --ambient C              ambient temperature       (default 45)
  --max-time S             simulated-time budget     (default 30)
  --trace PATH             write a thermal trace CSV
  --trace-interval S       trace sampling period     (default 1e-3)

observability:
  --events PATH            write the discrete-event trace (rotations,
                           migrations, DVFS, DTM, faults, ...) as CSV
  --chrome-trace PATH      write the event trace as Chrome trace_event JSON
                           (load in chrome://tracing or Perfetto)
  --metrics                print the metrics block (counters, gauges,
                           histograms, phase timers); with --compare, the
                           campaign-level roll-up

resilience:
  --faults PATH            fault schedule CSV
                           (time_s,kind,target,duration_s,magnitude)
  --fault-seed S           seed for fault perturbations (default 1)
  --watchdog               thermal-runaway watchdog (emergency f_min
                           throttle; implied by --faults)

campaign:
  --compare A,B,...        race the named schedulers over the workload on
                           the parallel campaign engine; prints a markdown
                           table (record order is deterministic at any
                           --jobs value)
  --jobs N                 campaign worker threads (default 1; 0 = one per
                           hardware thread)
  --pin POLICY             worker CPU pinning: auto | none | compact | spread
                           (default auto: no pinning on single-node hosts,
                           compact while one NUMA node holds every worker,
                           spread beyond; HOTPOTATO_PIN overrides)
  --numa on|off            node-local worker arenas + per-node read-only
                           solver-bundle replicas (default on; placement
                           never changes results, only memory locality;
                           HOTPOTATO_NUMA overrides)
  --csv PATH               write the record table as CSV (atomic: tmp+rename)
  --json PATH              write records + summary as JSON (atomic)

resilience (campaign mode, DESIGN.md §10):
  --journal PATH           append-only run journal: one fsync'd, checksummed
                           record per completed run (crash-safe checkpoint)
  --resume PATH            resume from an existing journal: journaled runs
                           are restored, only the missing ones execute, and
                           the merged records are bit-identical to an
                           uninterrupted campaign at any --jobs
  --run-timeout S          per-run wall-clock deadline; a run past it is
                           cancelled and recorded failed ("timeout") while
                           the pool keeps draining (default: off)
  --max-retries N          retries for transient failures (default 0)
  --retry-backoff S        base backoff before the first retry; doubles per
                           attempt with deterministic jitter (default 0.05)

server mode (hotpotato_sim serve ..., DESIGN.md §13):
  serve                    run the thermal-advice daemon instead of a
                           simulation; framed requests over a Unix-domain
                           socket are answered by a fixed worker pool
                           (protocol: README appendix)
  --socket PATH            listening AF_UNIX socket path (required)
  --server-threads N       worker-thread pool size      (default 4)
  --server-configs A,B     chip-config tags served      (default
                           paper_64core; see StudySetup::known_names())
  --server-cache N         shared prediction-cache entries per config
                           (default 4096; 0 disables)
  (--solver, --solver-tol, --t-dtm, --ambient, --pin, --numa and
   --metrics apply to the daemon; SIGINT/SIGTERM drain and stop it)

exit codes:
  0  all runs completed and finished
  1  some runs failed, timed out, or did not finish
  2  bad flags / invalid configuration / unexpected error
  3  --resume journal corrupt or written for a different campaign

  --help                   this text
)";
}

namespace {

double parse_double(const std::string& flag, const std::string& value) {
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return v;
    } catch (const std::exception&) {
        throw std::invalid_argument("bad value for " + flag + ": " + value);
    }
}

std::uint64_t parse_uint(const std::string& flag, const std::string& value) {
    try {
        std::size_t used = 0;
        const unsigned long long v = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return v;
    } catch (const std::exception&) {
        throw std::invalid_argument("bad value for " + flag + ": " + value);
    }
}

/// Splits a comma-separated list, keeping empty entries so validation can
/// flag them.
std::vector<std::string> split_names(const std::string& list) {
    std::vector<std::string> names;
    std::string current;
    for (char c : list) {
        if (c == ',') {
            names.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    names.push_back(current);
    return names;
}

}  // namespace

CliOptions parse(const std::vector<std::string>& args) {
    CliOptions o;
    std::size_t first = 0;
    if (!args.empty() && args[0] == "serve") {
        o.serve = true;
        first = 1;
    }
    for (std::size_t i = first; i < args.size(); ++i) {
        const std::string& flag = args[i];
        if (flag == "--help" || flag == "-h") {
            o.help = true;
            continue;
        }
        if (flag == "--noc-contention") {
            o.noc_contention = true;
            continue;
        }
        if (flag == "--sensors") {
            o.sensors = true;
            continue;
        }
        if (flag == "--power-gating") {
            o.power_gating = true;
            continue;
        }
        if (flag == "--watchdog") {
            o.watchdog = true;
            continue;
        }
        if (flag == "--metrics") {
            o.metrics = true;
            continue;
        }
        if (flag == "--no-peak-cache") {
            o.no_peak_cache = true;
            continue;
        }
        const auto value = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                throw std::invalid_argument(flag + " needs a value");
            return args[++i];
        };
        if (flag == "--rows") o.rows = parse_uint(flag, value());
        else if (flag == "--cols") o.cols = parse_uint(flag, value());
        else if (flag == "--layers") o.layers = parse_uint(flag, value());
        else if (flag == "--solver") o.solver = value();
        else if (flag == "--solver-tol")
            o.solver_tol_c = parse_double(flag, value());
        else if (flag == "--scheduler") o.scheduler = value();
        else if (flag == "--profiles-file") o.profiles_file = value();
        else if (flag == "--tasks-file") o.tasks_file = value();
        else if (flag == "--benchmark") o.benchmark = value();
        else if (flag == "--tasks") o.tasks = parse_uint(flag, value());
        else if (flag == "--rate") o.arrivals_per_s = parse_double(flag, value());
        else if (flag == "--min-threads") o.min_threads = parse_uint(flag, value());
        else if (flag == "--max-threads") o.max_threads = parse_uint(flag, value());
        else if (flag == "--seed") o.seed = parse_uint(flag, value());
        else if (flag == "--t-dtm") o.t_dtm_c = parse_double(flag, value());
        else if (flag == "--ambient") o.ambient_c = parse_double(flag, value());
        else if (flag == "--max-time") o.max_time_s = parse_double(flag, value());
        else if (flag == "--trace") o.trace_file = value();
        else if (flag == "--trace-interval")
            o.trace_interval_s = parse_double(flag, value());
        else if (flag == "--events") o.events_file = value();
        else if (flag == "--chrome-trace") o.chrome_trace_file = value();
        else if (flag == "--faults") o.faults_file = value();
        else if (flag == "--fault-seed") o.fault_seed = parse_uint(flag, value());
        else if (flag == "--compare") o.compare = value();
        else if (flag == "--jobs") o.jobs = parse_uint(flag, value());
        else if (flag == "--pin") o.pin = value();
        else if (flag == "--numa") {
            const std::string& v = value();
            if (v == "on" || v == "1") o.numa = true;
            else if (v == "off" || v == "0") o.numa = false;
            else throw std::invalid_argument("bad value for --numa: " + v +
                                             " (want on|off)");
        }
        else if (flag == "--socket") o.socket_path = value();
        else if (flag == "--server-threads")
            o.server_threads = parse_uint(flag, value());
        else if (flag == "--server-configs") o.server_configs = value();
        else if (flag == "--server-cache")
            o.server_cache = parse_uint(flag, value());
        else if (flag == "--csv") o.csv_file = value();
        else if (flag == "--json") o.json_file = value();
        else if (flag == "--journal") o.journal_file = value();
        else if (flag == "--resume") o.resume_file = value();
        else if (flag == "--run-timeout")
            o.run_timeout_s = parse_double(flag, value());
        else if (flag == "--max-retries")
            o.max_retries = parse_uint(flag, value());
        else if (flag == "--retry-backoff")
            o.retry_backoff_s = parse_double(flag, value());
        else
            throw std::invalid_argument("unknown flag: " + flag);
    }

    // Semantic validation: collect every violation before throwing so the
    // user can fix a bad invocation in one pass.
    std::vector<std::string> violations;
    if (o.rows == 0 || o.cols == 0 || o.layers == 0)
        violations.push_back("machine dimensions must be positive");
    try {
        (void)thermal::parse_solver_backend(o.solver);
    } catch (const std::invalid_argument& e) {
        violations.push_back(std::string("--solver: ") + e.what());
    }
    if (o.solver_tol_c <= 0.0)
        violations.push_back("--solver-tol must be positive");
    if (!o.tasks_file.empty() && !o.benchmark.empty())
        violations.push_back(
            "--tasks-file and --benchmark are mutually exclusive");
    if (o.min_threads < 2 || o.max_threads < o.min_threads)
        violations.push_back(
            "bad thread-count range: need 2 <= --min-threads <= "
            "--max-threads");
    if (o.t_dtm_c <= o.ambient_c)
        violations.push_back("--t-dtm must exceed --ambient");
    if (o.max_time_s <= 0.0)
        violations.push_back("--max-time must be positive");
    if (o.arrivals_per_s <= 0.0)
        violations.push_back("--rate must be positive");
    if (o.trace_interval_s <= 0.0)
        violations.push_back("--trace-interval must be positive");
    if (o.run_timeout_s < 0.0)
        violations.push_back("--run-timeout must be >= 0");
    if (o.retry_backoff_s <= 0.0)
        violations.push_back("--retry-backoff must be positive");
    if (!exec::parse_pin_policy(o.pin))
        violations.push_back("--pin: unknown policy: " + o.pin +
                             " (want auto|none|compact|spread)");
    if (!o.journal_file.empty() && !o.resume_file.empty())
        violations.push_back(
            "--journal and --resume are mutually exclusive (--resume keeps "
            "appending to the journal it resumes from)");
    if (o.compare.empty()) {
        const struct {
            bool set;
            const char* flag;
        } campaign_only[] = {
            {!o.journal_file.empty(), "--journal"},
            {!o.resume_file.empty(), "--resume"},
            {o.run_timeout_s > 0.0, "--run-timeout"},
            {o.max_retries > 0, "--max-retries"},
            {!o.csv_file.empty(), "--csv"},
            {!o.json_file.empty(), "--json"},
            {o.pin != "auto" && !o.serve, "--pin"},
            {!o.numa && !o.serve, "--numa off"},
        };
        for (const auto& c : campaign_only)
            if (c.set)
                violations.push_back(std::string(c.flag) +
                                     " requires --compare (campaign mode)");
    }
    if (o.serve) {
        if (o.socket_path.empty())
            violations.push_back("serve requires --socket PATH");
        if (o.server_threads == 0)
            violations.push_back("--server-threads must be positive");
        if (!o.compare.empty())
            violations.push_back("--compare is not supported in serve mode");
        const std::vector<std::string>& known =
            campaign::StudySetup::known_names();
        for (const std::string& name : split_names(o.server_configs)) {
            if (name.empty()) {
                violations.push_back("--server-configs has an empty tag");
                continue;
            }
            if (std::find(known.begin(), known.end(), name) == known.end())
                violations.push_back("--server-configs: unknown config: " +
                                     name);
        }
    } else {
        const struct {
            bool set;
            const char* flag;
        } server_only[] = {
            {!o.socket_path.empty(), "--socket"},
            {o.server_threads != 4, "--server-threads"},
            {o.server_configs != "paper_64core", "--server-configs"},
            {o.server_cache != 4096, "--server-cache"},
        };
        for (const auto& c : server_only)
            if (c.set)
                violations.push_back(std::string(c.flag) +
                                     " requires serve mode");
    }
    if (!o.compare.empty()) {
        if (!o.trace_file.empty())
            violations.push_back(
                "--trace is not supported with --compare (per-run traces "
                "would overwrite each other)");
        if (!o.events_file.empty() || !o.chrome_trace_file.empty())
            violations.push_back(
                "--events/--chrome-trace are not supported with --compare "
                "(per-run traces would overwrite each other; use --metrics "
                "for the campaign roll-up)");
        for (const std::string& name : split_names(o.compare)) {
            if (name.empty()) {
                violations.push_back(
                    "--compare has an empty scheduler name");
                continue;
            }
            try {
                make_scheduler(name);
            } catch (const std::invalid_argument&) {
                violations.push_back("--compare: unknown scheduler: " + name);
            }
        }
    }
    if (!violations.empty()) {
        std::string message = "invalid options:";
        for (const std::string& v : violations) message += "\n  - " + v;
        throw std::invalid_argument(message);
    }
    return o;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name,
                                               bool use_peak_cache) {
    if (name == "hotpotato") {
        core::HotPotatoParams params;
        params.use_peak_cache = use_peak_cache;
        return std::make_unique<core::HotPotatoScheduler>(params);
    }
    if (name == "hotpotato-dvfs") {
        core::HotPotatoParams params;
        params.use_peak_cache = use_peak_cache;
        return std::make_unique<core::HotPotatoDvfsScheduler>(params);
    }
    if (name == "pcmig") {
        sched::PcMigParams params;
        params.use_peak_cache = use_peak_cache;
        return std::make_unique<sched::PcMigScheduler>(params);
    }
    if (name == "pcgov") return std::make_unique<sched::PcGovScheduler>();
    if (name == "tsp-dvfs") return std::make_unique<sched::TspDvfsScheduler>();
    if (name == "static") return std::make_unique<sched::StaticScheduler>();
    if (name == "reactive")
        return std::make_unique<sched::ReactiveMigrationScheduler>();
    if (name == "global-rotation")
        return std::make_unique<sched::GlobalRotationScheduler>();
    throw std::invalid_argument("unknown scheduler: " + name);
}

namespace {

/// The task list described by the workload options. @p extra_profiles must
/// outlive the returned specs (they may point into it).
std::vector<workload::TaskSpec> build_workload(
    const CliOptions& options, const arch::ManyCore& chip,
    const std::vector<workload::BenchmarkProfile>& extra_profiles) {
    if (!options.tasks_file.empty())
        return workload::read_tasks_file(options.tasks_file, extra_profiles);
    if (!options.benchmark.empty()) {
        const workload::BenchmarkProfile* profile = nullptr;
        for (const auto& p : extra_profiles)
            if (p.name == options.benchmark) profile = &p;
        if (profile == nullptr)
            profile = &workload::profile_by_name(options.benchmark);
        return workload::homogeneous_fill(*profile, chip.core_count(),
                                          options.seed);
    }
    return workload::poisson_mix(options.tasks, options.arrivals_per_s,
                                 options.min_threads, options.max_threads,
                                 options.seed);
}

/// A one-line label for the workload the options describe.
std::string workload_label(const CliOptions& options) {
    if (!options.tasks_file.empty()) return options.tasks_file;
    if (!options.benchmark.empty()) return "full-" + options.benchmark;
    return "poisson-" + std::to_string(options.tasks) + "x" +
           std::to_string(static_cast<long long>(options.arrivals_per_s));
}

/// Campaign mode: every --compare scheduler over the one configured
/// workload, sharded over --jobs workers.
int run_comparison(const CliOptions& options,
                   campaign::StudySetup setup, sim::SimConfig config,
                   power::PowerParams power_params,
                   std::vector<workload::TaskSpec> tasks, std::ostream& out) {
    campaign::RunSetup base;
    base.sim = std::move(config);
    base.power = power_params;
    campaign::CampaignSpec spec(std::move(setup), std::move(base));
    const bool use_peak_cache = !options.no_peak_cache;
    for (const std::string& name : split_names(options.compare))
        spec.add_scheduler(name, [name, use_peak_cache] {
            return make_scheduler(name, use_peak_cache);
        });
    spec.add_workload(workload_label(options), std::move(tasks));

    campaign::CampaignOptions campaign_options;
    campaign_options.jobs = options.jobs;
    campaign_options.observe = options.metrics;
    campaign_options.journal_path = options.journal_file;
    campaign_options.resume_path = options.resume_file;
    campaign_options.run_timeout_s = options.run_timeout_s;
    campaign_options.retry.max_retries = options.max_retries;
    campaign_options.retry.backoff_base_s = options.retry_backoff_s;
    campaign_options.exec.pin = *exec::parse_pin_policy(options.pin);
    campaign_options.exec.numa = options.numa;
    const campaign::CampaignResult result =
        campaign::run_campaign(spec, campaign_options);

    if (!options.csv_file.empty())
        campaign::write_csv_file(options.csv_file, result.records);
    if (!options.json_file.empty())
        campaign::write_json_file(options.json_file, result.records,
                                  result.summary);

    out << campaign::to_markdown(result.records);
    out << "\n" << campaign::summary_markdown(result.summary);
    const std::string failures = report::render_failures(result.summary);
    if (!failures.empty()) out << failures;
    if (options.metrics) {
        const std::string metrics = campaign::metrics_markdown(result.records);
        if (!metrics.empty()) out << "\n" << metrics;
    }
    bool ok = true;
    for (const campaign::RunRecord& r : result.records)
        ok = ok && !r.failed && r.result.all_finished;
    return ok ? kExitOk : kExitRunFailure;
}

/// SIGINT/SIGTERM latch for server mode. The handler only stores the signal
/// number (async-signal-safe); the serve loop polls it and runs the graceful
/// AdviceServer::stop() from normal context.
std::atomic<int> g_stop_signal{0};

void handle_stop_signal(int sig) {
    g_stop_signal.store(sig, std::memory_order_relaxed);
}

/// Server mode: bring the advice daemon up and block until a stop signal
/// arrives, then drain in-flight requests and report totals.
int run_server(const CliOptions& options, std::ostream& out) {
    server::ServerConfig config;
    config.socket_path = options.socket_path;
    config.threads = options.server_threads;
    config.configs = split_names(options.server_configs);
    config.solver.backend = thermal::parse_solver_backend(options.solver);
    config.solver.tolerance_c = options.solver_tol_c;
    config.exec.pin = *exec::parse_pin_policy(options.pin);
    config.exec.numa = options.numa;
    config.defaults.t_dtm_c = options.t_dtm_c;
    config.defaults.ambient_c = options.ambient_c;
    config.cache_entries = options.server_cache;

    server::AdviceServer server(std::move(config));
    out << "advice server listening on " << server.socket_path() << " ("
        << options.server_threads << " threads, configs "
        << options.server_configs << ")\n"
        << std::flush;

    g_stop_signal.store(0, std::memory_order_relaxed);
    struct sigaction action {};
    struct sigaction old_int {};
    struct sigaction old_term {};
    action.sa_handler = handle_stop_signal;
    sigaction(SIGINT, &action, &old_int);
    sigaction(SIGTERM, &action, &old_term);
    while (g_stop_signal.load(std::memory_order_relaxed) == 0 &&
           server.running())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);

    server.stop();
    out << "advice server stopped after " << server.requests_served()
        << " requests\n";
    if (options.metrics)
        out << "\nmetrics:\n" << obs::metrics_markdown(server.metrics());
    return kExitOk;
}

}  // namespace

int run(const CliOptions& options, std::ostream& out) {
    if (options.serve) return run_server(options, out);
    arch::SnucaParams params;
    params.layers = options.layers;
    thermal::SolverConfig solver_config;
    solver_config.backend = thermal::parse_solver_backend(options.solver);
    solver_config.tolerance_c = options.solver_tol_c;
    const campaign::StudySetup setup = campaign::StudySetup::custom(
        arch::ManyCore(options.rows, options.cols, params), {}, solver_config);
    const arch::ManyCore& chip = setup.chip();

    sim::SimConfig config;
    config.t_dtm_c = options.t_dtm_c;
    config.ambient_c = options.ambient_c;
    config.max_sim_time_s = options.max_time_s;
    config.model_noc_contention = options.noc_contention;
    config.dtm_uses_sensors = options.sensors;
    if (!options.trace_file.empty())
        config.trace_interval_s = options.trace_interval_s;
    config.thermal_watchdog = options.watchdog;
    if (!options.faults_file.empty()) {
        config.fault_schedule =
            fault::read_fault_schedule_file(options.faults_file);
        config.fault_seed = options.fault_seed;
    }
    power::PowerParams power_params;
    power_params.power_gating = options.power_gating;

    std::vector<workload::BenchmarkProfile> extra_profiles;
    if (!options.profiles_file.empty())
        extra_profiles = workload::read_profiles_file(options.profiles_file);
    std::vector<workload::TaskSpec> tasks =
        build_workload(options, chip, extra_profiles);

    if (!options.compare.empty())
        return run_comparison(options, setup, std::move(config), power_params,
                              std::move(tasks), out);

    const bool observe = options.metrics || !options.events_file.empty() ||
                         !options.chrome_trace_file.empty();
    std::optional<obs::Recorder> recorder;
    if (observe) recorder.emplace();

    sim::Simulator simulator = setup.make_simulator(
        config, power_params, {}, nullptr, recorder ? &*recorder : nullptr);
    simulator.add_tasks(tasks);

    std::unique_ptr<sim::Scheduler> scheduler =
        make_scheduler(options.scheduler, !options.no_peak_cache);
    const sim::SimResult result = simulator.run(*scheduler);
    if (!options.trace_file.empty())
        sim::write_trace_csv(options.trace_file, result.trace);

    if (recorder) {
        // Rendered in memory, published atomically: a crash mid-export
        // leaves the previous complete file (or none), never a torn one.
        const std::vector<obs::Event> events = recorder->events();
        if (!options.events_file.empty()) {
            std::ostringstream buffer;
            obs::write_events_csv(buffer, events);
            campaign::write_file_atomic(options.events_file, buffer.str());
        }
        if (!options.chrome_trace_file.empty()) {
            std::ostringstream buffer;
            obs::write_chrome_trace(buffer, events,
                                    "hotpotato_sim " + options.scheduler);
            campaign::write_file_atomic(options.chrome_trace_file,
                                        buffer.str());
        }
    }

    out << "machine            : " << options.rows << "x" << options.cols
        << (options.layers > 1 ? " x" + std::to_string(options.layers) + " layers"
                               : "")
        << " (" << chip.core_count() << " cores, " << chip.rings().size()
        << " AMD rings)\n";
    out << "thermal solver     : " << setup.solver().backend_name() << " ("
        << setup.solver().mode_count() << "/" << setup.model().node_count()
        << " modes";
    if (setup.solver().truncated())
        out << ", error bound " << setup.solver().error_bound_c() << " K";
    out << ")\n";
    out << "scheduler          : " << scheduler->name() << "\n";
    out << "tasks finished     : " << result.tasks.size() << "/"
        << (result.all_finished ? result.tasks.size() : std::size_t(-1))
        << (result.all_finished ? "" : " (INCOMPLETE)") << "\n";
    out << "makespan           : " << result.makespan_s * 1e3 << " ms\n";
    out << "avg response time  : " << result.average_response_time_s() * 1e3
        << " ms\n";
    out << "peak temperature   : " << result.peak_temperature_c << " C (limit "
        << options.t_dtm_c << " C)\n";
    out << "DTM triggers       : " << result.dtm_triggers << " ("
        << result.dtm_throttled_s * 1e3 << " ms throttled)\n";
    out << "migrations         : " << result.migrations << "\n";
    out << "energy             : " << result.total_energy_j << " J (avg "
        << result.average_power_w() << " W)\n";
    out << report::render_resilience(result.resilience);
    if (!result.resilience.fault_log.empty()) out << "fault log:\n";
    report::write_fault_log(out, result.resilience);
    if (!options.trace_file.empty())
        out << "trace              : " << options.trace_file << "\n";
    if (!options.events_file.empty())
        out << "events             : " << options.events_file << "\n";
    if (!options.chrome_trace_file.empty())
        out << "chrome trace       : " << options.chrome_trace_file << "\n";
    if (options.metrics && recorder) {
        out << "\nmetrics:\n" << obs::metrics_markdown(recorder->snapshot());
    }
    return result.all_finished ? kExitOk : kExitRunFailure;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
    try {
        const CliOptions options = parse(args);
        if (options.help) {
            out << usage();
            return kExitOk;
        }
        return run(options, out);
    } catch (const campaign::JournalError& e) {
        err << "error: " << e.what() << "\n";
        return kExitJournalError;
    } catch (const std::invalid_argument& e) {
        err << "error: " << e.what() << "\n\n" << usage();
        return kExitConfigError;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << "\n";
        return kExitConfigError;
    }
}

}  // namespace hp::cli
