#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace hp::cli {

/// Parsed command line of the `hotpotato_sim` driver.
struct CliOptions {
    // Machine.
    std::size_t rows = 8;
    std::size_t cols = 8;
    std::size_t layers = 1;

    // Thermal-solver backend: auto | dense | modal (thermal::SolverConfig).
    std::string solver = "auto";
    double solver_tol_c = 0.01;  ///< modal truncation tolerance [K]

    // Policy: hotpotato | hotpotato-dvfs | pcmig | pcgov | tsp-dvfs |
    // static | reactive | global-rotation.
    std::string scheduler = "hotpotato";

    // Optional fidelity knobs.
    bool noc_contention = false;
    bool sensors = false;
    bool power_gating = false;

    // Workload: either an explicit task file, a homogeneous fill of one
    // benchmark, or (default) a Poisson mix.
    std::string profiles_file;  ///< optional extra benchmark definitions
    std::string tasks_file;     ///< explicit task list (wins if set)
    std::string benchmark;      ///< homogeneous fill of this benchmark
    std::size_t tasks = 20;
    double arrivals_per_s = 50.0;
    std::size_t min_threads = 2;
    std::size_t max_threads = 8;
    std::uint64_t seed = 1;

    // Simulation.
    double t_dtm_c = 70.0;
    double ambient_c = 45.0;
    double max_time_s = 30.0;
    std::string trace_file;       ///< write CSV trace here if non-empty
    double trace_interval_s = 1e-3;

    // Fault injection / resilience.
    std::string faults_file;      ///< fault schedule CSV (empty: no faults)
    std::uint64_t fault_seed = 1; ///< RNG seed for fault perturbations
    bool watchdog = false;        ///< thermal-runaway watchdog (forced on
                                  ///< whenever --faults is given)

    // Observability (src/obs): discrete-event trace + per-run metrics.
    std::string events_file;        ///< event-trace CSV (empty: no tracing)
    std::string chrome_trace_file;  ///< Chrome trace_event JSON (empty: off)
    bool metrics = false;           ///< print the metrics block after the run

    // Performance escape hatch: disable the peak-prediction memo in the
    // schedulers that have one (hotpotato, hotpotato-dvfs, pcmig). Results
    // are bit-identical either way — inputs are quantised unconditionally —
    // so this only trades speed for a simpler execution to debug.
    bool no_peak_cache = false;

    // Campaign mode: race several schedulers over the same workload on the
    // parallel campaign engine instead of a single run.
    std::string compare;          ///< comma-separated scheduler names
    std::size_t jobs = 1;         ///< campaign worker threads (0 = all cores)

    // Execution placement (campaign mode; DESIGN.md §12). Placement never
    // changes record values, only where workers run and where their scratch
    // memory lives.
    std::string pin = "auto";     ///< worker pinning: auto|none|compact|spread
    bool numa = true;             ///< node-local arenas + per-node bundles

    // Campaign resilience (campaign mode only; DESIGN.md §10).
    std::string journal_file;     ///< write an append-only run journal here
    std::string resume_file;      ///< resume from this journal (implies the
                                  ///< journal keeps growing in place)
    double run_timeout_s = 0.0;   ///< per-run deadline (0 = no watchdog)
    std::size_t max_retries = 0;  ///< retries for transient failures
    double retry_backoff_s = 0.05;  ///< base backoff before the first retry

    // Campaign exports, published atomically (tmp + rename).
    std::string csv_file;         ///< write the record table as CSV
    std::string json_file;        ///< write records + summary as JSON

    // Server mode (`hotpotato_sim serve ...`, DESIGN.md §13): run the
    // thermal-advice daemon instead of a simulation. --pin/--numa and the
    // thermal flags (--solver, --t-dtm, --ambient) apply to the daemon.
    bool serve = false;
    std::string socket_path;          ///< --socket (required with serve)
    std::size_t server_threads = 4;   ///< --server-threads
    std::string server_configs = "paper_64core";  ///< --server-configs A,B
    std::size_t server_cache = 4096;  ///< --server-cache (entries; 0 = off)

    bool help = false;
};

/// Process exit-code contract of the CLI (asserted in cli_test.cpp):
/// scripts can distinguish "everything ran" from "some runs failed" from
/// "the invocation itself was wrong" from "the resume journal is unusable".
enum ExitCode : int {
    kExitOk = 0,            ///< all runs completed and finished
    kExitRunFailure = 1,    ///< simulation ran, but some runs failed or
                            ///< did not finish (quarantine non-empty)
    kExitConfigError = 2,   ///< bad flags / invalid configuration / any
                            ///< unexpected error
    kExitJournalError = 3,  ///< --resume journal corrupt, unreadable, or
                            ///< written for a different campaign grid
};

/// Usage text for --help and error messages.
std::string usage();

/// Parses argv-style arguments (excluding the program name). A leading
/// `serve` word selects server mode (the thermal-advice daemon). Throws
/// std::invalid_argument on unknown flags or bad values. Semantic checks
/// (positive dimensions, consistent ranges, usable fault/trace settings) are
/// aggregated: the exception message lists every violation at once, one per
/// line, so a bad invocation can be fixed in a single edit.
CliOptions parse(const std::vector<std::string>& args);

/// Instantiates the scheduler named in @p name; throws std::invalid_argument
/// for unknown names. @p use_peak_cache is forwarded to the schedulers that
/// memoise peak predictions (ignored by the rest).
std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name,
                                               bool use_peak_cache = true);

/// Builds the machine and workload described by @p options, runs the
/// simulation and writes a human-readable report to @p out. Returns
/// kExitOk on success and kExitRunFailure if tasks did not finish (or, in
/// campaign mode, if any run is quarantined). Throws on configuration and
/// journal errors — run_cli() maps those onto the exit-code contract.
int run(const CliOptions& options, std::ostream& out);

/// Complete CLI entry point: parse + run with every error mapped onto the
/// ExitCode contract (kExitJournalError for campaign::JournalError,
/// kExitConfigError for anything else thrown). @p err receives error text;
/// this is what main() delegates to and what cli_test.cpp asserts against.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace hp::cli
