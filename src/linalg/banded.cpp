#include "linalg/banded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hp::linalg {

namespace {

/// Flat scratch for the setup-time graph passes: one allocation sized
/// 4n+1 indices instead of the per-vertex vectors and std::queue nodes the
/// naive adjacency-list construction churns through (the solver_setup bench
/// gates allocs/op, and at 513/2049 nodes the churn dominated setup's heap
/// traffic). Partitioned into degree / visit order (doubles as the BFS
/// FIFO) / neighbour sort buffer / component seed scan.
struct RcmScratch {
    std::vector<std::size_t> buf;
    std::size_t* degree = nullptr;
    std::size_t* cm = nullptr;     ///< visit order; also the BFS queue
    std::size_t* neigh = nullptr;  ///< per-vertex neighbour sort buffer
    std::vector<bool> visited;

    explicit RcmScratch(std::size_t n) : buf(3 * n, 0), visited(n, false) {
        degree = buf.data();
        cm = buf.data() + n;
        neigh = buf.data() + 2 * n;
    }
};

/// Reverse Cuthill-McKee ordering of the subgraph induced by @p keep,
/// appended to @p order. The adjacency is flat CSR (@p adj_ptr / @p adj_idx).
/// Starts each component from its minimum-degree vertex (a cheap
/// peripheral-node heuristic) and visits neighbours in ascending degree.
/// The visit list itself is the BFS FIFO — a vertex is appended once and
/// scanned once — so the pass allocates nothing beyond @p scratch.
void reverse_cuthill_mckee(const std::vector<std::size_t>& adj_ptr,
                           const std::vector<std::size_t>& adj_idx,
                           const std::vector<bool>& keep,
                           RcmScratch& scratch,
                           std::vector<std::size_t>& order) {
    const std::size_t n = adj_ptr.size() - 1;
    std::size_t* degree = scratch.degree;
    for (std::size_t i = 0; i < n; ++i) {
        degree[i] = 0;
        if (!keep[i]) continue;
        for (std::size_t p = adj_ptr[i]; p < adj_ptr[i + 1]; ++p)
            if (keep[adj_idx[p]]) ++degree[i];
    }
    std::vector<bool>& visited = scratch.visited;
    std::size_t* cm = scratch.cm;
    std::size_t* neigh = scratch.neigh;
    std::size_t count = 0;  ///< vertices appended to cm so far
    std::size_t head = 0;   ///< BFS scan cursor into cm
    for (;;) {
        // Unvisited kept vertex of minimum degree seeds the next component.
        std::size_t seed = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (!keep[i] || visited[i]) continue;
            if (seed == n || degree[i] < degree[seed]) seed = i;
        }
        if (seed == n) break;
        cm[count++] = seed;
        visited[seed] = true;
        while (head < count) {
            const std::size_t v = cm[head++];
            std::size_t nn = 0;
            for (std::size_t p = adj_ptr[v]; p < adj_ptr[v + 1]; ++p) {
                const std::size_t u = adj_idx[p];
                if (keep[u] && !visited[u]) neigh[nn++] = u;
            }
            std::sort(neigh, neigh + nn, [&](std::size_t a, std::size_t b) {
                return degree[a] != degree[b] ? degree[a] < degree[b] : a < b;
            });
            for (std::size_t q = 0; q < nn; ++q) {
                visited[neigh[q]] = true;
                cm[count++] = neigh[q];
            }
        }
    }
    order.reserve(order.size() + count);
    for (std::size_t q = count; q-- > 0;) order.push_back(cm[q]);
}

}  // namespace

BandedCholesky::BandedCholesky(const Matrix& spd,
                               std::size_t border_degree_threshold) {
    if (!spd.square())
        throw std::invalid_argument("BandedCholesky: matrix must be square");
    const double scale = std::max(1.0, spd.max_abs());
    if (!spd.is_symmetric(1e-8 * scale))
        throw std::invalid_argument("BandedCholesky: matrix must be symmetric");
    n_ = spd.rows();
    if (n_ == 0) return;

    // Structural adjacency as flat CSR (two passes over the dense input:
    // count, then fill) — one sized allocation per array instead of n
    // per-vertex vectors with push_back growth churn.
    std::vector<std::size_t> adj_ptr(n_ + 1, 0);
    for (std::size_t i = 0; i < n_; ++i) {
        std::size_t deg = 0;
        for (std::size_t j = 0; j < n_; ++j)
            if (i != j && spd(i, j) != 0.0) ++deg;
        adj_ptr[i + 1] = adj_ptr[i] + deg;
    }
    std::vector<std::size_t> adj_idx(adj_ptr[n_]);
    for (std::size_t i = 0; i < n_; ++i) {
        std::size_t p = adj_ptr[i];
        for (std::size_t j = 0; j < n_; ++j)
            if (i != j && spd(i, j) != 0.0) adj_idx[p++] = j;
    }

    std::vector<bool> interior(n_, true);
    std::vector<std::size_t> border;
    for (std::size_t i = 0; i < n_; ++i)
        if (adj_ptr[i + 1] - adj_ptr[i] > border_degree_threshold) {
            interior[i] = false;
            border.push_back(i);
        }
    // Degenerate case (every row dense-coupled): banded block of width n.
    if (border.size() == n_) {
        border.clear();
        interior.assign(n_, true);
    }

    perm_.clear();
    perm_.reserve(n_);
    RcmScratch rcm_scratch(n_);
    reverse_cuthill_mckee(adj_ptr, adj_idx, interior, rcm_scratch, perm_);
    ni_ = perm_.size();
    perm_.insert(perm_.end(), border.begin(), border.end());
    nb_ = n_ - ni_;

    // Half-bandwidth of the permuted interior block; reuses the RCM degree
    // slots as the inverse-permutation table (the pass is over).
    std::size_t* where = rcm_scratch.degree;
    for (std::size_t k = 0; k < n_; ++k) where[perm_[k]] = k;
    hb_ = 0;
    for (std::size_t k = 0; k < ni_; ++k)
        for (std::size_t p = adj_ptr[perm_[k]]; p < adj_ptr[perm_[k] + 1]; ++p) {
            const std::size_t j = adj_idx[p];
            if (interior[j] && where[j] < k) hb_ = std::max(hb_, k - where[j]);
        }

    // Banded Cholesky of the interior: L stored by diagonals,
    // band_[i*(hb_+1)+d] = L(i, i-d).
    const std::size_t w = hb_ + 1;
    band_.assign(ni_ * w, 0.0);
    for (std::size_t i = 0; i < ni_; ++i) {
        const std::size_t lo = i >= hb_ ? i - hb_ : 0;
        for (std::size_t j = lo; j <= i; ++j) {
            double acc = spd(perm_[i], perm_[j]);
            const std::size_t klo = std::max(lo, j >= hb_ ? j - hb_ : 0);
            for (std::size_t k = klo; k < j; ++k)
                acc -= band_[i * w + (i - k)] * band_[j * w + (j - k)];
            if (j == i) {
                if (acc <= 0.0)
                    throw std::invalid_argument(
                        "BandedCholesky: matrix is not positive definite");
                band_[i * w] = std::sqrt(acc);
            } else {
                band_[i * w + (i - j)] = acc / band_[j * w];
            }
        }
    }

    // Border columns W = L^{-1}·A_IB (column-major) and the dense Schur
    // complement S = A_BB - W^T·W, Cholesky-factorised in place.
    w_.assign(ni_ * nb_, 0.0);
    for (std::size_t c = 0; c < nb_; ++c) {
        double* col = w_.data() + c * ni_;
        for (std::size_t i = 0; i < ni_; ++i)
            col[i] = spd(perm_[i], perm_[ni_ + c]);
        for (std::size_t i = 0; i < ni_; ++i) {
            double acc = col[i];
            const std::size_t lo = i >= hb_ ? i - hb_ : 0;
            for (std::size_t k = lo; k < i; ++k)
                acc -= band_[i * w + (i - k)] * col[k];
            col[i] = acc / band_[i * w];
        }
    }
    schur_.assign(nb_ * nb_, 0.0);
    for (std::size_t r = 0; r < nb_; ++r)
        for (std::size_t c = 0; c <= r; ++c) {
            double acc = spd(perm_[ni_ + r], perm_[ni_ + c]);
            const double* wr = w_.data() + r * ni_;
            const double* wc = w_.data() + c * ni_;
            for (std::size_t i = 0; i < ni_; ++i) acc -= wr[i] * wc[i];
            schur_[r * nb_ + c] = acc;
        }
    for (std::size_t r = 0; r < nb_; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            double acc = schur_[r * nb_ + c];
            for (std::size_t k = 0; k < c; ++k)
                acc -= schur_[r * nb_ + k] * schur_[c * nb_ + k];
            if (c == r) {
                if (acc <= 0.0)
                    throw std::invalid_argument(
                        "BandedCholesky: matrix is not positive definite");
                schur_[r * nb_ + r] = std::sqrt(acc);
            } else {
                schur_[r * nb_ + c] = acc / schur_[c * nb_ + c];
            }
        }
        for (std::size_t c = r + 1; c < nb_; ++c) schur_[r * nb_ + c] = 0.0;
    }
}

void BandedCholesky::solve_into(const double* b, double* x,
                                double* scratch) const {
    const std::size_t w = hb_ + 1;
    double* y = scratch;
    for (std::size_t k = 0; k < n_; ++k) y[k] = b[perm_[k]];

    // Forward: interior banded L, then the border through W and the Schur
    // factor.
    for (std::size_t i = 0; i < ni_; ++i) {
        double acc = y[i];
        const std::size_t lo = i >= hb_ ? i - hb_ : 0;
        for (std::size_t k = lo; k < i; ++k)
            acc -= band_[i * w + (i - k)] * y[k];
        y[i] = acc / band_[i * w];
    }
    for (std::size_t r = 0; r < nb_; ++r) {
        double acc = y[ni_ + r];
        const double* wr = w_.data() + r * ni_;
        for (std::size_t i = 0; i < ni_; ++i) acc -= wr[i] * y[i];
        for (std::size_t k = 0; k < r; ++k)
            acc -= schur_[r * nb_ + k] * y[ni_ + k];
        y[ni_ + r] = acc / schur_[r * nb_ + r];
    }

    // Backward: border transpose, then interior L^T with the border
    // contribution folded in.
    for (std::size_t r = nb_; r-- > 0;) {
        double acc = y[ni_ + r];
        for (std::size_t k = r + 1; k < nb_; ++k)
            acc -= schur_[k * nb_ + r] * y[ni_ + k];
        y[ni_ + r] = acc / schur_[r * nb_ + r];
    }
    for (std::size_t i = ni_; i-- > 0;) {
        double acc = y[i];
        for (std::size_t c = 0; c < nb_; ++c)
            acc -= w_[c * ni_ + i] * y[ni_ + c];
        const std::size_t hi = std::min(ni_ - 1, i + hb_);
        for (std::size_t k = i + 1; k <= hi; ++k)
            acc -= band_[k * w + (k - i)] * y[k];
        y[i] = acc / band_[i * w];
    }

    for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = y[k];
}

void BandedCholesky::solve_batch_into(const double* bs, std::size_t nrhs,
                                      double* xs, double* scratch) const {
    // Lane-major staging: permuted row k's nrhs lanes are contiguous at
    // y + k·nrhs, so every inner loop below is a unit-stride sweep the
    // compiler vectorises. Each lane's arithmetic replays solve_into's
    // operation sequence exactly (the updates land in memory instead of a
    // register accumulator, but the value chain per lane is identical), so
    // the batch is bit-identical to nrhs looped solve_into calls.
    const std::size_t w = hb_ + 1;
    double* y = scratch;
    for (std::size_t k = 0; k < n_; ++k) {
        const std::size_t src = perm_[k];
        double* yk = y + k * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) yk[r] = bs[r * n_ + src];
    }

    // Forward: interior banded L, then the border through W and the Schur
    // factor.
    for (std::size_t i = 0; i < ni_; ++i) {
        double* yi = y + i * nrhs;
        const std::size_t lo = i >= hb_ ? i - hb_ : 0;
        for (std::size_t k = lo; k < i; ++k) {
            const double c = band_[i * w + (i - k)];
            const double* yk = y + k * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) yi[r] -= c * yk[r];
        }
        const double d = band_[i * w];
        for (std::size_t r = 0; r < nrhs; ++r) yi[r] /= d;
    }
    for (std::size_t b = 0; b < nb_; ++b) {
        double* yb = y + (ni_ + b) * nrhs;
        const double* wb = w_.data() + b * ni_;
        for (std::size_t i = 0; i < ni_; ++i) {
            const double c = wb[i];
            const double* yi = y + i * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) yb[r] -= c * yi[r];
        }
        for (std::size_t k = 0; k < b; ++k) {
            const double c = schur_[b * nb_ + k];
            const double* yk = y + (ni_ + k) * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) yb[r] -= c * yk[r];
        }
        const double d = schur_[b * nb_ + b];
        for (std::size_t r = 0; r < nrhs; ++r) yb[r] /= d;
    }

    // Backward: border transpose, then interior L^T with the border
    // contribution folded in.
    for (std::size_t b = nb_; b-- > 0;) {
        double* yb = y + (ni_ + b) * nrhs;
        for (std::size_t k = b + 1; k < nb_; ++k) {
            const double c = schur_[k * nb_ + b];
            const double* yk = y + (ni_ + k) * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) yb[r] -= c * yk[r];
        }
        const double d = schur_[b * nb_ + b];
        for (std::size_t r = 0; r < nrhs; ++r) yb[r] /= d;
    }
    for (std::size_t i = ni_; i-- > 0;) {
        double* yi = y + i * nrhs;
        for (std::size_t c = 0; c < nb_; ++c) {
            const double coeff = w_[c * ni_ + i];
            const double* yc = y + (ni_ + c) * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) yi[r] -= coeff * yc[r];
        }
        const std::size_t hi = std::min(ni_ - 1, i + hb_);
        for (std::size_t k = i + 1; k <= hi; ++k) {
            const double c = band_[k * w + (k - i)];
            const double* yk = y + k * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) yi[r] -= c * yk[r];
        }
        const double d = band_[i * w];
        for (std::size_t r = 0; r < nrhs; ++r) yi[r] /= d;
    }

    for (std::size_t k = 0; k < n_; ++k) {
        const std::size_t dst = perm_[k];
        const double* yk = y + k * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) xs[r * n_ + dst] = yk[r];
    }
}

Vector BandedCholesky::solve(const Vector& b) const {
    if (b.size() != n_)
        throw std::invalid_argument("BandedCholesky::solve: size mismatch");
    Vector out(n_);
    std::vector<double> scratch(n_);
    solve_into(b.data(), out.data(), scratch.data());
    return out;
}

}  // namespace hp::linalg
