#include "linalg/banded.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace hp::linalg {

namespace {

/// Reverse Cuthill-McKee ordering of the subgraph induced by @p keep,
/// appended to @p order. Starts each component from its minimum-degree
/// vertex (a cheap peripheral-node heuristic) and visits neighbours in
/// ascending degree.
void reverse_cuthill_mckee(const std::vector<std::vector<std::size_t>>& adj,
                           const std::vector<bool>& keep,
                           std::vector<std::size_t>& order) {
    const std::size_t n = adj.size();
    std::vector<std::size_t> degree(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (!keep[i]) continue;
        for (std::size_t j : adj[i])
            if (keep[j]) ++degree[i];
    }
    std::vector<bool> visited(n, false);
    std::vector<std::size_t> cm;
    std::vector<std::size_t> neigh;
    for (;;) {
        // Unvisited kept vertex of minimum degree seeds the next component.
        std::size_t seed = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (!keep[i] || visited[i]) continue;
            if (seed == n || degree[i] < degree[seed]) seed = i;
        }
        if (seed == n) break;
        std::queue<std::size_t> fifo;
        fifo.push(seed);
        visited[seed] = true;
        while (!fifo.empty()) {
            const std::size_t v = fifo.front();
            fifo.pop();
            cm.push_back(v);
            neigh.clear();
            for (std::size_t u : adj[v])
                if (keep[u] && !visited[u]) neigh.push_back(u);
            std::sort(neigh.begin(), neigh.end(),
                      [&](std::size_t a, std::size_t b) {
                          return degree[a] != degree[b] ? degree[a] < degree[b]
                                                        : a < b;
                      });
            for (std::size_t u : neigh) {
                visited[u] = true;
                fifo.push(u);
            }
        }
    }
    order.insert(order.end(), cm.rbegin(), cm.rend());
}

}  // namespace

BandedCholesky::BandedCholesky(const Matrix& spd,
                               std::size_t border_degree_threshold) {
    if (!spd.square())
        throw std::invalid_argument("BandedCholesky: matrix must be square");
    const double scale = std::max(1.0, spd.max_abs());
    if (!spd.is_symmetric(1e-8 * scale))
        throw std::invalid_argument("BandedCholesky: matrix must be symmetric");
    n_ = spd.rows();
    if (n_ == 0) return;

    // Structural adjacency and per-row degree.
    std::vector<std::vector<std::size_t>> adj(n_);
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = 0; j < n_; ++j)
            if (i != j && spd(i, j) != 0.0) adj[i].push_back(j);

    std::vector<bool> interior(n_, true);
    std::vector<std::size_t> border;
    for (std::size_t i = 0; i < n_; ++i)
        if (adj[i].size() > border_degree_threshold) {
            interior[i] = false;
            border.push_back(i);
        }
    // Degenerate case (every row dense-coupled): banded block of width n.
    if (border.size() == n_) {
        border.clear();
        interior.assign(n_, true);
    }

    perm_.clear();
    perm_.reserve(n_);
    reverse_cuthill_mckee(adj, interior, perm_);
    ni_ = perm_.size();
    perm_.insert(perm_.end(), border.begin(), border.end());
    nb_ = n_ - ni_;

    // Half-bandwidth of the permuted interior block.
    std::vector<std::size_t> where(n_, 0);
    for (std::size_t k = 0; k < n_; ++k) where[perm_[k]] = k;
    hb_ = 0;
    for (std::size_t k = 0; k < ni_; ++k)
        for (std::size_t j : adj[perm_[k]])
            if (interior[j] && where[j] < k) hb_ = std::max(hb_, k - where[j]);

    // Banded Cholesky of the interior: L stored by diagonals,
    // band_[i*(hb_+1)+d] = L(i, i-d).
    const std::size_t w = hb_ + 1;
    band_.assign(ni_ * w, 0.0);
    for (std::size_t i = 0; i < ni_; ++i) {
        const std::size_t lo = i >= hb_ ? i - hb_ : 0;
        for (std::size_t j = lo; j <= i; ++j) {
            double acc = spd(perm_[i], perm_[j]);
            const std::size_t klo = std::max(lo, j >= hb_ ? j - hb_ : 0);
            for (std::size_t k = klo; k < j; ++k)
                acc -= band_[i * w + (i - k)] * band_[j * w + (j - k)];
            if (j == i) {
                if (acc <= 0.0)
                    throw std::invalid_argument(
                        "BandedCholesky: matrix is not positive definite");
                band_[i * w] = std::sqrt(acc);
            } else {
                band_[i * w + (i - j)] = acc / band_[j * w];
            }
        }
    }

    // Border columns W = L^{-1}·A_IB (column-major) and the dense Schur
    // complement S = A_BB - W^T·W, Cholesky-factorised in place.
    w_.assign(ni_ * nb_, 0.0);
    for (std::size_t c = 0; c < nb_; ++c) {
        double* col = w_.data() + c * ni_;
        for (std::size_t i = 0; i < ni_; ++i)
            col[i] = spd(perm_[i], perm_[ni_ + c]);
        for (std::size_t i = 0; i < ni_; ++i) {
            double acc = col[i];
            const std::size_t lo = i >= hb_ ? i - hb_ : 0;
            for (std::size_t k = lo; k < i; ++k)
                acc -= band_[i * w + (i - k)] * col[k];
            col[i] = acc / band_[i * w];
        }
    }
    schur_.assign(nb_ * nb_, 0.0);
    for (std::size_t r = 0; r < nb_; ++r)
        for (std::size_t c = 0; c <= r; ++c) {
            double acc = spd(perm_[ni_ + r], perm_[ni_ + c]);
            const double* wr = w_.data() + r * ni_;
            const double* wc = w_.data() + c * ni_;
            for (std::size_t i = 0; i < ni_; ++i) acc -= wr[i] * wc[i];
            schur_[r * nb_ + c] = acc;
        }
    for (std::size_t r = 0; r < nb_; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            double acc = schur_[r * nb_ + c];
            for (std::size_t k = 0; k < c; ++k)
                acc -= schur_[r * nb_ + k] * schur_[c * nb_ + k];
            if (c == r) {
                if (acc <= 0.0)
                    throw std::invalid_argument(
                        "BandedCholesky: matrix is not positive definite");
                schur_[r * nb_ + r] = std::sqrt(acc);
            } else {
                schur_[r * nb_ + c] = acc / schur_[c * nb_ + c];
            }
        }
        for (std::size_t c = r + 1; c < nb_; ++c) schur_[r * nb_ + c] = 0.0;
    }
}

void BandedCholesky::solve_into(const double* b, double* x,
                                double* scratch) const {
    const std::size_t w = hb_ + 1;
    double* y = scratch;
    for (std::size_t k = 0; k < n_; ++k) y[k] = b[perm_[k]];

    // Forward: interior banded L, then the border through W and the Schur
    // factor.
    for (std::size_t i = 0; i < ni_; ++i) {
        double acc = y[i];
        const std::size_t lo = i >= hb_ ? i - hb_ : 0;
        for (std::size_t k = lo; k < i; ++k)
            acc -= band_[i * w + (i - k)] * y[k];
        y[i] = acc / band_[i * w];
    }
    for (std::size_t r = 0; r < nb_; ++r) {
        double acc = y[ni_ + r];
        const double* wr = w_.data() + r * ni_;
        for (std::size_t i = 0; i < ni_; ++i) acc -= wr[i] * y[i];
        for (std::size_t k = 0; k < r; ++k)
            acc -= schur_[r * nb_ + k] * y[ni_ + k];
        y[ni_ + r] = acc / schur_[r * nb_ + r];
    }

    // Backward: border transpose, then interior L^T with the border
    // contribution folded in.
    for (std::size_t r = nb_; r-- > 0;) {
        double acc = y[ni_ + r];
        for (std::size_t k = r + 1; k < nb_; ++k)
            acc -= schur_[k * nb_ + r] * y[ni_ + k];
        y[ni_ + r] = acc / schur_[r * nb_ + r];
    }
    for (std::size_t i = ni_; i-- > 0;) {
        double acc = y[i];
        for (std::size_t c = 0; c < nb_; ++c)
            acc -= w_[c * ni_ + i] * y[ni_ + c];
        const std::size_t hi = std::min(ni_ - 1, i + hb_);
        for (std::size_t k = i + 1; k <= hi; ++k)
            acc -= band_[k * w + (k - i)] * y[k];
        y[i] = acc / band_[i * w];
    }

    for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = y[k];
}

Vector BandedCholesky::solve(const Vector& b) const {
    if (b.size() != n_)
        throw std::invalid_argument("BandedCholesky::solve: size mismatch");
    Vector out(n_);
    std::vector<double> scratch(n_);
    solve_into(b.data(), out.data(), scratch.data());
    return out;
}

}  // namespace hp::linalg
