#include "linalg/simd.hpp"

#include <cstdlib>
#include <string_view>

// This translation unit is compiled with -ffp-contract=off (see
// src/linalg/CMakeLists.txt): the element-wise kernels promise "separate
// multiply and add, never fused" across tiers, and the AVX2 functions below
// express fusion explicitly (_mm256_fmadd_pd) exactly where the contract
// allows it — the compiler must not contract anything else behind our back.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HP_SIMD_X86 1
#include <immintrin.h>
#else
#define HP_SIMD_X86 0
#endif

namespace hp::linalg::simd {

namespace {

// --- scalar tier ------------------------------------------------------------
// These loops are the single source of truth for the per-element operation
// order; the AVX2 tier replicates it lane-wise (element-wise kernels) or
// per-RHS (matmat vs matvec).

void scalar_matvec(const double* a, std::size_t rows, std::size_t cols,
                   const double* x, double* y) {
    for (std::size_t i = 0; i < rows; ++i) {
        const double* row = a + i * cols;
        double acc = 0.0;
        for (std::size_t j = 0; j < cols; ++j) acc += row[j] * x[j];
        y[i] = acc;
    }
}

void scalar_matmat(const double* a, std::size_t rows, std::size_t cols,
                   const double* xs, std::size_t nrhs, double* ys) {
    // One matvec per RHS — bit-identical to looping scalar_matvec.
    for (std::size_t r = 0; r < nrhs; ++r)
        scalar_matvec(a, rows, cols, xs + r * cols, ys + r * rows);
}

void scalar_axpy(std::size_t n, double alpha, const double* x, double* y) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scalar_scale(std::size_t n, double s, double* x) {
    for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void scalar_hadamard(std::size_t n, const double* m, double* x) {
    for (std::size_t i = 0; i < n; ++i) x[i] *= m[i];
}

void scalar_fma_acc(std::size_t n, const double* a, const double* b,
                    double* y) {
    for (std::size_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void scalar_max_acc(std::size_t n, const double* x, double* m) {
    for (std::size_t i = 0; i < n; ++i)
        if (m[i] < x[i]) m[i] = x[i];
}

void scalar_decay_mix(std::size_t n, const double* e, const double* zp,
                      const double* y, double* out) {
    for (std::size_t i = 0; i < n; ++i)
        out[i] = e[i] * zp[i] + (1.0 - e[i]) * y[i];
}

void scalar_div_scalar(std::size_t n, double s, double* x) {
    for (std::size_t i = 0; i < n; ++i) x[i] /= s;
}

void scalar_spmm(std::size_t rows, const std::size_t* row_ptr,
                 const std::size_t* col, const double* val, const double* xs,
                 std::size_t nrhs, double* ys) {
    // Blocks of 4 lanes stream the row's nonzeros once per block; every lane
    // owns one accumulator over ascending p — the CSR matvec order.
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        double* out = ys + i * nrhs;
        std::size_t r = 0;
        for (; r + 4 <= nrhs; r += 4) {
            double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
            for (std::size_t p = begin; p < end; ++p) {
                const double v = val[p];
                const double* x = xs + col[p] * nrhs + r;
                a0 += v * x[0];
                a1 += v * x[1];
                a2 += v * x[2];
                a3 += v * x[3];
            }
            out[r + 0] = a0;
            out[r + 1] = a1;
            out[r + 2] = a2;
            out[r + 3] = a3;
        }
        for (; r < nrhs; ++r) {
            double acc = 0.0;
            for (std::size_t p = begin; p < end; ++p)
                acc += val[p] * xs[col[p] * nrhs + r];
            out[r] = acc;
        }
    }
}

constexpr KernelTable kScalarTable = {
    scalar_matvec, scalar_matmat,  scalar_axpy,      scalar_scale,
    scalar_hadamard, scalar_fma_acc, scalar_max_acc, scalar_decay_mix,
    scalar_div_scalar, scalar_spmm,
};

// --- AVX2 + FMA tier --------------------------------------------------------

#if HP_SIMD_X86

/// Deterministic horizontal sum: (v0+v2) + (v1+v3). Fixed association so a
/// given tier always reduces in the same order.
__attribute__((target("avx2"))) inline double hsum(__m256d v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

/// The AVX2 dot-product order: 4-lane FMA accumulator over full blocks,
/// hsum, then scalar (unfused) tail in ascending j. matmat reproduces this
/// sequence exactly for every RHS, so batched ≡ looped within the tier.
__attribute__((target("avx2,fma"))) double row_dot_avx2(const double* row,
                                                        const double* x,
                                                        std::size_t n) {
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4)
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(row + j),
                              _mm256_loadu_pd(x + j), acc);
    double s = hsum(acc);
    for (; j < n; ++j) s += row[j] * x[j];
    return s;
}

__attribute__((target("avx2,fma"))) void avx2_matvec(const double* a,
                                                     std::size_t rows,
                                                     std::size_t cols,
                                                     const double* x,
                                                     double* y) {
    for (std::size_t i = 0; i < rows; ++i)
        y[i] = row_dot_avx2(a + i * cols, x, cols);
}

__attribute__((target("avx2,fma"))) void avx2_matmat(const double* a,
                                                     std::size_t rows,
                                                     std::size_t cols,
                                                     const double* xs,
                                                     std::size_t nrhs,
                                                     double* ys) {
    // Cache tiling: blocks of 4 RHS share one streaming pass over each
    // matrix row (the row is loaded once per block instead of once per RHS).
    // Each RHS keeps a private accumulator with row_dot_avx2's exact
    // operation order, so every RHS is bit-identical to a looped matvec.
    for (std::size_t i = 0; i < rows; ++i) {
        const double* row = a + i * cols;
        std::size_t r = 0;
        for (; r + 4 <= nrhs; r += 4) {
            const double* x0 = xs + (r + 0) * cols;
            const double* x1 = xs + (r + 1) * cols;
            const double* x2 = xs + (r + 2) * cols;
            const double* x3 = xs + (r + 3) * cols;
            __m256d a0 = _mm256_setzero_pd();
            __m256d a1 = _mm256_setzero_pd();
            __m256d a2 = _mm256_setzero_pd();
            __m256d a3 = _mm256_setzero_pd();
            std::size_t j = 0;
            for (; j + 4 <= cols; j += 4) {
                const __m256d rv = _mm256_loadu_pd(row + j);
                a0 = _mm256_fmadd_pd(rv, _mm256_loadu_pd(x0 + j), a0);
                a1 = _mm256_fmadd_pd(rv, _mm256_loadu_pd(x1 + j), a1);
                a2 = _mm256_fmadd_pd(rv, _mm256_loadu_pd(x2 + j), a2);
                a3 = _mm256_fmadd_pd(rv, _mm256_loadu_pd(x3 + j), a3);
            }
            double s0 = hsum(a0), s1 = hsum(a1), s2 = hsum(a2), s3 = hsum(a3);
            for (; j < cols; ++j) {
                s0 += row[j] * x0[j];
                s1 += row[j] * x1[j];
                s2 += row[j] * x2[j];
                s3 += row[j] * x3[j];
            }
            ys[(r + 0) * rows + i] = s0;
            ys[(r + 1) * rows + i] = s1;
            ys[(r + 2) * rows + i] = s2;
            ys[(r + 3) * rows + i] = s3;
        }
        for (; r < nrhs; ++r)
            ys[r * rows + i] = row_dot_avx2(row, xs + r * cols, cols);
    }
}

__attribute__((target("avx2"))) void avx2_axpy(std::size_t n, double alpha,
                                               const double* x, double* y) {
    const __m256d av = _mm256_set1_pd(alpha);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d prod = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
        _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void avx2_scale(std::size_t n, double s,
                                                double* x) {
    const __m256d sv = _mm256_set1_pd(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), sv));
    for (; i < n; ++i) x[i] *= s;
}

__attribute__((target("avx2"))) void avx2_hadamard(std::size_t n,
                                                   const double* m,
                                                   double* x) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(
            x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(m + i)));
    for (; i < n; ++i) x[i] *= m[i];
}

__attribute__((target("avx2"))) void avx2_fma_acc(std::size_t n,
                                                  const double* a,
                                                  const double* b, double* y) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d prod =
            _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
        _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
    }
    for (; i < n; ++i) y[i] += a[i] * b[i];
}

__attribute__((target("avx2"))) void avx2_max_acc(std::size_t n,
                                                  const double* x, double* m) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d mv = _mm256_loadu_pd(m + i);
        const __m256d xv = _mm256_loadu_pd(x + i);
        // blendv replicates "(m < x) ? x : m" exactly (incl. signed zeros),
        // unlike vmaxpd's operand-order quirks.
        const __m256d lt = _mm256_cmp_pd(mv, xv, _CMP_LT_OQ);
        _mm256_storeu_pd(m + i, _mm256_blendv_pd(mv, xv, lt));
    }
    for (; i < n; ++i)
        if (m[i] < x[i]) m[i] = x[i];
}

__attribute__((target("avx2"))) void avx2_decay_mix(std::size_t n,
                                                    const double* e,
                                                    const double* zp,
                                                    const double* y,
                                                    double* out) {
    const __m256d one = _mm256_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d ev = _mm256_loadu_pd(e + i);
        const __m256d lhs = _mm256_mul_pd(ev, _mm256_loadu_pd(zp + i));
        const __m256d rhs =
            _mm256_mul_pd(_mm256_sub_pd(one, ev), _mm256_loadu_pd(y + i));
        _mm256_storeu_pd(out + i, _mm256_add_pd(lhs, rhs));
    }
    for (; i < n; ++i) out[i] = e[i] * zp[i] + (1.0 - e[i]) * y[i];
}

__attribute__((target("avx2"))) void avx2_div_scalar(std::size_t n, double s,
                                                     double* x) {
    const __m256d sv = _mm256_set1_pd(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), sv));
    for (; i < n; ++i) x[i] /= s;
}

__attribute__((target("avx2"))) void avx2_spmm(std::size_t rows,
                                               const std::size_t* row_ptr,
                                               const std::size_t* col,
                                               const double* val,
                                               const double* xs,
                                               std::size_t nrhs, double* ys) {
    // Vectorised across the 4 contiguous lanes of the lane-major block, NOT
    // across the reduction: each lane's accumulator advances through the
    // nonzeros in ascending order with separate multiply and add (no FMA),
    // replicating scalar_spmm — and hence the CSR matvec — bit for bit.
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t begin = row_ptr[i];
        const std::size_t end = row_ptr[i + 1];
        double* out = ys + i * nrhs;
        std::size_t r = 0;
        for (; r + 4 <= nrhs; r += 4) {
            __m256d acc = _mm256_setzero_pd();
            for (std::size_t p = begin; p < end; ++p) {
                const __m256d prod =
                    _mm256_mul_pd(_mm256_set1_pd(val[p]),
                                  _mm256_loadu_pd(xs + col[p] * nrhs + r));
                acc = _mm256_add_pd(acc, prod);
            }
            _mm256_storeu_pd(out + r, acc);
        }
        for (; r < nrhs; ++r) {
            double acc = 0.0;
            for (std::size_t p = begin; p < end; ++p)
                acc += val[p] * xs[col[p] * nrhs + r];
            out[r] = acc;
        }
    }
}

constexpr KernelTable kAvx2Table = {
    avx2_matvec, avx2_matmat,  avx2_axpy,    avx2_scale,    avx2_hadamard,
    avx2_fma_acc, avx2_max_acc, avx2_decay_mix, avx2_div_scalar, avx2_spmm,
};

#endif  // HP_SIMD_X86

bool avx2_supported() {
#if HP_SIMD_X86
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

// Test-only override; written from single-threaded test setup only.
int g_forced_tier = -1;

}  // namespace

bool tier_available(Tier tier) {
    return tier == Tier::kScalar ||
           (tier == Tier::kAvx2 && avx2_supported());
}

Tier resolve_tier(const char* spec) {
    if (spec != nullptr) {
        const std::string_view s(spec);
        if (s == "scalar") return Tier::kScalar;
        // A forced-but-unavailable "avx2" degrades to scalar; unknown specs
        // fall through to autodetection (an env typo should not silently
        // change numerics relative to an unset variable).
        if (s == "avx2")
            return tier_available(Tier::kAvx2) ? Tier::kAvx2 : Tier::kScalar;
    }
    return avx2_supported() ? Tier::kAvx2 : Tier::kScalar;
}

Tier active_tier() {
    if (g_forced_tier >= 0) return static_cast<Tier>(g_forced_tier);
    static const Tier detected =
        resolve_tier(std::getenv("HOTPOTATO_DISPATCH"));
    return detected;
}

const char* tier_name(Tier tier) {
    return tier == Tier::kAvx2 ? "avx2" : "scalar";
}

const KernelTable& kernels_for(Tier tier) {
#if HP_SIMD_X86
    if (tier == Tier::kAvx2 && avx2_supported()) return kAvx2Table;
#else
    (void)tier;
#endif
    return kScalarTable;
}

const KernelTable& kernels() { return kernels_for(active_tier()); }

void force_tier_for_testing(Tier tier) {
    if (!tier_available(tier)) return;
    g_forced_tier = static_cast<int>(tier);
}

void clear_forced_tier_for_testing() { g_forced_tier = -1; }

}  // namespace hp::linalg::simd
