#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"

namespace hp::linalg {

/// Minimal compressed-sparse-row matrix: just enough to stream y = A·x over
/// the structural nonzeros of an RC conductance/coupling matrix. Thermal
/// grids have O(1) neighbours per node, so nnz ≈ 7N and the matvec is O(N)
/// instead of the dense O(N^2) — the per-micro-step workhorse of the
/// truncated-modal solver's Taylor propagator.
///
/// Immutable after construction; matvec_into touches caller memory only, so
/// one matrix may serve any number of concurrent readers.
class SparseCsr {
public:
    SparseCsr() = default;

    /// Compresses @p dense, keeping entries with |a_ij| > @p drop_tol
    /// (0 keeps every structural nonzero bit-exactly).
    explicit SparseCsr(const Matrix& dense, double drop_tol = 0.0)
        : rows_(dense.rows()), cols_(dense.cols()) {
        row_ptr_.reserve(rows_ + 1);
        row_ptr_.push_back(0);
        for (std::size_t i = 0; i < rows_; ++i) {
            for (std::size_t j = 0; j < cols_; ++j) {
                const double a = dense(i, j);
                if (a > drop_tol || a < -drop_tol) {
                    col_.push_back(j);
                    val_.push_back(a);
                }
            }
            row_ptr_.push_back(col_.size());
        }
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t nonzeros() const { return val_.size(); }

    /// y = A·x. Sequential per-row accumulation (deterministic); @p y must
    /// not alias @p x. No allocations.
    void matvec_into(const double* x, double* y) const {
        for (std::size_t i = 0; i < rows_; ++i) {
            double acc = 0.0;
            const std::size_t end = row_ptr_[i + 1];
            for (std::size_t p = row_ptr_[i]; p < end; ++p)
                acc += val_[p] * x[col_[p]];
            y[i] = acc;
        }
    }

    /// ys = A·xs for @p nrhs lane-major right-hand sides: element
    /// (node c, RHS r) of @p xs lives at c·nrhs + r, outputs likewise at
    /// row·nrhs + r. Dispatches to the active SIMD tier's spmm, whose
    /// cross-tier contract makes lane r bit-identical to matvec_into on
    /// column r in every tier. @p ys must not alias @p xs. No allocations.
    void spmm_into(const double* xs, std::size_t nrhs, double* ys) const {
        simd::kernels().spmm(rows_, row_ptr_.data(), col_.data(), val_.data(),
                             xs, nrhs, ys);
    }

    /// Scales row i by s[i] in place (builds C = -A^{-1}B from CSR(B)).
    void scale_rows(const double* s) {
        for (std::size_t i = 0; i < rows_; ++i) {
            const std::size_t end = row_ptr_[i + 1];
            for (std::size_t p = row_ptr_[i]; p < end; ++p) val_[p] *= s[i];
        }
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> row_ptr_;
    std::vector<std::size_t> col_;
    std::vector<double> val_;
};

}  // namespace hp::linalg
