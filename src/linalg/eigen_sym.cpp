#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hp::linalg {

namespace {

/// Sum of squares of off-diagonal entries; the Jacobi convergence measure.
double off_diagonal_norm(const Matrix& a) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j) acc += a(i, j) * a(i, j);
    return std::sqrt(acc);
}

}  // namespace

SymmetricEigen jacobi_eigen(const Matrix& m, double symmetry_tol,
                            std::size_t max_sweeps) {
    if (!m.square())
        throw std::invalid_argument("jacobi_eigen: matrix must be square");
    // Scale the symmetry tolerance by the matrix magnitude so large
    // conductance values (1e2..1e4 W/K) are not rejected for rounding noise.
    const double scale = std::max(1.0, m.max_abs());
    if (!m.is_symmetric(symmetry_tol * scale))
        throw std::invalid_argument("jacobi_eigen: matrix must be symmetric");

    const std::size_t n = m.rows();
    Matrix a = m;
    Matrix q = Matrix::identity(n);

    const double tol = 1e-14 * std::max(1.0, a.max_abs()) * static_cast<double>(n);
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diagonal_norm(a) <= tol) break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t r = p + 1; r < n; ++r) {
                const double apr = a(p, r);
                if (std::abs(apr) <= tol / static_cast<double>(n)) continue;
                // Classic Jacobi rotation annihilating a(p,r).
                const double theta = (a(r, r) - a(p, p)) / (2.0 * apr);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akr = a(k, r);
                    a(k, p) = c * akp - s * akr;
                    a(k, r) = s * akp + c * akr;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double ark = a(r, k);
                    a(p, k) = c * apk - s * ark;
                    a(r, k) = s * apk + c * ark;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double qkp = q(k, p);
                    const double qkr = q(k, r);
                    q(k, p) = c * qkp - s * qkr;
                    q(k, r) = s * qkp + c * qkr;
                }
            }
        }
    }

    // Sort eigenpairs ascending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return a(x, x) < a(y, y);
    });

    SymmetricEigen result{Vector(n), Matrix(n, n)};
    for (std::size_t j = 0; j < n; ++j) {
        result.values[j] = a(order[j], order[j]);
        for (std::size_t i = 0; i < n; ++i)
            result.vectors(i, j) = q(i, order[j]);
    }
    return result;
}

}  // namespace hp::linalg
