#include "linalg/expm.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace hp::linalg {

Matrix expm_pade(const Matrix& m) {
    if (!m.square())
        throw std::invalid_argument("expm_pade: matrix must be square");
    const std::size_t n = m.rows();

    // Scale M by 2^-s so that ||M/2^s|| is small enough for the Padé(6,6)
    // approximant, then square the result s times.
    const double norm = m.max_abs() * static_cast<double>(n);  // cheap norm bound
    int s = 0;
    if (norm > 0.5) s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
    const double scale = std::ldexp(1.0, -s);  // 2^-s
    const Matrix a = m * scale;

    // Padé(6,6) coefficients for e^A: N(A)/D(A) with
    // N = sum c_k A^k, D = sum c_k (-A)^k.
    constexpr double c[] = {1.0,
                            1.0 / 2.0,
                            5.0 / 44.0,
                            1.0 / 66.0,
                            1.0 / 792.0,
                            1.0 / 15840.0,
                            1.0 / 665280.0};

    Matrix power = Matrix::identity(n);
    Matrix numerator = Matrix::identity(n);   // c0 * I
    Matrix denominator = Matrix::identity(n);
    double sign = 1.0;
    for (int k = 1; k <= 6; ++k) {
        power = power * a;
        sign = -sign;
        numerator += power * c[k];
        denominator += power * (c[k] * sign);
    }

    Matrix result = LuDecomposition(denominator).solve(numerator);
    for (int i = 0; i < s; ++i) result = result * result;
    return result;
}

}  // namespace hp::linalg
