#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <memory_resource>
#include <stdexcept>
#include <vector>

namespace hp::linalg {

/// Dense real-valued vector used throughout the thermal and scheduling math.
///
/// A thin, bounds-asserted wrapper over a contiguous double buffer with the
/// element-wise arithmetic the RC thermal model needs. All operations that
/// combine two vectors require equal sizes and throw std::invalid_argument
/// otherwise.
///
/// Storage is a std::pmr::vector so long-lived workspace vectors can carve
/// their buffers from a worker's node-local arena (exec::ArenaResource).
/// Values are placement-independent: where the buffer lives never changes
/// what the math produces. Copies always land on the default resource
/// (select_on_container_copy semantics), so passing vectors by value never
/// leaks arena references; `assign`/`resize` reuse the existing allocator,
/// which is how arena-backed workspaces re-size without losing their home.
class Vector {
public:
    Vector() = default;

    /// Empty vector whose future storage comes from @p mr.
    explicit Vector(std::pmr::memory_resource* mr) : data_(mr) {}

    /// Creates a vector of @p size elements, all equal to @p fill.
    explicit Vector(std::size_t size, double fill = 0.0) : data_(size, fill) {}

    /// Creates a vector of @p size elements equal to @p fill, allocating
    /// from @p mr.
    Vector(std::size_t size, double fill, std::pmr::memory_resource* mr)
        : data_(size, fill, mr) {}

    Vector(std::initializer_list<double> init)
        : data_(init.begin(), init.end()) {}

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double operator[](std::size_t i) const {
        assert(i < data_.size());
        return data_[i];
    }
    double& operator[](std::size_t i) {
        assert(i < data_.size());
        return data_[i];
    }

    /// Bounds-checked access; throws std::out_of_range.
    double at(std::size_t i) const { return data_.at(i); }
    double& at(std::size_t i) { return data_.at(i); }

    const double* data() const { return data_.data(); }
    double* data() { return data_.data(); }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    Vector& operator+=(const Vector& rhs) {
        check_same_size(rhs);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
        return *this;
    }
    Vector& operator-=(const Vector& rhs) {
        check_same_size(rhs);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
        return *this;
    }
    Vector& operator*=(double s) {
        for (double& x : data_) x *= s;
        return *this;
    }
    Vector& operator/=(double s) {
        for (double& x : data_) x /= s;
        return *this;
    }

    friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
    friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
    friend Vector operator*(Vector lhs, double s) { return lhs *= s; }
    friend Vector operator*(double s, Vector rhs) { return rhs *= s; }
    friend Vector operator/(Vector lhs, double s) { return lhs /= s; }

    friend bool operator==(const Vector& a, const Vector& b) {
        return a.data_ == b.data_;
    }

    /// Euclidean inner product.
    double dot(const Vector& rhs) const {
        check_same_size(rhs);
        double acc = 0.0;
        for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * rhs.data_[i];
        return acc;
    }

    /// Euclidean (L2) norm.
    double norm() const { return std::sqrt(dot(*this)); }

    /// Largest absolute element; 0 for an empty vector.
    double max_abs() const {
        double m = 0.0;
        for (double x : data_) m = std::max(m, std::abs(x));
        return m;
    }

    /// Largest element; throws std::logic_error on an empty vector.
    double max() const {
        if (data_.empty()) throw std::logic_error("Vector::max on empty vector");
        double m = data_.front();
        for (double x : data_) m = std::max(m, x);
        return m;
    }

    /// Smallest element; throws std::logic_error on an empty vector.
    double min() const {
        if (data_.empty()) throw std::logic_error("Vector::min on empty vector");
        double m = data_.front();
        for (double x : data_) m = std::min(m, x);
        return m;
    }

    /// Index of the largest element; throws std::logic_error on empty.
    std::size_t argmax() const {
        if (data_.empty()) throw std::logic_error("Vector::argmax on empty vector");
        std::size_t best = 0;
        for (std::size_t i = 1; i < data_.size(); ++i)
            if (data_[i] > data_[best]) best = i;
        return best;
    }

    /// Resizes to @p n elements all equal to @p fill, reusing the existing
    /// allocator (unlike `v = Vector(n)`, which would route the temporary's
    /// buffer through the default resource first).
    void assign(std::size_t n, double fill = 0.0) { data_.assign(n, fill); }

    /// Resizes preserving existing elements and the allocator.
    void resize(std::size_t n, double fill = 0.0) { data_.resize(n, fill); }

private:
    void check_same_size(const Vector& rhs) const {
        if (data_.size() != rhs.data_.size())
            throw std::invalid_argument("Vector size mismatch");
    }

    std::pmr::vector<double> data_;
};

}  // namespace hp::linalg
