#pragma once

#include "linalg/matrix.hpp"

namespace hp::linalg {

/// Matrix exponential e^M by scaling-and-squaring with a diagonal Padé(6,6)
/// approximant.
///
/// This is the general-purpose reference used to validate the much faster
/// eigendecomposition-based exponential in the MatEx thermal solver; it makes
/// no structural assumptions about @p m beyond squareness.
Matrix expm_pade(const Matrix& m);

}  // namespace hp::linalg
