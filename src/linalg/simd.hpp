#pragma once

#include <cstddef>

namespace hp::linalg::simd {

// Runtime-dispatched SIMD kernel tiers for the thermal hot path.
//
// The dispatch tier is selected exactly once (first use) from CPU features,
// overridable via the HOTPOTATO_DISPATCH environment variable ("scalar" or
// "avx2"; forcing "avx2" on hardware without AVX2+FMA falls back to scalar).
// Every kernel is deterministic within a tier: the same tier always produces
// the same bits for the same inputs.
//
// Cross-tier contract (documented in DESIGN.md §9):
//  * Element-wise kernels (axpy, scale, hadamard, fma_acc, max_acc,
//    decay_mix, div_scalar) perform the same per-element operation sequence
//    in every tier — no fused multiply-add, no reassociation — so they are
//    bit-identical across tiers (simd.cpp is compiled with -ffp-contract=off
//    to keep the compiler from fusing them behind our back).
//  * spmm keeps one accumulator per RHS lane in the sequential CSR matvec
//    order (ascending nonzeros, multiply and add never fused): the AVX2 tier
//    vectorises *across lanes*, not across the reduction, so spmm is
//    bit-identical across tiers and, per lane, to the CSR matvec.
//  * Reduction kernels (matvec, matmat) reassociate the per-row dot product
//    in the AVX2 tier (4-lane FMA accumulator); scalar and AVX2 results
//    agree to rounding (~1e-14 relative for this code base's N≈129 systems)
//    but are not bit-identical across tiers.
//  * matmat is bit-identical, per right-hand side, to the corresponding
//    looped matvec calls *within* a tier: each RHS owns an accumulator chain
//    with exactly matvec's operation order, whatever the batch width.

enum class Tier {
    kScalar = 0,  ///< portable fallback, baseline ISA
    kAvx2 = 1,    ///< AVX2 + FMA (x86-64)
};

/// Raw kernels of one dispatch tier. All pointers are non-null. Matrices are
/// row-major; batched operands are RHS-major (right-hand side r occupies the
/// contiguous range [r*n, (r+1)*n)) unless a kernel documents otherwise.
struct KernelTable {
    /// y = A·x (rows×cols row-major A); per-row accumulator over ascending j.
    void (*matvec)(const double* a, std::size_t rows, std::size_t cols,
                   const double* x, double* y);
    /// ys[r] = A·xs[r] for nrhs RHS-major vectors: a blocked multi-RHS
    /// matvec that streams each matrix row once per block of RHS (the cache
    /// tiling) while keeping every RHS's accumulation order identical to
    /// matvec.
    void (*matmat)(const double* a, std::size_t rows, std::size_t cols,
                   const double* xs, std::size_t nrhs, double* ys);
    /// y[i] += alpha·x[i] (separate multiply and add, never fused).
    void (*axpy)(std::size_t n, double alpha, const double* x, double* y);
    /// x[i] *= s.
    void (*scale)(std::size_t n, double s, double* x);
    /// x[i] *= m[i].
    void (*hadamard)(std::size_t n, const double* m, double* x);
    /// y[i] += a[i]·b[i] (separate multiply and add, never fused).
    void (*fma_acc)(std::size_t n, const double* a, const double* b,
                    double* y);
    /// m[i] = max(m[i], x[i]).
    void (*max_acc)(std::size_t n, const double* x, double* m);
    /// out[i] = e[i]·zp[i] + (1 - e[i])·y[i] — the intra-epoch decay mix of
    /// Algorithm 1, with exactly the scalar operation order.
    void (*decay_mix)(std::size_t n, const double* e, const double* zp,
                      const double* y, double* out);
    /// x[i] /= s (IEEE division: bit-identical in every tier).
    void (*div_scalar)(std::size_t n, double s, double* x);
    /// CSR sparse matrix times a *lane-major* RHS block:
    /// ys[i·nrhs + r] = Σ_p val[p]·xs[col[p]·nrhs + r] over row i's nonzeros
    /// (element (node c, RHS r) lives at c·nrhs + r, so the r-lanes of one
    /// node are contiguous — the layout that makes the AVX2 tier's loads
    /// unit-stride). Every lane keeps one accumulator over ascending p with
    /// separate multiply and add (never fused), which is exactly the
    /// sequential CSR matvec order — so lane r is bit-identical to a
    /// per-column matvec AND the whole kernel is bit-identical across tiers.
    void (*spmm)(std::size_t rows, const std::size_t* row_ptr,
                 const std::size_t* col, const double* val, const double* xs,
                 std::size_t nrhs, double* ys);
};

/// True when @p tier can run on this machine (kScalar always can).
bool tier_available(Tier tier);

/// Resolves a HOTPOTATO_DISPATCH-style spec ("scalar"/"avx2"). Null,
/// unrecognised or unavailable specs resolve to the best available tier
/// (forced-but-unavailable "avx2" degrades to scalar rather than crashing).
Tier resolve_tier(const char* spec);

/// The process-wide active tier: resolved once, on first call, from the
/// HOTPOTATO_DISPATCH environment variable / CPU features. Thread-safe.
Tier active_tier();

/// Stable lower-case name of @p tier ("scalar", "avx2") for provenance
/// metadata and logs.
const char* tier_name(Tier tier);

/// Kernel table of @p tier (the scalar table when @p tier is unavailable).
const KernelTable& kernels_for(Tier tier);

/// Kernel table of the active tier — the hot-path entry point.
const KernelTable& kernels();

/// Test-only override of the active tier. Not thread-safe: call only from
/// single-threaded test setup, and pair with clear_forced_tier(). Forcing an
/// unavailable tier is ignored (active_tier() keeps its detected value).
void force_tier_for_testing(Tier tier);
void clear_forced_tier_for_testing();

}  // namespace hp::linalg::simd
