#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/vector.hpp"

namespace hp::linalg {

/// Dense row-major real matrix.
///
/// Sized for compact thermal models (N in the low hundreds); operations are
/// straightforward O(N^3)/O(N^2) loops without blocking, which is more than
/// fast enough for the design-time phase of the schedulers and keeps the
/// numerics easy to audit.
class Matrix {
public:
    Matrix() = default;

    /// Creates a @p rows x @p cols matrix with every entry equal to @p fill.
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Creates a matrix from nested initializer lists; all rows must have the
    /// same length or std::invalid_argument is thrown.
    Matrix(std::initializer_list<std::initializer_list<double>> init) {
        rows_ = init.size();
        cols_ = rows_ == 0 ? 0 : init.begin()->size();
        data_.reserve(rows_ * cols_);
        for (const auto& row : init) {
            if (row.size() != cols_)
                throw std::invalid_argument("Matrix: ragged initializer list");
            data_.insert(data_.end(), row.begin(), row.end());
        }
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return data_.empty(); }
    bool square() const { return rows_ == cols_; }

    double operator()(std::size_t i, std::size_t j) const {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }
    double& operator()(std::size_t i, std::size_t j) {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }

    /// Raw row-major storage (rows()*cols() doubles); row i starts at
    /// data() + i*cols(). For performance-critical inner loops.
    const double* data() const { return data_.data(); }

    /// The n x n identity.
    static Matrix identity(std::size_t n) {
        Matrix m(n, n);
        for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
        return m;
    }

    /// Diagonal matrix with @p d on the diagonal.
    static Matrix diagonal(const Vector& d) {
        Matrix m(d.size(), d.size());
        for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
        return m;
    }

    /// Returns the main diagonal as a vector (square matrices only).
    Vector diagonal_vector() const {
        require_square("diagonal_vector");
        Vector d(rows_);
        for (std::size_t i = 0; i < rows_; ++i) d[i] = (*this)(i, i);
        return d;
    }

    Matrix transpose() const {
        Matrix t(cols_, rows_);
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
        return t;
    }

    Matrix& operator+=(const Matrix& rhs) {
        check_same_shape(rhs);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
        return *this;
    }
    Matrix& operator-=(const Matrix& rhs) {
        check_same_shape(rhs);
        for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
        return *this;
    }
    Matrix& operator*=(double s) {
        for (double& x : data_) x *= s;
        return *this;
    }

    friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
    friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
    friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
    friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

    /// Matrix-matrix product; shapes must be compatible.
    friend Matrix operator*(const Matrix& a, const Matrix& b) {
        if (a.cols_ != b.rows_)
            throw std::invalid_argument("Matrix multiply: shape mismatch");
        Matrix c(a.rows_, b.cols_);
        for (std::size_t i = 0; i < a.rows_; ++i) {
            for (std::size_t k = 0; k < a.cols_; ++k) {
                const double aik = a(i, k);
                if (aik == 0.0) continue;
                for (std::size_t j = 0; j < b.cols_; ++j)
                    c(i, j) += aik * b(k, j);
            }
        }
        return c;
    }

    /// Matrix-vector product (thin wrapper over the non-allocating kernel).
    friend Vector operator*(const Matrix& a, const Vector& x) {
        if (a.cols_ != x.size())
            throw std::invalid_argument("Matrix-vector multiply: shape mismatch");
        Vector y(a.rows_);
        kernel_matvec(a.data(), a.rows_, a.cols_, x.data(), y.data());
        return y;
    }

    friend bool operator==(const Matrix& a, const Matrix& b) {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
    }

    /// Largest absolute entry (max norm); 0 for an empty matrix.
    double max_abs() const {
        double m = 0.0;
        for (double x : data_) m = std::max(m, std::abs(x));
        return m;
    }

    /// True when |(i,j) - (j,i)| <= tol for all entries (square only).
    bool is_symmetric(double tol = 1e-9) const {
        if (!square()) return false;
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t j = i + 1; j < cols_; ++j)
                if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
        return true;
    }

private:
    void check_same_shape(const Matrix& rhs) const {
        if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
            throw std::invalid_argument("Matrix shape mismatch");
    }
    void require_square(const char* what) const {
        if (!square())
            throw std::logic_error(std::string("Matrix::") + what +
                                   " requires a square matrix");
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// out = a·x into a preallocated vector of a.rows() entries; bit-identical
/// to operator*(Matrix, Vector) without the allocation. @p out must not
/// alias @p x. Throws std::invalid_argument on any shape mismatch.
inline void matvec_into(const Matrix& a, const Vector& x, Vector& out) {
    if (a.cols() != x.size() || a.rows() != out.size())
        throw std::invalid_argument("matvec_into: shape mismatch");
    kernel_matvec(a.data(), a.rows(), a.cols(), x.data(), out.data());
}

}  // namespace hp::linalg
