#include "linalg/tridiag_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hp::linalg {

namespace {

/// Householder reduction of symmetric @p a (overwritten) to tridiagonal
/// form: on exit @p d holds the diagonal, @p e the subdiagonal (e[0] unused)
/// and @p a the accumulated orthogonal transform Q with A = Q·T·Q^T.
void householder_tridiagonalize(Matrix& a, double* d, double* e) {
    const std::size_t n = a.rows();
    for (std::size_t i = n; i-- > 1;) {
        const std::size_t l = i - 1;
        double h = 0.0;
        if (l > 0) {
            double scale = 0.0;
            for (std::size_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
            if (scale == 0.0) {
                e[i] = a(i, l);
            } else {
                for (std::size_t k = 0; k <= l; ++k) {
                    a(i, k) /= scale;
                    h += a(i, k) * a(i, k);
                }
                double f = a(i, l);
                double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
                e[i] = scale * g;
                h -= f * g;
                a(i, l) = f - g;
                f = 0.0;
                for (std::size_t j = 0; j <= l; ++j) {
                    // Store u/H in the lower column for the Q accumulation.
                    a(j, i) = a(i, j) / h;
                    g = 0.0;
                    for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
                    for (std::size_t k = j + 1; k <= l; ++k)
                        g += a(k, j) * a(i, k);
                    e[j] = g / h;
                    f += e[j] * a(i, j);
                }
                const double hh = f / (h + h);
                for (std::size_t j = 0; j <= l; ++j) {
                    f = a(i, j);
                    e[j] = g = e[j] - hh * f;
                    for (std::size_t k = 0; k <= j; ++k)
                        a(j, k) -= f * e[k] + g * a(i, k);
                }
            }
        } else {
            e[i] = a(i, l);
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the transformation matrix in place.
    for (std::size_t i = 0; i < n; ++i) {
        if (d[i] != 0.0) {
            for (std::size_t j = 0; j < i; ++j) {
                double g = 0.0;
                for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
                for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
            }
        }
        d[i] = a(i, i);
        a(i, i) = 1.0;
        for (std::size_t j = 0; j < i; ++j) {
            a(j, i) = 0.0;
            a(i, j) = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on the tridiagonal (d, e), accumulating the
/// rotations into @p z (entered as the Householder Q). On exit d holds the
/// (unsorted) eigenvalues and column j of z the eigenvector of d[j].
void ql_implicit_shift(std::size_t n, double* d, double* e, Matrix& z) {
    if (n == 0) return;
    for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
    e[n - 1] = 0.0;
    for (std::size_t l = 0; l < n; ++l) {
        std::size_t iter = 0;
        std::size_t m;
        do {
            for (m = l; m + 1 < n; ++m) {
                const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
                if (std::abs(e[m]) <= 1e-300 ||
                    std::abs(e[m]) <= 1e-16 * dd)
                    break;
            }
            if (m != l) {
                if (++iter > 64)
                    throw std::runtime_error(
                        "tridiagonal_eigen: QL iteration failed to converge");
                double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
                double r = std::hypot(g, 1.0);
                g = d[m] - d[l] +
                    e[l] / (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
                double s = 1.0;
                double c = 1.0;
                double p = 0.0;
                for (std::size_t i = m; i-- > l;) {
                    double f = s * e[i];
                    const double b = c * e[i];
                    r = std::hypot(f, g);
                    e[i + 1] = r;
                    if (r == 0.0) {
                        d[i + 1] -= p;
                        e[m] = 0.0;
                        break;
                    }
                    s = f / r;
                    c = g / r;
                    g = d[i + 1] - p;
                    r = (d[i] - g) * s + 2.0 * c * b;
                    p = s * r;
                    d[i + 1] = g + p;
                    g = c * r - b;
                    for (std::size_t k = 0; k < n; ++k) {
                        f = z(k, i + 1);
                        z(k, i + 1) = s * z(k, i) + c * f;
                        z(k, i) = c * z(k, i) - s * f;
                    }
                }
                if (r == 0.0 && m - l > 1) continue;
                d[l] -= p;
                e[l] = g;
                e[m] = 0.0;
            }
        } while (m != l);
    }
}

}  // namespace

SymmetricEigen tridiagonal_eigen(const Matrix& m, double symmetry_tol) {
    if (!m.square())
        throw std::invalid_argument("tridiagonal_eigen: matrix must be square");
    const double scale = std::max(1.0, m.max_abs());
    if (!m.is_symmetric(symmetry_tol * scale))
        throw std::invalid_argument(
            "tridiagonal_eigen: matrix must be symmetric");

    const std::size_t n = m.rows();
    Matrix q = m;
    // One consolidated scratch block for the diagonal/subdiagonal work
    // arrays (the setup bench gates allocs/op; per-stage vectors were churn).
    std::vector<double> de(2 * n, 0.0);
    double* d = de.data();
    double* e = de.data() + n;
    if (n == 1) {
        d[0] = m(0, 0);
        q(0, 0) = 1.0;
    } else {
        householder_tridiagonalize(q, d, e);
        ql_implicit_shift(n, d, e, q);
    }

    // Sort ascending, permuting eigenvector columns along (jacobi_eigen's
    // output contract).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });
    SymmetricEigen out;
    out.values = Vector(n);
    out.vectors = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        out.values[j] = d[order[j]];
        for (std::size_t i = 0; i < n; ++i)
            out.vectors(i, j) = q(i, order[j]);
    }
    return out;
}

}  // namespace hp::linalg
