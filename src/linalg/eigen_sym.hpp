#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace hp::linalg {

/// Result of a symmetric eigendecomposition: M = Q * diag(values) * Q^T with
/// orthonormal Q (eigenvectors stored as columns), eigenvalues sorted
/// ascending.
struct SymmetricEigen {
    Vector values;
    Matrix vectors;  // column j is the eigenvector of values[j]
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Robust and simple; O(N^3) per sweep with typically < 15 sweeps for the
/// well-conditioned SPD matrices produced by RC thermal networks. Throws
/// std::invalid_argument if @p m is not symmetric to within @p symmetry_tol.
SymmetricEigen jacobi_eigen(const Matrix& m, double symmetry_tol = 1e-8,
                            std::size_t max_sweeps = 64);

}  // namespace hp::linalg
