#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace hp::linalg {

/// Sparse direct solver for symmetric positive-definite matrices with grid
/// structure plus a few dense-coupled rows — exactly the shape of an RC
/// conductance matrix B, where every node couples to O(1) neighbours except
/// the heat sink, which couples to the whole spreader footprint.
///
/// Factorisation strategy:
///  1. rows whose structural degree exceeds a threshold (the sink) are
///     *bordered* — ordered last and eliminated through a dense Schur
///     complement, so they cannot inflate the bandwidth;
///  2. the remaining grid rows are permuted by reverse Cuthill-McKee, which
///     makes the interior block narrowly banded;
///  3. the interior is factorised by a banded Cholesky (O(N·b²) setup,
///     O(N·b) per solve for half-bandwidth b), the border by a dense
///     Cholesky of its (tiny) Schur complement.
///
/// For a planar 16x16-core model (N = 513, b ≈ 33) a solve costs ~70 k flops
/// against the dense LU's ~530 k — and setup is O(N·b²) instead of O(N³).
/// Solutions agree with the LU path to machine precision but not bit-for-bit
/// (different elimination order); the bit-identity guarantees of the dense
/// backend therefore keep using LuDecomposition.
///
/// Immutable after construction; solve_into writes only caller buffers, so
/// one factorisation serves any number of concurrent solver threads.
class BandedCholesky {
public:
    BandedCholesky() = default;

    /// Factorises SPD @p spd. Rows with more than @p border_degree_threshold
    /// structural off-diagonal nonzeros are bordered. Throws
    /// std::invalid_argument if @p spd is not square/symmetric or a pivot is
    /// not positive (not SPD).
    explicit BandedCholesky(const Matrix& spd,
                            std::size_t border_degree_threshold = 12);

    std::size_t size() const { return n_; }
    /// Half-bandwidth of the RCM-permuted interior block.
    std::size_t bandwidth() const { return hb_; }
    /// Number of dense-coupled rows eliminated through the Schur complement.
    std::size_t border_count() const { return nb_; }

    /// Solves S·x = b. @p scratch must hold size() doubles; @p x may alias
    /// @p b but neither may alias @p scratch. No allocations.
    void solve_into(const double* b, double* x, double* scratch) const;

    /// Solves S·x_r = b_r for @p nrhs RHS-major vectors (RHS r occupies
    /// [r·size(), (r+1)·size()) of @p bs and @p xs) in one lane-parallel
    /// sweep: the triangular substitutions are sequential per row but
    /// independent across right-hand sides, so each factor entry is loaded
    /// once and applied to all lanes — this breaks the per-row dependency
    /// chain that makes the single solve latency-bound. Lane r performs
    /// exactly solve_into's operation sequence (same subtractions in the
    /// same order, multiply and add never reassociated), so output r is
    /// bit-identical to solve_into on input r. @p scratch must hold
    /// size()·nrhs doubles; @p xs may alias @p bs but neither may alias
    /// @p scratch. No allocations.
    void solve_batch_into(const double* bs, std::size_t nrhs, double* xs,
                          double* scratch) const;

    /// Allocating convenience solve.
    Vector solve(const Vector& b) const;

private:
    std::size_t n_ = 0;   ///< total rows
    std::size_t ni_ = 0;  ///< interior (banded) rows
    std::size_t nb_ = 0;  ///< bordered rows
    std::size_t hb_ = 0;  ///< interior half-bandwidth
    std::vector<std::size_t> perm_;   ///< permuted index k holds original perm_[k]
    std::vector<double> band_;        ///< interior L, band_[i*(hb_+1)+d] = L(i,i-d)
    std::vector<double> w_;           ///< L^{-1}·A_IB, column-major (ni_ x nb_)
    std::vector<double> schur_;       ///< dense Cholesky factor of the border Schur
};

}  // namespace hp::linalg
