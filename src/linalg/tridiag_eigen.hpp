#pragma once

#include "linalg/eigen_sym.hpp"

namespace hp::linalg {

/// Direct symmetric eigendecomposition via Householder tridiagonalization
/// followed by implicit-shift QL iteration (the classic tred2/tql2 pair).
///
/// Same contract as jacobi_eigen — eigenvalues ascending, orthonormal
/// eigenvectors stored as columns, std::invalid_argument on a matrix that is
/// not square/symmetric — but a one-shot O(n^3) reduction with a small
/// constant instead of Jacobi's iterated sweeps (each themselves O(n^3)).
/// This is the setup path that keeps the 256/1024-node thermal models
/// tractable; jacobi_eigen remains the eigensolver of the dense MatEx
/// backend, whose results are pinned bit-for-bit by the equivalence suite.
SymmetricEigen tridiagonal_eigen(const Matrix& m, double symmetry_tol = 1e-8);

}  // namespace hp::linalg
