#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "linalg/kernels.hpp"

namespace hp::linalg {

LuDecomposition::LuDecomposition(const Matrix& m) : lu_(m) {
    if (!m.square())
        throw std::invalid_argument("LuDecomposition: matrix must be square");
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot: pick the largest magnitude entry in this column.
        std::size_t pivot = col;
        double pivot_mag = std::abs(lu_(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double mag = std::abs(lu_(r, col));
            if (mag > pivot_mag) {
                pivot = r;
                pivot_mag = mag;
            }
        }
        if (pivot_mag == 0.0)
            throw std::domain_error("LuDecomposition: singular matrix");
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j)
                std::swap(lu_(pivot, j), lu_(col, j));
            std::swap(perm_[pivot], perm_[col]);
            perm_sign_ = -perm_sign_;
        }
        const double inv_pivot = 1.0 / lu_(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = lu_(r, col) * inv_pivot;
            lu_(r, col) = factor;
            if (factor == 0.0) continue;
            for (std::size_t j = col + 1; j < n; ++j)
                lu_(r, j) -= factor * lu_(col, j);
        }
    }
}

Vector LuDecomposition::solve(const Vector& b) const {
    Vector y(size());
    solve_into(b, y);
    return y;
}

void LuDecomposition::solve_into(const Vector& b, Vector& out) const {
    const std::size_t n = size();
    if (b.size() != n || out.size() != n)
        throw std::invalid_argument("LuDecomposition::solve: size mismatch");
    // Apply permutation, then forward- and back-substitute in place.
    Vector& y = out;
    for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
    for (std::size_t i = 1; i < n; ++i) {
        double acc = y[i];
        for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
        y[i] = acc;
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * y[j];
        y[ii] = acc / lu_(ii, ii);
    }
}

void LuDecomposition::solve_batch_into(const double* b, std::size_t nrhs,
                                       double* out) const {
    const std::size_t n = size();
    if (nrhs == 0) return;
    // Permutation, then both substitutions in place — solve_into with the
    // scalar recurrences replaced by width-nrhs axpy/div kernels. The axpy
    // form y_i += (-l)·y_j is bit-identical to solve_into's acc -= l·y_j
    // (IEEE negation is exact), and the kernels never fuse, so each RHS
    // reproduces the single-RHS bits exactly.
    for (std::size_t i = 0; i < n; ++i) {
        const double* src = b + perm_[i] * nrhs;
        double* dst = out + i * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) dst[r] = src[r];
    }
    for (std::size_t i = 1; i < n; ++i) {
        double* yi = out + i * nrhs;
        for (std::size_t j = 0; j < i; ++j)
            kernel_axpy(nrhs, -lu_(i, j), out + j * nrhs, yi);
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double* yi = out + ii * nrhs;
        for (std::size_t j = ii + 1; j < n; ++j)
            kernel_axpy(nrhs, -lu_(ii, j), out + j * nrhs, yi);
        kernel_div_scalar(nrhs, lu_(ii, ii), yi);
    }
}

Matrix LuDecomposition::solve(const Matrix& b) const {
    const std::size_t n = size();
    if (b.rows() != n)
        throw std::invalid_argument("LuDecomposition::solve: size mismatch");
    Matrix x(n, b.cols());
    Vector column(n);
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t r = 0; r < n; ++r) column[r] = b(r, c);
        const Vector sol = solve(column);
        for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
    }
    return x;
}

Matrix LuDecomposition::inverse() const { return solve(Matrix::identity(size())); }

double LuDecomposition::determinant() const {
    double det = perm_sign_;
    for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
    return det;
}

Vector solve(const Matrix& m, const Vector& b) {
    return LuDecomposition(m).solve(b);
}

Matrix inverse(const Matrix& m) { return LuDecomposition(m).inverse(); }

}  // namespace hp::linalg
