#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "linalg/vector.hpp"

namespace hp::linalg {

// Non-allocating kernels over raw spans / preallocated buffers. These are the
// single numeric implementation of the thermal hot path: the value-returning
// Vector/Matrix operators are thin wrappers around them, so the loop and
// accumulation order is defined exactly once and results stay bit-identical
// whichever entry point a caller uses. None of these touch the heap; all
// aliasing restrictions are documented per kernel and asserted in debug
// builds where cheap.

/// y = A·x for a row-major rows×cols matrix. Accumulates each row into a
/// local scalar (acc += a(i,j)·x[j] in column order) and stores it once, the
/// same order as the historical Matrix·Vector operator. @p y must not alias
/// @p x or @p a.
inline void kernel_matvec(const double* a, std::size_t rows, std::size_t cols,
                          const double* x, double* y) {
    for (std::size_t i = 0; i < rows; ++i) {
        const double* row = a + i * cols;
        double acc = 0.0;
        for (std::size_t j = 0; j < cols; ++j) acc += row[j] * x[j];
        y[i] = acc;
    }
}

/// y += alpha·x (BLAS axpy). @p x and @p y may be the same buffer.
inline void kernel_axpy(std::size_t n, double alpha, const double* x,
                        double* y) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// x *= s in place.
inline void kernel_scale(std::size_t n, double s, double* x) {
    for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

/// x[i] *= e^{rate[i]·t} — the modal decay step of the MatEx exponential.
inline void kernel_hadamard_exp(std::size_t n, const double* rate, double t,
                                double* x) {
    for (std::size_t i = 0; i < n; ++i) x[i] *= std::exp(rate[i] * t);
}

// --- Vector-level conveniences ---------------------------------------------

/// y += alpha·x with size checking.
inline void axpy(double alpha, const Vector& x, Vector& y) {
    if (x.size() != y.size())
        throw std::invalid_argument("axpy: size mismatch");
    kernel_axpy(y.size(), alpha, x.data(), y.data());
}

/// x *= s.
inline void scale(Vector& x, double s) { kernel_scale(x.size(), s, x.data()); }

/// x[i] *= e^{rate[i]·t} with size checking.
inline void hadamard_exp(Vector& x, const Vector& rate, double t) {
    if (x.size() != rate.size())
        throw std::invalid_argument("hadamard_exp: size mismatch");
    kernel_hadamard_exp(x.size(), rate.data(), t, x.data());
}

}  // namespace hp::linalg
