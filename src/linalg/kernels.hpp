#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "linalg/vector.hpp"

namespace hp::linalg {

// Non-allocating kernels over raw spans / preallocated buffers. These are the
// single numeric implementation of the thermal hot path: the value-returning
// Vector/Matrix operators are thin wrappers around them, so the loop and
// accumulation order is defined exactly once and results stay bit-identical
// whichever entry point a caller uses. Since PR 5 they dispatch through the
// runtime-selected SIMD tier (see simd.hpp for the per-kernel cross-tier
// determinism contract); within a process all entry points share one tier,
// so the bit-identity guarantee is unchanged. None of these touch the heap;
// all aliasing restrictions are documented per kernel and asserted in debug
// builds where cheap.

/// y = A·x for a row-major rows×cols matrix. Accumulates each row into a
/// per-row accumulator (acc += a(i,j)·x[j] in column order; the AVX2 tier
/// uses a fixed 4-lane FMA reduction), the same order as the historical
/// Matrix·Vector operator within a tier. @p y must not alias @p x or @p a.
inline void kernel_matvec(const double* a, std::size_t rows, std::size_t cols,
                          const double* x, double* y) {
    simd::kernels().matvec(a, rows, cols, x, y);
}

/// Batched matvec: ys[r] = A·xs[r] for @p nrhs RHS-major vectors (RHS r is
/// the contiguous range [r·cols, (r+1)·cols) of @p xs; outputs likewise with
/// stride rows). Blocked so each matrix row is streamed once per block of
/// right-hand sides; every RHS keeps matvec's exact accumulation order, so
/// the batch is bit-identical to @p nrhs looped kernel_matvec calls. @p ys
/// must not alias @p xs or @p a.
inline void kernel_matmat(const double* a, std::size_t rows, std::size_t cols,
                          const double* xs, std::size_t nrhs, double* ys) {
    simd::kernels().matmat(a, rows, cols, xs, nrhs, ys);
}

/// y += alpha·x (BLAS axpy; multiply and add never fused, so every tier
/// produces the same bits). @p x and @p y may be the same buffer.
inline void kernel_axpy(std::size_t n, double alpha, const double* x,
                        double* y) {
    simd::kernels().axpy(n, alpha, x, y);
}

/// x *= s in place.
inline void kernel_scale(std::size_t n, double s, double* x) {
    simd::kernels().scale(n, s, x);
}

/// x[i] *= m[i] in place (element-wise product against a precomputed table,
/// e.g. the workspace's memoised e^{λ·dt}).
inline void kernel_hadamard(std::size_t n, const double* m, double* x) {
    simd::kernels().hadamard(n, m, x);
}

/// y[i] += a[i]·b[i] (element-wise multiply-accumulate; never fused).
inline void kernel_fma_acc(std::size_t n, const double* a, const double* b,
                           double* y) {
    simd::kernels().fma_acc(n, a, b, y);
}

/// m[i] = max(m[i], x[i]) — the element-wise max-reduction of the peak scan.
inline void kernel_max_acc(std::size_t n, const double* x, double* m) {
    simd::kernels().max_acc(n, x, m);
}

/// out[i] = e[i]·zp[i] + (1-e[i])·y[i] — Algorithm 1's intra-epoch decay
/// from the previous boundary zp towards the epoch target y.
inline void kernel_decay_mix(std::size_t n, const double* e, const double* zp,
                             const double* y, double* out) {
    simd::kernels().decay_mix(n, e, zp, y, out);
}

/// x[i] /= s in place (IEEE division; bit-identical in every tier).
inline void kernel_div_scalar(std::size_t n, double s, double* x) {
    simd::kernels().div_scalar(n, s, x);
}

/// x[i] *= e^{rate[i]·t} — the modal decay step of the MatEx exponential.
/// Kept scalar: std::exp dominates and must stay the libm call the memoised
/// workspace tables were built from.
inline void kernel_hadamard_exp(std::size_t n, const double* rate, double t,
                                double* x) {
    for (std::size_t i = 0; i < n; ++i) x[i] *= std::exp(rate[i] * t);
}

// --- Vector-level conveniences ---------------------------------------------

/// y += alpha·x with size checking.
inline void axpy(double alpha, const Vector& x, Vector& y) {
    if (x.size() != y.size())
        throw std::invalid_argument("axpy: size mismatch");
    kernel_axpy(y.size(), alpha, x.data(), y.data());
}

/// x *= s.
inline void scale(Vector& x, double s) { kernel_scale(x.size(), s, x.data()); }

/// x[i] *= e^{rate[i]·t} with size checking.
inline void hadamard_exp(Vector& x, const Vector& rate, double t) {
    if (x.size() != rate.size())
        throw std::invalid_argument("hadamard_exp: size mismatch");
    kernel_hadamard_exp(x.size(), rate.data(), t, x.data());
}

}  // namespace hp::linalg
