#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace hp::linalg {

/// LU decomposition with partial pivoting (Doolittle / Crout hybrid).
///
/// Decomposes a square matrix M as P*M = L*U once and then solves any number
/// of right-hand sides in O(N^2). The thermal model uses this for B^{-1}
/// (steady-state temperatures, Eq. (3) of the paper) and for assembling
/// C = -A^{-1} B.
class LuDecomposition {
public:
    /// Decomposes @p m. Throws std::invalid_argument if @p m is not square
    /// and std::domain_error if it is numerically singular.
    explicit LuDecomposition(const Matrix& m);

    std::size_t size() const { return lu_.rows(); }

    /// Solves M x = b. Throws std::invalid_argument on size mismatch.
    /// Thin wrapper over solve_into (one allocation for the result).
    Vector solve(const Vector& b) const;

    /// Solves M x = b into the preallocated @p out (size() entries) without
    /// allocating: the permuted right-hand side is written into @p out and
    /// both substitutions run in place. @p out must not alias @p b. Throws
    /// std::invalid_argument on any size mismatch.
    void solve_into(const Vector& b, Vector& out) const;

    /// Solves M X = B for @p nrhs right-hand sides in one pass, without
    /// allocating. @p b and @p out are node-major: the entry for node i of
    /// RHS r lives at index i·nrhs + r (both size()·nrhs doubles), so the
    /// substitution recurrences vectorise across the independent RHS
    /// dimension. Every RHS runs through exactly solve_into's operation
    /// sequence (same permutation, same subtraction order, same final
    /// division), so the batch is bit-identical to nrhs looped solve_into
    /// calls in every dispatch tier. @p out must not alias @p b.
    void solve_batch_into(const double* b, std::size_t nrhs,
                          double* out) const;

    /// Solves M X = B column-by-column.
    Matrix solve(const Matrix& b) const;

    /// The full inverse M^{-1} (N solves).
    Matrix inverse() const;

    /// det(M); product of U's diagonal times the permutation sign.
    double determinant() const;

private:
    Matrix lu_;                 // packed L (unit diagonal, below) and U (on/above)
    std::vector<std::size_t> perm_;
    int perm_sign_ = 1;
};

/// Convenience one-shot solve of M x = b.
Vector solve(const Matrix& m, const Vector& b);

/// Convenience one-shot inverse.
Matrix inverse(const Matrix& m);

}  // namespace hp::linalg
