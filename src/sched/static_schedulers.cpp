#include "sched/static_schedulers.hpp"

#include <stdexcept>

#include "sched/placement.hpp"

namespace hp::sched {

namespace {

/// Consumes @p count cores from @p fixed (advancing @p next) or falls back to
/// the lowest-AMD free cores. Returns an empty vector if not enough cores.
std::vector<std::size_t> pick_cores(sim::SimContext& ctx,
                                    const std::vector<std::size_t>& fixed,
                                    std::size_t& next, std::size_t count) {
    std::vector<std::size_t> out;
    if (!fixed.empty()) {
        if (next + count > fixed.size()) return {};
        for (std::size_t i = 0; i < count; ++i) out.push_back(fixed[next + i]);
        for (std::size_t c : out)
            if (ctx.thread_on(c) != sim::kNone)
                throw std::logic_error("fixed core already occupied");
        next += count;
        return out;
    }
    std::vector<std::size_t> free = free_cores_by_amd(ctx);
    if (free.size() < count) return {};
    free.resize(count);
    return free;
}

}  // namespace

bool StaticScheduler::on_task_arrival(sim::SimContext& ctx,
                                      sim::TaskId task) {
    const std::vector<std::size_t> cores = pick_cores(
        ctx, fixed_cores_, next_fixed_, ctx.task(task).thread_count);
    if (cores.empty()) return false;
    place_task_threads(ctx, task, cores);
    return true;
}

bool TspDvfsScheduler::on_task_arrival(sim::SimContext& ctx,
                                       sim::TaskId task) {
    const std::vector<std::size_t> cores = pick_cores(
        ctx, fixed_cores_, next_fixed_, ctx.task(task).thread_count);
    if (cores.empty()) return false;
    place_task_threads(ctx, task, cores);
    return true;
}

void TspDvfsScheduler::on_epoch(sim::SimContext& ctx) {
    const std::vector<bool> mask = active_core_mask(ctx);
    TspBudget tsp(ctx.thermal_model());
    const double idle =
        ctx.power_model().idle_power_w(ctx.config().t_dtm_c);
    const double budget = tsp.per_core_budget(
        mask, idle, ctx.config().ambient_c, ctx.config().t_dtm_c);

    const double f_ref = ctx.power_model().params().f_ref_hz;
    for (std::size_t c = 0; c < mask.size(); ++c) {
        if (!mask[c]) continue;
        const sim::ThreadId id = ctx.thread_on(c);
        const perf::PhasePoint& point = ctx.thread_phase_point(id);
        const double f = ctx.power_model().max_frequency_within(
            budget, point.nominal_power_w,
            [&](double fc) {
                return ctx.perf_model().power_activity(point, c, fc, f_ref);
            },
            ctx.config().t_dtm_c);
        ctx.set_frequency(c, f);
    }
}

FixedRotationScheduler::FixedRotationScheduler(std::vector<std::size_t> cycle,
                                               double interval_s)
    : cycle_(std::move(cycle)),
      interval_s_(interval_s),
      next_rotation_s_(interval_s) {
    if (cycle_.size() < 2)
        throw std::invalid_argument(
            "FixedRotationScheduler: cycle needs >= 2 cores");
    if (interval_s_ <= 0.0)
        throw std::invalid_argument(
            "FixedRotationScheduler: interval must be positive");
}

bool FixedRotationScheduler::on_task_arrival(sim::SimContext& ctx,
                                             sim::TaskId task) {
    const sim::Task& t = ctx.task(task);
    if (next_slot_ + t.thread_count > cycle_.size()) return false;
    std::vector<std::size_t> cores(cycle_.begin() + next_slot_,
                                   cycle_.begin() + next_slot_ +
                                       t.thread_count);
    next_slot_ += t.thread_count;
    place_task_threads(ctx, task, cores);
    return true;
}

void FixedRotationScheduler::on_step(sim::SimContext& ctx) {
    if (ctx.now() + 1e-12 < next_rotation_s_) return;
    ctx.rotate(cycle_);
    next_rotation_s_ += interval_s_;
}

}  // namespace hp::sched
