#pragma once

#include <string>

#include "sim/scheduler.hpp"

namespace hp::sched {

/// Naive reactive thermal management: no DVFS, no prediction, no rotation —
/// when a core's *measured* temperature crosses a trigger just below the DTM
/// threshold, its thread is evacuated to the coolest free core.
///
/// This is the weakest credible baseline: by the time the trigger fires the
/// heat is already in the silicon, so on hot workloads it oscillates between
/// evacuations and hardware DTM. Exists to quantify what PCMig's prediction
/// and HotPotato's proactive rotation actually buy.
class ReactiveMigrationScheduler : public sim::Scheduler {
public:
    /// Migration fires at T_DTM - @p trigger_margin_c.
    explicit ReactiveMigrationScheduler(double trigger_margin_c = 1.0)
        : trigger_margin_c_(trigger_margin_c) {}

    std::string name() const override { return "reactive"; }

    bool on_task_arrival(sim::SimContext& ctx, sim::TaskId task) override;
    void on_epoch(sim::SimContext& ctx) override;

private:
    double trigger_margin_c_;
};

}  // namespace hp::sched
