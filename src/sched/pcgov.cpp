#include "sched/pcgov.hpp"

#include "sched/placement.hpp"

namespace hp::sched {

bool PcGovScheduler::on_task_arrival(sim::SimContext& ctx, sim::TaskId task) {
    const sim::Task& t = ctx.task(task);
    const std::vector<std::size_t> cores =
        spaced_cores_by_amd(ctx, t.thread_count);
    if (cores.empty()) return false;
    place_task_threads(ctx, task, cores);
    apply_tsp_dvfs(ctx);
    return true;
}

void PcGovScheduler::on_epoch(sim::SimContext& ctx) { apply_tsp_dvfs(ctx); }

void PcGovScheduler::apply_tsp_dvfs(sim::SimContext& ctx) {
    const std::vector<bool> mask = active_core_mask(ctx);
    TspBudget tsp(ctx.thermal_model());
    const double idle = ctx.power_model().idle_power_w(ctx.config().t_dtm_c);
    const double budget = tsp.per_core_budget(
        mask, idle, ctx.config().ambient_c, ctx.config().t_dtm_c);

    const double f_ref = ctx.power_model().params().f_ref_hz;
    for (std::size_t c = 0; c < mask.size(); ++c) {
        if (!mask[c]) continue;
        const sim::ThreadId id = ctx.thread_on(c);
        const perf::PhasePoint& point = ctx.thread_phase_point(id);
        const double f = ctx.power_model().max_frequency_within(
            budget, point.nominal_power_w,
            [&](double fc) {
                return ctx.perf_model().power_activity(point, c, fc, f_ref);
            },
            ctx.config().t_dtm_c);
        ctx.set_frequency(c, f);
    }
}

}  // namespace hp::sched
