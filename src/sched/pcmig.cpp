#include "sched/pcmig.hpp"

#include <algorithm>

#include "linalg/vector.hpp"

namespace hp::sched {

void PcMigScheduler::initialize(sim::SimContext& ctx) {
    PcGovScheduler::initialize(ctx);
    if (obs::Recorder* obs = ctx.observer())
        obs_predictions_ = &obs->counter("pcmig.predictions");
}

const linalg::Vector& PcMigScheduler::predict(sim::SimContext& ctx) {
    if (obs_predictions_) obs_predictions_->add();
    const std::size_t n = ctx.chip().core_count();
    if (predict_power_.size() != n) predict_power_ = linalg::Vector(n);
    for (std::size_t c = 0; c < n; ++c) predict_power_[c] = ctx.core_power(c);
    ctx.thermal_model().pad_power_into(predict_power_, predict_node_power_);
    ctx.matex().transient_into(ctx.temperatures(), predict_node_power_,
                               ctx.config().ambient_c,
                               params_.prediction_horizon_s, predict_ws_,
                               predicted_);
    return predicted_;
}

void PcMigScheduler::on_epoch(sim::SimContext& ctx) {
    // DVFS first (PCGov behaviour), then check whether DVFS alone suffices.
    apply_tsp_dvfs(ctx);

    const double limit = ctx.config().t_dtm_c - params_.migration_margin_c;
    for (std::size_t m = 0; m < params_.max_migrations_per_epoch; ++m) {
        const linalg::Vector& predicted = predict(ctx);
        // Hottest predicted core that actually hosts a thread.
        std::size_t hottest = sim::kNone;
        double hottest_t = limit;
        for (std::size_t c = 0; c < ctx.chip().core_count(); ++c) {
            if (ctx.thread_on(c) == sim::kNone) continue;
            if (predicted[c] > hottest_t) {
                hottest_t = predicted[c];
                hottest = c;
            }
        }
        if (hottest == sim::kNone) break;  // nothing is about to overheat

        // Coolest free core as evacuation target.
        std::size_t coolest = sim::kNone;
        double coolest_t = 1e300;
        for (std::size_t c : ctx.free_cores()) {
            if (predicted[c] < coolest_t) {
                coolest_t = predicted[c];
                coolest = c;
            }
        }
        if (coolest == sim::kNone) break;  // fully loaded: DVFS must cope
        if (coolest_t >= hottest_t) break; // no thermal benefit available

        ctx.migrate(ctx.thread_on(hottest), coolest);
        apply_tsp_dvfs(ctx);  // mapping changed; rebudget
    }
}

}  // namespace hp::sched
