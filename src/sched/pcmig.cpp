#include "sched/pcmig.hpp"

#include <algorithm>

#include "linalg/vector.hpp"

namespace hp::sched {

void PcMigScheduler::initialize(sim::SimContext& ctx) {
    PcGovScheduler::initialize(ctx);
    // Borrow the (arena-backed) prediction workspace from the campaign
    // worker's scratch bag when one exists; the steady cache stays per-run —
    // its hit/miss counters are part of the observable record.
    if (exec::WorkerScratch* scratch = ctx.worker_scratch())
        predict_ws_ = &scratch->slot<thermal::ThermalWorkspace>();
    else
        predict_ws_ = &own_predict_ws_;
    if (obs::Recorder* obs = ctx.observer()) {
        obs_predictions_ = &obs->counter("pcmig.predictions");
        obs_steady_hits_ = &obs->counter("pcmig.steady_cache_hits");
        obs_steady_misses_ = &obs->counter("pcmig.steady_cache_misses");
    }
    backend_sig_ = ctx.solver().backend_signature();
    if (params_.use_peak_cache)
        steady_cache_.configure(128, 1 + ctx.chip().core_count());
    else
        steady_cache_.configure(0, 0);
}

void PcMigScheduler::on_core_failure(
    sim::SimContext& ctx, std::size_t core,
    const std::vector<sim::ThreadId>& evicted) {
    steady_cache_.invalidate();
    PcGovScheduler::on_core_failure(ctx, core, evicted);
}

const linalg::Vector& PcMigScheduler::predict(sim::SimContext& ctx) {
    if (obs_predictions_) obs_predictions_->add();
    const std::size_t n = ctx.chip().core_count();
    const thermal::ThermalModel& model = ctx.thermal_model();
    const std::size_t big_n = model.node_count();
    if (predict_power_.size() != n) predict_power_ = linalg::Vector(n);
    // Quantised unconditionally so a cached steady state is bit-identical to
    // the solve it replaces (see core::quantise_power_w).
    for (std::size_t c = 0; c < n; ++c)
        predict_power_[c] = core::quantise_power_w(ctx.core_power(c));
    ctx.thermal_model().pad_power_into(predict_power_, predict_node_power_);

    // Steady-state half: memoised on the quantised power vector (plus the
    // solver-backend identity word, so backend or tolerance changes never
    // alias cached solves). The rest of the pipeline replicates
    // TransientSolver::transient_into step for step, so the prediction
    // matches a direct transient_into call bit for bit.
    if (predict_steady_.size() != big_n)
        predict_steady_ = linalg::Vector(big_n);
    predict_ws_->resize(big_n);
    bool have_steady = false;
    if (steady_cache_.enabled()) {
        steady_cache_.key_begin();
        steady_cache_.key_push(backend_sig_);
        for (std::size_t c = 0; c < n; ++c)
            steady_cache_.key_push(predict_power_[c]);
        if (const linalg::Vector* hit = steady_cache_.lookup()) {
            predict_steady_ = *hit;
            have_steady = true;
            if (obs_steady_hits_) obs_steady_hits_->add();
        } else if (obs_steady_misses_) {
            obs_steady_misses_->add();
        }
    }
    if (!have_steady) {
        ctx.solver().steady_state_into(predict_node_power_,
                                       ctx.config().ambient_c, *predict_ws_,
                                       predict_steady_);
        steady_cache_.insert(predict_steady_);
    }
    const linalg::Vector& t_init = ctx.temperatures();
    for (std::size_t i = 0; i < big_n; ++i)
        predict_ws_->offset[i] = t_init[i] - predict_steady_[i];
    ctx.solver().apply_exponential_into(predict_ws_->offset,
                                        params_.prediction_horizon_s,
                                        *predict_ws_, predicted_);
    for (std::size_t i = 0; i < big_n; ++i)
        predicted_[i] = predict_steady_[i] + predicted_[i];
    return predicted_;
}

void PcMigScheduler::on_epoch(sim::SimContext& ctx) {
    // DVFS first (PCGov behaviour), then check whether DVFS alone suffices.
    apply_tsp_dvfs(ctx);

    const double limit = ctx.config().t_dtm_c - params_.migration_margin_c;
    for (std::size_t m = 0; m < params_.max_migrations_per_epoch; ++m) {
        const linalg::Vector& predicted = predict(ctx);
        // Hottest predicted core that actually hosts a thread.
        std::size_t hottest = sim::kNone;
        double hottest_t = limit;
        for (std::size_t c = 0; c < ctx.chip().core_count(); ++c) {
            if (ctx.thread_on(c) == sim::kNone) continue;
            if (predicted[c] > hottest_t) {
                hottest_t = predicted[c];
                hottest = c;
            }
        }
        if (hottest == sim::kNone) break;  // nothing is about to overheat

        // Coolest free core as evacuation target.
        std::size_t coolest = sim::kNone;
        double coolest_t = 1e300;
        for (std::size_t c : ctx.free_cores()) {
            if (predicted[c] < coolest_t) {
                coolest_t = predicted[c];
                coolest = c;
            }
        }
        if (coolest == sim::kNone) break;  // fully loaded: DVFS must cope
        if (coolest_t >= hottest_t) break; // no thermal benefit available

        ctx.migrate(ctx.thread_on(hottest), coolest);
        apply_tsp_dvfs(ctx);  // mapping changed; rebudget
    }
}

}  // namespace hp::sched
