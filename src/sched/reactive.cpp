#include "sched/reactive.hpp"

#include "sched/placement.hpp"

namespace hp::sched {

bool ReactiveMigrationScheduler::on_task_arrival(sim::SimContext& ctx,
                                                 sim::TaskId task) {
    const sim::Task& t = ctx.task(task);
    std::vector<std::size_t> free = free_cores_by_amd(ctx);
    if (free.size() < t.thread_count) return false;
    free.resize(t.thread_count);
    place_task_threads(ctx, task, free);
    return true;
}

void ReactiveMigrationScheduler::on_epoch(sim::SimContext& ctx) {
    const double trigger = ctx.config().t_dtm_c - trigger_margin_c_;
    // One evacuation per epoch: hottest over-trigger core to coolest free
    // core (if that is actually cooler).
    std::size_t hottest = sim::kNone;
    double hottest_t = trigger;
    for (std::size_t c = 0; c < ctx.chip().core_count(); ++c) {
        if (ctx.thread_on(c) == sim::kNone) continue;
        if (ctx.sensor_reading(c) > hottest_t) {
            hottest_t = ctx.sensor_reading(c);
            hottest = c;
        }
    }
    if (hottest == sim::kNone) return;

    std::size_t coolest = sim::kNone;
    double coolest_t = 1e300;
    for (std::size_t c : ctx.free_cores()) {
        if (ctx.sensor_reading(c) < coolest_t) {
            coolest_t = ctx.sensor_reading(c);
            coolest = c;
        }
    }
    if (coolest == sim::kNone || coolest_t >= hottest_t) return;
    ctx.migrate(ctx.thread_on(hottest), coolest);
}

}  // namespace hp::sched
