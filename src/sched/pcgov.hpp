#pragma once

#include <string>

#include "sched/tsp.hpp"
#include "sim/scheduler.hpp"

namespace hp::sched {

/// PCGov (Rapp et al., TC'19): DVFS-based thermal-aware scheduler for S-NUCA
/// many-cores.
///
/// Placement is performance-greedy (threads go to the lowest-AMD free cores,
/// where the distributed LLC is closest); thermal safety is enforced
/// exclusively through TSP power budgeting: every epoch the per-core budget
/// for the current mapping is recomputed and each core's frequency is
/// clamped to the highest DVFS level whose power fits the budget.
class PcGovScheduler : public sim::Scheduler {
public:
    std::string name() const override { return "PCGov"; }

    bool on_task_arrival(sim::SimContext& ctx, sim::TaskId task) override;
    void on_epoch(sim::SimContext& ctx) override;

protected:
    /// Recomputes the TSP budget for the current mapping and applies
    /// per-core DVFS; shared with PCMig.
    void apply_tsp_dvfs(sim::SimContext& ctx);
};

}  // namespace hp::sched
