#pragma once

#include <vector>

#include "thermal/rc_network.hpp"

namespace hp::sched {

/// Thermal Safe Power (TSP) budgeting after Pagani et al. (ESWEEK'14).
///
/// For a concrete mapping (the set of currently active cores), TSP computes
/// the uniform per-active-core power budget such that the worst steady-state
/// core temperature exactly reaches the DTM threshold, with inactive cores
/// drawing idle power. DVFS-based schedulers (PCGov/PCMig) clamp each core's
/// frequency so its power stays within this budget.
class TspBudget {
public:
    /// @p model must outlive this object.
    explicit TspBudget(const thermal::ThermalModel& model) : model_(&model) {}

    /// Uniform total power budget per active core (W, including leakage) for
    /// the mapping @p active (size core_count; true = hosts a thread).
    /// @p idle_power_w is the power of an inactive core (leakage at the
    /// threshold temperature for a safe bound). Returns idle_power_w if no
    /// core is active. Throws std::invalid_argument on size mismatch.
    double per_core_budget(const std::vector<bool>& active,
                           double idle_power_w, double ambient_c,
                           double t_dtm_c) const;

    /// Steady-state core temperatures for @p active cores each drawing
    /// @p active_power_w and the rest drawing @p idle_power_w — the check
    /// used by tests to verify the budget is exact.
    double steady_peak(const std::vector<bool>& active, double active_power_w,
                       double idle_power_w, double ambient_c) const;

private:
    const thermal::ThermalModel* model_;
};

}  // namespace hp::sched
