#pragma once

#include <string>
#include <vector>

#include "core/peak_cache.hpp"
#include "obs/recorder.hpp"
#include "sched/pcgov.hpp"
#include "thermal/workspace.hpp"

namespace hp::sched {

/// Tunables of PCMig's on-demand migration policy.
struct PcMigParams {
    /// Look-ahead horizon of the temperature prediction.
    double prediction_horizon_s = 5e-3;
    /// Migrate when the predicted peak comes within this margin of T_DTM.
    double migration_margin_c = 1.0;
    /// At most this many migrations per scheduler epoch (migration is a
    /// measure of last resort in PCMig, not a periodic activity).
    std::size_t max_migrations_per_epoch = 1;
    /// Memoise the steady-state half of the MatEx prediction, keyed by the
    /// quantised per-core powers. Powers are quantised whether or not the
    /// cache is on, so the switch never changes a migration decision
    /// (--no-peak-cache exposes it on the CLI).
    bool use_peak_cache = true;
};

/// PCMig (Rapp et al., TC'20/DATE'19): the state-of-the-art thermal-aware
/// S-NUCA scheduler the paper compares against.
///
/// Extends PCGov's TSP-driven DVFS with *asynchronous, on-demand* thread
/// migrations: every epoch it predicts the temperature a few milliseconds
/// ahead and, if a core is about to reach the DTM threshold, evacuates its
/// thread to the coolest free core.
///
/// Substitution note (DESIGN.md §2): the original uses a neural network to
/// predict post-migration temperatures; here the prediction is the exact
/// MatEx transient the network was trained to approximate.
class PcMigScheduler : public PcGovScheduler {
public:
    explicit PcMigScheduler(PcMigParams params = {}) : params_(params) {}

    std::string name() const override { return "PCMig"; }

    void initialize(sim::SimContext& ctx) override;
    void on_epoch(sim::SimContext& ctx) override;
    /// Flushes the steady-state memo (the surviving-core power layout — and
    /// with it the meaning of a cached key — just changed), then applies the
    /// default re-placement.
    void on_core_failure(sim::SimContext& ctx, std::size_t core,
                         const std::vector<sim::ThreadId>& evicted) override;

private:
    /// Predicted per-node temperatures after the horizon, holding current
    /// power constant. Returns a reference to per-instance scratch, valid
    /// until the next call.
    const linalg::Vector& predict(sim::SimContext& ctx);

    PcMigParams params_;
    obs::Counter* obs_predictions_ = nullptr;  // null when observability off
    obs::Counter* obs_steady_hits_ = nullptr;
    obs::Counter* obs_steady_misses_ = nullptr;
    // Prediction scratch. Inside a campaign worker the workspace is borrowed
    // from the worker's WorkerScratch bag (arena-backed, one per worker,
    // distinct from the simulator's workspace so the e^{λ·dt} memos of the
    // micro-step dt and the prediction horizon never thrash each other);
    // elsewhere the scheduler owns it. Safe to share across runs: every
    // buffer is fully overwritten or memo-validated before use.
    thermal::ThermalWorkspace own_predict_ws_;
    thermal::ThermalWorkspace* predict_ws_ = &own_predict_ws_;
    linalg::Vector predict_power_;
    linalg::Vector predict_node_power_;
    linalg::Vector predict_steady_;
    linalg::Vector predicted_;
    /// Steady-state solutions keyed by the quantised core-power vector. A
    /// hit replaces only the B^{-1} solve; the transient tail always runs
    /// (it depends on the live temperatures, which change every epoch).
    core::PredictionCache<linalg::Vector> steady_cache_;
    /// Solver-backend identity word folded into every steady-cache key.
    std::uint64_t backend_sig_ = 0;
};

}  // namespace hp::sched
