#pragma once

#include <string>

#include "obs/recorder.hpp"
#include "sched/pcgov.hpp"
#include "thermal/workspace.hpp"

namespace hp::sched {

/// Tunables of PCMig's on-demand migration policy.
struct PcMigParams {
    /// Look-ahead horizon of the temperature prediction.
    double prediction_horizon_s = 5e-3;
    /// Migrate when the predicted peak comes within this margin of T_DTM.
    double migration_margin_c = 1.0;
    /// At most this many migrations per scheduler epoch (migration is a
    /// measure of last resort in PCMig, not a periodic activity).
    std::size_t max_migrations_per_epoch = 1;
};

/// PCMig (Rapp et al., TC'20/DATE'19): the state-of-the-art thermal-aware
/// S-NUCA scheduler the paper compares against.
///
/// Extends PCGov's TSP-driven DVFS with *asynchronous, on-demand* thread
/// migrations: every epoch it predicts the temperature a few milliseconds
/// ahead and, if a core is about to reach the DTM threshold, evacuates its
/// thread to the coolest free core.
///
/// Substitution note (DESIGN.md §2): the original uses a neural network to
/// predict post-migration temperatures; here the prediction is the exact
/// MatEx transient the network was trained to approximate.
class PcMigScheduler : public PcGovScheduler {
public:
    explicit PcMigScheduler(PcMigParams params = {}) : params_(params) {}

    std::string name() const override { return "PCMig"; }

    void initialize(sim::SimContext& ctx) override;
    void on_epoch(sim::SimContext& ctx) override;

private:
    /// Predicted per-node temperatures after the horizon, holding current
    /// power constant. Returns a reference to per-instance scratch, valid
    /// until the next call.
    const linalg::Vector& predict(sim::SimContext& ctx);

    PcMigParams params_;
    obs::Counter* obs_predictions_ = nullptr;  // null when observability off
    // Prediction scratch (schedulers are per-run, so plain members suffice).
    thermal::ThermalWorkspace predict_ws_;
    linalg::Vector predict_power_;
    linalg::Vector predict_node_power_;
    linalg::Vector predicted_;
};

}  // namespace hp::sched
