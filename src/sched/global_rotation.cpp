#include "sched/global_rotation.hpp"

#include <stdexcept>

#include "sched/placement.hpp"

namespace hp::sched {

GlobalRotationScheduler::GlobalRotationScheduler(double interval_s)
    : interval_s_(interval_s), next_rotation_s_(interval_s) {
    if (interval_s <= 0.0)
        throw std::invalid_argument(
            "GlobalRotationScheduler: interval must be positive");
}

void GlobalRotationScheduler::rebuild_cycle(sim::SimContext& ctx) {
    // Snake order: even rows left-to-right, odd rows right-to-left, layer by
    // layer — consecutive cycle positions are always mesh/TSV neighbours.
    // Offline cores are skipped: the cycle closes ranks around the hole (the
    // bridging move costs extra hops, but rotation correctness holds).
    const auto& plan = ctx.chip().plan();
    cycle_.clear();
    for (std::size_t l = 0; l < plan.layers(); ++l)
        for (std::size_t r = 0; r < plan.rows(); ++r)
            for (std::size_t k = 0; k < plan.cols(); ++k) {
                const std::size_t c = r % 2 == 0 ? k : plan.cols() - 1 - k;
                const std::size_t core = plan.index_of(r, c, l);
                if (ctx.core_available(core)) cycle_.push_back(core);
            }
}

void GlobalRotationScheduler::initialize(sim::SimContext& ctx) {
    rebuild_cycle(ctx);
}

void GlobalRotationScheduler::on_core_failure(
    sim::SimContext& ctx, std::size_t core,
    const std::vector<sim::ThreadId>& evicted) {
    rebuild_cycle(ctx);
    Scheduler::on_core_failure(ctx, core, evicted);  // default re-placement
}

void GlobalRotationScheduler::on_core_recovery(sim::SimContext& ctx,
                                               std::size_t /*core*/) {
    rebuild_cycle(ctx);
}

bool GlobalRotationScheduler::on_task_arrival(sim::SimContext& ctx,
                                              sim::TaskId task) {
    const sim::Task& t = ctx.task(task);
    std::vector<std::size_t> free = free_cores_by_amd(ctx);
    if (free.size() < t.thread_count) return false;
    free.resize(t.thread_count);
    place_task_threads(ctx, task, free);
    return true;
}

void GlobalRotationScheduler::on_step(sim::SimContext& ctx) {
    if (ctx.now() + 1e-12 < next_rotation_s_) return;
    bool any_thread = false;
    for (std::size_t c = 0; c < ctx.chip().core_count(); ++c)
        if (ctx.thread_on(c) != sim::kNone) any_thread = true;
    if (any_thread) ctx.rotate(cycle_);
    next_rotation_s_ = ctx.now() + interval_s_;
}

}  // namespace hp::sched
