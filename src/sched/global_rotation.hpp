#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace hp::sched {

/// Whole-chip synchronous rotation: one snake-order cycle through every core
/// of the chip, rotated by one position every fixed interval.
///
/// This is the "why AMD rings?" ablation for HotPotato. It shares the
/// thermal-averaging idea but ignores the S-NUCA structure: threads are
/// dragged through every AMD position (memory-bound threads periodically
/// land on the slow corners), the rotation cannot stop for cool workloads,
/// and with few threads the whole chip still churns. Ring-structured
/// rotation dominates it on performance at equal thermal safety.
class GlobalRotationScheduler : public sim::Scheduler {
public:
    explicit GlobalRotationScheduler(double interval_s = 0.5e-3);

    std::string name() const override { return "global-rotation"; }

    void initialize(sim::SimContext& ctx) override;
    bool on_task_arrival(sim::SimContext& ctx, sim::TaskId task) override;
    void on_step(sim::SimContext& ctx) override;
    /// Graceful degradation: closes the snake cycle around the dead core and
    /// re-places the evicted threads on the best free cores.
    void on_core_failure(sim::SimContext& ctx, std::size_t core,
                         const std::vector<sim::ThreadId>& evicted) override;
    /// Re-admits a recovered core to the cycle.
    void on_core_recovery(sim::SimContext& ctx, std::size_t core) override;

    /// The snake-order cycle (exposed for tests); excludes offline cores.
    const std::vector<std::size_t>& cycle() const { return cycle_; }

private:
    void rebuild_cycle(sim::SimContext& ctx);

    double interval_s_;
    double next_rotation_s_ = 0.0;
    std::vector<std::size_t> cycle_;
};

}  // namespace hp::sched
