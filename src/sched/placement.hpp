#pragma once

#include <cstddef>
#include <vector>

#include "sim/context.hpp"

namespace hp::sched {

/// Free cores sorted by ascending AMD (performance-best first), ties broken
/// by core id for determinism.
std::vector<std::size_t> free_cores_by_amd(const sim::SimContext& ctx);

/// Power- and cache-aware placement after PCGov: picks @p count free cores
/// greedily, preferring cores with no occupied neighbours first (spacing
/// raises the TSP budget of the resulting mapping) and low AMD second (LLC
/// proximity). Threads placed earlier in the same call count as occupied for
/// later picks. Returns an empty vector if fewer than @p count cores are
/// free.
std::vector<std::size_t> spaced_cores_by_amd(const sim::SimContext& ctx,
                                             std::size_t count);

/// Places all threads of @p task on @p cores (one per thread, in order).
/// Precondition: cores.size() >= thread count and every core is free.
void place_task_threads(sim::SimContext& ctx, sim::TaskId task,
                        const std::vector<std::size_t>& cores);

/// Occupancy mask over cores (true where a thread is mapped).
std::vector<bool> active_core_mask(const sim::SimContext& ctx);

}  // namespace hp::sched
