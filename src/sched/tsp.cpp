#include "sched/tsp.hpp"

#include <algorithm>
#include <stdexcept>

namespace hp::sched {

double TspBudget::per_core_budget(const std::vector<bool>& active,
                                  double idle_power_w, double ambient_c,
                                  double t_dtm_c) const {
    const std::size_t n = model_->core_count();
    if (active.size() != n)
        throw std::invalid_argument("TspBudget: mask size mismatch");

    // Baseline: every core idling. T scales linearly in the extra power x
    // placed uniformly on active cores: T(x) = T_idle + x * S, with
    // S = B^{-1} * pad(mask).
    linalg::Vector idle_power(n, idle_power_w);
    const linalg::Vector t_idle =
        model_->steady_state(model_->pad_power(idle_power), ambient_c);

    linalg::Vector mask(n);
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) {
            mask[i] = 1.0;
            any = true;
        }
    }
    if (!any) return idle_power_w;

    const linalg::Vector sensitivity =
        model_->conductance_lu().solve(model_->pad_power(mask));

    double x = 1e300;
    for (std::size_t i = 0; i < n; ++i) {  // constrain core nodes only
        if (sensitivity[i] <= 1e-12) continue;
        x = std::min(x, (t_dtm_c - t_idle[i]) / sensitivity[i]);
    }
    x = std::max(x, 0.0);
    return idle_power_w + x;
}

double TspBudget::steady_peak(const std::vector<bool>& active,
                              double active_power_w, double idle_power_w,
                              double ambient_c) const {
    const std::size_t n = model_->core_count();
    if (active.size() != n)
        throw std::invalid_argument("TspBudget: mask size mismatch");
    linalg::Vector power(n);
    for (std::size_t i = 0; i < n; ++i)
        power[i] = active[i] ? active_power_w : idle_power_w;
    const linalg::Vector t =
        model_->steady_state(model_->pad_power(power), ambient_c);
    double peak = -1e300;
    for (std::size_t i = 0; i < n; ++i) peak = std::max(peak, t[i]);
    return peak;
}

}  // namespace hp::sched
