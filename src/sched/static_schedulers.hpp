#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sched/tsp.hpp"
#include "sim/scheduler.hpp"

namespace hp::sched {

/// Pins threads to a fixed list of cores at peak frequency; no thermal
/// management at all. Used for the Fig. 2(a) "thermally unsustainable"
/// reference run. Threads of arriving tasks consume the core list in order;
/// with an empty list the lowest-AMD free cores are used.
class StaticScheduler : public sim::Scheduler {
public:
    explicit StaticScheduler(std::vector<std::size_t> fixed_cores = {})
        : fixed_cores_(std::move(fixed_cores)) {}

    std::string name() const override { return "static"; }
    bool on_task_arrival(sim::SimContext& ctx, sim::TaskId task) override;

private:
    std::vector<std::size_t> fixed_cores_;
    std::size_t next_fixed_ = 0;
};

/// StaticScheduler placement plus TSP-based DVFS power budgeting every epoch
/// — the Fig. 2(b) reference (DVFS-only thermal management at the
/// state-of-the-art power budget).
class TspDvfsScheduler : public sim::Scheduler {
public:
    explicit TspDvfsScheduler(std::vector<std::size_t> fixed_cores = {})
        : fixed_cores_(std::move(fixed_cores)) {}

    std::string name() const override { return "tsp-dvfs"; }
    bool on_task_arrival(sim::SimContext& ctx, sim::TaskId task) override;
    void on_epoch(sim::SimContext& ctx) override;

private:
    std::vector<std::size_t> fixed_cores_;
    std::size_t next_fixed_ = 0;
};

/// Synchronously rotates all threads around a fixed cycle of cores at peak
/// frequency with a fixed interval — the Fig. 2(c) reference (pure rotation,
/// no Algorithm 2 adaptivity).
class FixedRotationScheduler : public sim::Scheduler {
public:
    /// @p cycle is the rotation cycle (e.g. the four centre cores);
    /// @p interval_s the rotation epoch τ (paper: 0.5 ms).
    FixedRotationScheduler(std::vector<std::size_t> cycle, double interval_s);

    std::string name() const override { return "fixed-rotation"; }
    bool on_task_arrival(sim::SimContext& ctx, sim::TaskId task) override;
    void on_step(sim::SimContext& ctx) override;

private:
    std::vector<std::size_t> cycle_;
    double interval_s_;
    double next_rotation_s_;
    std::size_t next_slot_ = 0;
};

}  // namespace hp::sched
