#include "sched/placement.hpp"

#include <algorithm>

namespace hp::sched {

std::vector<std::size_t> free_cores_by_amd(const sim::SimContext& ctx) {
    std::vector<std::size_t> cores = ctx.free_cores();
    const arch::ManyCore& chip = ctx.chip();
    std::sort(cores.begin(), cores.end(), [&](std::size_t a, std::size_t b) {
        if (chip.amd(a) != chip.amd(b)) return chip.amd(a) < chip.amd(b);
        return a < b;
    });
    return cores;
}

std::vector<std::size_t> spaced_cores_by_amd(const sim::SimContext& ctx,
                                             std::size_t count) {
    const arch::ManyCore& chip = ctx.chip();
    std::vector<std::size_t> free = ctx.free_cores();
    if (free.size() < count) return {};

    std::vector<bool> occupied(chip.core_count(), false);
    for (std::size_t c = 0; c < chip.core_count(); ++c)
        occupied[c] = ctx.thread_on(c) != sim::kNone;

    std::vector<std::size_t> picked;
    std::vector<bool> taken(chip.core_count(), false);
    while (picked.size() < count) {
        std::size_t best = sim::kNone;
        std::size_t best_neighbours = SIZE_MAX;
        double best_amd = 1e300;
        for (std::size_t c : free) {
            if (taken[c]) continue;
            std::size_t hot_neighbours = 0;
            for (std::size_t nb : chip.plan().neighbors(c))
                if (occupied[nb]) ++hot_neighbours;
            if (hot_neighbours < best_neighbours ||
                (hot_neighbours == best_neighbours &&
                 chip.amd(c) < best_amd)) {
                best = c;
                best_neighbours = hot_neighbours;
                best_amd = chip.amd(c);
            }
        }
        picked.push_back(best);
        taken[best] = true;
        occupied[best] = true;
    }
    return picked;
}

void place_task_threads(sim::SimContext& ctx, sim::TaskId task,
                        const std::vector<std::size_t>& cores) {
    const sim::Task& t = ctx.task(task);
    for (std::size_t i = 0; i < t.threads.size(); ++i)
        ctx.place(t.threads[i], cores[i]);
}

std::vector<bool> active_core_mask(const sim::SimContext& ctx) {
    std::vector<bool> mask(ctx.chip().core_count(), false);
    for (std::size_t c = 0; c < mask.size(); ++c)
        mask[c] = ctx.thread_on(c) != sim::kNone;
    return mask;
}

}  // namespace hp::sched
