#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/peak_cache.hpp"
#include "core/peak_temperature.hpp"
#include "obs/recorder.hpp"
#include "sim/scheduler.hpp"

namespace hp::core {

/// Tunables of the HotPotato heuristic (paper §V-§VI).
struct HotPotatoParams {
    /// Initial rotation interval τ (paper: 0.5 ms).
    double initial_rotation_interval_s = 0.5e-3;
    /// Thermal headroom Δ that triggers re-optimisation (paper: 1 °C).
    double headroom_delta_c = 1.0;
    /// Discrete τ ladder updateRotationSpeed() walks; ascending. Values above
    /// the top rung mean "rotation off".
    std::vector<double> tau_ladder_s = {0.125e-3, 0.25e-3, 0.5e-3,
                                        1e-3,     2e-3,    4e-3};
    /// Intra-epoch samples used by the peak-temperature analysis.
    std::size_t samples_per_epoch = 2;
    /// Cap on promotion migrations per epoch (keeps the heuristic from
    /// thrashing threads between rings on noisy power history).
    std::size_t max_promotions_per_epoch = 2;
    /// Graceful-degradation knob: while any thermal sensor is flagged
    /// untrusted (voting filter), every core is throttled to this fraction
    /// of f_max (quantised down to a DVFS level). Rotation keeps running —
    /// the fallback only surrenders the "always at peak frequency" property
    /// until sensing recovers.
    double sensor_fallback_freq_fraction = 0.75;
    /// Memoise Algorithm-1 peak predictions keyed by (assignment, quantised
    /// powers, τ rung). Inputs are quantised whether or not the cache is on,
    /// so flipping this switch changes only evaluation counts, never any
    /// scheduling decision or simulated temperature (--no-peak-cache exposes
    /// it on the CLI).
    bool use_peak_cache = true;
};

/// HotPotato: thermal management of S-NUCA many-cores via synchronous thread
/// rotations (the paper's contribution, Algorithm 2).
///
/// Threads are assigned to concentric AMD rings; every ring rotates its
/// threads by one core each τ seconds, averaging heat over the ring so that
/// no core ever exceeds the DTM threshold. Placement greedily prefers the
/// lowest-AMD (fastest) ring that the analytical peak-temperature method
/// (Algorithm 1) certifies as thermally safe; when threads leave, freed
/// headroom is spent promoting the most memory-bound (highest-CPI) threads
/// inward and slowing the rotation; when even the outermost ring is unsafe,
/// the rotation speeds up until enough headroom is generated. HotPotato
/// never uses DVFS — all cores run at peak frequency.
class HotPotatoScheduler : public sim::Scheduler {
public:
    explicit HotPotatoScheduler(HotPotatoParams params = {});

    std::string name() const override { return "HotPotato"; }

    void initialize(sim::SimContext& ctx) override;
    bool on_task_arrival(sim::SimContext& ctx, sim::TaskId task) override;
    void on_task_finish(sim::SimContext& ctx, sim::TaskId task) override;
    void on_epoch(sim::SimContext& ctx) override;
    void on_step(sim::SimContext& ctx) override;
    /// Graceful degradation on core loss: re-forms the AMD rings without the
    /// dead core, re-places the evicted threads (queueing any that do not
    /// fit) and restores thermal safety for the shrunken chip.
    void on_core_failure(sim::SimContext& ctx, std::size_t core,
                         const std::vector<sim::ThreadId>& evicted) override;
    /// Re-admits a recovered core to its ring and retries displaced threads.
    void on_core_recovery(sim::SimContext& ctx, std::size_t core) override;

    // Introspection (tests, benchmarks, examples).
    bool rotation_enabled() const { return rotation_on_; }
    double rotation_interval_s() const;
    /// True when the heuristic has exhausted its rotation knob (rotation on
    /// at the fastest ladder rung) — the condition under which the DVFS
    /// extension engages.
    bool at_fastest_rotation() const { return rotation_on_ && tau_index_ == 0; }
    /// True while the untrusted-sensor conservative throttle is engaged.
    bool sensor_fallback_engaged() const { return sensor_fallback_; }
    /// Evicted threads still waiting for a free slot (normally empty).
    const std::vector<sim::ThreadId>& displaced_threads() const {
        return displaced_;
    }
    double last_predicted_peak_c() const { return last_predicted_peak_c_; }
    /// Largest peak prediction made over the whole run — the conservatism
    /// bound tests compare the observed peak against.
    double max_predicted_peak_c() const { return max_predicted_peak_c_; }
    /// Predicted peak for the current assignment at the current rotation
    /// setting; public so the overhead benchmark can time Algorithm 1+2 work.
    double predict_peak(sim::SimContext& ctx) const;

protected:
    const HotPotatoParams& params() const { return params_; }

    /// Drops every memoised peak prediction. Must be called whenever the
    /// thermal meaning of a cache key changes out from under it: ring
    /// re-formation after a core failure/recovery and any DVFS/frequency
    /// change (rebuild_rings and update_sensor_fallback call it themselves;
    /// the DVFS extension calls it from engage/relax).
    void invalidate_peak_cache() const { peak_cache_.invalidate(); }

private:
    struct Ring {
        std::vector<std::size_t> cores;   ///< rotation cycle order
        std::vector<sim::ThreadId> slots; ///< occupant per core position
        double amd = 0.0;

        std::size_t occupied() const;
        std::optional<std::size_t> first_free_slot() const;
    };

    void ensure_analyzer(sim::SimContext& ctx);
    void sync_finished_threads(sim::SimContext& ctx);
    /// Rebuilds rings_ from the chip's AMD rings, excluding offline cores and
    /// seeding slots from the current mapping.
    void rebuild_rings(sim::SimContext& ctx);
    /// Retries placement of threads displaced by core failures.
    void retry_displaced(sim::SimContext& ctx);
    /// Engages/releases the conservative DVFS throttle on sensor trust.
    void update_sensor_fallback(sim::SimContext& ctx);
    double slot_power(sim::SimContext& ctx, sim::ThreadId id) const;
    /// Fills spec_scratch_ from the current rings (all rings, including
    /// unoccupied ones — the analyzer skips all-idle rings itself) and
    /// returns it. Reuses the per-ring vectors, so a warmed-up call is
    /// allocation-free.
    const std::vector<RotationRingSpec>& build_ring_specs(
        sim::SimContext& ctx) const;
    /// Predicted peak with an explicit rotation setting.
    double predict_peak_with(sim::SimContext& ctx, bool rotation_on,
                             std::size_t tau_index) const;
    /// Fills static_power_scratch_ with the current assignment's quantised
    /// per-core powers (idle everywhere a slot is empty).
    void build_static_powers(sim::SimContext& ctx) const;
    /// Batch-evaluates rotation_peak at ladder rungs [0, count) in one
    /// shared-target pass and seeds the prediction cache, so the
    /// restore_safety speed-up walk hits instead of re-evaluating. Values
    /// are bit-identical to the walk's own evaluations; no-op with the
    /// cache disabled.
    void prefetch_tau_ladder(sim::SimContext& ctx, std::size_t count) const;
    /// Rotation-off placement: scores every free slot of ring @p ring_index
    /// as one batched multi-candidate slate (cache-assisted) and returns the
    /// slot with the lowest static peak, or nullopt when the ring is full.
    std::optional<std::size_t> best_static_slot(sim::SimContext& ctx,
                                                std::size_t ring_index,
                                                sim::ThreadId id);
    // Prediction-cache key staging and counter-mirroring helpers.
    void stage_static_key(const double* powers, std::size_t count) const;
    void stage_rotation_key(std::size_t tau_index) const;
    const double* cache_lookup() const;
    void cache_insert(double peak) const;
    /// Algorithm 2 lines 1-14 for a single thread. Returns false only when
    /// no ring has a free slot at all.
    bool place_thread(sim::SimContext& ctx, sim::ThreadId id);
    /// Lines 8-14: restore safety by speeding the rotation and demoting the
    /// least memory-bound threads outward.
    void restore_safety(sim::SimContext& ctx);
    /// Lines 16-27: spend surplus headroom on inward promotions and slower
    /// rotation.
    void exploit_headroom(sim::SimContext& ctx);
    /// Emits a τ-adaptation event + counter tick after a rotation-speed or
    /// rotation-on/off change (no-op without an observer).
    void note_tau_change(sim::SimContext& ctx);
    void assign(sim::SimContext& ctx, sim::ThreadId id, std::size_t ring,
                std::size_t slot);
    /// Moves a thread between rings (free destination slot required).
    void move_thread(sim::SimContext& ctx, sim::ThreadId id,
                     std::size_t dest_ring, std::size_t dest_slot);
    std::optional<std::pair<std::size_t, std::size_t>> locate(
        sim::ThreadId id) const;

    HotPotatoParams params_;
    std::unique_ptr<PeakTemperatureAnalyzer> analyzer_;
    /// Backend identity word folded into every prediction-cache key, so a
    /// cache survives backend/tolerance changes without aliasing entries.
    std::uint64_t backend_sig_ = 0;
    // Observability (cached in initialize(); null when observability is off).
    // obs_alg1_ is mutable for the same reason as the prediction scratch:
    // predict_peak() stays const for the overhead benchmark.
    obs::Recorder* obs_ = nullptr;
    mutable obs::Counter* obs_alg1_ = nullptr;
    obs::Counter* obs_tau_changes_ = nullptr;
    std::vector<Ring> rings_;
    std::vector<sim::ThreadId> displaced_;
    // Prediction scratch, reused across the hundreds of candidate
    // evaluations per epoch (mutable: predict_peak stays const for the
    // overhead benchmark; the scheduler itself is per-run, not shared).
    // Inside a campaign worker the workspace is borrowed from the worker's
    // WorkerScratch bag (arena-backed, reused across the worker's runs);
    // elsewhere the scheduler owns it. Safe to borrow because every buffer
    // is fully overwritten before use — only its capacity persists.
    mutable PeakWorkspace own_peak_ws_;
    mutable PeakWorkspace* peak_ws_ = &own_peak_ws_;
    mutable std::vector<RotationRingSpec> spec_scratch_;
    mutable linalg::Vector static_power_scratch_;
    // Prediction cache + batch scratch (all grow-only, so the warmed hot
    // path stays allocation-free; mutable for the same reason as peak_ws_).
    mutable PredictionCache<double> peak_cache_;
    mutable obs::Counter* obs_cache_hits_ = nullptr;
    mutable obs::Counter* obs_cache_misses_ = nullptr;
    mutable obs::Histogram* obs_batch_size_ = nullptr;
    mutable std::vector<double> tau_batch_scratch_;
    mutable std::vector<double> peaks_batch_scratch_;
    std::vector<std::size_t> slate_slots_;   ///< free-slot candidates
    std::vector<double> slate_powers_;       ///< RHS-major candidate powers
    std::vector<double> slate_miss_powers_;  ///< compacted cache misses
    std::vector<double> slate_peaks_;
    std::vector<std::size_t> slate_miss_;
    std::vector<sim::ThreadId> shift_scratch_;  ///< on_step slot rotation
    bool sensor_fallback_ = false;
    bool rotation_on_ = true;
    std::size_t tau_index_ = 0;
    double next_rotation_s_ = 0.0;
    double last_predicted_peak_c_ = 0.0;
    double max_predicted_peak_c_ = 0.0;
};

}  // namespace hp::core
