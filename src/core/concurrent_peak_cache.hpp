#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace hp::core {

/// Thread-local staging buffer for ConcurrentPeakCache keys. Mirrors the
/// key_begin()/key_push() idiom of PredictionCache, but lives with the
/// caller (one per worker thread) because the concurrent cache itself holds
/// no per-query mutable state.
class CacheKey {
public:
    void clear() { words_.clear(); }
    void push(std::uint64_t word) { words_.push_back(word); }
    /// Appends the bit pattern of a double (quantised values only — see
    /// quantise_power_w in peak_cache.hpp).
    void push(double value) {
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        words_.push_back(bits);
    }
    const std::uint64_t* data() const { return words_.data(); }
    std::size_t size() const { return words_.size(); }
    void reserve(std::size_t n) { words_.reserve(n); }

private:
    std::vector<std::uint64_t> words_;
};

/// Sharded, lock-free, lossy concurrent memo of scalar thermal predictions,
/// keyed by an opaque sequence of 64-bit words (the same quantised keys
/// PredictionCache uses, prefixed by the solver backend_signature so two
/// backends never alias). Shared by every worker thread of the advice
/// server; the single-threaded schedulers keep their private
/// PredictionCache.
///
/// Correctness contract: the cache may only memoise values that are pure
/// functions of the key. Under that contract every race below degrades to a
/// miss or to re-reading an identical value — a hit is always exactly what
/// recomputing would produce, and a miss is always safe because the caller
/// recomputes.
///
/// Layout: power-of-two shard count × power-of-two slots per shard, open
/// addressing with a probe window inside one shard (a query touches exactly
/// one shard). Each slot publishes through a single 64-bit atomic packing
///
///   [bit 63: writer-busy][bits 48..62: write seq][bits 32..47: key tag]
///   [bits 0..31: generation]
///
/// seqlock-style. Readers load the packed word, read the slot body with
/// acquire atomics, then validate the packed word is unchanged
/// (validate-after-read); the write sequence makes any intervening publish —
/// even of the same tag and generation — change the packed value, so a torn
/// body read cannot validate. Writers claim a slot with one CAS that sets
/// the busy bit; a writer that loses the CAS simply drops its insert (lossy
/// overwrite on collision — the value was a memo, the loser's caller already
/// holds the computed result). invalidate() bumps a global 32-bit
/// generation in O(1); slots written under an older generation never match
/// and are recycled as empty. The 15-bit sequence would need 32768 complete
/// publishes to the same slot inside one reader's ~nanosecond validate
/// window to ABA, and the 32-bit generation wraps after 4·10^9 invalidation
/// events (one per DVFS/ring event) — both beyond any realistic horizon.
///
/// Statistics are relaxed atomics: hits, misses, and races (validation
/// failures and lost writer claims) — the server mirrors them into its
/// server.cache_* metrics.
class ConcurrentPeakCache {
public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t races = 0;
    };

    ConcurrentPeakCache() = default;

    /// Sizes the cache for at least @p entries total slots holding keys of
    /// up to @p max_key_words words, spread over @p shards shards (0 picks a
    /// default; both are rounded up to powers of two). NOT thread-safe:
    /// configure before sharing, as with the analyzer bundles themselves.
    /// A later key longer than @p max_key_words is simply not cacheable.
    void configure(std::size_t entries, std::size_t max_key_words,
                   std::size_t shards = 0) {
        if (entries == 0 || max_key_words == 0) {
            shards_ = slots_per_shard_ = total_slots_ = max_words_ = 0;
            tag_gen_.reset();
            len_.reset();
            value_.reset();
            words_.reset();
            return;
        }
        shards_ = round_up_pow2(shards ? shards : kDefaultShards);
        std::size_t per_shard = (entries + shards_ - 1) / shards_;
        if (per_shard < kProbeWindow) per_shard = kProbeWindow;
        slots_per_shard_ = round_up_pow2(per_shard);
        total_slots_ = shards_ * slots_per_shard_;
        max_words_ = max_key_words;
        tag_gen_ = std::make_unique<std::atomic<std::uint64_t>[]>(
            total_slots_);
        len_ = std::make_unique<std::atomic<std::uint64_t>[]>(total_slots_);
        value_ = std::make_unique<std::atomic<std::uint64_t>[]>(total_slots_);
        words_ = std::make_unique<std::atomic<std::uint64_t>[]>(
            total_slots_ * max_words_);
        for (std::size_t s = 0; s < total_slots_; ++s) {
            tag_gen_[s].store(0, std::memory_order_relaxed);
            len_[s].store(0, std::memory_order_relaxed);
            value_[s].store(0, std::memory_order_relaxed);
        }
        generation_.store(0, std::memory_order_relaxed);
        hits_.store(0, std::memory_order_relaxed);
        misses_.store(0, std::memory_order_relaxed);
        races_.store(0, std::memory_order_relaxed);
    }

    bool enabled() const { return total_slots_ != 0; }
    std::size_t capacity() const { return total_slots_; }
    std::size_t shard_count() const { return shards_; }

    /// Looks @p key up; on hit writes the memoised value to @p out and
    /// returns true. Counts the hit/miss either way; a reader that catches a
    /// slot mid-rewrite counts one race and treats the slot as a miss.
    bool lookup(const std::uint64_t* key, std::size_t len,
                double* out) const {
        if (!enabled() || len == 0 || len > max_words_) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        const std::uint64_t h = hash(key, len);
        const std::uint64_t gen =
            generation_.load(std::memory_order_acquire) & kGenMask;
        const std::uint64_t tag = tag_of_hash(h);
        for (std::size_t p = 0; p < kProbeWindow; ++p) {
            const std::size_t s = probe_slot(h, p);
            const std::uint64_t t1 =
                tag_gen_[s].load(std::memory_order_acquire);
            if (t1 & kBusyBit) continue;            // mid-write
            if (seq_of(t1) == 0) continue;          // never published
            if (gen_of(t1) != gen) continue;        // stale generation
            if (tag_of(t1) != tag) continue;        // different key (likely)
            // Read the body with acquire loads, then validate the packed
            // word is unchanged. The acquire on each body load keeps the t2
            // re-load below from hoisting above any of them (an acquire
            // fence would too, but TSan does not model fences and the body
            // is read anyway — acquire loads are free on x86). A publish
            // between t1 and t2 always changes the write sequence, so a
            // possibly-torn body is detected and discarded.
            const std::uint64_t slot_len =
                len_[s].load(std::memory_order_acquire);
            bool match = slot_len == len;
            if (match) {
                const std::atomic<std::uint64_t>* w =
                    words_.get() + s * max_words_;
                for (std::size_t i = 0; i < len; ++i)
                    if (w[i].load(std::memory_order_acquire) != key[i]) {
                        match = false;
                        break;
                    }
            }
            const std::uint64_t bits =
                value_[s].load(std::memory_order_acquire);
            // Validate with acquire (free on x86, one fence on ARM): under
            // the strict C++ model a relaxed re-load could observe new body
            // words yet the pre-claim packed word — the classic seqlock
            // formalization gap. Acquire pairs with the writer's release
            // publish and closes the practical window; a residual
            // model-level caveat remains because the writer's body stores
            // are relaxed (a fully formal seqlock needs release body stores
            // or fences, which TSan does not model). On real hardware the
            // coherence-ordered re-load makes any torn body fail
            // validation, and the 32-thread TSan soak is clean.
            const std::uint64_t t2 =
                tag_gen_[s].load(std::memory_order_acquire);
            if (t2 != t1) {
                races_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            if (!match) continue;
            hits_.fetch_add(1, std::memory_order_relaxed);
            double value;
            std::memcpy(&value, &bits, sizeof value);
            *out = value;
            return true;
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    /// Stores @p value under @p key. Lossy: if another writer holds the
    /// target slot the insert is dropped (counted as a race) — never blocks,
    /// and dropping is safe because the caller already computed the value.
    void insert(const std::uint64_t* key, std::size_t len, double value) {
        if (!enabled() || len == 0 || len > max_words_) return;
        const std::uint64_t h = hash(key, len);
        const std::uint64_t gen =
            generation_.load(std::memory_order_acquire) & kGenMask;
        const std::uint64_t tag = tag_of_hash(h);
        // Victim: first empty or stale-generation slot in the window, or a
        // slot already publishing our tag (refresh); otherwise overwrite the
        // window's first slot — bounded displacement, no aging under
        // concurrency.
        std::size_t victim = probe_slot(h, 0);
        for (std::size_t p = 0; p < kProbeWindow; ++p) {
            const std::size_t s = probe_slot(h, p);
            const std::uint64_t t =
                tag_gen_[s].load(std::memory_order_relaxed);
            if (t & kBusyBit) continue;
            if (seq_of(t) == 0 || gen_of(t) != gen || tag_of(t) == tag) {
                victim = s;
                break;
            }
        }
        std::uint64_t cur = tag_gen_[victim].load(std::memory_order_relaxed);
        if (cur & kBusyBit) {
            races_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Claim the slot. acquire on success keeps the body stores below
        // from hoisting above the claim; a lost CAS means another writer got
        // here first — drop (lossy).
        if (!tag_gen_[victim].compare_exchange_strong(
                cur, cur | kBusyBit, std::memory_order_acquire,
                std::memory_order_relaxed)) {
            races_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        len_[victim].store(len, std::memory_order_relaxed);
        std::atomic<std::uint64_t>* w = words_.get() + victim * max_words_;
        for (std::size_t i = 0; i < len; ++i)
            w[i].store(key[i], std::memory_order_relaxed);
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        value_[victim].store(bits, std::memory_order_relaxed);
        // Publish: busy bit cleared, write sequence advanced (skipping 0,
        // which is reserved for never-published), tag and generation set.
        tag_gen_[victim].store(pack(next_seq(seq_of(cur)), tag, gen),
                               std::memory_order_release);
    }

    /// Drops every entry in O(1) by bumping the global generation. Safe to
    /// call concurrently with lookups/inserts: an insert that raced the bump
    /// may land with the old generation, where it is unreachable — exactly
    /// as if it had been dropped.
    void invalidate() { generation_.fetch_add(1, std::memory_order_acq_rel); }

    Stats stats() const {
        return Stats{hits_.load(std::memory_order_relaxed),
                     misses_.load(std::memory_order_relaxed),
                     races_.load(std::memory_order_relaxed)};
    }

private:
    static constexpr std::size_t kProbeWindow = 8;
    static constexpr std::size_t kDefaultShards = 16;
    static constexpr std::uint64_t kBusyBit = 1ull << 63;
    static constexpr std::uint64_t kGenMask = 0xFFFFFFFFull;
    static constexpr std::uint64_t kSeqMask = 0x7FFFull;
    static constexpr std::uint64_t kTagMask = 0xFFFFull;

    static std::uint64_t seq_of(std::uint64_t t) { return (t >> 48) & kSeqMask; }
    static std::uint64_t tag_of(std::uint64_t t) { return (t >> 32) & kTagMask; }
    static std::uint64_t gen_of(std::uint64_t t) { return t & kGenMask; }
    static std::uint64_t tag_of_hash(std::uint64_t h) {
        return (h >> 32) & kTagMask;
    }
    static std::uint64_t next_seq(std::uint64_t seq) {
        const std::uint64_t n = (seq + 1) & kSeqMask;
        return n == 0 ? 1 : n;
    }
    static std::uint64_t pack(std::uint64_t seq, std::uint64_t tag,
                              std::uint64_t gen) {
        return (seq << 48) | (tag << 32) | gen;
    }
    static std::size_t round_up_pow2(std::size_t v) {
        std::size_t p = 1;
        while (p < v) p <<= 1;
        return p;
    }

    static std::uint64_t hash(const std::uint64_t* key, std::size_t len) {
        // FNV-1a over the words, then a murmur3 finalizer. The finalizer is
        // load-bearing: FNV's multiply only carries bit differences upward,
        // so two keys differing in the top bits of one word (e.g. only in a
        // double's exponent, like a τ ladder) share every low hash bit —
        // identical slot, shard and tag, and the entries evict each other.
        // fmix64's shift-xor steps diffuse high bits back down.
        std::uint64_t h = 1469598103934665603ull;
        for (std::size_t i = 0; i < len; ++i) {
            h ^= key[i];
            h *= 1099511628211ull;
        }
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        return h;
    }

    /// Shard from the hash's top bits, in-shard base from its low bits, so
    /// the two selections stay independent of each other and of the 16-bit
    /// tag (bits 32..47).
    std::size_t probe_slot(std::uint64_t h, std::size_t p) const {
        const std::size_t shard =
            static_cast<std::size_t>(h >> 48) & (shards_ - 1);
        const std::size_t base =
            static_cast<std::size_t>(h) & (slots_per_shard_ - 1);
        return shard * slots_per_shard_ +
               ((base + p) & (slots_per_shard_ - 1));
    }

    std::size_t shards_ = 0;
    std::size_t slots_per_shard_ = 0;
    std::size_t total_slots_ = 0;
    std::size_t max_words_ = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> tag_gen_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> len_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> value_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
    std::atomic<std::uint64_t> generation_{0};
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> races_{0};
};

}  // namespace hp::core
