#pragma once

#include <string>

#include "core/hotpotato.hpp"

namespace hp::core {

/// HotPotato unified with DVFS — the paper's stated future work ("we plan to
/// unify synchronous task rotation with DVFS for even more efficient thermal
/// management").
///
/// Plain HotPotato has exactly one knob: the rotation. When the chip-wide
/// *average* power is unsustainable (e.g. a fully-loaded chip of hot,
/// always-active threads), no rotation interval generates headroom and the
/// hardware DTM becomes the de-facto — and inefficient — throttle (bang-bang
/// between f_max and f_min). This extension keeps rotation as the primary,
/// performance-free knob and engages fine-grained DVFS only when the
/// heuristic is pinned at the fastest rotation and still predicts an unsafe
/// peak: active cores are then clamped to a TSP-style uniform power budget.
/// Once the predicted peak regains headroom, frequencies step back up one
/// DVFS level per epoch until the chip is at peak frequency again.
class HotPotatoDvfsScheduler : public HotPotatoScheduler {
public:
    explicit HotPotatoDvfsScheduler(HotPotatoParams params = {})
        : HotPotatoScheduler(std::move(params)) {}

    std::string name() const override { return "HotPotato+DVFS"; }

    void on_epoch(sim::SimContext& ctx) override;

    /// True while the DVFS fallback is clamping frequencies.
    bool dvfs_engaged() const { return engaged_; }

private:
    /// Clamps every occupied core's frequency to the TSP budget for the
    /// current mapping.
    void engage(sim::SimContext& ctx);
    /// Raises every core one DVFS level; disengages when all are at f_max.
    void relax(sim::SimContext& ctx);

    bool engaged_ = false;
};

}  // namespace hp::core
