#include "core/hotpotato.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace hp::core {

namespace {
constexpr double kInfPeak = std::numeric_limits<double>::infinity();
}

std::size_t HotPotatoScheduler::Ring::occupied() const {
    std::size_t count = 0;
    for (sim::ThreadId id : slots)
        if (id != sim::kNone) ++count;
    return count;
}

std::optional<std::size_t> HotPotatoScheduler::Ring::first_free_slot() const {
    for (std::size_t j = 0; j < slots.size(); ++j)
        if (slots[j] == sim::kNone) return j;
    return std::nullopt;
}

HotPotatoScheduler::HotPotatoScheduler(HotPotatoParams params)
    : params_(std::move(params)) {
    if (params_.tau_ladder_s.empty())
        throw std::invalid_argument("HotPotato: empty tau ladder");
    if (!std::is_sorted(params_.tau_ladder_s.begin(),
                        params_.tau_ladder_s.end()))
        throw std::invalid_argument("HotPotato: tau ladder must be ascending");
    // Ladder-sized scratch is fixed at construction; sizing it here keeps
    // the first prefetch_tau_ladder call allocation-free.
    tau_batch_scratch_.resize(params_.tau_ladder_s.size());
    peaks_batch_scratch_.resize(params_.tau_ladder_s.size());
}

void HotPotatoScheduler::rebuild_rings(sim::SimContext& ctx) {
    // Ring membership is baked into cached prediction keys only implicitly
    // (key = powers per slot), so any re-formation — core failure, recovery —
    // changes what a key means and must flush the memo.
    invalidate_peak_cache();
    rings_.clear();
    for (const arch::AmdRing& r : ctx.chip().rings()) {
        Ring ring;
        ring.amd = r.amd;
        for (std::size_t c : r.cores)
            if (ctx.core_available(c)) ring.cores.push_back(c);
        if (ring.cores.empty()) continue;  // whole ring lost
        ring.slots.assign(ring.cores.size(), sim::kNone);
        for (std::size_t j = 0; j < ring.cores.size(); ++j) {
            const sim::ThreadId id = ctx.thread_on(ring.cores[j]);
            if (id != sim::kNone && !ctx.thread(id).finished)
                ring.slots[j] = id;
        }
        rings_.push_back(std::move(ring));
    }
}

void HotPotatoScheduler::initialize(sim::SimContext& ctx) {
    // Borrow the (arena-backed) peak workspace from the campaign worker's
    // scratch bag when one exists: one workspace per worker, warm across
    // runs. The prediction cache stays per-run — its hit/miss counters are
    // part of the observable record and must not depend on worker history.
    if (exec::WorkerScratch* scratch = ctx.worker_scratch())
        peak_ws_ = &scratch->slot<PeakWorkspace>();
    else
        peak_ws_ = &own_peak_ws_;
    rebuild_rings(ctx);
    displaced_.clear();
    sensor_fallback_ = false;
    // Start at the ladder rung closest to the requested initial τ.
    tau_index_ = 0;
    double best = kInfPeak;
    for (std::size_t i = 0; i < params_.tau_ladder_s.size(); ++i) {
        const double d = std::abs(params_.tau_ladder_s[i] -
                                  params_.initial_rotation_interval_s);
        if (d < best) {
            best = d;
            tau_index_ = i;
        }
    }
    rotation_on_ = true;
    next_rotation_s_ = params_.tau_ladder_s[tau_index_];
    obs_ = ctx.observer();
    if (obs_) {
        obs_alg1_ = &obs_->counter("hotpotato.alg1_evals");
        obs_tau_changes_ = &obs_->counter("hotpotato.tau_changes");
        obs_cache_hits_ = &obs_->counter("hotpotato.peak_cache_hits");
        obs_cache_misses_ = &obs_->counter("hotpotato.peak_cache_misses");
        obs_batch_size_ = &obs_->histogram(
            "hotpotato.batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    }
    if (params_.use_peak_cache) {
        // Keys: 1 backend word + 1 tag word + 1 size word per ring + 1
        // power word per slot (rotation), or backend + tag + 1 power word
        // per core (static).
        peak_cache_.configure(
            256, 3 + ctx.chip().core_count() + ctx.chip().rings().size());
    } else {
        peak_cache_.configure(0, 0);
    }
    ensure_analyzer(ctx);
}

void HotPotatoScheduler::note_tau_change(sim::SimContext& ctx) {
    if (!obs_) return;
    obs_tau_changes_->add();
    obs_->record({ctx.now(), obs::EventKind::kTauAdapt,
                  rotation_on_ ? 1u : 0u, 0,
                  rotation_on_ ? rotation_interval_s() : 0.0});
}

double HotPotatoScheduler::rotation_interval_s() const {
    return params_.tau_ladder_s[tau_index_];
}

void HotPotatoScheduler::ensure_analyzer(sim::SimContext& ctx) {
    if (analyzer_) return;
    const double idle = ctx.power_model().idle_power_w(ctx.config().t_dtm_c);
    analyzer_ = std::make_unique<PeakTemperatureAnalyzer>(
        ctx.solver(), ctx.config().ambient_c, idle);
    backend_sig_ = ctx.solver().backend_signature();
}

void HotPotatoScheduler::sync_finished_threads(sim::SimContext& ctx) {
    for (Ring& ring : rings_)
        for (sim::ThreadId& id : ring.slots)
            if (id != sim::kNone && ctx.thread(id).finished) id = sim::kNone;
}

double HotPotatoScheduler::slot_power(sim::SimContext& ctx,
                                      sim::ThreadId id) const {
    // Measured 10 ms power history once the thread runs (Algorithm 1 input);
    // a model estimate before first placement. Quantised to the prediction
    // grid unconditionally (cache on or off), so a cached peak is exactly
    // the peak a fresh evaluation of the same quantised inputs would give.
    if (ctx.core_of(id) != sim::kNone)
        return quantise_power_w(ctx.thread_recent_power(id));
    const auto loc = locate(id);
    const std::size_t core =
        loc ? rings_[loc->first].cores[loc->second] : 0;
    return quantise_power_w(
        ctx.estimate_thread_power(id, core, ctx.chip().dvfs().f_max_hz));
}

const std::vector<RotationRingSpec>& HotPotatoScheduler::build_ring_specs(
    sim::SimContext& ctx) const {
    const double idle = analyzer_->idle_power_w();
    if (spec_scratch_.size() != rings_.size())
        spec_scratch_.resize(rings_.size());
    for (std::size_t r = 0; r < rings_.size(); ++r) {
        const Ring& ring = rings_[r];
        RotationRingSpec& spec = spec_scratch_[r];
        spec.cores = ring.cores;
        spec.slot_power_w.assign(ring.cores.size(), idle);
        for (std::size_t j = 0; j < ring.slots.size(); ++j)
            if (ring.slots[j] != sim::kNone)
                spec.slot_power_w[j] = slot_power(ctx, ring.slots[j]);
    }
    return spec_scratch_;
}

void HotPotatoScheduler::build_static_powers(sim::SimContext& ctx) const {
    const double idle = analyzer_->idle_power_w();
    const std::size_t n = ctx.chip().core_count();
    if (static_power_scratch_.size() != n)
        static_power_scratch_ = linalg::Vector(n);
    for (std::size_t i = 0; i < n; ++i) static_power_scratch_[i] = idle;
    for (const Ring& ring : rings_)
        for (std::size_t j = 0; j < ring.slots.size(); ++j)
            if (ring.slots[j] != sim::kNone)
                static_power_scratch_[ring.cores[j]] =
                    slot_power(ctx, ring.slots[j]);
}

void HotPotatoScheduler::stage_static_key(const double* powers,
                                          std::size_t count) const {
    peak_cache_.key_begin();
    peak_cache_.key_push(backend_sig_);
    peak_cache_.key_push(std::uint64_t{0});  // tag: static prediction
    for (std::size_t i = 0; i < count; ++i) peak_cache_.key_push(powers[i]);
}

void HotPotatoScheduler::stage_rotation_key(std::size_t tau_index) const {
    // Assumes spec_scratch_ is current (build_ring_specs ran this query).
    peak_cache_.key_begin();
    peak_cache_.key_push(backend_sig_);
    peak_cache_.key_push((std::uint64_t{1} << 63) |
                         (static_cast<std::uint64_t>(params_.samples_per_epoch)
                          << 32) |
                         static_cast<std::uint64_t>(tau_index));
    for (const RotationRingSpec& spec : spec_scratch_) {
        peak_cache_.key_push(
            static_cast<std::uint64_t>(spec.slot_power_w.size()));
        for (double p : spec.slot_power_w) peak_cache_.key_push(p);
    }
}

const double* HotPotatoScheduler::cache_lookup() const {
    const double* hit = peak_cache_.lookup();
    if (hit) {
        if (obs_cache_hits_) obs_cache_hits_->add();
    } else if (obs_cache_misses_) {
        obs_cache_misses_->add();
    }
    return hit;
}

void HotPotatoScheduler::cache_insert(double peak) const {
    peak_cache_.insert(peak);
}

double HotPotatoScheduler::predict_peak_with(sim::SimContext& ctx,
                                             bool rotation_on,
                                             std::size_t tau_index) const {
    if (obs_alg1_) obs_alg1_->add();
    obs::ScopedPhase timer(obs_, obs::Phase::kPeakAnalysis);
    if (obs_batch_size_) obs_batch_size_->observe(1.0);
    if (!rotation_on) {
        build_static_powers(ctx);
        if (peak_cache_.enabled()) {
            stage_static_key(static_power_scratch_.data(),
                             static_power_scratch_.size());
            if (const double* hit = cache_lookup()) return *hit;
        }
        const double peak =
            analyzer_->static_peak(static_power_scratch_, *peak_ws_);
        cache_insert(peak);
        return peak;
    }
    build_ring_specs(ctx);
    if (peak_cache_.enabled()) {
        stage_rotation_key(tau_index);
        if (const double* hit = cache_lookup()) return *hit;
    }
    const double peak =
        analyzer_->rotation_peak(spec_scratch_, params_.tau_ladder_s[tau_index],
                                 params_.samples_per_epoch, *peak_ws_);
    cache_insert(peak);
    return peak;
}

void HotPotatoScheduler::prefetch_tau_ladder(sim::SimContext& ctx,
                                             std::size_t count) const {
    if (!peak_cache_.enabled() || count == 0) return;
    if (obs_alg1_) obs_alg1_->add();
    obs::ScopedPhase timer(obs_, obs::Phase::kPeakAnalysis);
    if (obs_batch_size_) obs_batch_size_->observe(static_cast<double>(count));
    build_ring_specs(ctx);
    if (tau_batch_scratch_.size() < count) tau_batch_scratch_.resize(count);
    if (peaks_batch_scratch_.size() < count) peaks_batch_scratch_.resize(count);
    for (std::size_t t = 0; t < count; ++t)
        tau_batch_scratch_[t] = params_.tau_ladder_s[t];
    analyzer_->rotation_peak_tau_batch(spec_scratch_, tau_batch_scratch_.data(),
                                       count, params_.samples_per_epoch,
                                       *peak_ws_, peaks_batch_scratch_.data());
    for (std::size_t t = 0; t < count; ++t) {
        stage_rotation_key(t);
        peak_cache_.insert(peaks_batch_scratch_[t]);
    }
}

double HotPotatoScheduler::predict_peak(sim::SimContext& ctx) const {
    return predict_peak_with(ctx, rotation_on_, tau_index_);
}

std::optional<std::pair<std::size_t, std::size_t>> HotPotatoScheduler::locate(
    sim::ThreadId id) const {
    for (std::size_t r = 0; r < rings_.size(); ++r)
        for (std::size_t j = 0; j < rings_[r].slots.size(); ++j)
            if (rings_[r].slots[j] == id) return std::make_pair(r, j);
    return std::nullopt;
}

void HotPotatoScheduler::assign(sim::SimContext& ctx, sim::ThreadId id,
                                std::size_t ring, std::size_t slot) {
    rings_[ring].slots[slot] = id;
    ctx.place(id, rings_[ring].cores[slot]);
}

void HotPotatoScheduler::move_thread(sim::SimContext& ctx, sim::ThreadId id,
                                     std::size_t dest_ring,
                                     std::size_t dest_slot) {
    const auto loc = locate(id);
    if (!loc) throw std::logic_error("HotPotato::move_thread: unknown thread");
    rings_[loc->first].slots[loc->second] = sim::kNone;
    rings_[dest_ring].slots[dest_slot] = id;
    ctx.migrate(id, rings_[dest_ring].cores[dest_slot]);
}

std::optional<std::size_t> HotPotatoScheduler::best_static_slot(
    sim::SimContext& ctx, std::size_t ring_index, sim::ThreadId id) {
    Ring& ring = rings_[ring_index];
    slate_slots_.clear();
    for (std::size_t j = 0; j < ring.slots.size(); ++j)
        if (ring.slots[j] == sim::kNone) slate_slots_.push_back(j);
    if (slate_slots_.empty()) return std::nullopt;
    const std::size_t count = slate_slots_.size();
    const std::size_t n = ctx.chip().core_count();

    // The whole slate is one Algorithm-1 query site: one counter tick, one
    // phase, the histogram records how many candidates were requested.
    if (obs_alg1_) obs_alg1_->add();
    obs::ScopedPhase timer(obs_, obs::Phase::kPeakAnalysis);
    if (obs_batch_size_) obs_batch_size_->observe(static_cast<double>(count));

    // Candidate power vectors: the thread tentatively in each free slot —
    // exactly the vectors the historical per-slot loop evaluated one by one.
    if (slate_powers_.size() < count * n) slate_powers_.resize(count * n);
    if (slate_peaks_.size() < count) slate_peaks_.resize(count);
    for (std::size_t c = 0; c < count; ++c) {
        const std::size_t j = slate_slots_[c];
        ring.slots[j] = id;
        build_static_powers(ctx);
        ring.slots[j] = sim::kNone;
        double* row = slate_powers_.data() + c * n;
        for (std::size_t i = 0; i < n; ++i) row[i] = static_power_scratch_[i];
    }

    // Cache hits are filled directly; the misses run as one batched
    // steady-state slate (bit-identical per candidate to a fresh
    // static_peak, so cache on/off cannot change the argmin).
    slate_miss_.clear();
    for (std::size_t c = 0; c < count; ++c) {
        if (peak_cache_.enabled()) {
            stage_static_key(slate_powers_.data() + c * n, n);
            if (const double* hit = cache_lookup()) {
                slate_peaks_[c] = *hit;
                continue;
            }
        }
        slate_miss_.push_back(c);
    }
    if (!slate_miss_.empty()) {
        if (slate_miss_powers_.size() < slate_miss_.size() * n)
            slate_miss_powers_.resize(slate_miss_.size() * n);
        for (std::size_t m = 0; m < slate_miss_.size(); ++m) {
            const double* src = slate_powers_.data() + slate_miss_[m] * n;
            double* dst = slate_miss_powers_.data() + m * n;
            for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
        }
        if (peaks_batch_scratch_.size() < slate_miss_.size())
            peaks_batch_scratch_.resize(slate_miss_.size());
        analyzer_->static_peak_batch(slate_miss_powers_.data(),
                                     slate_miss_.size(), *peak_ws_,
                                     peaks_batch_scratch_.data());
        for (std::size_t m = 0; m < slate_miss_.size(); ++m) {
            const std::size_t c = slate_miss_[m];
            slate_peaks_[c] = peaks_batch_scratch_[m];
            if (peak_cache_.enabled()) {
                stage_static_key(slate_powers_.data() + c * n, n);
                peak_cache_.insert(slate_peaks_[c]);
            }
        }
    }

    // First-lowest wins, matching the historical ascending-slot scan.
    std::optional<std::size_t> best;
    double best_peak = kInfPeak;
    for (std::size_t c = 0; c < count; ++c) {
        if (slate_peaks_[c] < best_peak) {
            best_peak = slate_peaks_[c];
            best = slate_slots_[c];
        }
    }
    return best;
}

bool HotPotatoScheduler::place_thread(sim::SimContext& ctx,
                                      sim::ThreadId id) {
    const double limit = ctx.config().t_dtm_c - params_.headroom_delta_c;

    // Lines 2-6: lowest-AMD ring whose best free slot is thermally safe.
    for (std::size_t r = 0; r < rings_.size(); ++r) {
        Ring& ring = rings_[r];
        std::optional<std::size_t> slot;
        if (rotation_on_) {
            // Under rotation the thread will visit every slot of the ring, so
            // all free slots are equivalent for the sustained peak; take the
            // first (the paper's per-slot evaluation degenerates to this).
            slot = ring.first_free_slot();
        } else {
            // Without rotation the slot matters: pick the free slot with the
            // lowest static steady-state peak, scored as one batched slate.
            slot = best_static_slot(ctx, r, id);
        }
        if (!slot) continue;

        ring.slots[*slot] = id;  // tentative
        const double peak = predict_peak_with(ctx, rotation_on_, tau_index_);
        if (peak < limit) {
            ring.slots[*slot] = sim::kNone;
            assign(ctx, id, r, *slot);
            last_predicted_peak_c_ = peak;
            max_predicted_peak_c_ = std::max(max_predicted_peak_c_, peak);
            return true;
        }
        ring.slots[*slot] = sim::kNone;
    }

    // Lines 7-14: nothing is safe — take the highest-AMD ring with space and
    // let restore_safety() speed the rotation / demote threads.
    for (std::size_t r = rings_.size(); r-- > 0;) {
        const auto slot = rings_[r].first_free_slot();
        if (!slot) continue;
        assign(ctx, id, r, *slot);
        restore_safety(ctx);
        return true;
    }
    return false;  // chip is full: keep the task queued
}

bool HotPotatoScheduler::on_task_arrival(sim::SimContext& ctx,
                                         sim::TaskId task) {
    ensure_analyzer(ctx);
    sync_finished_threads(ctx);

    const sim::Task& t = ctx.task(task);
    std::size_t free_slots = 0;
    for (const Ring& ring : rings_) free_slots += ring.slots.size() - ring.occupied();
    if (free_slots < t.thread_count) return false;

    for (sim::ThreadId id : t.threads)
        if (!place_thread(ctx, id))
            throw std::logic_error(
                "HotPotato: placement failed despite free capacity");
    return true;
}

void HotPotatoScheduler::on_task_finish(sim::SimContext& ctx,
                                        sim::TaskId /*task*/) {
    sync_finished_threads(ctx);
    retry_displaced(ctx);
    exploit_headroom(ctx);
}

void HotPotatoScheduler::retry_displaced(sim::SimContext& ctx) {
    if (displaced_.empty()) return;
    std::vector<sim::ThreadId> still_waiting;
    for (sim::ThreadId id : displaced_) {
        if (ctx.thread(id).finished || ctx.core_of(id) != sim::kNone) continue;
        if (!place_thread(ctx, id)) still_waiting.push_back(id);
    }
    displaced_ = std::move(still_waiting);
}

void HotPotatoScheduler::on_core_failure(
    sim::SimContext& ctx, std::size_t /*core*/,
    const std::vector<sim::ThreadId>& evicted) {
    ensure_analyzer(ctx);
    sync_finished_threads(ctx);
    // Re-form the rotation domains without the dead core: surviving threads
    // keep their cores (slots re-seeded from the live mapping), the ring
    // merely closes ranks around the hole.
    rebuild_rings(ctx);
    for (sim::ThreadId id : evicted)
        if (!place_thread(ctx, id)) displaced_.push_back(id);
    restore_safety(ctx);
}

void HotPotatoScheduler::on_core_recovery(sim::SimContext& ctx,
                                          std::size_t /*core*/) {
    sync_finished_threads(ctx);
    rebuild_rings(ctx);
    retry_displaced(ctx);
}

void HotPotatoScheduler::update_sensor_fallback(sim::SimContext& ctx) {
    const bool untrusted = ctx.untrusted_sensor_count() > 0;
    if (untrusted == sensor_fallback_) return;
    const arch::DvfsParams& dvfs = ctx.chip().dvfs();
    // Sensing is compromised: the peak predictions feeding Algorithm 1/2 can
    // no longer be cross-checked against reality, so surrender performance
    // for guaranteed headroom until the voting filter trusts the bank again.
    const double f =
        untrusted ? dvfs.quantize_down(params_.sensor_fallback_freq_fraction *
                                       dvfs.f_max_hz)
                  : dvfs.f_max_hz;
    for (std::size_t c = 0; c < ctx.chip().core_count(); ++c)
        ctx.set_frequency(c, f);
    // Frequency changes alter the power histories behind every cached key.
    invalidate_peak_cache();
    sensor_fallback_ = untrusted;
    if (obs_)
        obs_->record({ctx.now(), obs::EventKind::kSensorFallback,
                      untrusted ? 1u : 0u, 0, f});
}

void HotPotatoScheduler::restore_safety(sim::SimContext& ctx) {
    const double limit = ctx.config().t_dtm_c - params_.headroom_delta_c;
    double peak = predict_peak(ctx);

    // Lines 8-11: demote the least memory-bound (lowest CPI) threads to
    // higher-AMD rings while the schedule stays unsafe.
    std::size_t guard = rings_.empty() ? 0 : 2 * ctx.chip().core_count();
    while (peak >= limit && guard-- > 0) {
        sim::ThreadId victim = sim::kNone;
        double victim_cpi = kInfPeak;
        std::size_t victim_ring = 0;
        for (std::size_t r = 0; r + 1 < rings_.size(); ++r) {
            bool outer_space = false;
            for (std::size_t r2 = r + 1; r2 < rings_.size(); ++r2)
                if (rings_[r2].first_free_slot()) outer_space = true;
            if (!outer_space) continue;
            for (sim::ThreadId id : rings_[r].slots) {
                if (id == sim::kNone) continue;
                const double cpi = ctx.thread_cpi(id);
                if (cpi < victim_cpi) {
                    victim_cpi = cpi;
                    victim = id;
                    victim_ring = r;
                }
            }
        }
        if (victim == sim::kNone) break;
        // Next higher ring with a free slot.
        bool moved = false;
        for (std::size_t r2 = victim_ring + 1; r2 < rings_.size(); ++r2) {
            const auto slot = rings_[r2].first_free_slot();
            if (!slot) continue;
            move_thread(ctx, victim, r2, *slot);
            moved = true;
            break;
        }
        if (!moved) break;
        peak = predict_peak(ctx);
    }

    // Lines 12-14: speed the rotation until headroom appears. The rungs the
    // walk can visit are evaluated as one shared-target batch first, so the
    // per-rung queries below become cache hits (bit-identical values; with
    // the cache off the walk simply evaluates each rung itself).
    if (peak >= limit && peak_cache_.enabled()) {
        prefetch_tau_ladder(
            ctx, rotation_on_ ? tau_index_ : params_.tau_ladder_s.size());
    }
    while (peak >= limit) {
        if (!rotation_on_) {
            rotation_on_ = true;
            tau_index_ = params_.tau_ladder_s.size() - 1;
            next_rotation_s_ = ctx.now() + rotation_interval_s();
        } else if (tau_index_ > 0) {
            --tau_index_;
        } else {
            break;  // fastest rotation already; DTM is the backstop
        }
        note_tau_change(ctx);
        peak = predict_peak(ctx);
    }
    last_predicted_peak_c_ = peak;
    max_predicted_peak_c_ = std::max(max_predicted_peak_c_, peak);
}

void HotPotatoScheduler::exploit_headroom(sim::SimContext& ctx) {
    const double t_dtm = ctx.config().t_dtm_c;
    const double delta = params_.headroom_delta_c;
    double peak = predict_peak(ctx);

    // Lines 16-22: promote the most memory-bound (highest CPI) threads to
    // the lowest-AMD ring that stays thermally safe.
    std::size_t promotions = 0;
    while (t_dtm - peak > delta &&
           promotions < params_.max_promotions_per_epoch) {
        // Highest-CPI thread that is not already in the innermost ring with
        // free space below it.
        sim::ThreadId candidate = sim::kNone;
        double candidate_cpi = -kInfPeak;
        std::size_t candidate_ring = 0;
        for (std::size_t r = 1; r < rings_.size(); ++r) {
            bool inner_space = false;
            for (std::size_t r2 = 0; r2 < r; ++r2)
                if (rings_[r2].first_free_slot()) inner_space = true;
            if (!inner_space) continue;
            for (sim::ThreadId id : rings_[r].slots) {
                if (id == sim::kNone) continue;
                const double cpi = ctx.thread_cpi(id);
                if (cpi > candidate_cpi) {
                    candidate_cpi = cpi;
                    candidate = id;
                    candidate_ring = r;
                }
            }
        }
        if (candidate == sim::kNone) break;

        // Lowest-AMD ring with space; tentative safety check first.
        bool committed = false;
        for (std::size_t r2 = 0; r2 < candidate_ring && !committed; ++r2) {
            const auto slot = rings_[r2].first_free_slot();
            if (!slot) continue;
            const auto loc = locate(candidate);
            rings_[loc->first].slots[loc->second] = sim::kNone;
            rings_[r2].slots[*slot] = candidate;  // tentative
            const double new_peak =
                predict_peak_with(ctx, rotation_on_, tau_index_);
            rings_[r2].slots[*slot] = sim::kNone;
            rings_[loc->first].slots[loc->second] = candidate;
            if (new_peak < t_dtm - delta) {
                move_thread(ctx, candidate, r2, *slot);
                peak = new_peak;
                ++promotions;
                committed = true;
            }
        }
        if (!committed) break;
    }

    // Lines 23-27: slow the rotation (and eventually stop it) while the
    // schedule remains safe — fewer migrations, better performance.
    while (t_dtm - peak > delta) {
        if (!rotation_on_) break;
        const bool at_top = tau_index_ + 1 >= params_.tau_ladder_s.size();
        const double new_peak =
            at_top ? predict_peak_with(ctx, false, tau_index_)
                   : predict_peak_with(ctx, true, tau_index_ + 1);
        if (new_peak < t_dtm - delta) {
            if (at_top) {
                rotation_on_ = false;
            } else {
                ++tau_index_;
            }
            note_tau_change(ctx);
            peak = new_peak;
        } else {
            break;
        }
    }
    last_predicted_peak_c_ = peak;
    max_predicted_peak_c_ = std::max(max_predicted_peak_c_, peak);
}

void HotPotatoScheduler::on_epoch(sim::SimContext& ctx) {
    ensure_analyzer(ctx);
    sync_finished_threads(ctx);
    update_sensor_fallback(ctx);
    retry_displaced(ctx);
    const double limit = ctx.config().t_dtm_c - params_.headroom_delta_c;
    const double peak = predict_peak(ctx);
    last_predicted_peak_c_ = peak;
    max_predicted_peak_c_ = std::max(max_predicted_peak_c_, peak);
    if (peak >= limit) {
        restore_safety(ctx);
    } else if (ctx.config().t_dtm_c - peak > params_.headroom_delta_c) {
        exploit_headroom(ctx);
    }
}

void HotPotatoScheduler::on_step(sim::SimContext& ctx) {
    if (!rotation_on_) return;
    if (ctx.now() + 1e-12 < next_rotation_s_) return;
    for (Ring& ring : rings_) {
        if (ring.cores.size() < 2 || ring.occupied() == 0) continue;
        ctx.rotate(ring.cores);
        // Mirror the cyclic shift in the slot bookkeeping; the scratch
        // vector's capacity is reused across rings and steps.
        shift_scratch_.resize(ring.slots.size());
        for (std::size_t j = 0; j < ring.slots.size(); ++j)
            shift_scratch_[(j + 1) % ring.slots.size()] = ring.slots[j];
        std::swap(ring.slots, shift_scratch_);
    }
    next_rotation_s_ = ctx.now() + rotation_interval_s();
}

}  // namespace hp::core
