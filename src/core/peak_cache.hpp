#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace hp::core {

/// Quantises a slot/core power to the prediction-cache grid (steps of
/// 2^-10 W ≈ 1 mW). The grid step is an exact binary fraction, so quantised
/// powers round-trip through the cache key bit-exactly, and the quantisation
/// itself is far below the watt-level signal the thermal model reacts to.
/// Schedulers quantise *before* prediction whether or not their cache is
/// enabled — that is what makes a cache hit bit-identical to a fresh
/// evaluation (both see the same quantised inputs) and hence campaign output
/// independent of the cache switch.
inline double quantise_power_w(double power_w) {
    return static_cast<double>(std::llround(power_w * 1024.0)) / 1024.0;
}

/// Fixed-capacity memo of thermal predictions keyed by an opaque sequence of
/// 64-bit words (packed ring assignments, quantised power bits, τ index —
/// whatever the scheduler deems to determine the prediction).
///
/// Design constraints, in order:
///  - allocation-free after configure(): the hot path (HotPotato's
///    per-epoch Algorithm-1 queries) is covered by the alloc-guard tests, so
///    keys are staged and entries stored in flat preallocated arrays;
///  - exact: keys match word-for-word or not at all. Together with input
///    quantisation this makes a hit return exactly what re-evaluating would
///    produce — the cache can change *when* work happens, never *what* the
///    scheduler decides;
///  - evictable: direct-mapped-with-probe-window placement (an entry lands
///    on hash(key) mod capacity, probing up to kProbeWindow slots); new
///    entries overwrite the oldest slot in the window, so stale pressure
///    cannot grow the structure;
///  - invalidatable: invalidate() is an O(1) generation bump, called on
///    every event that changes the thermal meaning of a key (core failure /
///    ring re-formation, DVFS level change, sensor-fallback re-clock). Slots
///    carry the generation they were written under; a slot from an older
///    generation can never hit and is reused as if empty, so a bump is
///    semantically identical to clearing every slot without touching them.
///
/// Not thread-safe; each scheduler instance owns one (schedulers are
/// per-simulation objects, and campaign workers never share them).
template <typename Value>
class PredictionCache {
public:
    PredictionCache() = default;

    /// Sizes the cache for @p entries slots of keys up to @p max_key_words
    /// 64-bit words. Clears any previous contents and statistics. A later
    /// key longer than @p max_key_words is simply not cacheable (lookups
    /// miss, inserts are dropped) rather than an error.
    void configure(std::size_t entries, std::size_t max_key_words) {
        capacity_ = entries;
        max_words_ = max_key_words;
        keys_.assign(entries * max_key_words, 0);
        key_len_.assign(entries, 0);  // 0 = empty slot
        slot_gen_.assign(entries, 0);
        age_.assign(entries, 0);
        values_.assign(entries, Value{});
        staged_.clear();
        staged_.reserve(max_key_words);
        hits_ = misses_ = 0;
        tick_ = 0;
        gen_ = 0;
    }

    bool enabled() const { return capacity_ != 0; }

    /// Begins staging a key for the next lookup()/insert() pair.
    void key_begin() { staged_.clear(); }

    /// Appends one word to the staged key.
    void key_push(std::uint64_t word) { staged_.push_back(word); }

    /// Convenience: appends the bit pattern of a double (use on quantised
    /// values only; -0.0 and 0.0 differ bitwise but quantisation never
    /// produces -0.0 from llround of anything that rounds to 0).
    void key_push(double value) {
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        staged_.push_back(bits);
    }

    /// Looks the staged key up. Returns the cached value or nullptr on miss;
    /// counts the hit/miss either way.
    const Value* lookup() {
        if (capacity_ == 0 || staged_.size() > max_words_ ||
            staged_.empty()) {
            ++misses_;
            return nullptr;
        }
        const std::size_t base = slot_of(hash());
        for (std::size_t p = 0; p < kProbeWindow; ++p) {
            const std::size_t s = (base + p) % capacity_;
            if (slot_gen_[s] != gen_) continue;  // stale generation = empty
            if (key_len_[s] != staged_.size()) continue;
            if (std::memcmp(keys_.data() + s * max_words_, staged_.data(),
                            staged_.size() * sizeof(std::uint64_t)) != 0)
                continue;
            ++hits_;
            age_[s] = ++tick_;
            return &values_[s];
        }
        ++misses_;
        return nullptr;
    }

    /// Stores @p value under the staged key, overwriting the oldest entry in
    /// the probe window. No-op when the key is oversize or the cache is
    /// unconfigured.
    void insert(const Value& value) {
        if (capacity_ == 0 || staged_.size() > max_words_ || staged_.empty())
            return;
        const std::size_t base = slot_of(hash());
        std::size_t victim = base;
        std::uint64_t victim_age = age_[base];
        for (std::size_t p = 0; p < kProbeWindow; ++p) {
            const std::size_t s = (base + p) % capacity_;
            // Empty and stale-generation slots win immediately: a bumped
            // generation made their contents unreachable, so they are free.
            if (key_len_[s] == 0 || slot_gen_[s] != gen_) {
                victim = s;
                break;
            }
            if (age_[s] < victim_age) {
                victim = s;
                victim_age = age_[s];
            }
        }
        std::memcpy(keys_.data() + victim * max_words_, staged_.data(),
                    staged_.size() * sizeof(std::uint64_t));
        key_len_[victim] = staged_.size();
        slot_gen_[victim] = gen_;
        values_[victim] = value;
        age_[victim] = ++tick_;
    }

    /// Drops every entry in O(1) by bumping the live generation — slots
    /// written under an older generation can never hit again (statistics are
    /// kept: invalidations are part of a run's hit/miss story, not a new
    /// run). DVFS engage/relax and ring re-formation call this once per
    /// event, so its cost must not scale with capacity.
    void invalidate() { ++gen_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

private:
    static constexpr std::size_t kProbeWindow = 8;

    std::uint64_t hash() const {
        // FNV-1a over the staged words, then a murmur3 finalizer — the match
        // is exact regardless, but without the finalizer keys that differ
        // only in the high bits of one word (e.g. a double's exponent across
        // a τ ladder) collide into the same slot and evict each other,
        // because FNV's multiply never carries differences downward.
        std::uint64_t h = 1469598103934665603ull;
        for (std::uint64_t w : staged_) {
            h ^= w;
            h *= 1099511628211ull;
        }
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        return h;
    }

    std::size_t slot_of(std::uint64_t h) const {
        return static_cast<std::size_t>(h % capacity_);
    }

    std::size_t capacity_ = 0;
    std::size_t max_words_ = 0;
    std::vector<std::uint64_t> keys_;     ///< capacity × max_words flat
    std::vector<std::size_t> key_len_;    ///< words used; 0 = empty
    std::vector<std::uint64_t> slot_gen_; ///< generation the slot was written
    std::vector<std::uint64_t> age_;      ///< LRU-within-window tick
    std::vector<Value> values_;
    std::vector<std::uint64_t> staged_;   ///< key under construction
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t gen_ = 0;  ///< live generation; bumped by invalidate()
};

}  // namespace hp::core
