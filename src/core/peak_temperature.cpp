#include "core/peak_temperature.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/kernels.hpp"

namespace hp::core {

namespace {

/// Ensures @p v has exactly @p n entries (reallocates only on size change;
/// assign keeps the vector's allocator, so arena-backed workspace members
/// stay on their resource).
void ensure_size(linalg::Vector& v, std::size_t n) {
    if (v.size() != n) v.assign(n);
}

/// Ensures the first @p count entries of @p list are vectors of @p size.
/// The list only grows (shrinking would free the spare buffers and defeat
/// reuse across rings of different sizes); new entries allocate from @p mr
/// (the owning workspace's resource). With @p zero set, the used entries
/// are cleared to 0 — required for buffers that are accumulated into
/// rather than overwritten.
void ensure_list(std::vector<linalg::Vector>& list, std::size_t count,
                 std::size_t size, bool zero, std::pmr::memory_resource* mr) {
    while (list.size() < count) list.emplace_back(mr);
    for (std::size_t i = 0; i < count; ++i) {
        if (list[i].size() != size) {
            list[i].assign(size);
        } else if (zero) {
            double* data = list[i].data();
            for (std::size_t j = 0; j < size; ++j) data[j] = 0.0;
        }
    }
}

}  // namespace

PeakTemperatureAnalyzer::PeakTemperatureAnalyzer(
    const thermal::TransientSolver& solver, double ambient_c,
    double idle_power_w)
    : solver_(&solver),
      ambient_c_(ambient_c),
      idle_power_w_(idle_power_w),
      modes_(solver.mode_count()),
      truncated_(solver.truncated()),
      cluster_pole_(solver.cluster_pole()) {
    const thermal::ThermalModel& model = solver.model();
    // Design-time phase (Algorithm 1 lines 1-7): β = V^{-1}·B^{-1} (retained
    // rows) and the ambient offset; both are floorplan constants.
    beta_ = solver.modal_steady_map();
    beta_t_ = beta_.transpose();
    const std::size_t cores = model.core_count();
    v_cores_ = linalg::Matrix(cores, modes_);
    for (std::size_t i = 0; i < cores; ++i)
        for (std::size_t k = 0; k < modes_; ++k)
            v_cores_(i, k) = solver.mode_shapes()(i, k);
    ambient_offset_ =
        solver.conductance_solve(ambient_c * model.ambient_conductance());

    // Truncated backends additionally need the dropped-cluster targets
    // c_f(i) = (B^{-1}P_f)(i) - Σ_k V(i,k)·(β·P_f)(k) at run time. Both terms
    // are linear in P_f, so their composition is one fixed map Q with
    // Q(j, i) = (B^{-1})(i, j) - Σ_k V(i, k)·β(k, j), a floorplan constant:
    // rotation power vectors have only a handful of non-zeros, which turns
    // the per-query banded solves into a few axpys over Q's rows. B is
    // symmetric (SPD — it admits the banded Cholesky factorisation), so its
    // core *rows* are the core unit-vector *solves*, batched here once.
    if (truncated_) {
        const std::size_t big_n = model.node_count();
        quasi_static_map_ = linalg::Matrix(big_n, cores);
        // Retained-mode part first: Q_kept(j, i) = Σ_k V(i, k)·β(k, j) as one
        // matmat over β^T's rows (RHS-major, one RHS per node j).
        linalg::kernel_matmat(v_cores_.data(), cores, modes_, beta_t_.data(),
                              big_n, &quasi_static_map_(0, 0));
        thermal::ThermalWorkspace scratch;
        constexpr std::size_t kChunk = 64;
        std::vector<double> rhs(kChunk * big_n), sol(kChunk * big_n);
        for (std::size_t base = 0; base < cores; base += kChunk) {
            const std::size_t m = std::min(kChunk, cores - base);
            std::fill(rhs.begin(), rhs.begin() + m * big_n, 0.0);
            for (std::size_t c = 0; c < m; ++c) rhs[c * big_n + base + c] = 1.0;
            solver.conductance_solve_batch_into(rhs.data(), m, scratch,
                                                sol.data());
            for (std::size_t c = 0; c < m; ++c) {
                const double* s = sol.data() + c * big_n;
                const std::size_t i = base + c;
                for (std::size_t j = 0; j < big_n; ++j)
                    quasi_static_map_(j, i) = s[j] - quasi_static_map_(j, i);
            }
        }
    }
}

std::vector<linalg::Vector> PeakTemperatureAnalyzer::boundary_temperatures(
    const std::vector<linalg::Vector>& core_power_per_epoch,
    double tau) const {
    const thermal::ThermalModel& model = solver_->model();
    const std::size_t delta = core_power_per_epoch.size();
    if (delta == 0)
        throw std::invalid_argument("boundary_temperatures: empty schedule");
    if (tau <= 0.0)
        throw std::invalid_argument("boundary_temperatures: tau must be > 0");

    const std::size_t big_n = model.node_count();
    const std::size_t k_modes = modes_;
    const linalg::Vector& lambda = solver_->eigenvalues();
    const linalg::Matrix& v = solver_->mode_shapes();

    // Modal images of the per-epoch steady-state targets: y_f = β·P_f.
    std::vector<linalg::Vector> y;
    y.reserve(delta);
    for (const linalg::Vector& p : core_power_per_epoch)
        y.push_back(beta_ * model.pad_power(p));

    // On a truncated backend the dropped cluster's periodic boundary state is
    // reconstructed from the exact quasi-static targets
    // c_f = B^{-1}P_f - V_K·y_f tracked through the representative pole λ̄
    // (the full-node analog of evaluate_periodic_max's core correction).
    std::vector<linalg::Vector> xstar;
    if (truncated_ && cluster_pole_ < 0.0) {
        std::vector<linalg::Vector> c;
        c.reserve(delta);
        for (std::size_t f = 0; f < delta; ++f) {
            linalg::Vector cf =
                solver_->conductance_solve(
                    model.pad_power(core_power_per_epoch[f]));
            for (std::size_t i = 0; i < big_n; ++i) {
                double kept = 0.0;
                for (std::size_t k = 0; k < k_modes; ++k)
                    kept += v(i, k) * y[f][k];
                cf[i] -= kept;
            }
            c.push_back(std::move(cf));
        }
        const double q = std::exp(cluster_pole_ * tau);
        const double qd = std::pow(q, static_cast<double>(delta));
        xstar.assign(delta, linalg::Vector(big_n, 0.0));
        for (std::size_t f = 0; f < delta; ++f) {
            const double w =
                (1.0 - q) / (1.0 - qd) *
                std::pow(q, static_cast<double>((delta - f) % delta));
            for (std::size_t i = 0; i < big_n; ++i)
                xstar[0][i] += w * c[f][i];
        }
        for (std::size_t e = 1; e < delta; ++e)
            for (std::size_t i = 0; i < big_n; ++i)
                xstar[e][i] = c[e][i] + q * (xstar[e - 1][i] - c[e][i]);
    }

    std::vector<linalg::Vector> out;
    out.reserve(delta);
    for (std::size_t e = 0; e < delta; ++e) {
        linalg::Vector z(k_modes);
        for (std::size_t k = 0; k < k_modes; ++k) {
            const double ek = std::exp(lambda[k] * tau);
            const double denom = 1.0 - std::pow(ek, static_cast<double>(delta));
            double acc = 0.0;
            for (std::size_t f = 0; f < delta; ++f) {
                const std::size_t g = (e + delta - f) % delta;
                acc += std::pow(ek, static_cast<double>(g)) * y[f][k];
            }
            z[k] = (1.0 - ek) / denom * acc;
        }
        linalg::Vector t = ambient_offset_ + v * z;
        if (!xstar.empty())
            for (std::size_t i = 0; i < big_n; ++i) t[i] += xstar[e][i];
        out.push_back(std::move(t));
    }
    return out;
}

void PeakTemperatureAnalyzer::periodic_response_max_into(
    const linalg::Vector* node_power_per_epoch, std::size_t delta, double tau,
    std::size_t samples_per_epoch, PeakWorkspace& ws,
    linalg::Vector& core_max) const {
    if (delta == 0 || tau <= 0.0 || samples_per_epoch == 0)
        throw std::invalid_argument("periodic_response_max: bad arguments");
    build_modal_targets(node_power_per_epoch, delta, ws);
    evaluate_periodic_max(delta, tau, samples_per_epoch, ws, core_max);
}

void PeakTemperatureAnalyzer::reserve_sample_batch(
    const std::vector<RotationRingSpec>& rings, std::size_t samples_per_epoch,
    PeakWorkspace& ws) const {
    // Grow the staging/projection buffers once for the largest ring of the
    // query instead of once per distinct ring size inside
    // evaluate_periodic_max — rings are visited smallest-first, so growing
    // lazily would reallocate on every size step of the first query.
    std::size_t max_delta = 0;
    for (const RotationRingSpec& ring : rings)
        max_delta = std::max(max_delta, ring.cores.size());
    const std::size_t nsamp = max_delta * samples_per_epoch;
    const std::size_t cores = solver_->model().core_count();
    if (ws.zs_batch_.size() < nsamp * modes_)
        ws.zs_batch_.resize(nsamp * modes_);
    if (ws.resp_batch_.size() < nsamp * cores)
        ws.resp_batch_.resize(nsamp * cores);
}

void PeakTemperatureAnalyzer::build_modal_targets(
    const linalg::Vector* node_power_per_epoch, std::size_t delta,
    PeakWorkspace& ws) const {
    const std::size_t big_n = solver_->model().node_count();

    // Modal images y_f = β·P_f, exploiting that rotation power vectors are
    // sparse (non-zero only on the rotating ring's cores): accumulate the
    // corresponding β columns instead of a dense mat-vec.
    ensure_list(ws.y_, delta, modes_, /*zero=*/true, ws.resource());
    for (std::size_t f = 0; f < delta; ++f) {
        const linalg::Vector& p = node_power_per_epoch[f];
        double* yf = ws.y_[f].data();
        for (std::size_t j = 0; j < big_n; ++j) {
            const double pj = p[j];
            if (pj == 0.0) continue;
            linalg::kernel_axpy(modes_, pj, beta_t_.data() + j * modes_, yf);
        }
    }

    // Truncated backend: the τ-independent dropped-cluster targets
    // c_f(i) = (B^{-1}P_f)(i) - Σ_k V(i,k)·y_{f,k}. The whole expression is
    // linear in P_f, so it is a gather over the precomputed quasi-static map:
    // a few axpys per epoch for sparse rotation deltas, instead of a banded
    // solve plus a retained-mode projection per query.
    if (truncated_) {
        const std::size_t cores = solver_->model().core_count();
        ensure_list(ws.cfield_, delta, cores, /*zero=*/true, ws.resource());
        for (std::size_t f = 0; f < delta; ++f) {
            const linalg::Vector& p = node_power_per_epoch[f];
            double* cf = ws.cfield_[f].data();
            for (std::size_t j = 0; j < big_n; ++j) {
                const double pj = p[j];
                if (pj == 0.0) continue;
                linalg::kernel_axpy(cores, pj,
                                    quasi_static_map_.data() + j * cores, cf);
            }
        }
    }
}

void PeakTemperatureAnalyzer::evaluate_periodic_max(
    std::size_t delta, double tau, std::size_t samples_per_epoch,
    PeakWorkspace& ws, linalg::Vector& core_max) const {
    const std::size_t k_modes = modes_;
    const std::size_t cores = solver_->model().core_count();
    const linalg::Vector& lambda = solver_->eigenvalues();
    const std::vector<linalg::Vector>& y = ws.y_;

    // Geometric tables e^{λ_k τ g}, g = 0..δ (pow-free).
    if (ws.ek_.size() < k_modes) ws.ek_.resize(k_modes);
    if (ws.ek_pow_.size() < (delta + 1) * k_modes)
        ws.ek_pow_.resize((delta + 1) * k_modes);
    std::pmr::vector<double>& ek = ws.ek_;
    std::pmr::vector<double>& ek_pow = ws.ek_pow_;
    for (std::size_t k = 0; k < k_modes; ++k) {
        ek[k] = std::exp(lambda[k] * tau);
        double acc = 1.0;
        for (std::size_t g = 0; g <= delta; ++g) {
            ek_pow[g * k_modes + k] = acc;
            acc *= ek[k];
        }
    }

    // Periodic boundary solution in modal space (paper Eq. (10)): z_e is the
    // f-ordered geometric accumulation scaled by (1-e^{λτ})/(1-e^{λδτ}) —
    // the accumulation and the single closing multiply match the historical
    // k-at-a-time recurrence bit for bit.
    ensure_size(ws.coeff_, k_modes);
    for (std::size_t k = 0; k < k_modes; ++k)
        ws.coeff_[k] = (1.0 - ek[k]) / (1.0 - ek_pow[delta * k_modes + k]);
    ensure_list(ws.z_, delta, k_modes, /*zero=*/true, ws.resource());
    std::vector<linalg::Vector>& z = ws.z_;
    for (std::size_t e = 0; e < delta; ++e) {
        double* ze = z[e].data();
        for (std::size_t f = 0; f < delta; ++f)
            linalg::kernel_fma_acc(
                k_modes, ek_pow.data() + ((e + delta - f) % delta) * k_modes,
                y[f].data(), ze);
        linalg::kernel_hadamard(k_modes, ws.coeff_.data(), ze);
    }

    // Interior-sample decay factors e^{λ_k τ s/S}; epoch-independent.
    ensure_list(ws.eks_frac_, samples_per_epoch - 1, k_modes, /*zero=*/false, ws.resource());
    for (std::size_t s = 1; s < samples_per_epoch; ++s) {
        const double frac =
            static_cast<double>(s) / static_cast<double>(samples_per_epoch);
        linalg::Vector& eks = ws.eks_frac_[s - 1];
        for (std::size_t k = 0; k < k_modes; ++k)
            eks[k] = std::exp(lambda[k] * tau * frac);
    }

    // Dropped-cluster periodic boundary states: the scalar (per-core) analog
    // of z_e over the representative pole λ̄ and the quasi-static targets c_f
    // built by build_modal_targets. Geometric closure for epoch 0, then the
    // one-pole forward recurrence x*_e = c_e + q·(x*_{e-1} - c_e).
    const bool correct = truncated_ && cluster_pole_ < 0.0;
    if (correct) {
        const double q = std::exp(cluster_pole_ * tau);
        if (ws.qpow_.size() < delta + 1) ws.qpow_.resize(delta + 1);
        double qacc = 1.0;
        for (std::size_t g = 0; g <= delta; ++g) {
            ws.qpow_[g] = qacc;
            qacc *= q;
        }
        ensure_list(ws.cstar_, delta, cores, /*zero=*/true, ws.resource());
        double* x0 = ws.cstar_[0].data();
        const double closing = (1.0 - q) / (1.0 - ws.qpow_[delta]);
        for (std::size_t f = 0; f < delta; ++f) {
            const double w = closing * ws.qpow_[(delta - f) % delta];
            const double* cf = ws.cfield_[f].data();
            for (std::size_t i = 0; i < cores; ++i) x0[i] += w * cf[i];
        }
        for (std::size_t e = 1; e < delta; ++e) {
            const double* prev = ws.cstar_[e - 1].data();
            const double* ce = ws.cfield_[e].data();
            double* xe = ws.cstar_[e].data();
            for (std::size_t i = 0; i < cores; ++i)
                xe[i] = ce[i] + q * (prev[i] - ce[i]);
        }
        if (ws.qfrac_.size() < samples_per_epoch)
            ws.qfrac_.resize(samples_per_epoch);
        for (std::size_t s = 1; s <= samples_per_epoch; ++s)
            ws.qfrac_[s - 1] =
                std::exp(cluster_pole_ * tau * static_cast<double>(s) /
                         static_cast<double>(samples_per_epoch));
    }

    // Per-core maxima over epoch boundaries plus interior samples. Only core
    // rows of V are projected (Eq. (11) constrains core temperatures). All
    // δ·S modal samples are staged RHS-major and projected through one
    // matmat, which streams each V core row once per RHS block instead of
    // once per sample — this projection dominates the whole query on
    // many-ring chips.
    ensure_size(core_max, cores);
    for (std::size_t i = 0; i < cores; ++i) core_max[i] = -1e300;
    const std::size_t nsamp = delta * samples_per_epoch;
    if (ws.zs_batch_.size() < nsamp * k_modes)
        ws.zs_batch_.resize(nsamp * k_modes);
    if (ws.resp_batch_.size() < nsamp * cores)
        ws.resp_batch_.resize(nsamp * cores);
    double* zs_batch = ws.zs_batch_.data();
    for (std::size_t e = 0; e < delta; ++e) {
        const linalg::Vector& z_prev = z[(e + delta - 1) % delta];
        for (std::size_t s = 1; s <= samples_per_epoch; ++s) {
            double* zs = zs_batch + (e * samples_per_epoch + s - 1) * k_modes;
            if (s == samples_per_epoch) {
                const double* ze = z[e].data();
                for (std::size_t k = 0; k < k_modes; ++k) zs[k] = ze[k];
            } else {
                // Inside epoch e: decay from the previous boundary towards
                // this epoch's steady-state target y[e].
                linalg::kernel_decay_mix(k_modes, ws.eks_frac_[s - 1].data(),
                                         z_prev.data(), y[e].data(), zs);
            }
        }
    }
    linalg::kernel_matmat(v_cores_.data(), cores, k_modes, zs_batch, nsamp,
                          ws.resp_batch_.data());
    if (correct) {
        // Fold the dropped-cluster response into every projected sample
        // before the max: c_e + e^{λ̄ τ s/S}·(x*_{e-1} - c_e), which at
        // s = S equals the boundary state x*_e.
        for (std::size_t e = 0; e < delta; ++e) {
            const double* prev = ws.cstar_[(e + delta - 1) % delta].data();
            const double* ce = ws.cfield_[e].data();
            for (std::size_t s = 1; s <= samples_per_epoch; ++s) {
                const double qs = ws.qfrac_[s - 1];
                double* resp = ws.resp_batch_.data() +
                               (e * samples_per_epoch + s - 1) * cores;
                for (std::size_t i = 0; i < cores; ++i)
                    resp[i] += ce[i] + qs * (prev[i] - ce[i]);
            }
        }
    }
    for (std::size_t m = 0; m < nsamp; ++m)
        linalg::kernel_max_acc(cores, ws.resp_batch_.data() + m * cores,
                               core_max.data());
}

double PeakTemperatureAnalyzer::schedule_peak(
    const std::vector<linalg::Vector>& core_power_per_epoch, double tau,
    std::size_t samples_per_epoch) const {
    // Delegate to the workspace overload with throwaway scratch; the
    // workspace path is the single numeric implementation, so the overloads
    // agree bit for bit by construction.
    PeakWorkspace workspace;
    return schedule_peak(core_power_per_epoch, tau, samples_per_epoch,
                         workspace);
}

double PeakTemperatureAnalyzer::schedule_peak(
    const std::vector<linalg::Vector>& core_power_per_epoch, double tau,
    std::size_t samples_per_epoch, PeakWorkspace& workspace) const {
    const thermal::ThermalModel& model = solver_->model();
    const std::size_t delta = core_power_per_epoch.size();
    ensure_list(workspace.deltas_, delta, model.node_count(), /*zero=*/false, workspace.resource());
    for (std::size_t f = 0; f < delta; ++f)
        model.pad_power_into(core_power_per_epoch[f], workspace.deltas_[f]);
    periodic_response_max_into(workspace.deltas_.data(), delta, tau,
                               samples_per_epoch, workspace,
                               workspace.core_max_);
    double peak = -1e300;
    for (std::size_t i = 0; i < model.core_count(); ++i)
        peak = std::max(peak, ambient_offset_[i] + workspace.core_max_[i]);
    return peak;
}

double PeakTemperatureAnalyzer::static_peak(
    const linalg::Vector& core_power) const {
    PeakWorkspace workspace;
    return static_peak(core_power, workspace);
}

double PeakTemperatureAnalyzer::static_peak(const linalg::Vector& core_power,
                                            PeakWorkspace& workspace) const {
    const thermal::ThermalModel& model = solver_->model();
    model.pad_power_into(core_power, workspace.node_power_);
    solver_->steady_state_into(workspace.node_power_, ambient_c_,
                               workspace.thermal_, workspace.t_idle_);
    double peak = -1e300;
    for (std::size_t i = 0; i < model.core_count(); ++i)
        peak = std::max(peak, workspace.t_idle_[i]);
    return peak;
}

double PeakTemperatureAnalyzer::static_peak_map(
    const linalg::Vector& core_power, PeakWorkspace& workspace,
    double* core_peak_c) const {
    // Run the scalar query, then copy the per-core steady state straight out
    // of the workspace it left behind — same operations, same results.
    const double peak = static_peak(core_power, workspace);
    const std::size_t n = solver_->model().core_count();
    for (std::size_t i = 0; i < n; ++i)
        core_peak_c[i] = workspace.t_idle_[i];
    return peak;
}

double PeakTemperatureAnalyzer::rotation_peak(
    const std::vector<RotationRingSpec>& rings, double tau,
    std::size_t samples_per_epoch) const {
    PeakWorkspace workspace;
    return rotation_peak(rings, tau, samples_per_epoch, workspace);
}

double PeakTemperatureAnalyzer::rotation_peak_map(
    const std::vector<RotationRingSpec>& rings, double tau,
    std::size_t samples_per_epoch, PeakWorkspace& workspace,
    double* core_peak_c) const {
    // Scalar query first; its final reduction ran over exactly the
    // t_idle_ + extra_ sums copied out here, so map and scalar agree bit for
    // bit.
    const double peak = rotation_peak(rings, tau, samples_per_epoch,
                                      workspace);
    const std::size_t n = solver_->model().core_count();
    for (std::size_t i = 0; i < n; ++i)
        core_peak_c[i] = workspace.t_idle_[i] + workspace.extra_[i];
    return peak;
}

double PeakTemperatureAnalyzer::rotation_peak(
    const std::vector<RotationRingSpec>& rings, double tau,
    std::size_t samples_per_epoch, PeakWorkspace& workspace) const {
    workspace.tau_.assign(rings.size(), tau);
    return rotation_peak(rings, workspace.tau_, samples_per_epoch, workspace);
}

double PeakTemperatureAnalyzer::rotation_peak(
    const std::vector<RotationRingSpec>& rings,
    const std::vector<double>& tau_per_ring,
    std::size_t samples_per_epoch) const {
    PeakWorkspace workspace;
    return rotation_peak(rings, tau_per_ring, samples_per_epoch, workspace);
}

double PeakTemperatureAnalyzer::rotation_peak(
    const std::vector<RotationRingSpec>& rings,
    const std::vector<double>& tau_per_ring, std::size_t samples_per_epoch,
    PeakWorkspace& workspace) const {
    if (tau_per_ring.size() != rings.size())
        throw std::invalid_argument(
            "rotation_peak: one tau per ring required");
    const thermal::ThermalModel& model = solver_->model();
    const std::size_t n = model.core_count();
    const std::size_t big_n = model.node_count();

    // All-idle baseline.
    ensure_size(workspace.core_power_, n);
    for (std::size_t i = 0; i < n; ++i)
        workspace.core_power_[i] = idle_power_w_;
    model.pad_power_into(workspace.core_power_, workspace.node_power_);
    solver_->steady_state_into(workspace.node_power_, ambient_c_,
                               workspace.thermal_, workspace.t_idle_);

    ensure_size(workspace.extra_, n);
    for (std::size_t i = 0; i < n; ++i) workspace.extra_[i] = 0.0;
    reserve_sample_batch(rings, samples_per_epoch, workspace);
    for (std::size_t r = 0; r < rings.size(); ++r) {
        const RotationRingSpec& ring = rings[r];
        const std::size_t k = ring.cores.size();
        if (ring.slot_power_w.size() != k)
            throw std::invalid_argument(
                "rotation_peak: ring slot/core size mismatch");
        if (k == 0) continue;
        bool any_delta = false;
        for (double p : ring.slot_power_w)
            if (std::abs(p - idle_power_w_) > 1e-12) any_delta = true;
        if (!any_delta) continue;

        // Per-epoch power deltas: at epoch f the occupant of initial slot j
        // sits on cores[(j + f) mod k]. The delta buffers are zeroed because
        // only the ring's cores are written.
        ensure_list(workspace.deltas_, k, big_n, /*zero=*/true, workspace.resource());
        for (std::size_t f = 0; f < k; ++f)
            for (std::size_t pos = 0; pos < k; ++pos) {
                const std::size_t slot = (pos + k - (f % k)) % k;
                workspace.deltas_[f][ring.cores[pos]] =
                    ring.slot_power_w[slot] - idle_power_w_;
            }
        periodic_response_max_into(workspace.deltas_.data(), k,
                                   tau_per_ring[r], samples_per_epoch,
                                   workspace, workspace.core_max_);
        for (std::size_t i = 0; i < n; ++i)
            workspace.extra_[i] += workspace.core_max_[i];
    }

    double peak = -1e300;
    for (std::size_t i = 0; i < n; ++i)
        peak = std::max(peak, workspace.t_idle_[i] + workspace.extra_[i]);
    return peak;
}

void PeakTemperatureAnalyzer::rotation_peak_tau_batch(
    const std::vector<RotationRingSpec>& rings, const double* taus,
    std::size_t tau_count, std::size_t samples_per_epoch,
    PeakWorkspace& workspace, double* peaks) const {
    if (tau_count == 0) return;
    const thermal::ThermalModel& model = solver_->model();
    const std::size_t n = model.core_count();
    const std::size_t big_n = model.node_count();

    // All-idle baseline — shared by every τ rung.
    ensure_size(workspace.core_power_, n);
    for (std::size_t i = 0; i < n; ++i)
        workspace.core_power_[i] = idle_power_w_;
    model.pad_power_into(workspace.core_power_, workspace.node_power_);
    solver_->steady_state_into(workspace.node_power_, ambient_c_,
                               workspace.thermal_, workspace.t_idle_);

    std::pmr::vector<double>& extra = workspace.extra_batch_;
    if (extra.size() < tau_count * n) extra.resize(tau_count * n);
    for (std::size_t i = 0; i < tau_count * n; ++i) extra[i] = 0.0;
    reserve_sample_batch(rings, samples_per_epoch, workspace);

    for (std::size_t r = 0; r < rings.size(); ++r) {
        const RotationRingSpec& ring = rings[r];
        const std::size_t k = ring.cores.size();
        if (ring.slot_power_w.size() != k)
            throw std::invalid_argument(
                "rotation_peak: ring slot/core size mismatch");
        if (k == 0) continue;
        bool any_delta = false;
        for (double p : ring.slot_power_w)
            if (std::abs(p - idle_power_w_) > 1e-12) any_delta = true;
        if (!any_delta) continue;

        // The per-epoch power deltas and their modal targets y_f = β·P_f are
        // τ-independent: build them once per ring, then re-run only the
        // geometric-series evaluation at each rung.
        ensure_list(workspace.deltas_, k, big_n, /*zero=*/true, workspace.resource());
        for (std::size_t f = 0; f < k; ++f)
            for (std::size_t pos = 0; pos < k; ++pos) {
                const std::size_t slot = (pos + k - (f % k)) % k;
                workspace.deltas_[f][ring.cores[pos]] =
                    ring.slot_power_w[slot] - idle_power_w_;
            }
        build_modal_targets(workspace.deltas_.data(), k, workspace);
        for (std::size_t t = 0; t < tau_count; ++t) {
            evaluate_periodic_max(k, taus[t], samples_per_epoch, workspace,
                                  workspace.core_max_);
            double* extra_t = extra.data() + t * n;
            for (std::size_t i = 0; i < n; ++i)
                extra_t[i] += workspace.core_max_[i];
        }
    }

    for (std::size_t t = 0; t < tau_count; ++t) {
        const double* extra_t = extra.data() + t * n;
        double peak = -1e300;
        for (std::size_t i = 0; i < n; ++i)
            peak = std::max(peak, workspace.t_idle_[i] + extra_t[i]);
        peaks[t] = peak;
    }
}

void PeakTemperatureAnalyzer::static_peak_batch(const double* core_powers,
                                                std::size_t nrhs,
                                                PeakWorkspace& workspace,
                                                double* peaks) const {
    if (nrhs == 0) return;
    const thermal::ThermalModel& model = solver_->model();
    const std::size_t n = model.core_count();
    const std::size_t big_n = model.node_count();

    std::pmr::vector<double>& padded = workspace.batch_node_power_;
    if (padded.size() < big_n * nrhs) padded.resize(big_n * nrhs);
    std::pmr::vector<double>& steady = workspace.batch_steady_;
    if (steady.size() < big_n * nrhs) steady.resize(big_n * nrhs);

    for (std::size_t r = 0; r < nrhs; ++r) {
        double* dst = padded.data() + r * big_n;
        const double* src = core_powers + r * n;
        for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
        for (std::size_t i = n; i < big_n; ++i) dst[i] = 0.0;
    }
    solver_->steady_state_batch_into(padded.data(), nrhs, ambient_c_,
                                     workspace.thermal_, steady.data());
    for (std::size_t r = 0; r < nrhs; ++r) {
        const double* t = steady.data() + r * big_n;
        double peak = -1e300;
        for (std::size_t i = 0; i < n; ++i) peak = std::max(peak, t[i]);
        peaks[r] = peak;
    }
}

}  // namespace hp::core
