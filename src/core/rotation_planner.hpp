#pragma once

#include <cstddef>
#include <vector>

#include "arch/manycore.hpp"
#include "core/peak_temperature.hpp"
#include "perf/interval_model.hpp"

namespace hp::core {

/// A thread as the design-time planner sees it: its power draw and its
/// performance characteristics (for ring-placement preferences).
struct ThreadEstimate {
    double power_w = 5.0;
    perf::PhasePoint perf;
};

/// One candidate rotation plan: which ring each thread lives in, the chosen
/// rotation interval (rotation_on == false means pinned execution), the
/// certified peak temperature and the throughput score used for comparison.
struct RotationPlan {
    std::vector<std::size_t> ring_of_thread;
    bool rotation_on = true;
    double tau_s = 0.5e-3;
    double predicted_peak_c = 0.0;
    bool thermally_safe = false;
    /// Aggregate instructions/s across threads, net of migration overhead.
    double throughput_score = 0.0;
};

/// Design-time rotation planning: the scheduling core of Algorithm 2,
/// separated from the run-time machinery so it can be used for offline
/// what-if exploration — and compared against exhaustive search to measure
/// the optimality gap of the paper's greedy heuristic (the assignment
/// problem is NP-hard; SSV).
class RotationPlanner {
public:
    /// All references must outlive the planner.
    RotationPlanner(const arch::ManyCore& chip,
                    const perf::IntervalPerformanceModel& perf_model,
                    const PeakTemperatureAnalyzer& analyzer,
                    std::vector<double> tau_ladder_s = {0.125e-3, 0.25e-3,
                                                        0.5e-3, 1e-3, 2e-3,
                                                        4e-3});

    /// Throughput score of a concrete assignment at a concrete rotation
    /// setting: each thread runs at the mean IPS over its ring's cores
    /// (under rotation it visits them all), minus the migration-stall
    /// fraction stall/tau.
    double throughput_score(const std::vector<ThreadEstimate>& threads,
                            const std::vector<std::size_t>& ring_of_thread,
                            bool rotation_on, double tau_s) const;

    /// Certified peak temperature of an assignment (Algorithm 1).
    double predicted_peak_c(const std::vector<ThreadEstimate>& threads,
                            const std::vector<std::size_t>& ring_of_thread,
                            bool rotation_on, double tau_s) const;

    /// Greedy plan following Algorithm 2's arrival logic: threads in input
    /// order, each into the lowest-AMD ring that stays safe; if none is
    /// safe, the highest-AMD ring with space and a faster rotation. After
    /// placement the rotation is relaxed (slowed/stopped) while safety holds
    /// — lines 23-27. Throws std::invalid_argument if the threads cannot
    /// physically fit.
    RotationPlan plan_greedy(const std::vector<ThreadEstimate>& threads,
                             double t_dtm_c, double headroom_delta_c = 1.0) const;

    /// Exhaustive plan: enumerates every thread-to-ring assignment and every
    /// rotation setting, returning the best-throughput thermally-safe plan
    /// (or, if nothing is safe, the lowest-peak plan). Exponential in thread
    /// count — intended for small validation instances only; throws
    /// std::invalid_argument beyond @p max_threads.
    RotationPlan plan_exhaustive(const std::vector<ThreadEstimate>& threads,
                                 double t_dtm_c,
                                 double headroom_delta_c = 1.0,
                                 std::size_t max_threads = 10) const;

private:
    std::vector<RotationRingSpec> build_specs(
        const std::vector<ThreadEstimate>& threads,
        const std::vector<std::size_t>& ring_of_thread) const;

    const arch::ManyCore* chip_;
    const perf::IntervalPerformanceModel* perf_;
    const PeakTemperatureAnalyzer* analyzer_;
    std::vector<double> tau_ladder_s_;
};

}  // namespace hp::core
