#include "core/hotpotato_dvfs.hpp"

#include <algorithm>

#include "sched/placement.hpp"
#include "sched/tsp.hpp"

namespace hp::core {

void HotPotatoDvfsScheduler::on_epoch(sim::SimContext& ctx) {
    HotPotatoScheduler::on_epoch(ctx);

    const double limit = ctx.config().t_dtm_c - params().headroom_delta_c;
    if (last_predicted_peak_c() >= limit && at_fastest_rotation()) {
        engage(ctx);
    } else if (engaged_) {
        relax(ctx);
    }
}

void HotPotatoDvfsScheduler::engage(sim::SimContext& ctx) {
    const std::vector<bool> mask = sched::active_core_mask(ctx);
    const sched::TspBudget tsp(ctx.thermal_model());
    const double idle = ctx.power_model().idle_power_w(ctx.config().t_dtm_c);
    const double budget = tsp.per_core_budget(
        mask, idle, ctx.config().ambient_c, ctx.config().t_dtm_c);

    const double f_ref = ctx.power_model().params().f_ref_hz;
    for (std::size_t c = 0; c < mask.size(); ++c) {
        if (!mask[c]) continue;
        const sim::ThreadId id = ctx.thread_on(c);
        const perf::PhasePoint& point = ctx.thread_phase_point(id);
        const double f = ctx.power_model().max_frequency_within(
            budget, point.nominal_power_w,
            [&](double fc) {
                return ctx.perf_model().power_activity(point, c, fc, f_ref);
            },
            ctx.config().t_dtm_c);
        ctx.set_frequency(c, f);
    }
    // The re-clock shifts every thread's power history, so cached peak
    // predictions keyed on the old powers are stale.
    invalidate_peak_cache();
    engaged_ = true;
}

void HotPotatoDvfsScheduler::relax(sim::SimContext& ctx) {
    const arch::DvfsParams& dvfs = ctx.chip().dvfs();
    bool all_at_max = true;
    for (std::size_t c = 0; c < ctx.chip().core_count(); ++c) {
        const double f = ctx.frequency(c);
        if (f < dvfs.f_max_hz) {
            ctx.set_frequency(c, std::min(dvfs.f_max_hz, f + dvfs.step_hz));
            all_at_max = false;
        }
    }
    if (!all_at_max) invalidate_peak_cache();
    if (all_at_max) engaged_ = false;
}

}  // namespace hp::core
