#pragma once

#include <cstddef>
#include <memory_resource>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "thermal/solver.hpp"
#include "thermal/workspace.hpp"

namespace hp::core {

/// One rotation ring handed to the peak-temperature analysis: the cores in
/// cycle order and the power of each slot's occupant (idle slots carry the
/// idle power). At every rotation epoch the occupant of slot j moves to slot
/// j+1 (mod size).
struct RotationRingSpec {
    std::vector<std::size_t> cores;
    std::vector<double> slot_power_w;
};

/// Caller-owned scratch for PeakTemperatureAnalyzer queries.
///
/// Every run-time entry point has an overload taking one of these; after the
/// first (sizing) call the query runs without heap allocations — the
/// modal y/z arrays, geometric e^{λτ} tables and per-ring delta vectors are
/// all reused. Buffer lists only ever grow, so alternating between rings of
/// different sizes does not re-allocate. A workspace may be reused across
/// analyzers/models (buffers re-size on demand) but must not be shared
/// between threads; the analyzer itself stays immutable and shareable.
class PeakWorkspace {
public:
    PeakWorkspace() = default;

    /// All buffers (present and future) allocate from @p mr — the campaign
    /// worker's node-local arena. The outer list spines stay on the heap
    /// (a handful of pointers); every double buffer, including the embedded
    /// ThermalWorkspace, lives on the resource. Placement never affects
    /// query results, only locality.
    explicit PeakWorkspace(std::pmr::memory_resource* mr)
        : mr_(mr),
          coeff_(mr),
          zs_batch_(mr),
          resp_batch_(mr),
          core_max_(mr),
          extra_(mr),
          t_idle_(mr),
          core_power_(mr),
          node_power_(mr),
          extra_batch_(mr),
          batch_node_power_(mr),
          batch_steady_(mr),
          ek_(mr),
          ek_pow_(mr),
          qfrac_(mr),
          qpow_(mr),
          thermal_(mr) {}

    /// Resource newly-grown buffers are carved from (default resource when
    /// the workspace was default-constructed).
    std::pmr::memory_resource* resource() const { return mr_; }

private:
    friend class PeakTemperatureAnalyzer;
    std::pmr::memory_resource* mr_ = std::pmr::get_default_resource();
    std::vector<linalg::Vector> y_;         ///< modal epoch targets β·P_f
    std::vector<linalg::Vector> z_;         ///< periodic boundary solution
    std::vector<linalg::Vector> eks_frac_;  ///< intra-epoch decay factors
    std::vector<linalg::Vector> deltas_;    ///< per-epoch node power deltas
    std::vector<double> tau_;               ///< broadcast per-ring τ
    linalg::Vector coeff_;                  ///< (1-e^{λτ})/(1-e^{λδτ})
    std::pmr::vector<double> zs_batch_;     ///< RHS-major modal samples
    std::pmr::vector<double> resp_batch_;   ///< RHS-major projected responses
    linalg::Vector core_max_;
    linalg::Vector extra_;
    linalg::Vector t_idle_;
    linalg::Vector core_power_;
    linalg::Vector node_power_;
    std::pmr::vector<double> extra_batch_;  ///< per-τ-rung response maxima
    std::pmr::vector<double> batch_node_power_;  ///< RHS-major padded cands
    std::pmr::vector<double> batch_steady_;      ///< RHS-major batched solves
    std::pmr::vector<double> ek_;                ///< e^{λ_k τ}
    std::pmr::vector<double> ek_pow_;            ///< e^{λ_k τ g}, g = 0..δ
    // Truncated-backend correction state (untouched on exact backends):
    std::vector<linalg::Vector> cfield_;  ///< per-epoch dropped core fields
    std::vector<linalg::Vector> cstar_;   ///< dropped periodic boundary state
    std::pmr::vector<double> qfrac_;      ///< e^{λ̄ τ s/S}, s = 1..S
    std::pmr::vector<double> qpow_;       ///< e^{λ̄ τ g}, g = 0..δ
    thermal::ThermalWorkspace thermal_;
};

/// Analytical peak temperature of synchronous thread rotations
/// (paper §IV, Algorithm 1).
///
/// Construction performs the design-time phase: it reuses the backend's
/// modal decomposition C = V·diag(λ)·V^{-1} and precomputes the auxiliary
/// matrix β = V^{-1}·B^{-1} together with the ambient offset B^{-1}·T_amb·G
/// (the α/β matrices of Algorithm 1). Run-time queries then solve the
/// periodic steady state in modal space:
///
///   z_k(e) = (1-e^{λ_k τ}) / (1-e^{λ_k δτ}) · Σ_f e^{λ_k τ·((e-f) mod δ)} y_{f,k}
///
/// which is Eq. (10) of the paper — the geometric series of Eq. (9) closed
/// in each eigen-direction — evaluated at every epoch boundary e, maxed per
/// Eq. (11). All eigenvalues are negative (B SPD), so the series converges
/// and the result is a true steady-periodic bound independent of the initial
/// temperature.
///
/// On a truncated backend (mode_count() < node_count()) the retained modes
/// alone would miss tens of Kelvin of quasi-static hotspot content, so every
/// query adds a dropped-cluster correction: the exact quasi-static core
/// response of each epoch, c_f(i) = (B^{-1}P_f)(i) - Σ_{k<K} V(i,k)·y_{f,k}
/// (a sparse direct solve, no eigenmodes), tracked through one representative
/// fast pole λ̄ = cluster_pole() by the same periodic geometric series in
/// scalar form. The residual error is what the backend's error_bound_c()
/// covers. Exact backends skip the correction entirely and reproduce the
/// historical dense results bit for bit.
///
/// Thread safety: immutable after construction. The α/β eigen-tables are
/// built in the constructor and the analysis entry points are const and
/// allocate only locals, so one analyzer may serve concurrent campaign
/// workers sharing a campaign::StudySetup. The overloads taking a
/// PeakWorkspace preserve this: all mutable state lives in the caller's
/// workspace, so concurrent queries remain safe with one workspace per
/// thread.
class PeakTemperatureAnalyzer {
public:
    /// @p solver (and its thermal model) must outlive the analyzer.
    /// @p idle_power_w is the power of a core without a thread, evaluated
    /// conservatively (leakage at the DTM threshold) by callers.
    PeakTemperatureAnalyzer(const thermal::TransientSolver& solver,
                            double ambient_c, double idle_power_w);

    double ambient_c() const { return ambient_c_; }
    double idle_power_w() const { return idle_power_w_; }

    /// Exact periodic-steady-state node temperatures at the end of each
    /// epoch for an explicit periodic schedule: core_power_per_epoch[f] is
    /// held for @p tau seconds, the whole pattern repeats. Used by
    /// schedule_peak and by the validation tests.
    std::vector<linalg::Vector> boundary_temperatures(
        const std::vector<linalg::Vector>& core_power_per_epoch,
        double tau) const;

    /// Peak core temperature of the periodic schedule, sampling
    /// @p samples_per_epoch points inside every epoch (the end point plus
    /// interior points — per-node transients are not monotonic, so pure
    /// boundary sampling can shave an interior hump).
    double schedule_peak(
        const std::vector<linalg::Vector>& core_power_per_epoch, double tau,
        std::size_t samples_per_epoch = 2) const;

    /// schedule_peak reusing caller-owned scratch (zero heap allocations
    /// once @p workspace is warm). Results are bit-identical to the
    /// allocating overload.
    double schedule_peak(const std::vector<linalg::Vector>& core_power_per_epoch,
                         double tau, std::size_t samples_per_epoch,
                         PeakWorkspace& workspace) const;

    /// Steady-state peak core temperature of a static (non-rotating) power
    /// assignment.
    double static_peak(const linalg::Vector& core_power) const;

    /// static_peak reusing caller-owned scratch.
    double static_peak(const linalg::Vector& core_power,
                       PeakWorkspace& workspace) const;

    /// static_peak that additionally writes the steady-state temperature of
    /// every core into @p core_peak_c (core_count() entries, caller-sized).
    /// The scalar result and the map entries are exactly what static_peak
    /// computes — the map is copied out of the same workspace state, so this
    /// overload is bit-identical to the scalar one. Used by the advice
    /// server, whose responses carry the full peak map.
    double static_peak_map(const linalg::Vector& core_power,
                           PeakWorkspace& workspace,
                           double* core_peak_c) const;

    /// Peak core temperature with every listed ring rotating synchronously
    /// at interval @p tau and all remaining cores idle.
    ///
    /// Rings generally have coprime sizes, so the exact joint schedule only
    /// repeats after lcm(sizes) epochs; instead of materialising that, the
    /// analysis exploits linearity: the response decomposes into an all-idle
    /// baseline plus one independent periodic response per ring, and
    /// per-node maxima are summed (max of sums <= sum of maxima). For a
    /// single occupied ring this is exact at the sample points; for multiple
    /// rings it is a safe upper bound whose slack is the (tiny) cross-ring
    /// ripple correlation.
    double rotation_peak(const std::vector<RotationRingSpec>& rings,
                         double tau, std::size_t samples_per_epoch = 2) const;

    /// rotation_peak (uniform τ) reusing caller-owned scratch — the form the
    /// HotPotato candidate loop evaluates hundreds of times per epoch.
    double rotation_peak(const std::vector<RotationRingSpec>& rings,
                         double tau, std::size_t samples_per_epoch,
                         PeakWorkspace& workspace) const;

    /// rotation_peak (uniform τ) that additionally writes each core's
    /// sampled peak — all-idle baseline plus its summed per-ring periodic
    /// response maxima — into @p core_peak_c (core_count() entries,
    /// caller-sized). Bit-identical to the scalar overload: the map is read
    /// out of the same workspace state the scalar max runs over.
    double rotation_peak_map(const std::vector<RotationRingSpec>& rings,
                             double tau, std::size_t samples_per_epoch,
                             PeakWorkspace& workspace,
                             double* core_peak_c) const;

    /// Per-ring rotation intervals: rings[i] rotates every tau_per_ring[i]
    /// seconds. The superposition decomposition makes heterogeneous
    /// cadences free — each ring's periodic response is solved at its own
    /// interval — enabling e.g. slow rotation on thermally-unconstrained
    /// outer rings while the centre rotates fast (an extension beyond the
    /// paper's single global τ).
    double rotation_peak(const std::vector<RotationRingSpec>& rings,
                         const std::vector<double>& tau_per_ring,
                         std::size_t samples_per_epoch = 2) const;

    /// Per-ring-τ rotation_peak reusing caller-owned scratch.
    double rotation_peak(const std::vector<RotationRingSpec>& rings,
                         const std::vector<double>& tau_per_ring,
                         std::size_t samples_per_epoch,
                         PeakWorkspace& workspace) const;

    /// Evaluates rotation_peak for the same ring set at @p tau_count
    /// different rotation intervals in one pass: the all-idle baseline and
    /// every ring's modal epoch targets y_f = β·P_f are τ-independent, so
    /// they are computed once and only the geometric-series evaluation runs
    /// per rung. peaks[t] is bit-identical to
    /// rotation_peak(rings, taus[t], samples_per_epoch, workspace) — the
    /// per-rung operation sequence is unchanged, only shared work is hoisted.
    /// This is the batched slate HotPotato scores when probing its τ ladder.
    void rotation_peak_tau_batch(const std::vector<RotationRingSpec>& rings,
                                 const double* taus, std::size_t tau_count,
                                 std::size_t samples_per_epoch,
                                 PeakWorkspace& workspace,
                                 double* peaks) const;

    /// static_peak over @p nrhs candidate core-power vectors in one batched
    /// steady-state solve (the multi-candidate slate of HotPotato's
    /// rotation-off placement scan). @p core_powers is RHS-major — candidate
    /// r occupies [r·core_count(), (r+1)·core_count()). peaks[r] is
    /// bit-identical to static_peak(candidate r, workspace).
    void static_peak_batch(const double* core_powers, std::size_t nrhs,
                           PeakWorkspace& workspace, double* peaks) const;

private:
    /// The allocation-free core of Algorithm 1's run-time phase: consumes
    /// @p delta node-power vectors starting at @p node_power_per_epoch and
    /// writes the per-core response maxima into @p core_max (resized on
    /// first use). All intermediates live in @p workspace.
    void periodic_response_max_into(const linalg::Vector* node_power_per_epoch,
                                    std::size_t delta, double tau,
                                    std::size_t samples_per_epoch,
                                    PeakWorkspace& workspace,
                                    linalg::Vector& core_max) const;

    /// Pre-grows the RHS-major sample staging/projection buffers to the
    /// largest ring of a query, so evaluate_periodic_max never reallocates
    /// mid-query (one growth per workspace instead of one per ring size).
    void reserve_sample_batch(const std::vector<RotationRingSpec>& rings,
                              std::size_t samples_per_epoch,
                              PeakWorkspace& workspace) const;

    /// τ-independent half of periodic_response_max_into: fills workspace.y_
    /// with the modal epoch targets y_f = β·P_f. Splitting this out lets
    /// rotation_peak_tau_batch evaluate one ring at many rotation intervals
    /// without redoing the (dominant) β projections.
    void build_modal_targets(const linalg::Vector* node_power_per_epoch,
                             std::size_t delta, PeakWorkspace& workspace) const;

    /// τ-dependent half: consumes workspace.y_ (left untouched, so it may be
    /// re-evaluated at another τ) and writes per-core response maxima.
    void evaluate_periodic_max(std::size_t delta, double tau,
                               std::size_t samples_per_epoch,
                               PeakWorkspace& workspace,
                               linalg::Vector& core_max) const;

    const thermal::TransientSolver* solver_;
    double ambient_c_;
    double idle_power_w_;
    std::size_t modes_;              ///< retained mode count K (design-time)
    bool truncated_;                 ///< dropped-cluster corrections active
    double cluster_pole_;            ///< λ̄ of the dropped cluster (< 0)
    linalg::Matrix beta_;            ///< K x N  V^{-1} B^{-1} (design-time)
    linalg::Matrix beta_t_;          ///< β^T: row j = β column j (cache-friendly
                                     ///< accumulation over sparse power vectors)
    linalg::Matrix v_cores_;         ///< V core rows, row-major (i, k) = V(i, k);
                                     ///< the modal→core projection is one matmat
                                     ///< over all boundary/interior samples
    linalg::Matrix quasi_static_map_;  ///< Truncated backends only: row j holds
                                       ///< the per-core dropped-cluster response
                                       ///< to unit power at node j,
                                       ///< Q(j,i) = (B^{-1})(i,j) − Σ_k V(i,k)β(k,j),
                                       ///< so c_f = Σ_j P_f(j)·Q(j,·) is a sparse
                                       ///< gather instead of a banded solve per
                                       ///< epoch. A floorplan constant (B is
                                       ///< symmetric, so B^{-1} core rows come
                                       ///< from `cores` unit-vector solves).
    linalg::Vector ambient_offset_;  ///< B^{-1} T_amb G
};

}  // namespace hp::core
