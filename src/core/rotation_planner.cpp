#include "core/rotation_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hp::core {

RotationPlanner::RotationPlanner(
    const arch::ManyCore& chip,
    const perf::IntervalPerformanceModel& perf_model,
    const PeakTemperatureAnalyzer& analyzer, std::vector<double> tau_ladder_s)
    : chip_(&chip),
      perf_(&perf_model),
      analyzer_(&analyzer),
      tau_ladder_s_(std::move(tau_ladder_s)) {
    if (tau_ladder_s_.empty() ||
        !std::is_sorted(tau_ladder_s_.begin(), tau_ladder_s_.end()))
        throw std::invalid_argument(
            "RotationPlanner: tau ladder must be non-empty and ascending");
}

std::vector<RotationRingSpec> RotationPlanner::build_specs(
    const std::vector<ThreadEstimate>& threads,
    const std::vector<std::size_t>& ring_of_thread) const {
    const auto& rings = chip_->rings();
    std::vector<RotationRingSpec> specs(rings.size());
    for (std::size_t r = 0; r < rings.size(); ++r) {
        specs[r].cores = rings[r].cores;
        specs[r].slot_power_w.assign(rings[r].cores.size(),
                                     analyzer_->idle_power_w());
    }
    std::vector<std::size_t> next_slot(rings.size(), 0);
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const std::size_t r = ring_of_thread[i];
        if (r >= rings.size())
            throw std::invalid_argument("RotationPlanner: bad ring index");
        if (next_slot[r] >= specs[r].slot_power_w.size())
            throw std::invalid_argument(
                "RotationPlanner: ring over capacity");
        specs[r].slot_power_w[next_slot[r]++] = threads[i].power_w;
    }
    return specs;
}

double RotationPlanner::predicted_peak_c(
    const std::vector<ThreadEstimate>& threads,
    const std::vector<std::size_t>& ring_of_thread, bool rotation_on,
    double tau_s) const {
    const auto specs = build_specs(threads, ring_of_thread);
    if (rotation_on) return analyzer_->rotation_peak(specs, tau_s);
    // Pinned execution: materialise the slot assignment as a static vector.
    linalg::Vector power(chip_->core_count(), analyzer_->idle_power_w());
    for (const RotationRingSpec& spec : specs)
        for (std::size_t j = 0; j < spec.cores.size(); ++j)
            power[spec.cores[j]] = spec.slot_power_w[j];
    return analyzer_->static_peak(power);
}

double RotationPlanner::throughput_score(
    const std::vector<ThreadEstimate>& threads,
    const std::vector<std::size_t>& ring_of_thread, bool rotation_on,
    double tau_s) const {
    const double f_max = chip_->dvfs().f_max_hz;
    double score = 0.0;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const auto& ring = chip_->rings()[ring_of_thread[i]];
        // Under rotation the thread visits every core of the ring; cores of
        // a ring share one AMD, so any member is representative.
        const std::size_t core = ring.cores.front();
        double ips = perf_->instructions_per_second(threads[i].perf, core, f_max);
        if (rotation_on && ring.cores.size() > 1) {
            const double stall = perf_->migration_stall_s(core);
            ips *= std::max(0.0, 1.0 - stall / tau_s);
        }
        score += ips;
    }
    return score;
}

RotationPlan RotationPlanner::plan_greedy(
    const std::vector<ThreadEstimate>& threads, double t_dtm_c,
    double headroom_delta_c) const {
    const auto& rings = chip_->rings();
    std::size_t capacity = 0;
    for (const auto& r : rings) capacity += r.cores.size();
    if (threads.size() > capacity)
        throw std::invalid_argument("RotationPlanner: threads do not fit");

    const double limit = t_dtm_c - headroom_delta_c;
    std::vector<std::size_t> counts(rings.size(), 0);
    std::vector<std::size_t> assignment;
    bool rotation_on = true;
    // Start at the rung closest to the paper's 0.5 ms default.
    std::size_t tau_idx = 0;
    for (std::size_t i = 0; i < tau_ladder_s_.size(); ++i)
        if (std::abs(tau_ladder_s_[i] - 0.5e-3) <
            std::abs(tau_ladder_s_[tau_idx] - 0.5e-3))
            tau_idx = i;

    for (std::size_t i = 0; i < threads.size(); ++i) {
        bool placed = false;
        for (std::size_t r = 0; r < rings.size() && !placed; ++r) {
            if (counts[r] >= rings[r].cores.size()) continue;
            assignment.push_back(r);
            ++counts[r];
            const std::vector<ThreadEstimate> so_far(threads.begin(),
                                                     threads.begin() + i + 1);
            if (predicted_peak_c(so_far, assignment, rotation_on,
                                 tau_ladder_s_[tau_idx]) < limit) {
                placed = true;
            } else {
                assignment.pop_back();
                --counts[r];
            }
        }
        if (!placed) {
            // Lines 7-14: highest-AMD ring with space, then speed rotation.
            for (std::size_t r = rings.size(); r-- > 0;) {
                if (counts[r] >= rings[r].cores.size()) continue;
                assignment.push_back(r);
                ++counts[r];
                placed = true;
                break;
            }
            const std::vector<ThreadEstimate> so_far(threads.begin(),
                                                     threads.begin() + i + 1);
            while (tau_idx > 0 &&
                   predicted_peak_c(so_far, assignment, rotation_on,
                                    tau_ladder_s_[tau_idx]) >= limit)
                --tau_idx;
        }
    }

    // Lines 8-14 repair pass: if the final configuration is still unsafe,
    // demote the least memory-bound (lowest CPI, least placement-sensitive)
    // threads outward and speed the rotation until headroom appears.
    const double f_max = chip_->dvfs().f_max_hz;
    double peak = predicted_peak_c(threads, assignment, rotation_on,
                                   tau_ladder_s_[tau_idx]);
    std::size_t guard = threads.size() * rings.size();
    while (peak >= limit && guard-- > 0) {
        std::size_t victim = threads.size();
        double victim_cpi = 1e300;
        for (std::size_t i = 0; i < threads.size(); ++i) {
            bool outer_space = false;
            for (std::size_t r = assignment[i] + 1; r < rings.size(); ++r)
                if (counts[r] < rings[r].cores.size()) outer_space = true;
            if (!outer_space) continue;
            const double cpi = perf_->effective_cpi(
                threads[i].perf, rings[assignment[i]].cores.front(), f_max);
            if (cpi < victim_cpi) {
                victim_cpi = cpi;
                victim = i;
            }
        }
        if (victim == threads.size()) break;
        for (std::size_t r = assignment[victim] + 1; r < rings.size(); ++r) {
            if (counts[r] >= rings[r].cores.size()) continue;
            --counts[assignment[victim]];
            assignment[victim] = r;
            ++counts[r];
            break;
        }
        peak = predicted_peak_c(threads, assignment, rotation_on,
                                tau_ladder_s_[tau_idx]);
    }
    while (peak >= limit && tau_idx > 0) {
        --tau_idx;
        peak = predicted_peak_c(threads, assignment, rotation_on,
                                tau_ladder_s_[tau_idx]);
    }

    // Lines 23-27: relax the rotation while safety holds.
    while (rotation_on) {
        const bool at_top = tau_idx + 1 >= tau_ladder_s_.size();
        const bool candidate_on = !at_top;
        const std::size_t candidate_idx = at_top ? tau_idx : tau_idx + 1;
        if (predicted_peak_c(threads, assignment, candidate_on,
                             tau_ladder_s_[candidate_idx]) < limit) {
            rotation_on = candidate_on;
            tau_idx = candidate_idx;
        } else {
            break;
        }
    }

    RotationPlan plan;
    plan.ring_of_thread = std::move(assignment);
    plan.rotation_on = rotation_on;
    plan.tau_s = tau_ladder_s_[tau_idx];
    plan.predicted_peak_c = predicted_peak_c(threads, plan.ring_of_thread,
                                             plan.rotation_on, plan.tau_s);
    plan.thermally_safe = plan.predicted_peak_c < limit;
    plan.throughput_score = throughput_score(threads, plan.ring_of_thread,
                                             plan.rotation_on, plan.tau_s);
    return plan;
}

RotationPlan RotationPlanner::plan_exhaustive(
    const std::vector<ThreadEstimate>& threads, double t_dtm_c,
    double headroom_delta_c, std::size_t max_threads) const {
    if (threads.size() > max_threads)
        throw std::invalid_argument(
            "RotationPlanner: exhaustive search limited to small instances");
    const auto& rings = chip_->rings();
    const double limit = t_dtm_c - headroom_delta_c;

    RotationPlan best_safe;      // highest throughput among safe plans
    RotationPlan best_fallback;  // lowest peak overall
    best_fallback.predicted_peak_c = 1e300;
    bool have_safe = false, have_any = false;

    std::vector<std::size_t> assignment(threads.size(), 0);
    std::vector<std::size_t> counts(rings.size(), 0);

    const auto evaluate = [&]() {
        // Rotation settings: pinned, or each ladder rung.
        for (std::size_t setting = 0; setting <= tau_ladder_s_.size();
             ++setting) {
            const bool rotation_on = setting > 0;
            const double tau =
                rotation_on ? tau_ladder_s_[setting - 1] : tau_ladder_s_[0];
            RotationPlan plan;
            plan.ring_of_thread = assignment;
            plan.rotation_on = rotation_on;
            plan.tau_s = tau;
            plan.predicted_peak_c =
                predicted_peak_c(threads, assignment, rotation_on, tau);
            plan.thermally_safe = plan.predicted_peak_c < limit;
            plan.throughput_score =
                throughput_score(threads, assignment, rotation_on, tau);
            if (plan.thermally_safe &&
                (!have_safe ||
                 plan.throughput_score > best_safe.throughput_score)) {
                best_safe = plan;
                have_safe = true;
            }
            if (!have_any ||
                plan.predicted_peak_c < best_fallback.predicted_peak_c) {
                best_fallback = plan;
                have_any = true;
            }
        }
    };

    const auto recurse = [&](auto&& self, std::size_t i) -> void {
        if (i == threads.size()) {
            evaluate();
            return;
        }
        for (std::size_t r = 0; r < rings.size(); ++r) {
            if (counts[r] >= rings[r].cores.size()) continue;
            assignment[i] = r;
            ++counts[r];
            self(self, i + 1);
            --counts[r];
        }
    };
    recurse(recurse, 0);

    if (!have_any)
        throw std::invalid_argument("RotationPlanner: threads do not fit");
    return have_safe ? best_safe : best_fallback;
}

}  // namespace hp::core
