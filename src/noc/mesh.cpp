#include "noc/mesh.hpp"

#include <stdexcept>

namespace hp::noc {

MeshNoc::MeshNoc(const floorplan::GridFloorplan& plan, NocParams params)
    : plan_(&plan), params_(params) {
    const std::size_t n = plan.core_count();
    adjacency_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j : plan.neighbors(i))
            adjacency_[i].emplace_back(j, links_++);
        for (std::size_t j : plan.stack_neighbors(i))
            adjacency_[i].emplace_back(j, links_++);
    }
}

LinkId MeshNoc::link_between(std::size_t from, std::size_t to) const {
    if (from >= adjacency_.size())
        throw std::out_of_range("MeshNoc::link_between: bad router");
    for (const auto& [neighbor, link] : adjacency_[from])
        if (neighbor == to) return link;
    throw std::invalid_argument("MeshNoc::link_between: routers not adjacent");
}

std::vector<LinkId> MeshNoc::route(std::size_t src, std::size_t dst) const {
    const auto& src_tile = plan_->tile(src);
    const auto& dst_tile = plan_->tile(dst);

    std::vector<LinkId> out;
    std::size_t row = src_tile.row;
    std::size_t col = src_tile.col;
    std::size_t layer = src_tile.layer;
    std::size_t at = src;

    const auto step_to = [&](std::size_t next) {
        out.push_back(link_between(at, next));
        at = next;
    };
    // X first (columns), then Y (rows), then Z (layers).
    while (col != dst_tile.col) {
        col += col < dst_tile.col ? 1 : std::size_t(-1);
        step_to(plan_->index_of(row, col, layer));
    }
    while (row != dst_tile.row) {
        row += row < dst_tile.row ? 1 : std::size_t(-1);
        step_to(plan_->index_of(row, col, layer));
    }
    while (layer != dst_tile.layer) {
        layer += layer < dst_tile.layer ? 1 : std::size_t(-1);
        step_to(plan_->index_of(row, col, layer));
    }
    return out;
}

}  // namespace hp::noc
