#pragma once

#include <vector>

#include "noc/mesh.hpp"

namespace hp::noc {

/// Bytes moved per LLC transaction in each direction.
struct TransactionBytes {
    double request = 16.0;  ///< address + command flit(s)
    double reply = 80.0;    ///< 64 B cache line + header
};

/// Analytic link-contention model for S-NUCA LLC traffic.
///
/// Each core issues LLC transactions at some rate; S-NUCA's static address
/// interleaving spreads destinations uniformly over all banks, so the
/// request takes route(core, bank) and the reply route(bank, core). The
/// model accumulates the offered load on every directed link and converts
/// utilisation into an M/D/1 queueing delay per link,
///
///     d_link = s * u / (2 (1 - u)),   s = service time of one transaction,
///
/// then reports, per core, the expected extra round-trip delay of one of its
/// transactions — the congestion term the interval performance model adds on
/// top of the zero-load LLC latency. Per-(core, link) expected traversal
/// counts are precomputed once (O(n^2 * diameter)), so an update costs
/// O(n * links).
class TrafficModel {
public:
    /// @p mesh must outlive the model.
    explicit TrafficModel(const MeshNoc& mesh, TransactionBytes bytes = {});

    const MeshNoc& mesh() const { return *mesh_; }

    /// Per-link utilisation in [0, 1) for the given per-core transaction
    /// rates (transactions/s, size core_count).
    std::vector<double> link_utilization(
        const std::vector<double>& core_transaction_rates) const;

    /// Expected extra (queueing) round-trip delay per transaction for every
    /// core, seconds. Utilisation is clamped to @p max_utilization to keep
    /// the M/D/1 term finite under saturation.
    std::vector<double> queueing_delay_s(
        const std::vector<double>& core_transaction_rates,
        double max_utilization = 0.95) const;

    /// queueing_delay_s without allocations: link-level intermediates live in
    /// instance scratch and the per-core result is written into @p out
    /// (resized on first use). Bit-identical to queueing_delay_s. Non-const
    /// because of the scratch — the simulator owns its TrafficModel, so this
    /// costs nothing in sharing.
    void queueing_delay_into(const std::vector<double>& core_transaction_rates,
                             std::vector<double>& out,
                             double max_utilization = 0.95);

    /// Largest sustainable uniform per-core transaction rate (the rate at
    /// which the most-loaded link saturates) — the NoC's bisection-limited
    /// throughput ceiling.
    double saturation_rate_per_core() const;

private:
    const MeshNoc* mesh_;
    TransactionBytes bytes_;
    std::size_t cores_;
    // traversal_[core * links + link]: expected traversals of `link` by one
    // transaction from `core` (request leg + reply leg), averaged over banks.
    std::vector<double> traversal_;
    // load_share_[core * links + link]: bytes offered to `link` per
    // transaction issued by `core`.
    std::vector<double> load_share_;
    // queueing_delay_into scratch (per-link utilisation and delay).
    std::vector<double> util_scratch_;
    std::vector<double> delay_scratch_;
};

}  // namespace hp::noc
