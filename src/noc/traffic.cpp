#include "noc/traffic.hpp"

#include <algorithm>
#include <stdexcept>

namespace hp::noc {

TrafficModel::TrafficModel(const MeshNoc& mesh, TransactionBytes bytes)
    : mesh_(&mesh), bytes_(bytes), cores_(mesh.router_count()) {
    const std::size_t links = mesh.link_count();
    traversal_.assign(cores_ * links, 0.0);
    load_share_.assign(cores_ * links, 0.0);

    const double per_bank = 1.0 / static_cast<double>(cores_);
    for (std::size_t core = 0; core < cores_; ++core) {
        double* traversal = &traversal_[core * links];
        double* load = &load_share_[core * links];
        for (std::size_t bank = 0; bank < cores_; ++bank) {
            for (LinkId l : mesh.route(core, bank)) {
                traversal[l] += per_bank;
                load[l] += per_bank * bytes_.request;
            }
            for (LinkId l : mesh.route(bank, core)) {
                traversal[l] += per_bank;
                load[l] += per_bank * bytes_.reply;
            }
        }
    }
}

std::vector<double> TrafficModel::link_utilization(
    const std::vector<double>& rates) const {
    if (rates.size() != cores_)
        throw std::invalid_argument("TrafficModel: rate vector size mismatch");
    const std::size_t links = mesh_->link_count();
    std::vector<double> bytes_per_s(links, 0.0);
    for (std::size_t core = 0; core < cores_; ++core) {
        const double rate = rates[core];
        if (rate <= 0.0) continue;
        const double* load = &load_share_[core * links];
        for (std::size_t l = 0; l < links; ++l)
            bytes_per_s[l] += rate * load[l];
    }
    const double capacity = mesh_->params().link_bandwidth_bytes_s();
    for (double& u : bytes_per_s) u /= capacity;
    return bytes_per_s;
}

std::vector<double> TrafficModel::queueing_delay_s(
    const std::vector<double>& rates, double max_utilization) const {
    std::vector<double> util = link_utilization(rates);
    const std::size_t links = mesh_->link_count();

    // Per-link M/D/1 waiting time with the mean transaction's service time.
    const double mean_bytes = (bytes_.request + bytes_.reply) / 2.0;
    const double service_s =
        mean_bytes / mesh_->params().link_bandwidth_bytes_s();
    std::vector<double> delay(links);
    for (std::size_t l = 0; l < links; ++l) {
        const double u = std::min(util[l], max_utilization);
        delay[l] = service_s * u / (2.0 * (1.0 - u));
    }

    std::vector<double> per_core(cores_, 0.0);
    for (std::size_t core = 0; core < cores_; ++core) {
        const double* traversal = &traversal_[core * links];
        double acc = 0.0;
        for (std::size_t l = 0; l < links; ++l) acc += traversal[l] * delay[l];
        per_core[core] = acc;
    }
    return per_core;
}

void TrafficModel::queueing_delay_into(const std::vector<double>& rates,
                                       std::vector<double>& out,
                                       double max_utilization) {
    if (rates.size() != cores_)
        throw std::invalid_argument("TrafficModel: rate vector size mismatch");
    const std::size_t links = mesh_->link_count();

    // Per-link offered load -> utilisation (same accumulation order as
    // link_utilization).
    util_scratch_.assign(links, 0.0);
    for (std::size_t core = 0; core < cores_; ++core) {
        const double rate = rates[core];
        if (rate <= 0.0) continue;
        const double* load = &load_share_[core * links];
        for (std::size_t l = 0; l < links; ++l)
            util_scratch_[l] += rate * load[l];
    }
    const double capacity = mesh_->params().link_bandwidth_bytes_s();
    for (double& u : util_scratch_) u /= capacity;

    // Per-link M/D/1 waiting time with the mean transaction's service time.
    const double mean_bytes = (bytes_.request + bytes_.reply) / 2.0;
    const double service_s =
        mean_bytes / mesh_->params().link_bandwidth_bytes_s();
    if (delay_scratch_.size() != links) delay_scratch_.resize(links);
    for (std::size_t l = 0; l < links; ++l) {
        const double u = std::min(util_scratch_[l], max_utilization);
        delay_scratch_[l] = service_s * u / (2.0 * (1.0 - u));
    }

    if (out.size() != cores_) out.resize(cores_);
    for (std::size_t core = 0; core < cores_; ++core) {
        const double* traversal = &traversal_[core * links];
        double acc = 0.0;
        for (std::size_t l = 0; l < links; ++l)
            acc += traversal[l] * delay_scratch_[l];
        out[core] = acc;
    }
}

double TrafficModel::saturation_rate_per_core() const {
    // Uniform unit rate on every core -> utilisation per link; the most
    // loaded link determines the ceiling.
    const std::vector<double> unit(cores_, 1.0);
    const std::vector<double> util = link_utilization(unit);
    const double worst = *std::max_element(util.begin(), util.end());
    return worst > 0.0 ? 1.0 / worst : 0.0;
}

}  // namespace hp::noc
