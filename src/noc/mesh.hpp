#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.hpp"

namespace hp::noc {

/// Directed link id within a MeshNoc.
using LinkId = std::size_t;

/// Parameters of the mesh interconnect (paper Table I: 1.5 ns/hop, 256-bit
/// links).
struct NocParams {
    double hop_latency_s = 1.5e-9;      ///< router + traversal per hop
    std::size_t link_width_bits = 256;
    double clock_hz = 2.0e9;            ///< NoC clock (flit/cycle per link)

    /// Peak bandwidth of one directed link (bytes/s).
    double link_bandwidth_bytes_s() const {
        return static_cast<double>(link_width_bits) / 8.0 * clock_hz;
    }
};

/// Dimension-ordered (X, then Y, then Z) routed mesh matching a
/// GridFloorplan — one router per core, directed links between adjacent
/// routers, vertical TSV links between stacked layers.
///
/// XY routing is deterministic and deadlock-free, and is what makes S-NUCA's
/// static bank mapping cheap: the route for an address is a pure function of
/// (source, bank).
class MeshNoc {
public:
    /// @p plan must outlive the NoC.
    explicit MeshNoc(const floorplan::GridFloorplan& plan, NocParams params = {});

    const floorplan::GridFloorplan& plan() const { return *plan_; }
    const NocParams& params() const { return params_; }
    std::size_t router_count() const { return plan_->core_count(); }
    std::size_t link_count() const { return links_; }

    /// Directed link from router @p from to adjacent router @p to; throws
    /// std::invalid_argument if the routers are not adjacent.
    LinkId link_between(std::size_t from, std::size_t to) const;

    /// The ordered sequence of directed links a packet from @p src to
    /// @p dst traverses under X-Y-Z dimension-ordered routing (empty when
    /// src == dst).
    std::vector<LinkId> route(std::size_t src, std::size_t dst) const;

    /// Zero-load latency of one hop count (routers * hop latency).
    double zero_load_latency_s(std::size_t hops) const {
        return static_cast<double>(hops) * params_.hop_latency_s;
    }

private:
    const floorplan::GridFloorplan* plan_;
    NocParams params_;
    std::size_t links_ = 0;
    // adjacency_[router] -> list of (neighbor, link id); at most 6 entries.
    std::vector<std::vector<std::pair<std::size_t, LinkId>>> adjacency_;
};

}  // namespace hp::noc
