#pragma once

#include <string>

namespace hp::campaign {

/// Crash-safe whole-file write: @p content goes to a `.tmp` sibling of
/// @p path, is flushed and fsync'd, and is then rename(2)'d into place (the
/// containing directory is fsync'd too, so the rename itself survives a
/// power loss). Readers therefore see either the previous complete file or
/// the new complete file — never a truncated hybrid. Throws
/// std::runtime_error on any I/O failure, with the failing path and errno
/// text in the message.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace hp::campaign
