#include "campaign/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace hp::campaign {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw std::runtime_error(what + ": " + path + ": " +
                             std::strerror(errno));
}

/// Directory part of @p path ("." when the path has no slash) — the
/// directory whose entry list must be fsync'd for a rename to be durable.
std::string dir_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;  // best effort: some filesystems refuse dir fds
    (void)::fsync(fd);
    ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("write_file_atomic: cannot create", tmp);
    const char* data = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            fail("write_file_atomic: write failed", tmp);
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        fail("write_file_atomic: fsync failed", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        fail("write_file_atomic: close failed", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fail("write_file_atomic: rename failed", path);
    }
    fsync_dir(dir_of(path));
}

}  // namespace hp::campaign
