#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#if defined(__has_include)
#if __has_include(<cxxabi.h>)
#include <cxxabi.h>
#define HP_CAMPAIGN_HAVE_CXXABI 1
#endif
#endif

#include "campaign/atomic_file.hpp"
#include "campaign/journal.hpp"
#include "sim/cancellation.hpp"

namespace hp::campaign {

std::string to_string(const RunKey& key) {
    return key.workload + "/" + key.scheduler + "/" + key.config + "/" +
           std::to_string(key.seed);
}

const char* to_string(FailureClass cls) {
    switch (cls) {
        case FailureClass::kNone: return "none";
        case FailureClass::kTransient: return "transient";
        case FailureClass::kTimeout: return "timeout";
        case FailureClass::kNumericalDivergence: return "numerical_divergence";
        case FailureClass::kInvalidConfig: return "invalid_config";
        case FailureClass::kUnknown: return "unknown";
    }
    return "unknown";
}

// --- CampaignSpec ----------------------------------------------------------

CampaignSpec::CampaignSpec(StudySetup setup, RunSetup base)
    : setup_(std::move(setup)), base_(std::move(base)) {}

CampaignSpec::CampaignSpec(StudySetup setup, sim::SimConfig base)
    : setup_(std::move(setup)) {
    base_.sim = std::move(base);
}

CampaignSpec& CampaignSpec::add_scheduler(std::string label,
                                          SchedulerFactory factory) {
    if (!factory)
        throw std::invalid_argument("CampaignSpec: null scheduler factory");
    schedulers_.push_back({std::move(label), std::move(factory)});
    return *this;
}

CampaignSpec& CampaignSpec::add_workload(
    std::string label, std::vector<workload::TaskSpec> tasks) {
    workloads_.push_back(
        {std::move(label),
         [tasks = std::move(tasks)](std::uint64_t) { return tasks; }});
    return *this;
}

CampaignSpec& CampaignSpec::add_workload(std::string label,
                                         WorkloadFactory factory) {
    if (!factory)
        throw std::invalid_argument("CampaignSpec: null workload factory");
    workloads_.push_back({std::move(label), std::move(factory)});
    return *this;
}

CampaignSpec& CampaignSpec::add_config(std::string label,
                                       ConfigOverride patch) {
    configs_.push_back({std::move(label), std::move(patch)});
    return *this;
}

CampaignSpec& CampaignSpec::add_seed(std::uint64_t seed) {
    seeds_.push_back(seed);
    return *this;
}

std::size_t CampaignSpec::run_count() const {
    return schedulers_.size() * workloads_.size() *
           std::max<std::size_t>(configs_.size(), 1) *
           std::max<std::size_t>(seeds_.size(), 1);
}

std::vector<RunKey> CampaignSpec::keys() const {
    const std::vector<std::uint64_t> seeds =
        seeds_.empty() ? std::vector<std::uint64_t>{base_.sim.fault_seed}
                       : seeds_;
    std::vector<RunKey> keys;
    keys.reserve(run_count());
    for (const auto& workload : workloads_)
        for (const auto& scheduler : schedulers_)
            for (std::size_t c = 0;
                 c < std::max<std::size_t>(configs_.size(), 1); ++c)
                for (std::uint64_t seed : seeds) {
                    RunKey key;
                    key.index = keys.size();
                    key.workload = workload.label;
                    key.scheduler = scheduler.label;
                    key.config = configs_.empty() ? "base" : configs_[c].label;
                    key.seed = seed;
                    keys.push_back(std::move(key));
                }
    return keys;
}

const CampaignSpec::Named<ConfigOverride>* CampaignSpec::find_config(
    const std::string& label) const {
    for (const auto& c : configs_)
        if (c.label == label) return &c;
    return nullptr;
}

RunSetup CampaignSpec::setup_for(const RunKey& key) const {
    RunSetup setup = base_;
    if (const auto* config = find_config(key.config); config && config->value)
        config->value(setup);
    else if (!configs_.empty() && !find_config(key.config))
        throw std::invalid_argument("CampaignSpec: unknown config label: " +
                                    key.config);
    setup.sim.fault_seed = key.seed;
    return setup;
}

std::vector<workload::TaskSpec> CampaignSpec::tasks_for(
    const RunKey& key) const {
    for (const auto& w : workloads_)
        if (w.label == key.workload) return w.value(key.seed);
    throw std::invalid_argument("CampaignSpec: unknown workload label: " +
                                key.workload);
}

std::unique_ptr<sim::Scheduler> CampaignSpec::make_scheduler(
    const RunKey& key) const {
    for (const auto& s : schedulers_)
        if (s.label == key.scheduler) return s.value();
    throw std::invalid_argument("CampaignSpec: unknown scheduler label: " +
                                key.scheduler);
}

// --- engine ----------------------------------------------------------------

namespace {

/// Demangled dynamic type of the in-flight exception — callable only from
/// inside a catch block. Gives `catch (...)` a diagnosable message instead
/// of the former constant "unknown exception".
std::string current_exception_type_name() {
#ifdef HP_CAMPAIGN_HAVE_CXXABI
    if (const std::type_info* type = abi::__cxa_current_exception_type()) {
        int status = 0;
        char* demangled =
            abi::__cxa_demangle(type->name(), nullptr, nullptr, &status);
        std::string name =
            (status == 0 && demangled) ? demangled : type->name();
        std::free(demangled);
        return name;
    }
#endif
    return "unknown type";
}

/// Maps the in-flight exception onto the failure taxonomy (DESIGN.md §10).
/// Must run inside a catch block; re-throws @p ep to dispatch on its dynamic
/// type. Order matters: the specific classes derive from the generic ones.
void classify_failure(const std::exception_ptr& ep, RunRecord& record) {
    record.failed = true;
    try {
        std::rethrow_exception(ep);
    } catch (const TransientError& e) {
        record.failure_class = FailureClass::kTransient;
        record.error = e.what();
    } catch (const sim::CancelledError& e) {
        record.failure_class = e.reason() == sim::CancelReason::kDeadline
                                   ? FailureClass::kTimeout
                                   : FailureClass::kUnknown;
        record.error = e.what();
    } catch (const sim::ThermalDivergenceError& e) {
        record.failure_class = FailureClass::kNumericalDivergence;
        record.error = e.what();
    } catch (const std::invalid_argument& e) {
        record.failure_class = FailureClass::kInvalidConfig;
        record.error = e.what();
    } catch (const std::exception& e) {
        record.failure_class = FailureClass::kUnknown;
        record.error = e.what();
    } catch (...) {
        record.failure_class = FailureClass::kUnknown;
        record.error = "unhandled exception of type " +
                       current_exception_type_name();
    }
}

/// One attempt of one run, all exceptions captured and classified into the
/// record. @p study is the solver bundle to run against — the spec's own
/// setup, or the calling worker's node-local replica (bit-identical by the
/// clone_rebound contract); @p workspace is the calling worker's thermal
/// scratch, reused across its runs; @p scratch (may be null) is the worker's
/// long-lived scratch bag for scheduler workspaces; @p recorder (may be
/// null) is this attempt's private observability sink; @p cancel (may be
/// null) is this attempt's watchdog token, polled by the simulator's
/// micro-step loop.
RunRecord execute(const CampaignSpec& spec, const StudySetup& study,
                  RunKey key, thermal::ThermalWorkspace& workspace,
                  exec::WorkerScratch* scratch, obs::Recorder* recorder,
                  const sim::CancellationToken* cancel) {
    RunRecord record;
    record.key = std::move(key);
    const auto start = std::chrono::steady_clock::now();
    try {
        const RunSetup setup = spec.setup_for(record.key);
        sim::Simulator simulator = study.make_simulator(
            setup.sim, setup.power, setup.perf, &workspace, recorder, cancel,
            scratch);
        simulator.add_tasks(spec.tasks_for(record.key));
        const std::unique_ptr<sim::Scheduler> scheduler =
            spec.make_scheduler(record.key);
        record.result = simulator.run(*scheduler);
    } catch (...) {
        record.result = sim::SimResult{};
        classify_failure(std::current_exception(), record);
    }
    // Failed runs keep their observability too: a timeout's kCancelled event
    // and a divergence's kDivergence event are the failure forensics.
    if (recorder) {
        record.metrics = recorder->snapshot();
        record.events = recorder->events();
    }
    record.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return record;
}

std::size_t resolve_jobs(std::size_t requested, std::size_t runs) {
    std::size_t jobs = requested;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0) jobs = 1;
    }
    return std::max<std::size_t>(1, std::min(jobs, runs));
}

std::uint64_t fnv1a64(const std::string& text) {
    std::uint64_t hash = 14695981039346656037ull;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

/// Backoff before retry @p attempt (1-based) of @p key: exponential in the
/// attempt, capped, scaled by a deterministic per-(key, attempt) jitter in
/// [1 - jitter_frac/2, 1 + jitter_frac/2]. Same key, same attempt -> same
/// backoff, at any worker count.
double backoff_for(const RetryPolicy& policy, const RunKey& key,
                   std::size_t attempt) {
    double base = policy.backoff_base_s;
    for (std::size_t i = 1; i < attempt; ++i) {
        base *= 2.0;
        if (base >= policy.backoff_cap_s) break;
    }
    base = std::min(base, policy.backoff_cap_s);
    const std::uint64_t hash =
        fnv1a64(to_string(key) + "#" + std::to_string(attempt));
    const double unit = static_cast<double>(hash % 10001) / 10000.0;
    return base * (1.0 + policy.jitter_frac * (unit - 0.5));
}

/// Per-run deadline watchdog. One slot per worker: the worker arms its slot
/// with a fresh stack token before each attempt and disarms afterwards; a
/// monitor thread polls the slots and requests cooperative cancellation on
/// any armed token past its deadline. Each slot has its own mutex, so a
/// disarm can never race the monitor into cancelling the worker's *next*
/// run with a stale deadline.
class DeadlineMonitor {
public:
    DeadlineMonitor(std::size_t workers, double timeout_s)
        : slots_(workers), timeout_s_(timeout_s) {
        if (enabled() && workers > 0)
            thread_ = std::thread([this] { loop(); });
    }

    DeadlineMonitor(const DeadlineMonitor&) = delete;
    DeadlineMonitor& operator=(const DeadlineMonitor&) = delete;

    ~DeadlineMonitor() {
        if (!thread_.joinable()) return;
        {
            const std::lock_guard<std::mutex> lock(wake_mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        thread_.join();
    }

    bool enabled() const { return timeout_s_ > 0.0; }

    void arm(std::size_t worker, sim::CancellationToken* token) {
        if (!enabled()) return;
        Slot& slot = slots_[worker];
        const std::lock_guard<std::mutex> lock(slot.mutex);
        slot.token = token;
        slot.deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s_));
    }

    void disarm(std::size_t worker) {
        if (!enabled()) return;
        Slot& slot = slots_[worker];
        const std::lock_guard<std::mutex> lock(slot.mutex);
        slot.token = nullptr;
    }

private:
    struct Slot {
        std::mutex mutex;
        sim::CancellationToken* token = nullptr;
        std::chrono::steady_clock::time_point deadline{};
    };

    void loop() {
        // Poll well inside the deadline so reap latency stays a fraction of
        // the timeout, but never busier than 1 kHz.
        const auto poll = std::chrono::duration<double>(
            std::clamp(timeout_s_ / 8.0, 1e-3, 5e-2));
        std::unique_lock<std::mutex> lock(wake_mutex_);
        while (!stop_) {
            wake_.wait_for(lock, poll, [this] { return stop_; });
            if (stop_) return;
            const auto now = std::chrono::steady_clock::now();
            for (Slot& slot : slots_) {
                const std::lock_guard<std::mutex> slot_lock(slot.mutex);
                if (slot.token && now >= slot.deadline)
                    slot.token->request(sim::CancelReason::kDeadline);
            }
        }
    }

    std::vector<Slot> slots_;
    double timeout_s_;
    std::thread thread_;
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
    if (spec.scheduler_count() == 0)
        throw std::invalid_argument("run_campaign: spec has no schedulers");
    if (spec.workload_count() == 0)
        throw std::invalid_argument("run_campaign: spec has no workloads");

    const std::vector<RunKey> keys = spec.keys();
    const std::size_t total = keys.size();

    CampaignResult out;
    out.records.resize(total);
    const auto campaign_start = std::chrono::steady_clock::now();

    // Checkpoint/resume: restore journaled records first (they are never
    // re-run), then open the journal for the runs still missing.
    std::optional<RunJournal> journal;
    std::vector<char> restored(total, 0);
    if (!options.resume_path.empty()) {
        JournalContents contents = read_journal(options.resume_path);
        if (contents.grid_hash != grid_signature(spec) ||
            contents.total_runs != total)
            throw JournalError(
                "run_campaign: resume journal was written for a different "
                "campaign spec: " + options.resume_path);
        for (RunRecord& r : contents.records) {
            const std::size_t idx = r.key.index;
            if (idx >= total || !(r.key == keys[idx]))
                throw JournalError(
                    "run_campaign: journaled record does not match the grid "
                    "at index " + std::to_string(r.key.index));
            out.records[idx] = std::move(r);  // duplicate index: last wins
            restored[idx] = 1;
        }
        journal.emplace(RunJournal::append_to(options.resume_path, spec));
    } else if (!options.journal_path.empty()) {
        journal.emplace(RunJournal::create(options.journal_path, spec));
    }

    std::vector<std::size_t> pending;
    pending.reserve(total);
    for (std::size_t i = 0; i < total; ++i)
        if (!restored[i]) pending.push_back(i);
    const std::size_t resumed = total - pending.size();
    const std::size_t jobs = resolve_jobs(options.jobs, pending.size());

    // Execution placement (DESIGN.md §12). The policy resolves against the
    // host topology (or the injected test topology); plan_pinning is pure,
    // so the placement is deterministic for a given (topology, jobs, pin).
    // None of this may change record values — only where workers run and
    // where their scratch lives.
    exec::ExecPolicy policy = options.exec;
    policy.apply_env_overrides();
    const exec::Topology topology = policy.resolve_topology();
    const std::vector<exec::WorkerPlacement> placements =
        exec::plan_pinning(topology, jobs, policy.pin);

    // Read-only StudySetup bundles replicated once per NUMA node
    // (copy-on-first-use: the first pinned worker on a node pays one deep
    // copy — tables only, never an eigensolve — and first-touch lands the
    // pages node-local; later workers on the node share it). Replication is
    // pointless without pinning: an unpinned worker has no stable node.
    int max_node = -1;
    for (const exec::WorkerPlacement& p : placements)
        max_node = std::max(max_node, p.node);
    const bool replicate_bundles =
        policy.numa && topology.multi_node() && max_node >= 0;
    struct NodeReplica {
        std::once_flag once;
        std::optional<StudySetup> setup;
    };
    std::vector<NodeReplica> replicas(
        replicate_bundles ? static_cast<std::size_t>(max_node) + 1 : 0);

    // Per-worker placement outcomes, harvested into gauges after the join.
    struct WorkerStats {
        int node = -1;
        bool pinned = false;
        std::size_t arena_reserved = 0;
        std::size_t arena_high_water = 0;
    };
    std::vector<WorkerStats> worker_stats(jobs);

    // Fixed-size pool sharding the pending list through an atomic cursor.
    // Results land at their key's index, so record order is the spec's
    // deterministic enumeration regardless of completion order or how many
    // runs a resume restored.
    DeadlineMonitor monitor(pending.empty() ? 0 : jobs,
                            options.run_timeout_s);
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done{0};
    std::mutex io_mutex;  ///< serializes journal appends + progress calls
    const auto worker = [&](std::size_t worker_id) {
        // Shared-nothing worker context: pin to the planned CPU (best
        // effort), then carve every long-lived scratch object from an arena
        // bound to the worker's node. Runs are sequential within a worker,
        // so sharing its scratch across them is safe and keeps every run's
        // hot loop allocation-free after the first.
        const exec::WorkerPlacement place = placements[worker_id];
        WorkerStats& stats = worker_stats[worker_id];
        stats.node = place.node;
        if (place.cpu >= 0) stats.pinned = exec::pin_current_thread(place.cpu);
        exec::Arena arena(policy.arena_block_bytes,
                          policy.numa ? place.node : -1);
        exec::ArenaResource arena_mr(arena);
        exec::WorkerScratch scratch(&arena_mr);
        thermal::ThermalWorkspace workspace(&arena_mr);
        const StudySetup* study = &spec.setup();
        if (replicate_bundles && place.node >= 0) {
            NodeReplica& replica = replicas[static_cast<std::size_t>(
                place.node)];
            std::call_once(replica.once, [&] {
                replica.setup.emplace(spec.setup().replicate());
            });
            study = &*replica.setup;
            // Rebinding to the replica's solver: drop any memoised e^{λ·dt}
            // ladders keyed on another solver's eigenvalue storage, whose
            // freed address the replica may alias (O(1), empty on a fresh
            // workspace).
            workspace.invalidate_exp_tables();
        }
        const auto harvest = [&] {
            stats.arena_reserved = arena.bytes_reserved();
            stats.arena_high_water = arena.high_water();
        };
        for (;;) {
            const std::size_t p =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (p >= pending.size()) {
                harvest();
                return;
            }
            const std::size_t i = pending[p];
            RunRecord record;
            std::vector<double> backoffs;
            for (std::size_t attempt = 1;; ++attempt) {
                // Fresh recorder per attempt (see CampaignOptions::observe):
                // reusing one would leak instrument registrations between
                // runs and make the output depend on work stealing.
                std::optional<obs::Recorder> recorder;
                if (options.observe) recorder.emplace(options.recorder);
                // Fresh stack token per attempt: a token is owned by exactly
                // one attempt, so a late cancellation request can never leak
                // into the worker's next run.
                sim::CancellationToken token;
                monitor.arm(worker_id, &token);
                record = execute(spec, *study, keys[i], workspace, &scratch,
                                 recorder ? &*recorder : nullptr, &token);
                monitor.disarm(worker_id);
                record.attempts = attempt;
                record.backoff_s = backoffs;
                const bool retryable =
                    record.failed &&
                    record.failure_class == FailureClass::kTransient &&
                    attempt <= options.retry.max_retries;
                if (!retryable) break;
                const double backoff =
                    backoff_for(options.retry, keys[i], attempt);
                backoffs.push_back(backoff);
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
            }
            out.records[i] = std::move(record);
            const std::size_t completed =
                resumed + done.fetch_add(1, std::memory_order_relaxed) + 1;
            {
                const std::lock_guard<std::mutex> lock(io_mutex);
                // Journal before progress: once a callback saw the record,
                // it survives a crash.
                if (journal) journal->append(out.records[i]);
                if (options.progress)
                    options.progress(out.records[i], completed, total);
            }
        }
    };

    if (!pending.empty()) {
        // The serial path runs on the calling thread — but never when it
        // would pin it: sched_setaffinity would outlive the campaign and
        // leak placement into the caller. A planned pin always gets its own
        // thread.
        if (jobs == 1 && placements[0].cpu < 0) {
            worker(0);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(jobs);
            for (std::size_t t = 0; t < jobs; ++t)
                pool.emplace_back(worker, t);
            for (std::thread& t : pool) t.join();
        }
    }

    out.summary.total_runs = total;
    out.summary.jobs = jobs;
    out.summary.resumed_runs = resumed;
    out.summary.wall_time_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  campaign_start)
                                  .count();
    for (const RunRecord& r : out.records) {
        out.summary.total_run_time_s += r.wall_time_s;
        if (r.failed) {
            ++out.summary.failed_runs;
            out.summary.quarantine.push_back(
                {r.key, r.failure_class, r.error, r.attempts});
        }
        if (r.attempts > 1) {
            ++out.summary.retried_runs;
            out.summary.total_retries += r.attempts - 1;
        }
        if (r.failure_class == FailureClass::kTimeout)
            ++out.summary.timeout_runs;
    }
    out.summary.runs_per_second =
        out.summary.wall_time_s > 0.0
            ? static_cast<double>(total) / out.summary.wall_time_s
            : 0.0;

    // Campaign-level resilience counters through the obs layer, so the
    // roll-up reaches every export the per-run metrics reach.
    obs::RecorderConfig campaign_rc;
    campaign_rc.trace_capacity = 0;
    obs::Recorder campaign_recorder(campaign_rc);
    campaign_recorder.counter("campaign.retries")
        .add(out.summary.total_retries);
    campaign_recorder.counter("campaign.timeouts")
        .add(out.summary.timeout_runs);
    campaign_recorder.counter("campaign.quarantined")
        .add(out.summary.quarantine.size());
    campaign_recorder.counter("campaign.resumed_runs")
        .add(out.summary.resumed_runs);
    campaign_recorder.counter("campaign.journal_appends")
        .add(journal ? pending.size() : 0);
    // Placement observability (mis-placement should be visible without a
    // profiler): workers per node, how many pins stuck, and the arena
    // footprint. Unpinned workers count under node 0 — the single-node
    // degenerate case, where placement is moot anyway.
    if (!pending.empty()) {
        std::vector<std::size_t> per_node(
            static_cast<std::size_t>(std::max(max_node, 0)) + 1, 0);
        std::size_t pinned = 0, reserved = 0, high_water = 0;
        for (const WorkerStats& w : worker_stats) {
            ++per_node[static_cast<std::size_t>(std::max(w.node, 0))];
            if (w.pinned) ++pinned;
            reserved += w.arena_reserved;
            high_water += w.arena_high_water;
        }
        for (std::size_t n = 0; n < per_node.size(); ++n)
            campaign_recorder
                .gauge("campaign.workers_per_node." + std::to_string(n))
                .set(static_cast<double>(per_node[n]));
        campaign_recorder.gauge("campaign.pinned_workers")
            .set(static_cast<double>(pinned));
        campaign_recorder.gauge("arena.bytes_reserved")
            .set(static_cast<double>(reserved));
        campaign_recorder.gauge("arena.high_water")
            .set(static_cast<double>(high_water));
    }
    out.summary.metrics = campaign_recorder.snapshot();
    return out;
}

// --- lookup & rendering ----------------------------------------------------

const RunRecord* find(const std::vector<RunRecord>& records,
                      const std::string& workload,
                      const std::string& scheduler, const std::string& config,
                      const std::uint64_t* seed) {
    for (const RunRecord& r : records) {
        if (r.key.workload != workload || r.key.scheduler != scheduler)
            continue;
        if (!config.empty() && r.key.config != config) continue;
        if (seed != nullptr && r.key.seed != *seed) continue;
        return &r;
    }
    return nullptr;
}

namespace {

/// CSV/markdown cells must stay single-cell: separators collapse to ';'.
std::string sanitize(const std::string& text) {
    std::string out = text;
    for (char& c : out)
        if (c == ',' || c == '\n' || c == '\r' || c == '|') c = ';';
    return out;
}

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string to_markdown(const std::vector<RunRecord>& records) {
    std::ostringstream out;
    out << "| workload | scheduler | config | seed | makespan [ms] | "
           "avg response [ms] | peak [C] | DTM [ms] | migrations | "
           "energy [J] |\n";
    out << "|---|---|---|---|---|---|---|---|---|---|\n";
    out.setf(std::ios::fixed);
    out.precision(2);
    for (const RunRecord& r : records) {
        out << "| " << r.key.workload << " | " << r.key.scheduler << " | "
            << r.key.config << " | " << r.key.seed << " | ";
        if (r.failed) {
            out << "FAILED: " << sanitize(r.error) << " ["
                << to_string(r.failure_class) << ", attempts=" << r.attempts
                << "] | - | - | - | - | - |\n";
            continue;
        }
        const auto& s = r.result;
        out << s.makespan_s * 1e3 << " | "
            << s.average_response_time_s() * 1e3 << " | "
            << s.peak_temperature_c << " | " << s.dtm_throttled_s * 1e3
            << " | " << s.migrations << " | " << s.total_energy_j;
        out << (s.all_finished ? " |\n" : " (INCOMPLETE) |\n");
    }
    return out.str();
}

void write_csv(std::ostream& out, const std::vector<RunRecord>& records) {
    out << "workload,scheduler,config,seed,makespan_s,avg_response_s,peak_c,"
           "dtm_throttled_s,migrations,energy_j,all_finished,failed,error,"
           "failure_class,attempts\n";
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << sanitize(r.key.workload) << ',' << sanitize(r.key.scheduler)
            << ',' << sanitize(r.key.config) << ',' << r.key.seed << ','
            << s.makespan_s << ',' << s.average_response_time_s() << ','
            << s.peak_temperature_c << ',' << s.dtm_throttled_s << ','
            << s.migrations << ',' << s.total_energy_j << ','
            << (s.all_finished ? 1 : 0) << ',' << (r.failed ? 1 : 0) << ','
            << sanitize(r.error) << ',' << to_string(r.failure_class) << ','
            << r.attempts << '\n';
    }
}

void write_json(std::ostream& out, const std::vector<RunRecord>& records,
                const CampaignSummary& summary) {
    out << "{\n  \"summary\": {\n"
        << "    \"total_runs\": " << summary.total_runs << ",\n"
        << "    \"failed_runs\": " << summary.failed_runs << ",\n"
        << "    \"jobs\": " << summary.jobs << ",\n"
        << "    \"wall_time_s\": " << summary.wall_time_s << ",\n"
        << "    \"total_run_time_s\": " << summary.total_run_time_s << ",\n"
        << "    \"runs_per_second\": " << summary.runs_per_second << ",\n"
        << "    \"pool_utilization\": " << summary.pool_utilization() << ",\n"
        << "    \"resumed_runs\": " << summary.resumed_runs << ",\n"
        << "    \"retried_runs\": " << summary.retried_runs << ",\n"
        << "    \"total_retries\": " << summary.total_retries << ",\n"
        << "    \"timeout_runs\": " << summary.timeout_runs << ",\n"
        << "    \"quarantine\": [";
    for (std::size_t i = 0; i < summary.quarantine.size(); ++i) {
        const QuarantinedRun& q = summary.quarantine[i];
        out << (i == 0 ? "\n" : ",\n")
            << "      {\"workload\": \"" << json_escape(q.key.workload)
            << "\", \"scheduler\": \"" << json_escape(q.key.scheduler)
            << "\", \"config\": \"" << json_escape(q.key.config)
            << "\", \"seed\": " << q.key.seed << ", \"failure_class\": \""
            << to_string(q.failure_class) << "\", \"attempts\": "
            << q.attempts << ", \"error\": \"" << json_escape(q.error)
            << "\"}";
    }
    out << (summary.quarantine.empty() ? "]" : "\n    ]");
    if (!summary.metrics.empty()) {
        out << ",\n    \"campaign_metrics\": ";
        obs::write_metrics_json(out, summary.metrics);
    }
    out << "\n  },\n  \"runs\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        const auto& s = r.result;
        out << "    {\"workload\": \"" << json_escape(r.key.workload)
            << "\", \"scheduler\": \"" << json_escape(r.key.scheduler)
            << "\", \"config\": \"" << json_escape(r.key.config)
            << "\", \"seed\": " << r.key.seed
            << ", \"failed\": " << (r.failed ? "true" : "false")
            << ", \"error\": \"" << json_escape(r.error)
            << "\", \"failure_class\": \"" << to_string(r.failure_class)
            << "\", \"attempts\": " << r.attempts;
        if (!r.backoff_s.empty()) {
            out << ", \"backoff_s\": [";
            for (std::size_t b = 0; b < r.backoff_s.size(); ++b)
                out << (b ? ", " : "") << r.backoff_s[b];
            out << "]";
        }
        out << ", \"wall_time_s\": " << r.wall_time_s
            << ", \"makespan_s\": " << s.makespan_s
            << ", \"avg_response_s\": " << s.average_response_time_s()
            << ", \"peak_c\": " << s.peak_temperature_c
            << ", \"dtm_throttled_s\": " << s.dtm_throttled_s
            << ", \"migrations\": " << s.migrations
            << ", \"energy_j\": " << s.total_energy_j
            << ", \"all_finished\": " << (s.all_finished ? "true" : "false");
        if (!r.metrics.empty()) {
            out << ", \"metrics\": ";
            obs::write_metrics_json(out, r.metrics);
        }
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

void write_markdown_file(const std::string& path,
                         const std::vector<RunRecord>& records) {
    write_file_atomic(path, to_markdown(records));
}

void write_csv_file(const std::string& path,
                    const std::vector<RunRecord>& records) {
    std::ostringstream out;
    write_csv(out, records);
    write_file_atomic(path, out.str());
}

void write_json_file(const std::string& path,
                     const std::vector<RunRecord>& records,
                     const CampaignSummary& summary) {
    std::ostringstream out;
    write_json(out, records, summary);
    write_file_atomic(path, out.str());
}

std::string summary_markdown(const CampaignSummary& summary) {
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(2);
    out << "campaign: " << summary.total_runs << " runs ("
        << summary.failed_runs << " failed), " << summary.jobs << " worker"
        << (summary.jobs == 1 ? "" : "s") << ", " << summary.wall_time_s
        << " s wall, " << summary.runs_per_second << " runs/s (parallel "
        << "speedup " << summary.speedup() << "x, pool utilization "
        << summary.pool_utilization() * 100.0 << "%)\n";
    if (summary.resumed_runs > 0)
        out << "resume: " << summary.resumed_runs
            << " runs restored from journal\n";
    if (summary.total_retries > 0)
        out << "retries: " << summary.total_retries << " across "
            << summary.retried_runs << " runs\n";
    if (!summary.quarantine.empty())
        out << "quarantine: " << summary.quarantine.size() << " run"
            << (summary.quarantine.size() == 1 ? "" : "s")
            << " still failed after the retry policy\n";
    return out.str();
}

std::string metrics_markdown(const std::vector<RunRecord>& records) {
    std::vector<obs::MetricsSnapshot> observed;
    for (const RunRecord& r : records)
        if (!r.metrics.empty()) observed.push_back(r.metrics);
    if (observed.empty()) return {};
    return obs::metrics_markdown(obs::merge(observed));
}

std::vector<obs::MetricsSnapshot> metrics_from_json(const std::string& json) {
    // write_json() emits every run on its own line with the metrics object
    // last before the closing brace, so a balanced-brace scan from each
    // `"metrics": ` marker recovers exactly the objects
    // obs::parse_metrics_json understands. (The summary's campaign-level
    // snapshot is keyed "campaign_metrics" precisely so this scan never
    // picks it up.)
    std::vector<obs::MetricsSnapshot> out;
    const std::string marker = "\"metrics\": ";
    std::size_t pos = 0;
    while ((pos = json.find(marker, pos)) != std::string::npos) {
        std::size_t start = pos + marker.size();
        if (start >= json.size() || json[start] != '{')
            throw std::runtime_error(
                "metrics_from_json: marker not followed by an object");
        int depth = 0;
        std::size_t end = start;
        for (; end < json.size(); ++end) {
            if (json[end] == '{') ++depth;
            if (json[end] == '}' && --depth == 0) break;
        }
        if (depth != 0)
            throw std::runtime_error(
                "metrics_from_json: unbalanced metrics object");
        out.push_back(
            obs::parse_metrics_json(json.substr(start, end - start + 1)));
        pos = end;
    }
    return out;
}

}  // namespace hp::campaign
