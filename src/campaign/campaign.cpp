#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace hp::campaign {

std::string to_string(const RunKey& key) {
    return key.workload + "/" + key.scheduler + "/" + key.config + "/" +
           std::to_string(key.seed);
}

// --- CampaignSpec ----------------------------------------------------------

CampaignSpec::CampaignSpec(StudySetup setup, RunSetup base)
    : setup_(std::move(setup)), base_(std::move(base)) {}

CampaignSpec::CampaignSpec(StudySetup setup, sim::SimConfig base)
    : setup_(std::move(setup)) {
    base_.sim = std::move(base);
}

CampaignSpec& CampaignSpec::add_scheduler(std::string label,
                                          SchedulerFactory factory) {
    if (!factory)
        throw std::invalid_argument("CampaignSpec: null scheduler factory");
    schedulers_.push_back({std::move(label), std::move(factory)});
    return *this;
}

CampaignSpec& CampaignSpec::add_workload(
    std::string label, std::vector<workload::TaskSpec> tasks) {
    workloads_.push_back(
        {std::move(label),
         [tasks = std::move(tasks)](std::uint64_t) { return tasks; }});
    return *this;
}

CampaignSpec& CampaignSpec::add_workload(std::string label,
                                         WorkloadFactory factory) {
    if (!factory)
        throw std::invalid_argument("CampaignSpec: null workload factory");
    workloads_.push_back({std::move(label), std::move(factory)});
    return *this;
}

CampaignSpec& CampaignSpec::add_config(std::string label,
                                       ConfigOverride patch) {
    configs_.push_back({std::move(label), std::move(patch)});
    return *this;
}

CampaignSpec& CampaignSpec::add_seed(std::uint64_t seed) {
    seeds_.push_back(seed);
    return *this;
}

std::size_t CampaignSpec::run_count() const {
    return schedulers_.size() * workloads_.size() *
           std::max<std::size_t>(configs_.size(), 1) *
           std::max<std::size_t>(seeds_.size(), 1);
}

std::vector<RunKey> CampaignSpec::keys() const {
    const std::vector<std::uint64_t> seeds =
        seeds_.empty() ? std::vector<std::uint64_t>{base_.sim.fault_seed}
                       : seeds_;
    std::vector<RunKey> keys;
    keys.reserve(run_count());
    for (const auto& workload : workloads_)
        for (const auto& scheduler : schedulers_)
            for (std::size_t c = 0;
                 c < std::max<std::size_t>(configs_.size(), 1); ++c)
                for (std::uint64_t seed : seeds) {
                    RunKey key;
                    key.index = keys.size();
                    key.workload = workload.label;
                    key.scheduler = scheduler.label;
                    key.config = configs_.empty() ? "base" : configs_[c].label;
                    key.seed = seed;
                    keys.push_back(std::move(key));
                }
    return keys;
}

const CampaignSpec::Named<ConfigOverride>* CampaignSpec::find_config(
    const std::string& label) const {
    for (const auto& c : configs_)
        if (c.label == label) return &c;
    return nullptr;
}

RunSetup CampaignSpec::setup_for(const RunKey& key) const {
    RunSetup setup = base_;
    if (const auto* config = find_config(key.config); config && config->value)
        config->value(setup);
    else if (!configs_.empty() && !find_config(key.config))
        throw std::invalid_argument("CampaignSpec: unknown config label: " +
                                    key.config);
    setup.sim.fault_seed = key.seed;
    return setup;
}

std::vector<workload::TaskSpec> CampaignSpec::tasks_for(
    const RunKey& key) const {
    for (const auto& w : workloads_)
        if (w.label == key.workload) return w.value(key.seed);
    throw std::invalid_argument("CampaignSpec: unknown workload label: " +
                                key.workload);
}

std::unique_ptr<sim::Scheduler> CampaignSpec::make_scheduler(
    const RunKey& key) const {
    for (const auto& s : schedulers_)
        if (s.label == key.scheduler) return s.value();
    throw std::invalid_argument("CampaignSpec: unknown scheduler label: " +
                                key.scheduler);
}

// --- engine ----------------------------------------------------------------

namespace {

/// One run, all exceptions captured into the record. @p workspace is the
/// calling worker's thermal scratch, reused across its runs; @p recorder
/// (may be null) is this run's private observability sink.
RunRecord execute(const CampaignSpec& spec, RunKey key,
                  thermal::ThermalWorkspace& workspace,
                  obs::Recorder* recorder) {
    RunRecord record;
    record.key = std::move(key);
    const auto start = std::chrono::steady_clock::now();
    try {
        const RunSetup setup = spec.setup_for(record.key);
        sim::Simulator simulator = spec.setup().make_simulator(
            setup.sim, setup.power, setup.perf, &workspace, recorder);
        simulator.add_tasks(spec.tasks_for(record.key));
        const std::unique_ptr<sim::Scheduler> scheduler =
            spec.make_scheduler(record.key);
        record.result = simulator.run(*scheduler);
        if (recorder) {
            record.metrics = recorder->snapshot();
            record.events = recorder->events();
        }
    } catch (const std::exception& e) {
        record.failed = true;
        record.error = e.what();
        record.result = sim::SimResult{};
    } catch (...) {
        record.failed = true;
        record.error = "unknown exception";
        record.result = sim::SimResult{};
    }
    record.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return record;
}

std::size_t resolve_jobs(std::size_t requested, std::size_t runs) {
    std::size_t jobs = requested;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0) jobs = 1;
    }
    return std::max<std::size_t>(1, std::min(jobs, runs));
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
    if (spec.scheduler_count() == 0)
        throw std::invalid_argument("run_campaign: spec has no schedulers");
    if (spec.workload_count() == 0)
        throw std::invalid_argument("run_campaign: spec has no workloads");

    const std::vector<RunKey> keys = spec.keys();
    const std::size_t total = keys.size();
    const std::size_t jobs = resolve_jobs(options.jobs, total);

    CampaignResult out;
    out.records.resize(total);
    const auto campaign_start = std::chrono::steady_clock::now();

    // Fixed-size pool sharding the run list through an atomic cursor.
    // Results land at their key's index, so record order is the spec's
    // deterministic enumeration regardless of completion order.
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    const auto worker = [&] {
        // One thermal workspace per worker thread: runs are sequential
        // within a worker, so sharing its scratch across them is safe and
        // keeps every run's hot loop allocation-free after the first.
        thermal::ThermalWorkspace workspace;
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= total) return;
            // Fresh recorder per run (see CampaignOptions::observe): reusing
            // one across a worker's runs would leak instrument registrations
            // between runs and make the output depend on work stealing.
            std::optional<obs::Recorder> recorder;
            if (options.observe) recorder.emplace(options.recorder);
            out.records[i] = execute(spec, keys[i], workspace,
                                     recorder ? &*recorder : nullptr);
            const std::size_t completed =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (options.progress) {
                const std::lock_guard<std::mutex> lock(progress_mutex);
                options.progress(out.records[i], completed, total);
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
    }

    out.summary.total_runs = total;
    out.summary.jobs = jobs;
    out.summary.wall_time_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  campaign_start)
                                  .count();
    for (const RunRecord& r : out.records) {
        out.summary.total_run_time_s += r.wall_time_s;
        if (r.failed) ++out.summary.failed_runs;
    }
    out.summary.runs_per_second =
        out.summary.wall_time_s > 0.0
            ? static_cast<double>(total) / out.summary.wall_time_s
            : 0.0;
    return out;
}

// --- lookup & rendering ----------------------------------------------------

const RunRecord* find(const std::vector<RunRecord>& records,
                      const std::string& workload,
                      const std::string& scheduler, const std::string& config,
                      const std::uint64_t* seed) {
    for (const RunRecord& r : records) {
        if (r.key.workload != workload || r.key.scheduler != scheduler)
            continue;
        if (!config.empty() && r.key.config != config) continue;
        if (seed != nullptr && r.key.seed != *seed) continue;
        return &r;
    }
    return nullptr;
}

namespace {

/// CSV/markdown cells must stay single-cell: separators collapse to ';'.
std::string sanitize(const std::string& text) {
    std::string out = text;
    for (char& c : out)
        if (c == ',' || c == '\n' || c == '\r' || c == '|') c = ';';
    return out;
}

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string to_markdown(const std::vector<RunRecord>& records) {
    std::ostringstream out;
    out << "| workload | scheduler | config | seed | makespan [ms] | "
           "avg response [ms] | peak [C] | DTM [ms] | migrations | "
           "energy [J] |\n";
    out << "|---|---|---|---|---|---|---|---|---|---|\n";
    out.setf(std::ios::fixed);
    out.precision(2);
    for (const RunRecord& r : records) {
        out << "| " << r.key.workload << " | " << r.key.scheduler << " | "
            << r.key.config << " | " << r.key.seed << " | ";
        if (r.failed) {
            out << "FAILED: " << sanitize(r.error)
                << " | - | - | - | - | - |\n";
            continue;
        }
        const auto& s = r.result;
        out << s.makespan_s * 1e3 << " | "
            << s.average_response_time_s() * 1e3 << " | "
            << s.peak_temperature_c << " | " << s.dtm_throttled_s * 1e3
            << " | " << s.migrations << " | " << s.total_energy_j;
        out << (s.all_finished ? " |\n" : " (INCOMPLETE) |\n");
    }
    return out.str();
}

void write_csv(std::ostream& out, const std::vector<RunRecord>& records) {
    out << "workload,scheduler,config,seed,makespan_s,avg_response_s,peak_c,"
           "dtm_throttled_s,migrations,energy_j,all_finished,failed,error\n";
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << sanitize(r.key.workload) << ',' << sanitize(r.key.scheduler)
            << ',' << sanitize(r.key.config) << ',' << r.key.seed << ','
            << s.makespan_s << ',' << s.average_response_time_s() << ','
            << s.peak_temperature_c << ',' << s.dtm_throttled_s << ','
            << s.migrations << ',' << s.total_energy_j << ','
            << (s.all_finished ? 1 : 0) << ',' << (r.failed ? 1 : 0) << ','
            << sanitize(r.error) << '\n';
    }
}

void write_json(std::ostream& out, const std::vector<RunRecord>& records,
                const CampaignSummary& summary) {
    out << "{\n  \"summary\": {\n"
        << "    \"total_runs\": " << summary.total_runs << ",\n"
        << "    \"failed_runs\": " << summary.failed_runs << ",\n"
        << "    \"jobs\": " << summary.jobs << ",\n"
        << "    \"wall_time_s\": " << summary.wall_time_s << ",\n"
        << "    \"total_run_time_s\": " << summary.total_run_time_s << ",\n"
        << "    \"runs_per_second\": " << summary.runs_per_second << ",\n"
        << "    \"pool_utilization\": " << summary.pool_utilization() << "\n"
        << "  },\n  \"runs\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        const auto& s = r.result;
        out << "    {\"workload\": \"" << json_escape(r.key.workload)
            << "\", \"scheduler\": \"" << json_escape(r.key.scheduler)
            << "\", \"config\": \"" << json_escape(r.key.config)
            << "\", \"seed\": " << r.key.seed
            << ", \"failed\": " << (r.failed ? "true" : "false")
            << ", \"error\": \"" << json_escape(r.error)
            << "\", \"wall_time_s\": " << r.wall_time_s
            << ", \"makespan_s\": " << s.makespan_s
            << ", \"avg_response_s\": " << s.average_response_time_s()
            << ", \"peak_c\": " << s.peak_temperature_c
            << ", \"dtm_throttled_s\": " << s.dtm_throttled_s
            << ", \"migrations\": " << s.migrations
            << ", \"energy_j\": " << s.total_energy_j
            << ", \"all_finished\": " << (s.all_finished ? "true" : "false");
        if (!r.metrics.empty()) {
            out << ", \"metrics\": ";
            obs::write_metrics_json(out, r.metrics);
        }
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

std::string summary_markdown(const CampaignSummary& summary) {
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(2);
    out << "campaign: " << summary.total_runs << " runs ("
        << summary.failed_runs << " failed), " << summary.jobs << " worker"
        << (summary.jobs == 1 ? "" : "s") << ", " << summary.wall_time_s
        << " s wall, " << summary.runs_per_second << " runs/s (parallel "
        << "speedup " << summary.speedup() << "x, pool utilization "
        << summary.pool_utilization() * 100.0 << "%)\n";
    return out.str();
}

std::string metrics_markdown(const std::vector<RunRecord>& records) {
    std::vector<obs::MetricsSnapshot> observed;
    for (const RunRecord& r : records)
        if (!r.metrics.empty()) observed.push_back(r.metrics);
    if (observed.empty()) return {};
    return obs::metrics_markdown(obs::merge(observed));
}

std::vector<obs::MetricsSnapshot> metrics_from_json(const std::string& json) {
    // write_json() emits every run on its own line with the metrics object
    // last before the closing brace, so a balanced-brace scan from each
    // `"metrics": ` marker recovers exactly the objects
    // obs::parse_metrics_json understands.
    std::vector<obs::MetricsSnapshot> out;
    const std::string marker = "\"metrics\": ";
    std::size_t pos = 0;
    while ((pos = json.find(marker, pos)) != std::string::npos) {
        std::size_t start = pos + marker.size();
        if (start >= json.size() || json[start] != '{')
            throw std::runtime_error(
                "metrics_from_json: marker not followed by an object");
        int depth = 0;
        std::size_t end = start;
        for (; end < json.size(); ++end) {
            if (json[end] == '{') ++depth;
            if (json[end] == '}' && --depth == 0) break;
        }
        if (depth != 0)
            throw std::runtime_error(
                "metrics_from_json: unbalanced metrics object");
        out.push_back(
            obs::parse_metrics_json(json.substr(start, end - start + 1)));
        pos = end;
    }
    return out;
}

}  // namespace hp::campaign
