#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/study_setup.hpp"
#include "exec/exec.hpp"
#include "obs/recorder.hpp"
#include "perf/interval_model.hpp"
#include "power/power_model.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace hp::campaign {

/// Everything a single run may vary: the simulator knobs plus the power and
/// performance model parameters (the substrate-fidelity axes).
struct RunSetup {
    sim::SimConfig sim;
    power::PowerParams power;
    perf::PerfParams perf;
};

/// A scheduler factory: fresh instance per run (schedulers are stateful).
using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>()>;

/// A workload factory: the per-run seed is passed in so seed sweeps can
/// re-draw randomized workloads; fixed task lists ignore it.
using WorkloadFactory =
    std::function<std::vector<workload::TaskSpec>(std::uint64_t seed)>;

/// Mutates the base RunSetup for one named configuration variant.
using ConfigOverride = std::function<void(RunSetup&)>;

/// Stable address of one run in a campaign grid. Keys are independent of
/// execution order and thread count; @ref index is the position in the
/// deterministic enumeration (workload-major, then scheduler, then config,
/// then seed — the same order CampaignSpec::keys() and the records of
/// run_campaign() use).
struct RunKey {
    std::size_t index = 0;
    std::string workload;
    std::string scheduler;
    std::string config;      ///< "base" unless add_config() variants exist
    std::uint64_t seed = 0;

    bool operator==(const RunKey& other) const {
        return index == other.index && workload == other.workload &&
               scheduler == other.scheduler && config == other.config &&
               seed == other.seed;
    }
};

/// "workload/scheduler/config/seed" — log- and filename-friendly.
std::string to_string(const RunKey& key);

/// Failure taxonomy attached to every failed RunRecord (DESIGN.md §10).
/// Classification drives the retry policy: only kTransient failures are
/// retried; everything else is quarantined immediately.
enum class FailureClass : std::uint8_t {
    kNone = 0,             ///< the run succeeded
    kTransient,            ///< TransientError — retryable by contract
    kTimeout,              ///< reaped by the per-run deadline watchdog
    kNumericalDivergence,  ///< sim::ThermalDivergenceError (NaN/runaway)
    kInvalidConfig,        ///< std::invalid_argument (bad grid cell)
    kUnknown,              ///< anything else (type name kept if available)
};

/// Stable lower_snake_case name of @p cls ("none" for kNone) — used in the
/// CSV/JSON exports and the journal.
const char* to_string(FailureClass cls);

/// Throw this from a scheduler/workload factory (or anything a run calls)
/// to mark a failure as transient: the engine retries the run with
/// exponential backoff instead of quarantining it. Everything else is
/// treated as deterministic and fails the run on the first attempt.
class TransientError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Outcome of one run. A throwing run (scheduler factory, workload factory
/// or the simulation itself) is captured here instead of killing the
/// campaign: @ref failed is set, @ref error carries the exception message
/// and @ref result is default-constructed.
struct RunRecord {
    RunKey key;
    sim::SimResult result;
    bool failed = false;
    std::string error;
    /// Why the run failed (kNone when it succeeded). Deterministic except
    /// for kTimeout, which depends on host wall time by nature.
    FailureClass failure_class = FailureClass::kNone;
    /// Executions of this run, including the successful/final one (1 = no
    /// retry was needed).
    std::size_t attempts = 1;
    /// Backoff actually slept before each retry, in order (attempts - 1
    /// entries). Exponential with deterministic per-(key, attempt) jitter.
    std::vector<double> backoff_s;
    /// Host wall time of this run (observability only — never part of the
    /// CSV/markdown result tables, which must be bit-identical across
    /// thread counts).
    double wall_time_s = 0.0;
    /// Per-run observability (empty unless CampaignOptions::observe). The
    /// counters/gauges/histograms, the phase `calls` and the event list are
    /// pure functions of the simulated run — identical at any worker count;
    /// only the phases' total_s is host wall time.
    obs::MetricsSnapshot metrics;
    std::vector<obs::Event> events;
};

/// One grid cell that still failed after the retry policy was exhausted.
/// Quarantined cells are reported (summary, JSON) but never sink the sweep:
/// every other record is complete and ordered as usual.
struct QuarantinedRun {
    RunKey key;
    FailureClass failure_class = FailureClass::kUnknown;
    std::string error;
    std::size_t attempts = 1;
};

/// Observability roll-up of one campaign execution.
struct CampaignSummary {
    std::size_t total_runs = 0;
    std::size_t failed_runs = 0;
    std::size_t jobs = 1;            ///< worker threads actually used
    double wall_time_s = 0.0;        ///< campaign wall clock
    double total_run_time_s = 0.0;   ///< sum of per-run wall times
    double runs_per_second = 0.0;    ///< total_runs / wall_time_s
    /// Records restored from a resume journal instead of being re-run.
    std::size_t resumed_runs = 0;
    /// Runs that needed more than one attempt, and total extra attempts.
    std::size_t retried_runs = 0;
    std::size_t total_retries = 0;
    /// Runs reaped by the per-run deadline watchdog.
    std::size_t timeout_runs = 0;
    /// Every run that still failed once the retry policy was exhausted, in
    /// key order (deterministic at any worker count).
    std::vector<QuarantinedRun> quarantine;
    /// Campaign-level resilience counters (campaign.retries,
    /// campaign.timeouts, campaign.quarantined, campaign.resumed_runs,
    /// campaign.journal_appends) flowing through the obs layer; exported as
    /// "campaign_metrics" in write_json().
    obs::MetricsSnapshot metrics;
    /// Aggregate parallel efficiency: sum of per-run time over wall time
    /// (~jobs when the pool is saturated, 1 when serial).
    double speedup() const {
        return wall_time_s > 0.0 ? total_run_time_s / wall_time_s : 0.0;
    }
    /// Thread-pool utilization in [0, 1]: achieved speedup over the worker
    /// count (1 = every worker busy for the whole campaign).
    double pool_utilization() const {
        return jobs > 0 ? speedup() / static_cast<double>(jobs) : 0.0;
    }
};

/// Declarative description of a campaign: the full cross product
/// schedulers x workloads x configs x seeds over one shared StudySetup.
///
/// Value semantics: a CampaignSpec owns its labels and factories and shares
/// the (immutable) StudySetup, so it can be copied, stored, and handed to
/// the engine without any reference-lifetime contract. Factories must be
/// safe to
/// invoke from worker threads (they are called once per run, never
/// concurrently *for the same run*; capture shared state by value or treat
/// it as read-only).
class CampaignSpec {
public:
    /// @p base is the configuration every run starts from; add_config()
    /// variants mutate a copy of it.
    explicit CampaignSpec(StudySetup setup, RunSetup base = {});
    CampaignSpec(StudySetup setup, sim::SimConfig base);

    /// Registers a scheduler under @p label. Throws on a null factory.
    CampaignSpec& add_scheduler(std::string label, SchedulerFactory factory);

    /// Registers a fixed task list under @p label.
    CampaignSpec& add_workload(std::string label,
                               std::vector<workload::TaskSpec> tasks);
    /// Registers a seed-parameterised workload under @p label. Throws on a
    /// null factory.
    CampaignSpec& add_workload(std::string label, WorkloadFactory factory);

    /// Registers a named configuration variant. With no variants every run
    /// uses the base setup under the config label "base"; with variants,
    /// each run applies exactly one override to a copy of the base. Pass a
    /// null override for a variant meaning "the base itself".
    CampaignSpec& add_config(std::string label, ConfigOverride patch);

    /// Adds a seed to the sweep. Each run's seed is handed to its workload
    /// factory and installed as SimConfig::fault_seed. Without add_seed()
    /// every combination runs once with the base config's fault_seed.
    CampaignSpec& add_seed(std::uint64_t seed);

    const StudySetup& setup() const { return setup_; }
    const RunSetup& base() const { return base_; }

    std::size_t scheduler_count() const { return schedulers_.size(); }
    std::size_t workload_count() const { return workloads_.size(); }

    /// Number of runs in the grid.
    std::size_t run_count() const;

    /// The deterministic enumeration of the grid: workload-major, then
    /// scheduler, then config, then seed. records[i].key == keys()[i] for
    /// the result of run_campaign(), at any thread count.
    std::vector<RunKey> keys() const;

    /// Materialises the RunSetup for @p key (base + its config override,
    /// fault_seed = key.seed) and the workload tasks for @p key. Used by
    /// the engine and available to tests.
    RunSetup setup_for(const RunKey& key) const;
    std::vector<workload::TaskSpec> tasks_for(const RunKey& key) const;
    std::unique_ptr<sim::Scheduler> make_scheduler(const RunKey& key) const;

private:
    template <typename T>
    struct Named {
        std::string label;
        T value;
    };

    const Named<ConfigOverride>* find_config(const std::string& label) const;

    StudySetup setup_;
    RunSetup base_;
    std::vector<Named<SchedulerFactory>> schedulers_;
    std::vector<Named<WorkloadFactory>> workloads_;
    std::vector<Named<ConfigOverride>> configs_;
    std::vector<std::uint64_t> seeds_;
};

/// Called after each run completes (in completion order, which depends on
/// scheduling); @p done counts completed runs. Invocations are serialized by
/// the engine, so the callback itself needs no locking.
using ProgressCallback = std::function<void(
    const RunRecord& record, std::size_t done, std::size_t total)>;

/// Bounded retry with exponential backoff for kTransient failures. Attempt
/// k (k = 1 is the first retry) sleeps
///   min(backoff_cap_s, backoff_base_s * 2^(k-1)) * jitter
/// where jitter is a deterministic per-(key, attempt) factor in
/// [1 - jitter_frac/2, 1 + jitter_frac/2] — decorrelates a thundering herd
/// of workers without sacrificing reproducible attempt histories.
struct RetryPolicy {
    /// Extra attempts after the first (0 = never retry).
    std::size_t max_retries = 0;
    double backoff_base_s = 0.05;
    double backoff_cap_s = 5.0;
    double jitter_frac = 0.25;
};

struct CampaignOptions {
    /// Worker threads; 0 = one per hardware thread. The pool is fixed-size:
    /// min(jobs, run_count) std::threads shard the run list via an atomic
    /// cursor.
    std::size_t jobs = 1;
    ProgressCallback progress;
    /// Attach the observability layer to every run: each run gets a fresh
    /// obs::Recorder (configured by @ref recorder) on its worker thread, and
    /// its RunRecord carries the metrics snapshot and event trace. A fresh
    /// recorder per run — not per worker — keeps the registered instrument
    /// set independent of which worker happened to execute which runs, so
    /// observed campaigns stay deterministic at any job count.
    bool observe = false;
    obs::RecorderConfig recorder;
    /// Crash-safe checkpointing: append every completed record (fsync'd,
    /// checksummed) to this journal, created/truncated at campaign start.
    /// Empty = no journal. See journal.hpp for the format.
    std::string journal_path;
    /// Resume: load this journal (written by a previous, possibly killed,
    /// execution of the *same* spec), restore its records without re-running
    /// them, run only the missing keys, and keep appending to the same file.
    /// The merged records are bit-identical to an uninterrupted campaign at
    /// any jobs value. Throws JournalError if the journal is corrupt or was
    /// written for a different grid. Overrides journal_path.
    std::string resume_path;
    /// Per-run wall-clock deadline in seconds; 0 disables the watchdog. A
    /// run exceeding it is cooperatively cancelled (sim::CancellationToken),
    /// recorded failed with FailureClass::kTimeout, and the pool keeps
    /// draining.
    double run_timeout_s = 0.0;
    RetryPolicy retry;
    /// Execution placement (DESIGN.md §12): worker pinning policy, NUMA
    /// memory placement, arena sizing, and an injectable topology for tests.
    /// Placement never changes record values — only where workers run and
    /// where their memory lives — so any policy yields bit-identical records.
    /// HOTPOTATO_PIN / HOTPOTATO_NUMA env vars override these at launch.
    exec::ExecPolicy exec;
};

/// The executed campaign: records in CampaignSpec::keys() order — identical
/// at every thread count — plus the observability summary.
struct CampaignResult {
    std::vector<RunRecord> records;
    CampaignSummary summary;
};

/// Executes the full grid. Each run gets a fresh Simulator/Scheduler (and,
/// when faults are scheduled, FaultInjector) while all runs share the
/// spec's read-only StudySetup; a throwing run becomes a failed RunRecord
/// and the campaign continues. Throws std::invalid_argument if the spec has
/// no schedulers or no workloads.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

/// Looks up the record for (workload, scheduler[, config[, seed]]) — the
/// first match in key order. Returns nullptr if absent.
const RunRecord* find(const std::vector<RunRecord>& records,
                      const std::string& workload,
                      const std::string& scheduler,
                      const std::string& config = {},
                      const std::uint64_t* seed = nullptr);

/// Records as a GitHub-flavoured markdown table; failed runs render as
/// FAILED rows carrying the error, failure class and attempt count.
/// Deterministic across thread counts.
std::string to_markdown(const std::vector<RunRecord>& records);

/// One CSV row per run:
/// workload,scheduler,config,seed,makespan_s,avg_response_s,peak_c,
/// dtm_throttled_s,migrations,energy_j,all_finished,failed,error,
/// failure_class,attempts.
/// Byte-identical across thread counts (no wall-clock fields).
void write_csv(std::ostream& out, const std::vector<RunRecord>& records);

/// Records + summary as a JSON document (per-run wall times included —
/// this is the observability surface, not a determinism surface). Failed
/// runs carry "failure_class", "attempts" and "backoff_s" (their retry
/// history); the summary block carries the quarantine list and the
/// campaign-level resilience counters under "campaign_metrics".
void write_json(std::ostream& out, const std::vector<RunRecord>& records,
                const CampaignSummary& summary);

/// Atomic file variants of the three exports: the document is rendered in
/// memory and published via write_file_atomic (temp + fsync + rename), so a
/// crash mid-export can never leave a truncated file behind.
void write_markdown_file(const std::string& path,
                         const std::vector<RunRecord>& records);
void write_csv_file(const std::string& path,
                    const std::vector<RunRecord>& records);
void write_json_file(const std::string& path,
                     const std::vector<RunRecord>& records,
                     const CampaignSummary& summary);

/// Summary as a short markdown block (runs, failures, jobs, wall time,
/// throughput, pool utilization).
std::string summary_markdown(const CampaignSummary& summary);

/// Campaign-level metrics roll-up (obs::merge over every non-empty per-run
/// snapshot) rendered as markdown. Empty string when nothing was observed.
std::string metrics_markdown(const std::vector<RunRecord>& records);

/// Extracts the per-run `"metrics"` objects from a document produced by
/// write_json(), in record order (runs without metrics are skipped). The
/// round-trip write_json() -> metrics_from_json() reproduces each snapshot
/// exactly. Throws std::runtime_error on malformed metrics objects.
std::vector<obs::MetricsSnapshot> metrics_from_json(const std::string& json);

}  // namespace hp::campaign
