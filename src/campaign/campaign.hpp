#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "campaign/study_setup.hpp"
#include "obs/recorder.hpp"
#include "perf/interval_model.hpp"
#include "power/power_model.hpp"
#include "sim/config.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace hp::campaign {

/// Everything a single run may vary: the simulator knobs plus the power and
/// performance model parameters (the substrate-fidelity axes).
struct RunSetup {
    sim::SimConfig sim;
    power::PowerParams power;
    perf::PerfParams perf;
};

/// A scheduler factory: fresh instance per run (schedulers are stateful).
using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>()>;

/// A workload factory: the per-run seed is passed in so seed sweeps can
/// re-draw randomized workloads; fixed task lists ignore it.
using WorkloadFactory =
    std::function<std::vector<workload::TaskSpec>(std::uint64_t seed)>;

/// Mutates the base RunSetup for one named configuration variant.
using ConfigOverride = std::function<void(RunSetup&)>;

/// Stable address of one run in a campaign grid. Keys are independent of
/// execution order and thread count; @ref index is the position in the
/// deterministic enumeration (workload-major, then scheduler, then config,
/// then seed — the same order CampaignSpec::keys() and the records of
/// run_campaign() use).
struct RunKey {
    std::size_t index = 0;
    std::string workload;
    std::string scheduler;
    std::string config;      ///< "base" unless add_config() variants exist
    std::uint64_t seed = 0;

    bool operator==(const RunKey& other) const {
        return index == other.index && workload == other.workload &&
               scheduler == other.scheduler && config == other.config &&
               seed == other.seed;
    }
};

/// "workload/scheduler/config/seed" — log- and filename-friendly.
std::string to_string(const RunKey& key);

/// Outcome of one run. A throwing run (scheduler factory, workload factory
/// or the simulation itself) is captured here instead of killing the
/// campaign: @ref failed is set, @ref error carries the exception message
/// and @ref result is default-constructed.
struct RunRecord {
    RunKey key;
    sim::SimResult result;
    bool failed = false;
    std::string error;
    /// Host wall time of this run (observability only — never part of the
    /// CSV/markdown result tables, which must be bit-identical across
    /// thread counts).
    double wall_time_s = 0.0;
    /// Per-run observability (empty unless CampaignOptions::observe). The
    /// counters/gauges/histograms, the phase `calls` and the event list are
    /// pure functions of the simulated run — identical at any worker count;
    /// only the phases' total_s is host wall time.
    obs::MetricsSnapshot metrics;
    std::vector<obs::Event> events;
};

/// Observability roll-up of one campaign execution.
struct CampaignSummary {
    std::size_t total_runs = 0;
    std::size_t failed_runs = 0;
    std::size_t jobs = 1;            ///< worker threads actually used
    double wall_time_s = 0.0;        ///< campaign wall clock
    double total_run_time_s = 0.0;   ///< sum of per-run wall times
    double runs_per_second = 0.0;    ///< total_runs / wall_time_s
    /// Aggregate parallel efficiency: sum of per-run time over wall time
    /// (~jobs when the pool is saturated, 1 when serial).
    double speedup() const {
        return wall_time_s > 0.0 ? total_run_time_s / wall_time_s : 0.0;
    }
    /// Thread-pool utilization in [0, 1]: achieved speedup over the worker
    /// count (1 = every worker busy for the whole campaign).
    double pool_utilization() const {
        return jobs > 0 ? speedup() / static_cast<double>(jobs) : 0.0;
    }
};

/// Declarative description of a campaign: the full cross product
/// schedulers x workloads x configs x seeds over one shared StudySetup.
///
/// Value semantics: a CampaignSpec owns its labels and factories and shares
/// the (immutable) StudySetup, so it can be copied, stored, and handed to
/// the engine without any reference-lifetime contract — the replacement for
/// report::ComparisonRunner's raw-pointer API. Factories must be safe to
/// invoke from worker threads (they are called once per run, never
/// concurrently *for the same run*; capture shared state by value or treat
/// it as read-only).
class CampaignSpec {
public:
    /// @p base is the configuration every run starts from; add_config()
    /// variants mutate a copy of it.
    explicit CampaignSpec(StudySetup setup, RunSetup base = {});
    CampaignSpec(StudySetup setup, sim::SimConfig base);

    /// Registers a scheduler under @p label. Throws on a null factory.
    CampaignSpec& add_scheduler(std::string label, SchedulerFactory factory);

    /// Registers a fixed task list under @p label.
    CampaignSpec& add_workload(std::string label,
                               std::vector<workload::TaskSpec> tasks);
    /// Registers a seed-parameterised workload under @p label. Throws on a
    /// null factory.
    CampaignSpec& add_workload(std::string label, WorkloadFactory factory);

    /// Registers a named configuration variant. With no variants every run
    /// uses the base setup under the config label "base"; with variants,
    /// each run applies exactly one override to a copy of the base. Pass a
    /// null override for a variant meaning "the base itself".
    CampaignSpec& add_config(std::string label, ConfigOverride patch);

    /// Adds a seed to the sweep. Each run's seed is handed to its workload
    /// factory and installed as SimConfig::fault_seed. Without add_seed()
    /// every combination runs once with the base config's fault_seed.
    CampaignSpec& add_seed(std::uint64_t seed);

    const StudySetup& setup() const { return setup_; }
    const RunSetup& base() const { return base_; }

    std::size_t scheduler_count() const { return schedulers_.size(); }
    std::size_t workload_count() const { return workloads_.size(); }

    /// Number of runs in the grid.
    std::size_t run_count() const;

    /// The deterministic enumeration of the grid: workload-major, then
    /// scheduler, then config, then seed. records[i].key == keys()[i] for
    /// the result of run_campaign(), at any thread count.
    std::vector<RunKey> keys() const;

    /// Materialises the RunSetup for @p key (base + its config override,
    /// fault_seed = key.seed) and the workload tasks for @p key. Used by
    /// the engine and available to tests.
    RunSetup setup_for(const RunKey& key) const;
    std::vector<workload::TaskSpec> tasks_for(const RunKey& key) const;
    std::unique_ptr<sim::Scheduler> make_scheduler(const RunKey& key) const;

private:
    template <typename T>
    struct Named {
        std::string label;
        T value;
    };

    const Named<ConfigOverride>* find_config(const std::string& label) const;

    StudySetup setup_;
    RunSetup base_;
    std::vector<Named<SchedulerFactory>> schedulers_;
    std::vector<Named<WorkloadFactory>> workloads_;
    std::vector<Named<ConfigOverride>> configs_;
    std::vector<std::uint64_t> seeds_;
};

/// Called after each run completes (in completion order, which depends on
/// scheduling); @p done counts completed runs. Invocations are serialized by
/// the engine, so the callback itself needs no locking.
using ProgressCallback = std::function<void(
    const RunRecord& record, std::size_t done, std::size_t total)>;

struct CampaignOptions {
    /// Worker threads; 0 = one per hardware thread. The pool is fixed-size:
    /// min(jobs, run_count) std::threads shard the run list via an atomic
    /// cursor.
    std::size_t jobs = 1;
    ProgressCallback progress;
    /// Attach the observability layer to every run: each run gets a fresh
    /// obs::Recorder (configured by @ref recorder) on its worker thread, and
    /// its RunRecord carries the metrics snapshot and event trace. A fresh
    /// recorder per run — not per worker — keeps the registered instrument
    /// set independent of which worker happened to execute which runs, so
    /// observed campaigns stay deterministic at any job count.
    bool observe = false;
    obs::RecorderConfig recorder;
};

/// The executed campaign: records in CampaignSpec::keys() order — identical
/// at every thread count — plus the observability summary.
struct CampaignResult {
    std::vector<RunRecord> records;
    CampaignSummary summary;
};

/// Executes the full grid. Each run gets a fresh Simulator/Scheduler (and,
/// when faults are scheduled, FaultInjector) while all runs share the
/// spec's read-only StudySetup; a throwing run becomes a failed RunRecord
/// and the campaign continues. Throws std::invalid_argument if the spec has
/// no schedulers or no workloads.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

/// Looks up the record for (workload, scheduler[, config[, seed]]) — the
/// first match in key order. Returns nullptr if absent.
const RunRecord* find(const std::vector<RunRecord>& records,
                      const std::string& workload,
                      const std::string& scheduler,
                      const std::string& config = {},
                      const std::uint64_t* seed = nullptr);

/// Records as a GitHub-flavoured markdown table; failed runs render as
/// FAILED rows carrying the error. Deterministic across thread counts.
std::string to_markdown(const std::vector<RunRecord>& records);

/// One CSV row per run:
/// workload,scheduler,config,seed,makespan_s,avg_response_s,peak_c,
/// dtm_throttled_s,migrations,energy_j,all_finished,failed,error.
/// Byte-identical across thread counts (no wall-clock fields).
void write_csv(std::ostream& out, const std::vector<RunRecord>& records);

/// Records + summary as a JSON document (per-run wall times included —
/// this is the observability surface, not a determinism surface).
void write_json(std::ostream& out, const std::vector<RunRecord>& records,
                const CampaignSummary& summary);

/// Summary as a short markdown block (runs, failures, jobs, wall time,
/// throughput, pool utilization).
std::string summary_markdown(const CampaignSummary& summary);

/// Campaign-level metrics roll-up (obs::merge over every non-empty per-run
/// snapshot) rendered as markdown. Empty string when nothing was observed.
std::string metrics_markdown(const std::vector<RunRecord>& records);

/// Extracts the per-run `"metrics"` objects from a document produced by
/// write_json(), in record order (runs without metrics are skipped). The
/// round-trip write_json() -> metrics_from_json() reproduces each snapshot
/// exactly. Throws std::runtime_error on malformed metrics objects.
std::vector<obs::MetricsSnapshot> metrics_from_json(const std::string& json);

}  // namespace hp::campaign
