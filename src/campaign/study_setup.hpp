#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/manycore.hpp"
#include "perf/interval_model.hpp"
#include "power/power_model.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"

namespace hp::campaign {

/// The expensive, shareable half of every study in this repo: a chip plus
/// its thermal model and the one-time thermal-solver setup (dense MatEx
/// eigendecomposition or truncated-modal reduction, chosen through
/// thermal::SolverConfig).
///
/// StudySetup is a value type — copies are cheap and share the same
/// immutable bundle through a shared_ptr, so a CampaignSpec holding one can
/// be copied, stored and passed across threads without any lifetime
/// contract. This replaces the Testbed boilerplate that every bench and
/// example used to duplicate.
///
/// Thread safety: ManyCore (AMD + ring tables), ThermalModel (A/B/G and the
/// cached LU of B) and every TransientSolver backend are all immutable after
/// construction — no mutable members, no lazy caches — so any number of
/// threads may call their const member functions concurrently. This is the
/// contract the parallel campaign engine relies on: one StudySetup is shared
/// read-only by all workers while every worker builds its own Simulator,
/// Scheduler and (when faults are scheduled) FaultInjector per run.
class StudySetup {
public:
    /// Builds chip + thermal model + solver backend for @p chip. The default
    /// @p solver auto-selects the backend: dense at or below
    /// SolverConfig::dense_node_threshold thermal nodes, truncated-modal
    /// above, with an environment override via HOTPOTATO_SOLVER.
    static StudySetup custom(arch::ManyCore chip,
                             thermal::RcNetworkConfig cooling = {},
                             thermal::SolverConfig solver = {});

    /// Paper Table I 64-core (8x8) part.
    static StudySetup paper_64core(thermal::SolverConfig solver = {});
    /// The motivational example's 16-core (4x4) part.
    static StudySetup paper_16core(thermal::SolverConfig solver = {});
    /// 3D-stacked 2x(4x4) part (paper SSVII future work).
    static StudySetup stacked_32core(thermal::SolverConfig solver = {});
    /// 256-core (16x16) scale-up of the paper Table I part; 513 thermal
    /// nodes, served by the truncated-modal backend under auto selection.
    static StudySetup paper_256core(thermal::SolverConfig solver = {});
    /// 3D-stacked 256-core part: four stacked 8x8 layers over one spreader
    /// (321 thermal nodes).
    static StudySetup stacked_256core(thermal::SolverConfig solver = {});
    /// 1024-core (32x32) part (2049 thermal nodes) — the scaling ceiling
    /// the truncated-modal backend is specified against.
    static StudySetup paper_1024core(thermal::SolverConfig solver = {});

    /// Builds the named stock configuration — the tag namespace the advice
    /// server binds request config tags against ("paper_64core",
    /// "paper_16core", "stacked_32core", "paper_256core", "stacked_256core",
    /// "paper_1024core"). Throws std::invalid_argument on an unknown name,
    /// listing the known tags.
    static StudySetup by_name(const std::string& name,
                              thermal::SolverConfig solver = {});

    /// The tags by_name accepts, in a stable order.
    static const std::vector<std::string>& known_names();

    const arch::ManyCore& chip() const { return *chip_; }
    const thermal::ThermalModel& model() const { return *model_; }
    const thermal::TransientSolver& solver() const { return *solver_; }

    /// A StudySetup over a brand-new bundle that shares no storage with this
    /// one: chip tables copied, model deep-copied via ThermalModel::replica()
    /// and the solver cloned via TransientSolver::clone_rebound() — all
    /// bit-for-bit copies, nothing recomputed (no eigensolve), so replica
    /// runs produce bit-identical records. The campaign engine calls this
    /// once per NUMA node (first worker on the node pays the copy; the pages
    /// land node-local by first touch) so high --jobs sweeps stop bouncing
    /// the shared solver tables across sockets.
    StudySetup replicate() const;

    /// A fresh simulator over the shared machine; one per run. An optional
    /// @p workspace lets a worker thread reuse its thermal scratch across
    /// consecutive runs (never share one workspace between threads). An
    /// optional @p recorder attaches the observability layer to the run; a
    /// recorder belongs to one run only (never reuse it across runs — its
    /// instruments would accumulate). An optional @p cancel token makes the
    /// run cooperatively cancellable (see sim::CancellationToken). An
    /// optional @p scratch hands the worker's long-lived scratch bag to the
    /// simulator (SimContext::worker_scratch()) so schedulers can borrow
    /// arena-backed workspaces across the worker's runs.
    sim::Simulator make_simulator(
        sim::SimConfig config = {}, power::PowerParams power = {},
        perf::PerfParams perf = {},
        thermal::ThermalWorkspace* workspace = nullptr,
        obs::Recorder* recorder = nullptr,
        const sim::CancellationToken* cancel = nullptr,
        exec::WorkerScratch* scratch = nullptr) const;

private:
    struct Bundle;  // owning storage (chip, then model, then solver)

    StudySetup(std::shared_ptr<const Bundle> owned, const arch::ManyCore* chip,
               const thermal::ThermalModel* model,
               const thermal::TransientSolver* solver)
        : owned_(std::move(owned)), chip_(chip), model_(model),
          solver_(solver) {}

    std::shared_ptr<const Bundle> owned_;
    const arch::ManyCore* chip_;
    const thermal::ThermalModel* model_;
    const thermal::TransientSolver* solver_;
};

}  // namespace hp::campaign
