#include "campaign/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "campaign/atomic_file.hpp"
#include "obs/metrics.hpp"

namespace hp::campaign {

namespace {

// ---- primitives -----------------------------------------------------------

constexpr char kSep = '\x1f';  ///< field separator (ASCII unit separator)
constexpr const char* kMagic = "hpjournal1";

std::uint64_t fnv1a64(const char* data, std::size_t size,
                      std::uint64_t hash = 14695981039346656037ull) {
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t fnv1a64(const std::string& text,
                      std::uint64_t hash = 14695981039346656037ull) {
    return fnv1a64(text.data(), text.size(), hash);
}

std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);  // bit-exact round-trip
    return buf;
}

/// Strings may contain anything; the separator, newlines and backslashes
/// are escaped so a payload is always exactly one line of separated fields.
std::string escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case kSep: out += "\\u"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            default: out += c;
        }
    }
    return out;
}

std::string unescape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\') {
            out += text[i];
            continue;
        }
        if (i + 1 >= text.size())
            throw JournalError("journal: dangling escape in string field");
        switch (text[++i]) {
            case '\\': out += '\\'; break;
            case 'u': out += kSep; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            default:
                throw JournalError("journal: unknown escape in string field");
        }
    }
    return out;
}

// ---- field writer / reader ------------------------------------------------

class FieldWriter {
public:
    void str(const std::string& s) { put(escape(s)); }
    void u64(std::uint64_t v) { put(std::to_string(v)); }
    void f64(double v) { put(fmt_double(v)); }
    void boolean(bool v) { put(v ? "1" : "0"); }
    std::string take() { return std::move(out_); }

private:
    void put(const std::string& field) {
        if (!out_.empty()) out_ += kSep;
        out_ += field;
    }
    std::string out_;
};

class FieldReader {
public:
    explicit FieldReader(const std::string& payload) {
        std::size_t start = 0;
        for (std::size_t i = 0; i <= payload.size(); ++i) {
            if (i == payload.size() || payload[i] == kSep) {
                fields_.push_back(payload.substr(start, i - start));
                start = i + 1;
            }
        }
    }

    const std::string& raw() {
        if (next_ >= fields_.size())
            throw JournalError("journal: truncated record payload");
        return fields_[next_++];
    }
    std::string str() { return unescape(raw()); }
    std::uint64_t u64() {
        const std::string& f = raw();
        errno = 0;
        char* end = nullptr;
        const unsigned long long v = std::strtoull(f.c_str(), &end, 10);
        if (errno != 0 || end != f.c_str() + f.size() || f.empty())
            throw JournalError("journal: bad integer field: " + f);
        return v;
    }
    double f64() {
        const std::string& f = raw();
        errno = 0;
        char* end = nullptr;
        const double v = std::strtod(f.c_str(), &end);
        if (end != f.c_str() + f.size() || f.empty())
            throw JournalError("journal: bad double field: " + f);
        return v;
    }
    bool boolean() { return u64() != 0; }
    bool exhausted() const { return next_ == fields_.size(); }

private:
    std::vector<std::string> fields_;
    std::size_t next_ = 0;
};

[[noreturn]] void fail_io(const std::string& what, const std::string& path) {
    throw std::runtime_error(what + ": " + path + ": " +
                             std::strerror(errno));
}

}  // namespace

// ---- grid signature -------------------------------------------------------

std::uint64_t grid_signature(const CampaignSpec& spec) {
    std::uint64_t hash = fnv1a64(std::to_string(spec.run_count()));
    for (const RunKey& key : spec.keys()) {
        hash = fnv1a64(std::to_string(key.index), hash);
        hash = fnv1a64(key.workload, hash);
        hash = fnv1a64(key.scheduler, hash);
        hash = fnv1a64(key.config, hash);
        hash = fnv1a64(std::to_string(key.seed), hash);
    }
    return hash;
}

// ---- record (de)serialization ---------------------------------------------

std::string serialize_record(const RunRecord& r) {
    FieldWriter w;
    w.str("R1");  // payload version
    w.u64(r.key.index);
    w.str(r.key.workload);
    w.str(r.key.scheduler);
    w.str(r.key.config);
    w.u64(r.key.seed);
    w.boolean(r.failed);
    w.u64(static_cast<std::uint64_t>(r.failure_class));
    w.u64(r.attempts);
    w.u64(r.backoff_s.size());
    for (double b : r.backoff_s) w.f64(b);
    w.str(r.error);
    w.f64(r.wall_time_s);

    const sim::SimResult& s = r.result;
    w.boolean(s.all_finished);
    w.f64(s.makespan_s);
    w.f64(s.simulated_time_s);
    w.f64(s.peak_temperature_c);
    w.f64(s.dtm_throttled_s);
    w.u64(s.dtm_triggers);
    w.u64(s.migrations);
    w.f64(s.total_energy_j);
    w.f64(s.idle_energy_j);
    w.u64(s.tasks.size());
    for (const sim::TaskResult& t : s.tasks) {
        w.u64(t.id);
        w.str(t.benchmark);
        w.u64(t.threads);
        w.f64(t.arrival_s);
        w.f64(t.start_s);
        w.f64(t.finish_s);
        w.f64(t.energy_j);
    }
    const sim::ResilienceStats& res = s.resilience;
    w.u64(res.faults_injected);
    w.u64(res.core_failures);
    w.u64(res.sensor_faults);
    w.u64(res.rotation_aborts);
    w.u64(res.threads_replaced);
    w.u64(res.threads_stranded);
    w.u64(res.watchdog_triggers);
    w.f64(res.watchdog_throttled_s);
    w.f64(res.worst_recovery_s);
    w.f64(res.thermal_violation_s);
    w.f64(res.peak_during_fault_c);
    w.u64(res.untrusted_sensor_samples);
    w.u64(res.fault_log.size());
    for (const fault::FaultLogEntry& e : res.fault_log) {
        w.f64(e.time_s);
        w.u64(static_cast<std::uint64_t>(e.kind));
        w.u64(e.target);
        w.str(e.note);
    }
    w.u64(s.trace.size());
    for (const sim::TraceSample& t : s.trace) {
        w.f64(t.time_s);
        w.f64(t.max_core_temperature_c);
        w.u64(t.core_temperature_c.size());
        for (double v : t.core_temperature_c) w.f64(v);
        for (double v : t.core_power_w) w.f64(v);
        for (double v : t.core_frequency_hz) w.f64(v);
    }

    if (r.metrics.empty()) {
        w.str("");
    } else {
        std::ostringstream metrics;
        obs::write_metrics_json(metrics, r.metrics);
        w.str(metrics.str());
    }
    w.u64(r.events.size());
    for (const obs::Event& e : r.events) {
        w.f64(e.time_s);
        w.u64(static_cast<std::uint64_t>(e.kind));
        w.u64(e.arg0);
        w.u64(e.arg1);
        w.f64(e.value);
    }
    return w.take();
}

RunRecord parse_record(const std::string& payload) {
    FieldReader f(payload);
    if (f.str() != "R1")
        throw JournalError("journal: unsupported record version");
    RunRecord r;
    r.key.index = f.u64();
    r.key.workload = f.str();
    r.key.scheduler = f.str();
    r.key.config = f.str();
    r.key.seed = f.u64();
    r.failed = f.boolean();
    const std::uint64_t cls = f.u64();
    if (cls > static_cast<std::uint64_t>(FailureClass::kUnknown))
        throw JournalError("journal: bad failure class");
    r.failure_class = static_cast<FailureClass>(cls);
    r.attempts = f.u64();
    r.backoff_s.resize(f.u64());
    for (double& b : r.backoff_s) b = f.f64();
    r.error = f.str();
    r.wall_time_s = f.f64();

    sim::SimResult& s = r.result;
    s.all_finished = f.boolean();
    s.makespan_s = f.f64();
    s.simulated_time_s = f.f64();
    s.peak_temperature_c = f.f64();
    s.dtm_throttled_s = f.f64();
    s.dtm_triggers = f.u64();
    s.migrations = f.u64();
    s.total_energy_j = f.f64();
    s.idle_energy_j = f.f64();
    s.tasks.resize(f.u64());
    for (sim::TaskResult& t : s.tasks) {
        t.id = f.u64();
        t.benchmark = f.str();
        t.threads = f.u64();
        t.arrival_s = f.f64();
        t.start_s = f.f64();
        t.finish_s = f.f64();
        t.energy_j = f.f64();
    }
    sim::ResilienceStats& res = s.resilience;
    res.faults_injected = f.u64();
    res.core_failures = f.u64();
    res.sensor_faults = f.u64();
    res.rotation_aborts = f.u64();
    res.threads_replaced = f.u64();
    res.threads_stranded = f.u64();
    res.watchdog_triggers = f.u64();
    res.watchdog_throttled_s = f.f64();
    res.worst_recovery_s = f.f64();
    res.thermal_violation_s = f.f64();
    res.peak_during_fault_c = f.f64();
    res.untrusted_sensor_samples = f.u64();
    res.fault_log.resize(f.u64());
    for (fault::FaultLogEntry& e : res.fault_log) {
        e.time_s = f.f64();
        e.kind = static_cast<fault::FaultKind>(f.u64());
        e.target = f.u64();
        e.note = f.str();
    }
    s.trace.resize(f.u64());
    for (sim::TraceSample& t : s.trace) {
        t.time_s = f.f64();
        t.max_core_temperature_c = f.f64();
        const std::size_t n = f.u64();
        t.core_temperature_c.resize(n);
        t.core_power_w.resize(n);
        t.core_frequency_hz.resize(n);
        for (double& v : t.core_temperature_c) v = f.f64();
        for (double& v : t.core_power_w) v = f.f64();
        for (double& v : t.core_frequency_hz) v = f.f64();
    }

    const std::string metrics = f.str();
    if (!metrics.empty()) {
        try {
            r.metrics = obs::parse_metrics_json(metrics);
        } catch (const std::exception& e) {
            throw JournalError(std::string("journal: bad metrics field: ") +
                               e.what());
        }
    }
    r.events.resize(f.u64());
    for (obs::Event& e : r.events) {
        e.time_s = f.f64();
        e.kind = static_cast<obs::EventKind>(f.u64());
        e.arg0 = static_cast<std::uint32_t>(f.u64());
        e.arg1 = static_cast<std::uint32_t>(f.u64());
        e.value = f.f64();
    }
    if (!f.exhausted())
        throw JournalError("journal: trailing fields in record payload");
    return r;
}

// ---- file format ----------------------------------------------------------

namespace {

std::string header_line(const CampaignSpec& spec) {
    return std::string(kMagic) + " " + hex64(grid_signature(spec)) + " " +
           std::to_string(spec.run_count()) + "\n";
}

/// Shared scan: parses the whole file, returning the contents plus the byte
/// length of the valid prefix (everything before a torn final line).
JournalContents scan_journal(const std::string& path,
                             std::size_t* valid_bytes) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw JournalError("journal: cannot open: " + path + ": " +
                           std::strerror(errno));
    std::string data;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, file)) > 0)
        data.append(buf, n);
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error)
        throw JournalError("journal: read failed: " + path);

    JournalContents out;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    std::size_t consumed = 0;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::string line =
            data.substr(pos, complete ? nl - pos : std::string::npos);
        ++line_no;
        if (line_no == 1) {
            // Header: "hpjournal1 <grid hex> <runs>". Created atomically, so
            // a torn header means the file is not a journal at all.
            std::istringstream h(line);
            std::string magic, grid;
            if (!complete || !(h >> magic >> grid >> out.total_runs) ||
                magic != kMagic || grid.size() != 16)
                throw JournalError("journal: bad header: " + path);
            out.grid_hash = std::strtoull(grid.c_str(), nullptr, 16);
        } else {
            const std::size_t space = line.find(' ');
            const bool well_formed =
                complete && space == 16 &&
                hex64(fnv1a64(line.data() + space + 1,
                              line.size() - space - 1)) ==
                    line.substr(0, 16);
            if (!well_formed) {
                // A torn/corrupt FINAL line is the expected crash artifact:
                // drop it. Anywhere else it is corruption.
                if (complete && nl != data.size() - 1)
                    throw JournalError(
                        "journal: checksum mismatch at line " +
                        std::to_string(line_no) + ": " + path);
                out.torn_tail = true;
                break;
            }
            out.records.push_back(parse_record(line.substr(space + 1)));
        }
        pos = nl + 1;
        consumed = pos;
    }
    if (line_no == 0) throw JournalError("journal: empty file: " + path);
    if (valid_bytes) *valid_bytes = consumed;
    return out;
}

}  // namespace

JournalContents read_journal(const std::string& path) {
    return scan_journal(path, nullptr);
}

RunJournal RunJournal::create(const std::string& path,
                              const CampaignSpec& spec) {
    // Header published atomically: after this either no journal exists or a
    // valid (possibly empty) one does — never a torn header.
    write_file_atomic(path, header_line(spec));
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) fail_io("journal: cannot open for append", path);
    return RunJournal(path, fd);
}

RunJournal RunJournal::append_to(const std::string& path,
                                 const CampaignSpec& spec) {
    std::size_t valid_bytes = 0;
    const JournalContents contents = scan_journal(path, &valid_bytes);
    if (contents.grid_hash != grid_signature(spec) ||
        contents.total_runs != spec.run_count())
        throw JournalError(
            "journal: grid mismatch (journal written for a different "
            "campaign spec): " + path);
    // Drop a torn tail before appending so the next record starts on a
    // clean line boundary.
    if (contents.torn_tail &&
        ::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0)
        fail_io("journal: cannot truncate torn tail", path);
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) fail_io("journal: cannot open for append", path);
    return RunJournal(path, fd);
}

RunJournal::RunJournal(RunJournal&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
    other.fd_ = -1;
}

RunJournal::~RunJournal() {
    if (fd_ >= 0) ::close(fd_);
}

void RunJournal::append(const RunRecord& record) {
    const std::string payload = serialize_record(record);
    const std::string line = hex64(fnv1a64(payload)) + " " + payload + "\n";
    const char* data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
        const ssize_t n = ::write(fd_, data, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail_io("journal: append failed", path_);
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) fail_io("journal: fsync failed", path_);
}

}  // namespace hp::campaign
