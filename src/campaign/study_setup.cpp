#include "campaign/study_setup.hpp"

#include <stdexcept>
#include <utility>

namespace hp::campaign {

/// Members reference each other (model reads chip.plan() during build, the
/// solver keeps a pointer to model), so the bundle is constructed in place
/// on the heap and never moved afterwards.
struct StudySetup::Bundle {
    arch::ManyCore chip;
    thermal::ThermalModel model;
    std::unique_ptr<const thermal::TransientSolver> solver;

    Bundle(arch::ManyCore c, const thermal::RcNetworkConfig& cooling,
           const thermal::SolverConfig& solver_config)
        : chip(std::move(c)),
          model(chip.plan(), cooling),
          solver(thermal::make_solver(model, solver_config)) {}

    /// Deep copy sharing nothing with @p other: replica() duplicates the
    /// model (including the cached LU) and clone_rebound copies the solver's
    /// tables bit-for-bit against the new model — no setup recomputation.
    Bundle(const Bundle& other)
        : chip(other.chip),
          model(other.model.replica()),
          solver(other.solver->clone_rebound(model)) {}
};

StudySetup StudySetup::replicate() const {
    auto bundle = std::make_shared<const Bundle>(*owned_);
    const Bundle* b = bundle.get();
    return StudySetup(std::move(bundle), &b->chip, &b->model,
                      b->solver.get());
}

StudySetup StudySetup::custom(arch::ManyCore chip,
                              thermal::RcNetworkConfig cooling,
                              thermal::SolverConfig solver) {
    auto bundle =
        std::make_shared<const Bundle>(std::move(chip), cooling, solver);
    const Bundle* b = bundle.get();
    return StudySetup(std::move(bundle), &b->chip, &b->model,
                      b->solver.get());
}

StudySetup StudySetup::paper_64core(thermal::SolverConfig solver) {
    return custom(arch::ManyCore::paper_64core(), {}, solver);
}

StudySetup StudySetup::paper_16core(thermal::SolverConfig solver) {
    return custom(arch::ManyCore::paper_16core(), {}, solver);
}

StudySetup StudySetup::stacked_32core(thermal::SolverConfig solver) {
    return custom(arch::ManyCore::stacked_32core(), {}, solver);
}

StudySetup StudySetup::paper_256core(thermal::SolverConfig solver) {
    return custom(arch::ManyCore(16, 16), {}, solver);
}

StudySetup StudySetup::stacked_256core(thermal::SolverConfig solver) {
    arch::SnucaParams params;
    params.layers = 4;
    return custom(arch::ManyCore(8, 8, params), {}, solver);
}

StudySetup StudySetup::paper_1024core(thermal::SolverConfig solver) {
    return custom(arch::ManyCore(32, 32), {}, solver);
}

StudySetup StudySetup::by_name(const std::string& name,
                               thermal::SolverConfig solver) {
    if (name == "paper_16core") return paper_16core(solver);
    if (name == "paper_64core") return paper_64core(solver);
    if (name == "stacked_32core") return stacked_32core(solver);
    if (name == "paper_256core") return paper_256core(solver);
    if (name == "stacked_256core") return stacked_256core(solver);
    if (name == "paper_1024core") return paper_1024core(solver);
    std::string known;
    for (const std::string& n : known_names()) {
        if (!known.empty()) known += ", ";
        known += n;
    }
    throw std::invalid_argument("StudySetup::by_name: unknown config tag '" +
                                name + "' (known: " + known + ")");
}

const std::vector<std::string>& StudySetup::known_names() {
    static const std::vector<std::string> names = {
        "paper_16core",  "paper_64core",   "stacked_32core",
        "paper_256core", "stacked_256core", "paper_1024core"};
    return names;
}

sim::Simulator StudySetup::make_simulator(
    sim::SimConfig config, power::PowerParams power, perf::PerfParams perf,
    thermal::ThermalWorkspace* workspace, obs::Recorder* recorder,
    const sim::CancellationToken* cancel, exec::WorkerScratch* scratch) const {
    return sim::Simulator(*chip_, *model_, *solver_, std::move(config), power,
                          perf, workspace, recorder, cancel, scratch);
}

}  // namespace hp::campaign
