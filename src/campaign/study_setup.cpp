#include "campaign/study_setup.hpp"

#include <utility>

namespace hp::campaign {

/// Members reference each other (model reads chip.plan() during build, the
/// solver keeps a pointer to model), so the bundle is constructed in place
/// on the heap and never moved afterwards.
struct StudySetup::Bundle {
    arch::ManyCore chip;
    thermal::ThermalModel model;
    thermal::MatExSolver solver;

    Bundle(arch::ManyCore c, const thermal::RcNetworkConfig& cooling)
        : chip(std::move(c)), model(chip.plan(), cooling), solver(model) {}
};

StudySetup StudySetup::custom(arch::ManyCore chip,
                              thermal::RcNetworkConfig cooling) {
    auto bundle = std::make_shared<const Bundle>(std::move(chip), cooling);
    const Bundle* b = bundle.get();
    return StudySetup(std::move(bundle), &b->chip, &b->model, &b->solver);
}

StudySetup StudySetup::paper_64core() {
    return custom(arch::ManyCore::paper_64core());
}

StudySetup StudySetup::paper_16core() {
    return custom(arch::ManyCore::paper_16core());
}

StudySetup StudySetup::stacked_32core() {
    return custom(arch::ManyCore::stacked_32core());
}

StudySetup StudySetup::borrow(const arch::ManyCore& chip,
                              const thermal::ThermalModel& model,
                              const thermal::MatExSolver& solver) {
    return StudySetup(nullptr, &chip, &model, &solver);
}

sim::Simulator StudySetup::make_simulator(
    sim::SimConfig config, power::PowerParams power, perf::PerfParams perf,
    thermal::ThermalWorkspace* workspace, obs::Recorder* recorder,
    const sim::CancellationToken* cancel) const {
    return sim::Simulator(*chip_, *model_, *solver_, std::move(config), power,
                          perf, workspace, recorder, cancel);
}

}  // namespace hp::campaign
