#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace hp::campaign {

/// Raised on any resume-journal problem that is NOT a crash artifact: a
/// missing or unreadable file, a malformed header, a checksum or parse
/// failure on an interior record, or a journal written for a different
/// campaign grid. (A torn *final* line is the expected signature of a crash
/// mid-append and is silently dropped instead.) The CLI maps this to its
/// own exit code so scripts can distinguish "journal corrupt" from "some
/// runs failed".
class JournalError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Order- and thread-count-independent fingerprint of a campaign grid:
/// FNV-1a over run_count and every RunKey (index, labels, seed). A journal
/// records the signature of the spec that wrote it; resuming with a spec
/// whose signature differs is a JournalError — the journaled records would
/// be merged into the wrong grid.
std::uint64_t grid_signature(const CampaignSpec& spec);

/// What read_journal() recovered.
struct JournalContents {
    std::uint64_t grid_hash = 0;    ///< signature of the writing spec
    std::size_t total_runs = 0;     ///< grid size of the writing spec
    /// Journaled records in append (completion) order. The engine re-merges
    /// them by key.index, so this order carries no meaning.
    std::vector<RunRecord> records;
    /// True when the final line was torn (crash mid-append) and dropped.
    bool torn_tail = false;
};

/// Parses a journal file. Throws JournalError on corruption anywhere except
/// a torn final line. The record payloads round-trip every determinism-
/// relevant RunRecord field bit-exactly (doubles via %.17g), including the
/// obs metrics snapshot and event trace.
JournalContents read_journal(const std::string& path);

/// Append-only, crash-safe run journal (DESIGN.md §10).
///
/// Layout: one header line (format version, grid signature, run count)
/// followed by one line per completed run — `<fnv64 hex> <payload>` where
/// the checksum covers the payload bytes. The file is created atomically
/// (temp + fsync + rename) so a crash during creation leaves either no
/// journal or a valid empty one; every append is written and fsync'd as a
/// single line, so a crash mid-append can only tear the final line, which
/// read_journal() detects by checksum and drops.
///
/// Threading: append() is NOT internally synchronized — the campaign engine
/// serializes appends under its own mutex.
class RunJournal {
public:
    /// Starts a fresh journal for @p spec at @p path (atomically replacing
    /// any previous file). Throws std::runtime_error on I/O failure.
    static RunJournal create(const std::string& path,
                             const CampaignSpec& spec);

    /// Opens an existing journal for continued appends (the resume case).
    /// Validates the header against @p spec; throws JournalError on
    /// mismatch or corruption.
    static RunJournal append_to(const std::string& path,
                                const CampaignSpec& spec);

    RunJournal(RunJournal&& other) noexcept;
    RunJournal& operator=(RunJournal&&) = delete;
    RunJournal(const RunJournal&) = delete;
    RunJournal& operator=(const RunJournal&) = delete;
    ~RunJournal();

    /// Serializes @p record, appends it as one checksummed line and fsyncs.
    /// After append() returns, the record survives a SIGKILL or power loss.
    void append(const RunRecord& record);

    const std::string& path() const { return path_; }

private:
    RunJournal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

    std::string path_;
    int fd_ = -1;
};

/// Payload (de)serialization, exposed for tests: serialize_record() emits a
/// single line without checksum or newline; parse_record() inverts it
/// exactly. parse_record() throws JournalError on malformed input.
std::string serialize_record(const RunRecord& record);
RunRecord parse_record(const std::string& payload);

}  // namespace hp::campaign
