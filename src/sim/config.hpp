#pragma once

#include "thermal/sensors.hpp"

namespace hp::sim {

/// Knobs of the interval thermal simulation (paper §VI experimental setup).
struct SimConfig {
    /// Integration/progress step; power is piecewise-constant per step and
    /// the thermal response within a step is solved analytically (MatEx).
    double micro_step_s = 1e-4;
    /// Period of Scheduler::on_epoch invocations.
    double scheduler_epoch_s = 1e-3;
    double ambient_c = 45.0;       ///< paper: 45 °C
    double t_dtm_c = 70.0;         ///< paper: 70 °C thermal threshold
    /// DTM releases the frequency crash once the hottest core has cooled this
    /// far below the threshold.
    double dtm_hysteresis_c = 2.0;
    /// Sliding window for per-thread power history (paper: last 10 ms).
    double power_history_window_s = 10e-3;
    /// Hard wall on simulated time (guards against non-terminating setups).
    double max_sim_time_s = 20.0;
    /// Trace sampling period; <= 0 disables tracing.
    double trace_interval_s = -1.0;
    /// Model NoC link contention: per-core LLC latency grows with the
    /// queueing delay of the S-NUCA traffic (noc::TrafficModel), refreshed
    /// every scheduler epoch. Off by default (zero-load latency only).
    bool model_noc_contention = false;
    /// Drive DTM (and SimContext::sensor_reading) from quantised, noisy,
    /// sampled thermal sensors instead of ground truth. Off by default.
    bool dtm_uses_sensors = false;
    thermal::SensorParams sensor_params;
};

}  // namespace hp::sim
