#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "thermal/sensors.hpp"

namespace hp::sim {

/// Knobs of the interval thermal simulation (paper §VI experimental setup).
struct SimConfig {
    /// Integration/progress step; power is piecewise-constant per step and
    /// the thermal response within a step is solved analytically (MatEx).
    double micro_step_s = 1e-4;
    /// Period of Scheduler::on_epoch invocations.
    double scheduler_epoch_s = 1e-3;
    double ambient_c = 45.0;       ///< paper: 45 °C
    double t_dtm_c = 70.0;         ///< paper: 70 °C thermal threshold
    /// DTM releases the frequency crash once the hottest core has cooled this
    /// far below the threshold.
    double dtm_hysteresis_c = 2.0;
    /// Sliding window for per-thread power history (paper: last 10 ms).
    double power_history_window_s = 10e-3;
    /// Hard wall on simulated time (guards against non-terminating setups).
    double max_sim_time_s = 20.0;
    /// Trace sampling period; <= 0 disables tracing.
    double trace_interval_s = -1.0;
    /// Model NoC link contention: per-core LLC latency grows with the
    /// queueing delay of the S-NUCA traffic (noc::TrafficModel), refreshed
    /// every scheduler epoch. Off by default (zero-load latency only).
    bool model_noc_contention = false;
    /// Drive DTM (and SimContext::sensor_reading) from quantised, noisy,
    /// sampled thermal sensors instead of ground truth. Off by default.
    bool dtm_uses_sensors = false;
    thermal::SensorParams sensor_params;

    // --- robustness ---------------------------------------------------------
    /// Scripted fault campaign; empty = fault-free run, bit-identical to a
    /// simulator without the fault subsystem. A non-empty schedule implies a
    /// sensor bank (sensor faults need sensors to corrupt) and arms the
    /// thermal-runaway watchdog.
    fault::FaultSchedule fault_schedule;
    std::uint64_t fault_seed = 1;
    /// Independent thermal-runaway protection: when any core exceeds
    /// t_dtm_c + watchdog_margin_c the simulator forces an emergency
    /// frequency crash until the chip cools below the DTM release point, and
    /// records the time-to-recover. Engages automatically when faults are
    /// injected; set true to arm it for fault-free runs too.
    bool thermal_watchdog = false;
    double watchdog_margin_c = 0.5;
    /// NaN/divergence guard: any non-finite node temperature, or one above
    /// the sanity bound, aborts the run with a diagnostic naming the step
    /// time and offending node. The effective bound is
    /// max(max_sane_temperature_c, t_dtm_c + 50) so configs that disable DTM
    /// with a huge threshold keep a proportionate guard instead of failing
    /// validation.
    double max_sane_temperature_c = 300.0;

    /// All configuration violations at once (empty = valid). The simulator
    /// rejects invalid configs with the full list in the exception message.
    std::vector<std::string> validate() const {
        std::vector<std::string> v;
        if (micro_step_s <= 0.0)
            v.push_back("micro_step_s must be positive");
        if (scheduler_epoch_s <= 0.0)
            v.push_back("scheduler_epoch_s must be positive");
        if (t_dtm_c <= ambient_c)
            v.push_back("t_dtm_c must exceed ambient_c");
        if (dtm_hysteresis_c < 0.0)
            v.push_back("dtm_hysteresis_c must be non-negative");
        if (power_history_window_s <= 0.0)
            v.push_back("power_history_window_s must be positive");
        if (max_sim_time_s <= 0.0)
            v.push_back("max_sim_time_s must be positive");
        if ((dtm_uses_sensors || !fault_schedule.empty()) &&
            sensor_params.sample_period_s < micro_step_s)
            v.push_back(
                "sensor sample_period_s must be >= micro_step_s (sensors "
                "cannot sample faster than the simulation steps)");
        if (watchdog_margin_c < 0.0)
            v.push_back("watchdog_margin_c must be non-negative");
        if (max_sane_temperature_c <= ambient_c)
            v.push_back("max_sane_temperature_c must exceed ambient_c");
        return v;
    }
};

}  // namespace hp::sim
