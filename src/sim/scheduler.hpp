#pragma once

#include <string>

#include "sim/context.hpp"

namespace hp::sim {

/// Base class for thermal-aware schedulers (HotPotato, PCGov, PCMig, static
/// mappers). The simulator drives the hooks; all machine interaction goes
/// through the SimContext.
class Scheduler {
public:
    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /// Called once before the first step.
    virtual void initialize(SimContext& /*ctx*/) {}

    /// A task arrived (or is being re-offered from the pending queue).
    /// Place its threads via ctx.place() and return true, or return false to
    /// keep it queued; the simulator re-offers pending tasks every scheduler
    /// epoch and whenever a task finishes.
    virtual bool on_task_arrival(SimContext& ctx, TaskId task) = 0;

    /// A task completed; its cores are already free.
    virtual void on_task_finish(SimContext& /*ctx*/, TaskId /*task*/) {}

    /// A core went offline (fault injection); its occupant thread — if any —
    /// was already evicted and appears in @p evicted with core_of() == kNone.
    ///
    /// Hook contract:
    ///  * The dead core is already excluded from free_cores() and rejects
    ///    place()/migrate(); overrides must drop it from any rotation
    ///    structures they maintain.
    ///  * Evicted threads may be re-placed immediately (counted as
    ///    threads_replaced) or left unplaced (counted as threads_stranded —
    ///    never fatal; the simulator re-offers capacity as it frees up and
    ///    schedulers may re-seat stranded threads in later hooks).
    ///  * The hook runs inside the simulation step, before power is
    ///    computed; any number of failures can fire in one step.
    ///
    /// The default re-places each evicted thread on the performance-best
    /// free core — lowest AMD first, ties to the lowest core id — the same
    /// policy as sched::free_cores_by_amd() in placement.hpp, so an
    /// unmanaged scheduler degrades the way the placement library would.
    virtual void on_core_failure(SimContext& ctx, std::size_t core,
                                 const std::vector<ThreadId>& evicted) {
        (void)core;
        for (ThreadId id : evicted) {
            const std::vector<std::size_t> free = ctx.free_cores();
            if (free.empty()) return;  // stranded until capacity frees up
            // free_cores() lists ascending ids, so keeping the first
            // strictly-better core breaks AMD ties toward low ids.
            std::size_t best = free.front();
            double best_amd = ctx.chip().amd(best);
            for (std::size_t c : free) {
                const double amd = ctx.chip().amd(c);
                if (amd < best_amd) {
                    best = c;
                    best_amd = amd;
                }
            }
            ctx.place(id, best);
        }
    }

    /// A transiently failed core came back online and may be used again.
    virtual void on_core_recovery(SimContext& /*ctx*/, std::size_t /*core*/) {}

    /// Called every SimConfig::scheduler_epoch_s.
    virtual void on_epoch(SimContext& /*ctx*/) {}

    /// Called every micro-step, before power is computed — the hook
    /// synchronous rotation uses.
    virtual void on_step(SimContext& /*ctx*/) {}
};

}  // namespace hp::sim
