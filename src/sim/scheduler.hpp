#pragma once

#include <string>

#include "sim/context.hpp"

namespace hp::sim {

/// Base class for thermal-aware schedulers (HotPotato, PCGov, PCMig, static
/// mappers). The simulator drives the hooks; all machine interaction goes
/// through the SimContext.
class Scheduler {
public:
    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /// Called once before the first step.
    virtual void initialize(SimContext& /*ctx*/) {}

    /// A task arrived (or is being re-offered from the pending queue).
    /// Place its threads via ctx.place() and return true, or return false to
    /// keep it queued; the simulator re-offers pending tasks every scheduler
    /// epoch and whenever a task finishes.
    virtual bool on_task_arrival(SimContext& ctx, TaskId task) = 0;

    /// A task completed; its cores are already free.
    virtual void on_task_finish(SimContext& /*ctx*/, TaskId /*task*/) {}

    /// A core went offline (fault injection); its occupant thread — if any —
    /// was already evicted and appears in @p evicted with core_of() == kNone.
    /// Re-place the evicted threads and drop the core from any rotation
    /// structures. The default re-places each thread on the best free core
    /// (ties to low ids), which keeps every scheduler functional — if
    /// degraded — under core loss.
    virtual void on_core_failure(SimContext& ctx, std::size_t core,
                                 const std::vector<ThreadId>& evicted) {
        (void)core;
        for (ThreadId id : evicted) {
            const std::vector<std::size_t> free = ctx.free_cores();
            if (free.empty()) return;  // stranded until capacity frees up
            ctx.place(id, free.front());
        }
    }

    /// A transiently failed core came back online and may be used again.
    virtual void on_core_recovery(SimContext& /*ctx*/, std::size_t /*core*/) {}

    /// Called every SimConfig::scheduler_epoch_s.
    virtual void on_epoch(SimContext& /*ctx*/) {}

    /// Called every micro-step, before power is computed — the hook
    /// synchronous rotation uses.
    virtual void on_step(SimContext& /*ctx*/) {}
};

}  // namespace hp::sim
