#pragma once

#include <string>

#include "sim/context.hpp"

namespace hp::sim {

/// Base class for thermal-aware schedulers (HotPotato, PCGov, PCMig, static
/// mappers). The simulator drives the hooks; all machine interaction goes
/// through the SimContext.
class Scheduler {
public:
    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /// Called once before the first step.
    virtual void initialize(SimContext& /*ctx*/) {}

    /// A task arrived (or is being re-offered from the pending queue).
    /// Place its threads via ctx.place() and return true, or return false to
    /// keep it queued; the simulator re-offers pending tasks every scheduler
    /// epoch and whenever a task finishes.
    virtual bool on_task_arrival(SimContext& ctx, TaskId task) = 0;

    /// A task completed; its cores are already free.
    virtual void on_task_finish(SimContext& /*ctx*/, TaskId /*task*/) {}

    /// Called every SimConfig::scheduler_epoch_s.
    virtual void on_epoch(SimContext& /*ctx*/) {}

    /// Called every micro-step, before power is computed — the hook
    /// synchronous rotation uses.
    virtual void on_step(SimContext& /*ctx*/) {}
};

}  // namespace hp::sim
