#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace hp::sim {

/// Writes a thermal/power trace as CSV:
/// time_s,max_temp_c,T0..Tn-1,P0..Pn-1,F0..Fn-1 — the format the Fig. 2
/// reproduction and the examples emit for plotting.
void write_trace_csv(std::ostream& out, const std::vector<TraceSample>& trace);

/// Convenience overload writing to @p path; throws std::runtime_error when
/// the file cannot be opened.
void write_trace_csv(const std::string& path,
                     const std::vector<TraceSample>& trace);

/// Parses a trace CSV written by write_trace_csv (round-trips). Malformed
/// rows — wrong field count, non-numeric fields — are rejected with a
/// std::runtime_error naming the source (@p source_name / file path) and
/// line number, never a bare numeric-conversion exception.
std::vector<TraceSample> read_trace_csv(
    std::istream& in, const std::string& source_name = "<stream>");

/// Convenience overload reading @p path; throws std::runtime_error when the
/// file cannot be opened.
std::vector<TraceSample> read_trace_csv_file(const std::string& path);

}  // namespace hp::sim
