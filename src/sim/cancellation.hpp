#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace hp::sim {

/// Why a run was asked to stop. Recorded in the kCancelled trace event
/// (arg0) and echoed in the CancelledError diagnostic.
enum class CancelReason : int {
    kNone = 0,
    kDeadline,  ///< per-run wall-clock deadline expired (campaign watchdog)
    kShutdown,  ///< caller-requested teardown
};

/// Stable lower_snake_case name of @p reason (diagnostics, exports).
inline const char* to_string(CancelReason reason) {
    switch (reason) {
        case CancelReason::kNone: return "none";
        case CancelReason::kDeadline: return "deadline";
        case CancelReason::kShutdown: return "shutdown";
    }
    return "unknown";
}

/// Cooperative cancellation flag shared between a run and its supervisor.
///
/// The supervisor (e.g. the campaign deadline monitor) calls request() from
/// its own thread; the simulator polls requested() once per micro-step — a
/// single relaxed atomic load, cheap enough for the zero-allocation hot
/// loop — and aborts the run by throwing CancelledError when it fires.
/// A token belongs to exactly one run at a time; reset() re-arms it.
class CancellationToken {
public:
    void request(CancelReason reason) noexcept {
        state_.store(static_cast<int>(reason), std::memory_order_release);
    }
    bool requested() const noexcept {
        return state_.load(std::memory_order_relaxed) !=
               static_cast<int>(CancelReason::kNone);
    }
    CancelReason reason() const noexcept {
        return static_cast<CancelReason>(
            state_.load(std::memory_order_acquire));
    }
    void reset() noexcept {
        state_.store(static_cast<int>(CancelReason::kNone),
                     std::memory_order_release);
    }

private:
    std::atomic<int> state_{static_cast<int>(CancelReason::kNone)};
};

/// Thrown by Simulator::run when its CancellationToken fires. Derives from
/// std::runtime_error so legacy catch sites keep working; the campaign
/// engine classifies it as a timeout failure.
class CancelledError : public std::runtime_error {
public:
    CancelledError(CancelReason reason, const std::string& what)
        : std::runtime_error(what), reason_(reason) {}
    CancelReason reason() const noexcept { return reason_; }

private:
    CancelReason reason_;
};

/// Thrown by the simulator's NaN/divergence guard. Derives from
/// std::runtime_error (the guard's historical type) so existing handlers
/// and tests keep working; the campaign engine classifies it as numerical
/// divergence, which is never retried.
class ThermalDivergenceError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

}  // namespace hp::sim
