#include "sim/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace hp::sim {

void write_trace_csv(std::ostream& out,
                     const std::vector<TraceSample>& trace) {
    if (trace.empty()) return;
    const std::size_t n = trace.front().core_temperature_c.size();
    out << "time_s,max_temp_c";
    for (std::size_t c = 0; c < n; ++c) out << ",temp_c" << c;
    for (std::size_t c = 0; c < n; ++c) out << ",power_c" << c;
    for (std::size_t c = 0; c < n; ++c) out << ",freq_c" << c;
    out << '\n';
    for (const TraceSample& s : trace) {
        out << s.time_s << ',' << s.max_core_temperature_c;
        for (double t : s.core_temperature_c) out << ',' << t;
        for (double p : s.core_power_w) out << ',' << p;
        for (double f : s.core_frequency_hz) out << ',' << f;
        out << '\n';
    }
}

void write_trace_csv(const std::string& path,
                     const std::vector<TraceSample>& trace) {
    std::ofstream file(path);
    if (!file)
        throw std::runtime_error("write_trace_csv: cannot open " + path);
    write_trace_csv(file, trace);
}

}  // namespace hp::sim
