#include "sim/trace_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hp::sim {

namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& what) {
    throw std::runtime_error("trace_io: " + source + ":" +
                             std::to_string(line) + ": " + what);
}

std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> fields;
    std::stringstream row(line);
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (!line.empty() && line.back() == ',') fields.push_back("");
    return fields;
}

double parse_number(const std::string& source, std::size_t line_no,
                    std::size_t column, const std::string& value) {
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return v;
    } catch (const std::exception&) {
        fail(source, line_no,
             "column " + std::to_string(column + 1) + ": bad number '" +
                 value + "'");
    }
}

}  // namespace

void write_trace_csv(std::ostream& out,
                     const std::vector<TraceSample>& trace) {
    if (trace.empty()) return;
    const std::size_t n = trace.front().core_temperature_c.size();
    out << "time_s,max_temp_c";
    for (std::size_t c = 0; c < n; ++c) out << ",temp_c" << c;
    for (std::size_t c = 0; c < n; ++c) out << ",power_c" << c;
    for (std::size_t c = 0; c < n; ++c) out << ",freq_c" << c;
    out << '\n';
    for (const TraceSample& s : trace) {
        out << s.time_s << ',' << s.max_core_temperature_c;
        for (double t : s.core_temperature_c) out << ',' << t;
        for (double p : s.core_power_w) out << ',' << p;
        for (double f : s.core_frequency_hz) out << ',' << f;
        out << '\n';
    }
}

void write_trace_csv(const std::string& path,
                     const std::vector<TraceSample>& trace) {
    std::ofstream file(path);
    if (!file)
        throw std::runtime_error("write_trace_csv: cannot open " + path);
    write_trace_csv(file, trace);
}

std::vector<TraceSample> read_trace_csv(std::istream& in,
                                        const std::string& source_name) {
    std::vector<TraceSample> trace;
    std::string line;
    std::size_t line_no = 0;

    if (!std::getline(in, line)) return trace;  // empty stream: empty trace
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::vector<std::string> header = split_csv(line);
    if (header.size() < 2 || header[0] != "time_s" ||
        header[1] != "max_temp_c")
        fail(source_name, line_no,
             "expected header starting with 'time_s,max_temp_c'");
    // Core count from the temp_c* columns; the layout is then fixed.
    std::size_t cores = 0;
    while (2 + cores < header.size() &&
           header[2 + cores].rfind("temp_c", 0) == 0)
        ++cores;
    if (cores == 0 || header.size() != 2 + 3 * cores)
        fail(source_name, line_no,
             "header must be time_s,max_temp_c,temp_c*,power_c*,freq_c* ("
             "got " + std::to_string(header.size()) + " columns for " +
             std::to_string(cores) + " cores)");

    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_csv(line);
        if (fields.size() != 2 + 3 * cores)
            fail(source_name, line_no,
                 "expected " + std::to_string(2 + 3 * cores) +
                     " fields, got " + std::to_string(fields.size()));
        TraceSample s;
        s.time_s = parse_number(source_name, line_no, 0, fields[0]);
        s.max_core_temperature_c =
            parse_number(source_name, line_no, 1, fields[1]);
        s.core_temperature_c.resize(cores);
        s.core_power_w.resize(cores);
        s.core_frequency_hz.resize(cores);
        for (std::size_t c = 0; c < cores; ++c) {
            s.core_temperature_c[c] =
                parse_number(source_name, line_no, 2 + c, fields[2 + c]);
            s.core_power_w[c] = parse_number(source_name, line_no,
                                             2 + cores + c,
                                             fields[2 + cores + c]);
            s.core_frequency_hz[c] =
                parse_number(source_name, line_no, 2 + 2 * cores + c,
                             fields[2 + 2 * cores + c]);
        }
        trace.push_back(std::move(s));
    }
    return trace;
}

std::vector<TraceSample> read_trace_csv_file(const std::string& path) {
    std::ifstream file(path);
    if (!file)
        throw std::runtime_error("read_trace_csv: cannot open " + path);
    return read_trace_csv(file, path);
}

}  // namespace hp::sim
