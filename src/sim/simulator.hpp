#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "arch/manycore.hpp"
#include "fault/fault_injector.hpp"
#include "sim/cancellation.hpp"
#include "noc/mesh.hpp"
#include "noc/traffic.hpp"
#include "obs/recorder.hpp"
#include "perf/interval_model.hpp"
#include "power/power_model.hpp"
#include "sim/config.hpp"
#include "sim/context.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"
#include "thermal/solver.hpp"
#include "thermal/rc_network.hpp"
#include "workload/generator.hpp"

namespace hp::sim {

/// HotSniper-analogue interval thermal simulator.
///
/// Advances the machine in fixed micro-steps: per step it computes per-core
/// power from the interval performance model (honouring DVFS, DTM throttling
/// and migration stalls), integrates the RC thermal network analytically with
/// MatEx, retires instructions, resolves barrier phases and task
/// completions, and drives the Scheduler hooks (arrival/finish/epoch/step).
/// Hardware DTM is simulated below the scheduler: crossing T_DTM crashes all
/// cores to the lowest DVFS level until the hysteresis releases it.
class Simulator final : public SimContext {
public:
    /// @p chip, @p model and @p solver must outlive the simulator; the
    /// thermal solver must have been built for @p model (same signature). An optional @p workspace
    /// lets a caller running many simulations back-to-back (one campaign
    /// worker, say) share the thermal scratch across runs; it must outlive
    /// the simulator and not be used concurrently. Without one the simulator
    /// owns its scratch. An optional @p recorder attaches the observability
    /// layer (event trace + metrics) to this run; it must outlive the
    /// simulator, belong to this run alone, and nullptr keeps every
    /// instrumentation site down to a dead pointer test. An optional
    /// @p cancel token makes the run cooperatively cancellable: the step
    /// loop polls it (one relaxed atomic load per micro-step) and aborts
    /// with CancelledError when a supervisor requests cancellation — the
    /// hook the campaign deadline watchdog uses to reap hung runs. An
    /// optional @p scratch exposes the campaign worker's long-lived scratch
    /// bag through SimContext::worker_scratch() so schedulers can borrow
    /// arena-backed workspaces; it must outlive the simulator and not be
    /// shared between threads.
    Simulator(const arch::ManyCore& chip, const thermal::ThermalModel& model,
              const thermal::TransientSolver& solver, SimConfig config = {},
              power::PowerParams power_params = {},
              perf::PerfParams perf_params = {},
              thermal::ThermalWorkspace* workspace = nullptr,
              obs::Recorder* recorder = nullptr,
              const CancellationToken* cancel = nullptr,
              exec::WorkerScratch* scratch = nullptr);

    /// Registers a task for injection at its arrival time. Must be called
    /// before run(). Throws if the task needs more threads than cores.
    void add_task(const workload::TaskSpec& spec);
    void add_tasks(const std::vector<workload::TaskSpec>& specs);

    /// Runs the full simulation under @p scheduler and returns the metrics.
    /// May be called once per Simulator instance.
    SimResult run(Scheduler& scheduler);

    // --- SimContext ----------------------------------------------------------
    double now() const override { return now_; }
    obs::Recorder* observer() const override { return obs_; }
    exec::WorkerScratch* worker_scratch() const override { return scratch_; }
    const SimConfig& config() const override { return config_; }
    const arch::ManyCore& chip() const override { return *chip_; }
    const thermal::ThermalModel& thermal_model() const override {
        return *thermal_;
    }
    const thermal::TransientSolver& solver() const override {
        return *solver_;
    }
    const power::PowerModel& power_model() const override {
        return power_model_;
    }
    const perf::IntervalPerformanceModel& perf_model() const override {
        return perf_model_;
    }
    const linalg::Vector& temperatures() const override { return temps_; }
    double core_temperature(std::size_t core) const override;
    double sensor_reading(std::size_t core) const override;
    bool core_available(std::size_t core) const override;
    std::vector<std::size_t> failed_cores() const override;
    bool sensor_trusted(std::size_t core) const override;
    std::size_t untrusted_sensor_count() const override;
    ThreadId thread_on(std::size_t core) const override;
    std::size_t core_of(ThreadId thread) const override;
    std::vector<std::size_t> free_cores() const override;
    const Task& task(TaskId id) const override;
    const Thread& thread(ThreadId id) const override;
    double frequency(std::size_t core) const override;
    double core_power(std::size_t core) const override;
    double thread_recent_power(ThreadId thread) const override;
    double thread_cpi(ThreadId thread) const override;
    const perf::PhasePoint& thread_phase_point(ThreadId thread) const override;
    double estimate_thread_power(ThreadId thread, std::size_t core,
                                 double freq_hz) const override;
    void set_frequency(std::size_t core, double f_hz) override;
    void place(ThreadId thread, std::size_t core) override;
    void migrate(ThreadId thread, std::size_t core) override;
    void rotate(const std::vector<std::size_t>& cores_in_cycle) override;

private:
    void check_core(std::size_t core) const;
    /// Power-gating hooks: a thread arriving on a gated core pays the wake
    /// stall; a vacated core starts its idle dwell.
    void occupant_arrived(std::size_t core, ThreadId id);
    void core_vacated(std::size_t core);
    bool thread_active_this_phase(const Thread& t) const;
    double effective_frequency(std::size_t core) const;
    /// Per-core power for the coming step; also refreshes thread CPI/power
    /// bookkeeping. Returns a reference to step_power_, valid until the next
    /// call.
    const linalg::Vector& compute_step_power();
    void advance_progress(double dt);
    void resolve_phases_and_completions(Scheduler& scheduler);
    void assign_phase_budgets(Task& task);
    void offer_pending(Scheduler& scheduler);
    void update_dtm();
    /// Activates scheduled faults: evicts threads from dying cores (driving
    /// Scheduler::on_core_failure), hands recovered cores back, tallies
    /// resilience stats.
    void apply_faults(Scheduler& scheduler);
    /// Independent thermal-runaway protection on ground-truth temperatures.
    void update_watchdog();
    /// NaN/divergence guard over the node temperature vector; throws
    /// std::runtime_error naming the step time and offending node.
    void check_temperatures_sane() const;
    void record_trace_sample();
    /// Refreshes per-core NoC queueing delays from current throughputs (only
    /// when SimConfig::model_noc_contention is set).
    void refresh_noc_contention();

    const arch::ManyCore* chip_;
    const thermal::ThermalModel* thermal_;
    const thermal::TransientSolver* solver_;
    SimConfig config_;
    power::PowerModel power_model_;
    perf::IntervalPerformanceModel perf_model_;
    std::unique_ptr<noc::MeshNoc> noc_;            // contention modelling only
    std::unique_ptr<noc::TrafficModel> traffic_;
    std::vector<double> noc_delay_s_;              // per-core extra LLC latency
    std::unique_ptr<thermal::SensorBank> sensors_;  // when dtm_uses_sensors
    std::unique_ptr<fault::FaultInjector> injector_;  // when faults scheduled

    // Cooperative cancellation (nullptr = not cancellable).
    const CancellationToken* cancel_ = nullptr;

    // Campaign worker's long-lived scratch bag (nullptr outside campaigns).
    exec::WorkerScratch* scratch_ = nullptr;

    // Observability: instruments are registered once in the constructor and
    // held as raw pointers so the micro-step never does a name lookup.
    obs::Recorder* obs_ = nullptr;
    obs::Counter* obs_steps_ = nullptr;
    obs::Histogram* obs_step_peak_ = nullptr;

    std::vector<Task> tasks_;
    std::vector<Thread> threads_;
    std::vector<workload::TaskSpec> specs_;

    // Machine state.
    double now_ = 0.0;
    linalg::Vector temps_;
    std::vector<double> set_frequency_hz_;   // scheduler-requested
    std::vector<double> last_core_power_w_;
    std::vector<ThreadId> core_occupant_;
    std::vector<std::size_t> thread_core_;
    std::vector<double> core_idle_since_s_;  // power gating bookkeeping
    std::vector<bool> core_gated_;
    bool dtm_active_ = false;
    bool watchdog_enabled_ = false;
    bool watchdog_active_ = false;
    double watchdog_engaged_s_ = 0.0;

    // Hot-path scratch: every per-micro-step buffer is preallocated (or
    // sized on first use) so the warmed-up step makes no heap allocations.
    thermal::ThermalWorkspace own_ws_;
    thermal::ThermalWorkspace* ws_ = nullptr;  // external or &own_ws_
    linalg::Vector step_power_;                // compute_step_power result
    linalg::Vector node_power_;                // padded power for MatEx
    linalg::Vector sensor_temps_;              // update_dtm sensor input
    std::vector<ThreadId> rotate_scratch_;     // rotate() occupant shift
    std::vector<double> noc_rates_;            // refresh_noc_contention
    std::vector<fault::FaultEvent> fault_started_, fault_ended_;

    // Bookkeeping.
    std::vector<double> task_energy_j_;
    std::deque<TaskId> pending_;
    std::size_t next_arrival_index_ = 0;
    SimResult result_;
    double next_trace_s_ = 0.0;
    bool ran_ = false;
};

}  // namespace hp::sim
