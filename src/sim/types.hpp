#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "workload/benchmark.hpp"

namespace hp::sim {

using ThreadId = std::size_t;
using TaskId = std::size_t;

/// Sentinel for "no core" / "no thread".
inline constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Run-time state of one thread of a task.
struct Thread {
    ThreadId id = kNone;
    TaskId task = kNone;
    std::size_t role = 0;  ///< 0 = master, >= 1 = worker

    /// Instructions left in the current phase; 0 while idling at the barrier.
    double remaining_instructions = 0.0;
    /// Absolute time until which the thread is stalled by a migration.
    double stall_until_s = 0.0;
    bool finished = false;

    /// Average power over the sliding history window (paper: last 10 ms).
    double recent_power_w = 0.0;
    /// Power drawn in the most recent micro-step.
    double current_power_w = 0.0;
    /// Effective CPI in the most recent micro-step (0 while idle).
    double current_cpi = 0.0;
};

/// Run-time state of one multi-threaded benchmark instance.
struct Task {
    TaskId id = kNone;
    const workload::BenchmarkProfile* profile = nullptr;
    std::size_t thread_count = 0;
    double arrival_s = 0.0;
    double start_s = -1.0;   ///< first placement; -1 while queued
    double finish_s = -1.0;  ///< completion; -1 while running
    std::size_t phase = 0;
    std::vector<ThreadId> threads;
    bool placed = false;
    bool finished = false;
};

/// One decimated sample of the thermal/power trace.
struct TraceSample {
    double time_s = 0.0;
    std::vector<double> core_temperature_c;
    std::vector<double> core_power_w;
    std::vector<double> core_frequency_hz;
    double max_core_temperature_c = 0.0;
};

/// Per-task outcome.
struct TaskResult {
    TaskId id = kNone;
    std::string benchmark;
    std::size_t threads = 0;
    double arrival_s = 0.0;
    double start_s = 0.0;
    double finish_s = 0.0;
    /// Energy drawn by the cores this task's threads occupied (J).
    double energy_j = 0.0;

    double response_time_s() const { return finish_s - arrival_s; }

    /// Energy-delay product (J*s) — the usual efficiency figure of merit.
    double energy_delay_product() const {
        return energy_j * response_time_s();
    }
};

/// Resilience accounting of one run under fault injection.
///
/// All fields stay zero (and log empty) for fault-free runs, so SimResult
/// comparisons against pre-fault-subsystem baselines remain meaningful.
struct ResilienceStats {
    std::size_t faults_injected = 0;   ///< events whose onset was reached
    std::size_t core_failures = 0;     ///< transient + permanent
    std::size_t sensor_faults = 0;
    std::size_t rotation_aborts = 0;   ///< rotations actually dropped
    /// Threads evicted from failing cores that the scheduler re-placed
    /// within its on_core_failure hook.
    std::size_t threads_replaced = 0;
    /// Threads evicted that could not be re-seated at eviction time.
    /// Schedulers keep retrying as capacity frees, so a stranded thread
    /// may still run to completion later.
    std::size_t threads_stranded = 0;
    std::size_t watchdog_triggers = 0;
    double watchdog_throttled_s = 0.0;
    /// Longest watchdog engage-to-release interval (time-to-recover).
    double worst_recovery_s = 0.0;
    /// Simulated time with the true hottest core above T_DTM.
    double thermal_violation_s = 0.0;
    /// Hottest true core temperature while any fault was active.
    double peak_during_fault_c = 0.0;
    /// Untrusted-sensor verdicts summed over samples (exposure measure).
    std::size_t untrusted_sensor_samples = 0;
    /// Every fault onset/recovery, in time order.
    std::vector<fault::FaultLogEntry> fault_log;
};

/// Aggregate outcome of one simulation run.
struct SimResult {
    std::vector<TaskResult> tasks;
    bool all_finished = false;
    double makespan_s = 0.0;            ///< last finish time
    double simulated_time_s = 0.0;
    double peak_temperature_c = 0.0;    ///< max core temp ever observed
    double dtm_throttled_s = 0.0;       ///< time spent with DTM active
    std::size_t dtm_triggers = 0;
    std::size_t migrations = 0;
    /// Total chip energy over the run (J), including idle cores.
    double total_energy_j = 0.0;
    /// Portion of total_energy_j drawn by cores without a thread.
    double idle_energy_j = 0.0;
    std::vector<TraceSample> trace;     ///< empty unless tracing enabled
    /// Fault-injection accounting (all-zero for fault-free runs).
    ResilienceStats resilience;

    /// Mean response time over finished tasks (0 if none finished).
    double average_response_time_s() const;

    /// Nearest-rank percentile of per-task response times; @p p in
    /// [0, 100]. Returns 0 when no tasks finished; throws
    /// std::invalid_argument outside the range.
    double response_time_percentile_s(double p) const;

    /// Mean chip power over the simulated time (W).
    double average_power_w() const {
        return simulated_time_s > 0.0 ? total_energy_j / simulated_time_s
                                      : 0.0;
    }
};

}  // namespace hp::sim
