#pragma once

#include <cstddef>
#include <vector>

#include "arch/manycore.hpp"
#include "exec/scratch.hpp"
#include "linalg/vector.hpp"
#include "perf/interval_model.hpp"
#include "power/power_model.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "thermal/solver.hpp"
#include "thermal/rc_network.hpp"

namespace hp::obs {
class Recorder;
}

namespace hp::sim {

/// The simulator-side interface a Scheduler works against.
///
/// Exposes read access to the machine state (mapping, temperatures, power
/// history) and the three actuation knobs thermal managers use: per-core
/// DVFS, single-thread migration and synchronous ring rotation. Implemented
/// by Simulator; schedulers never see simulator internals.
class SimContext {
public:
    virtual ~SimContext() = default;

    // --- static environment -------------------------------------------------
    virtual double now() const = 0;
    /// Observability sink of this run, or nullptr when observability is off.
    /// Schedulers register instruments in initialize() and cache the returned
    /// pointers; they must treat a null recorder as "record nothing".
    virtual obs::Recorder* observer() const { return nullptr; }
    /// Long-lived per-worker scratch bag (exec::WorkerScratch), or nullptr
    /// outside campaign runs. Schedulers may borrow their workspaces from it
    /// in initialize() — one object per type per worker, reused across the
    /// worker's runs, allocated from the worker's node-local arena. Only
    /// fully-overwritten scratch may be borrowed (see WorkerScratch docs);
    /// state whose observable behaviour depends on history (e.g. prediction
    /// caches with hit/miss counters) must stay per-run.
    virtual exec::WorkerScratch* worker_scratch() const { return nullptr; }
    virtual const SimConfig& config() const = 0;
    virtual const arch::ManyCore& chip() const = 0;
    virtual const thermal::ThermalModel& thermal_model() const = 0;
    virtual const thermal::TransientSolver& solver() const = 0;
    virtual const power::PowerModel& power_model() const = 0;
    virtual const perf::IntervalPerformanceModel& perf_model() const = 0;

    // --- machine state -------------------------------------------------------
    /// Full node temperature vector (cores first, see ThermalModel layout).
    virtual const linalg::Vector& temperatures() const = 0;
    virtual double core_temperature(std::size_t core) const = 0;
    /// What the thermal sensor on @p core reports: quantised/noisy/sampled
    /// when SimConfig::dtm_uses_sensors is set, ground truth otherwise.
    virtual double sensor_reading(std::size_t core) const = 0;
    /// False while @p core is taken offline by an injected fault. Failed
    /// cores draw no power, are excluded from free_cores() and reject
    /// place()/migrate(). Always true without fault injection.
    virtual bool core_available(std::size_t /*core*/) const { return true; }
    /// Cores currently offline (empty without fault injection).
    virtual std::vector<std::size_t> failed_cores() const { return {}; }
    /// False when the voting filter flagged @p core's sensor as lying or
    /// dropped out in the latest sample. Always true without sensors.
    virtual bool sensor_trusted(std::size_t /*core*/) const { return true; }
    /// Number of sensors currently flagged untrusted.
    virtual std::size_t untrusted_sensor_count() const { return 0; }
    /// Thread occupying @p core, or kNone.
    virtual ThreadId thread_on(std::size_t core) const = 0;
    /// Core hosting @p thread, or kNone if unplaced.
    virtual std::size_t core_of(ThreadId thread) const = 0;
    virtual std::vector<std::size_t> free_cores() const = 0;
    virtual const Task& task(TaskId id) const = 0;
    virtual const Thread& thread(ThreadId id) const = 0;
    /// Scheduler-requested frequency of @p core (DTM may override it).
    virtual double frequency(std::size_t core) const = 0;
    /// Per-core power drawn in the last micro-step.
    virtual double core_power(std::size_t core) const = 0;

    // --- scheduling estimates ------------------------------------------------
    /// Average measured power of @p thread over the history window
    /// (paper Algorithm 1 input P_history; falls back to a model-based
    /// estimate before any history exists).
    virtual double thread_recent_power(ThreadId thread) const = 0;
    /// Effective CPI of @p thread in the last step (its memory-boundedness
    /// measure used by Algorithm 2's sorting).
    virtual double thread_cpi(ThreadId thread) const = 0;
    /// Performance/power characteristics of the thread's current phase.
    virtual const perf::PhasePoint& thread_phase_point(ThreadId thread) const = 0;
    /// Model-based power estimate for @p thread if it ran on @p core at
    /// @p freq_hz with the die at the DTM threshold (conservative leakage).
    virtual double estimate_thread_power(ThreadId thread, std::size_t core,
                                         double freq_hz) const = 0;

    // --- actuation ------------------------------------------------------------
    virtual void set_frequency(std::size_t core, double f_hz) = 0;
    /// Initial placement of an unplaced thread on a free core (no stall).
    virtual void place(ThreadId thread, std::size_t core) = 0;
    /// Moves a placed thread to a free core; the thread pays the migration
    /// stall. Throws std::logic_error if the destination is occupied.
    virtual void migrate(ThreadId thread, std::size_t core) = 0;
    /// Synchronous rotation: the occupant of cores_in_cycle[i] moves to
    /// cores_in_cycle[i+1] (wrapping), empty slots rotate as holes; every
    /// moved thread pays the migration stall. No-op on < 2 cores.
    virtual void rotate(const std::vector<std::size_t>& cores_in_cycle) = 0;
};

}  // namespace hp::sim
