#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hp::sim {

double SimResult::average_response_time_s() const {
    if (tasks.empty()) return 0.0;
    double acc = 0.0;
    for (const TaskResult& t : tasks) acc += t.response_time_s();
    return acc / static_cast<double>(tasks.size());
}

double SimResult::response_time_percentile_s(double p) const {
    if (p < 0.0 || p > 100.0)
        throw std::invalid_argument(
            "response_time_percentile_s: p must be in [0, 100]");
    if (tasks.empty()) return 0.0;
    std::vector<double> times;
    times.reserve(tasks.size());
    for (const TaskResult& t : tasks) times.push_back(t.response_time_s());
    std::sort(times.begin(), times.end());
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(times.size())));
    return times[rank == 0 ? 0 : rank - 1];
}

Simulator::Simulator(const arch::ManyCore& chip,
                     const thermal::ThermalModel& model,
                     const thermal::TransientSolver& solver,
                     SimConfig config,
                     power::PowerParams power_params,
                     perf::PerfParams perf_params,
                     thermal::ThermalWorkspace* workspace,
                     obs::Recorder* recorder,
                     const CancellationToken* cancel,
                     exec::WorkerScratch* scratch)
    : chip_(&chip),
      thermal_(&model),
      solver_(&solver),
      config_(config),
      power_model_(power_params, chip.dvfs()),
      perf_model_(chip, perf_params),
      cancel_(cancel),
      scratch_(scratch),
      obs_(recorder),
      ws_(workspace != nullptr ? workspace : &own_ws_) {
    if (model.core_count() != chip.core_count())
        throw std::invalid_argument(
            "Simulator: thermal model and chip disagree on core count");
    if (solver.model_signature() != model.signature())
        throw std::invalid_argument(
            "Simulator: thermal solver built for a different thermal model");
    if (const std::vector<std::string> violations = config_.validate();
        !violations.empty()) {
        std::string msg = "Simulator: invalid configuration:";
        for (const std::string& v : violations) msg += "\n  - " + v;
        throw std::invalid_argument(msg);
    }

    const std::size_t n = chip.core_count();
    set_frequency_hz_.assign(n, chip.dvfs().f_max_hz);
    last_core_power_w_.assign(n, 0.0);
    core_occupant_.assign(n, kNone);
    core_idle_since_s_.assign(n, 0.0);
    core_gated_.assign(n, false);
    noc_delay_s_.assign(n, 0.0);
    temps_ = model.ambient_equilibrium(config_.ambient_c);
    step_power_ = linalg::Vector(n);
    node_power_ = linalg::Vector(model.node_count());
    ws_->resize(model.node_count());

    // A fault schedule implies sensor-driven DTM (sensor faults need sensors
    // to corrupt) with the voting filter armed, plus the runaway watchdog.
    const bool injecting = !config_.fault_schedule.empty();
    if (injecting && !config_.sensor_params.vote_filter)
        config_.sensor_params.vote_filter = true;
    watchdog_enabled_ = config_.thermal_watchdog || injecting;
    if (config_.dtm_uses_sensors || injecting) {
        sensors_ = std::make_unique<thermal::SensorBank>(
            n, config_.sensor_params);
        // Voting topology: mesh neighbours plus stacked (TSV) neighbours.
        std::vector<std::vector<std::size_t>> neighbors(n);
        for (std::size_t c = 0; c < n; ++c) {
            neighbors[c] = chip.plan().neighbors(c);
            for (std::size_t s : chip.plan().stack_neighbors(c))
                neighbors[c].push_back(s);
        }
        sensors_->set_neighbors(std::move(neighbors));
    }
    if (injecting) {
        injector_ = std::make_unique<fault::FaultInjector>(
            config_.fault_schedule, n, config_.fault_seed);
        sensors_->set_corruptor(
            [this](std::size_t sensor, double reading, double now_s) {
                return injector_->corrupt_reading(sensor, reading, now_s);
            });
    }
    if (obs_) {
        // Instrument registration happens here, once; the micro-step only
        // touches the cached pointers and the preallocated trace ring.
        obs_steps_ = &obs_->counter("sim.steps");
        const double t = config_.t_dtm_c;
        obs_step_peak_ = &obs_->histogram(
            "sim.step_peak_c",
            {t - 20.0, t - 10.0, t - 5.0, t - 2.0, t, t + 5.0});
        if (injector_)
            injector_->set_corruption_counter(
                &obs_->counter("fault.sensor_corruptions"));
    }
    if (config_.model_noc_contention) {
        noc::NocParams noc_params;
        noc_params.hop_latency_s = chip.params().noc_hop_latency_s;
        noc_params.link_width_bits = chip.params().noc_link_width_bits;
        noc_ = std::make_unique<noc::MeshNoc>(chip.plan(), noc_params);
        traffic_ = std::make_unique<noc::TrafficModel>(*noc_);
    }
}

void Simulator::refresh_noc_contention() {
    if (!traffic_) return;
    const std::size_t n = chip_->core_count();
    noc_rates_.assign(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
        const ThreadId id = core_occupant_[c];
        if (id == kNone) continue;
        const Thread& t = threads_[id];
        if (!thread_active_this_phase(t) || now_ < t.stall_until_s) continue;
        const perf::PhasePoint& point = thread_phase_point(id);
        const double ips = perf_model_.instructions_per_second(
            point, c, effective_frequency(c), noc_delay_s_[c]);
        noc_rates_[c] = ips * point.llc_apki / 1000.0;
    }
    traffic_->queueing_delay_into(noc_rates_, noc_delay_s_);
}

void Simulator::add_task(const workload::TaskSpec& spec) {
    if (ran_) throw std::logic_error("Simulator: add_task after run");
    if (spec.profile == nullptr)
        throw std::invalid_argument("Simulator: task without profile");
    if (spec.thread_count == 0 || spec.thread_count > chip_->core_count())
        throw std::invalid_argument(
            "Simulator: task thread count must be in [1, core_count]");
    specs_.push_back(spec);
}

void Simulator::add_tasks(const std::vector<workload::TaskSpec>& specs) {
    for (const auto& s : specs) add_task(s);
}

void Simulator::check_core(std::size_t core) const {
    if (core >= chip_->core_count())
        throw std::out_of_range("Simulator: core index out of range");
}

double Simulator::core_temperature(std::size_t core) const {
    check_core(core);
    return temps_[core];
}

double Simulator::sensor_reading(std::size_t core) const {
    check_core(core);
    return sensors_ ? sensors_->readings()[core] : temps_[core];
}

bool Simulator::core_available(std::size_t core) const {
    check_core(core);
    return !(injector_ && injector_->core_failed(core));
}

std::vector<std::size_t> Simulator::failed_cores() const {
    std::vector<std::size_t> out;
    if (!injector_) return out;
    for (std::size_t c = 0; c < chip_->core_count(); ++c)
        if (injector_->core_failed(c)) out.push_back(c);
    return out;
}

bool Simulator::sensor_trusted(std::size_t core) const {
    check_core(core);
    return !sensors_ || sensors_->trusted()[core];
}

std::size_t Simulator::untrusted_sensor_count() const {
    return sensors_ ? sensors_->untrusted_count() : 0;
}

ThreadId Simulator::thread_on(std::size_t core) const {
    check_core(core);
    return core_occupant_[core];
}

std::size_t Simulator::core_of(ThreadId thread) const {
    if (thread >= thread_core_.size()) return kNone;
    return thread_core_[thread];
}

std::vector<std::size_t> Simulator::free_cores() const {
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < core_occupant_.size(); ++c)
        if (core_occupant_[c] == kNone && core_available(c)) out.push_back(c);
    return out;
}

const Task& Simulator::task(TaskId id) const {
    if (id >= tasks_.size()) throw std::out_of_range("Simulator: bad task id");
    return tasks_[id];
}

const Thread& Simulator::thread(ThreadId id) const {
    if (id >= threads_.size())
        throw std::out_of_range("Simulator: bad thread id");
    return threads_[id];
}

double Simulator::frequency(std::size_t core) const {
    check_core(core);
    return set_frequency_hz_[core];
}

double Simulator::core_power(std::size_t core) const {
    check_core(core);
    return last_core_power_w_[core];
}

double Simulator::thread_recent_power(ThreadId id) const {
    return thread(id).recent_power_w;
}

double Simulator::thread_cpi(ThreadId id) const { return thread(id).current_cpi; }

const perf::PhasePoint& Simulator::thread_phase_point(ThreadId id) const {
    const Thread& t = thread(id);
    const Task& tk = task(t.task);
    const std::size_t phase = std::min(tk.phase, tk.profile->phases.size() - 1);
    return tk.profile->phases[phase].perf;
}

double Simulator::estimate_thread_power(ThreadId id, std::size_t core,
                                        double freq_hz) const {
    check_core(core);
    const perf::PhasePoint& point = thread_phase_point(id);
    const double activity = perf_model_.power_activity(
        point, core, freq_hz, power_model_.params().f_ref_hz);
    // Leakage is evaluated at the DTM threshold: the estimate feeds
    // thermal-safety decisions and must not be optimistic about leakage.
    return power_model_.active_power_w(point.nominal_power_w, freq_hz, activity,
                                       config_.t_dtm_c);
}

void Simulator::set_frequency(std::size_t core, double f_hz) {
    check_core(core);
    const double quantized = chip_->dvfs().quantize_down(f_hz);
    if (obs_ && quantized != set_frequency_hz_[core])
        obs_->record({now_, obs::EventKind::kDvfsChange,
                      static_cast<std::uint32_t>(core), 0, quantized});
    set_frequency_hz_[core] = quantized;
}

void Simulator::place(ThreadId id, std::size_t core) {
    check_core(core);
    if (!core_available(core))
        throw std::logic_error("Simulator::place: core is offline");
    Thread& t = threads_.at(id);
    if (thread_core_[id] != kNone)
        throw std::logic_error("Simulator::place: thread already placed");
    if (core_occupant_[core] != kNone)
        throw std::logic_error("Simulator::place: core occupied");
    core_occupant_[core] = id;
    thread_core_[id] = core;
    occupant_arrived(core, id);
    if (t.recent_power_w == 0.0)
        t.recent_power_w =
            estimate_thread_power(id, core, set_frequency_hz_[core]);
}

void Simulator::migrate(ThreadId id, std::size_t core) {
    check_core(core);
    if (!core_available(core))
        throw std::logic_error("Simulator::migrate: destination is offline");
    if (thread_core_.at(id) == kNone)
        throw std::logic_error("Simulator::migrate: thread not placed");
    if (core_occupant_[core] != kNone)
        throw std::logic_error("Simulator::migrate: destination occupied");
    const std::size_t src = thread_core_[id];
    if (src == core) return;
    core_occupant_[src] = kNone;
    core_vacated(src);
    core_occupant_[core] = id;
    thread_core_[id] = core;
    threads_[id].stall_until_s =
        std::max(threads_[id].stall_until_s,
                 now_ + perf_model_.migration_stall_s(core));
    occupant_arrived(core, id);
    ++result_.migrations;
    if (obs_)
        obs_->record({now_, obs::EventKind::kMigration,
                      static_cast<std::uint32_t>(id),
                      static_cast<std::uint32_t>(core), 0.0});
}

void Simulator::rotate(const std::vector<std::size_t>& cores_in_cycle) {
    if (cores_in_cycle.size() < 2) return;
    for (std::size_t c : cores_in_cycle) check_core(c);
    if (injector_) {
        if (injector_->consume_rotation_abort(now_)) {
            ++result_.resilience.rotation_aborts;
            if (obs_)
                obs_->record({now_, obs::EventKind::kRotationAbort,
                              static_cast<std::uint32_t>(cores_in_cycle.size()),
                              static_cast<std::uint32_t>(cores_in_cycle[0]),
                              0.0});
            return;  // the rotation aborts mid-flight: mapping unchanged
        }
        // Defensive: never rotate a thread onto a dead core. The scheduler is
        // notified of failures before its step hook, so a cycle through an
        // offline core means it has not re-formed its rings yet — skip.
        for (std::size_t c : cores_in_cycle)
            if (injector_->core_failed(c)) return;
    }
    // Shift occupants (threads and holes alike) by one position. The scratch
    // vector is reused across rotations (they happen nearly every step under
    // fast rotation).
    const std::size_t k = cores_in_cycle.size();
    if (obs_)
        obs_->record({now_, obs::EventKind::kRotation,
                      static_cast<std::uint32_t>(k),
                      static_cast<std::uint32_t>(cores_in_cycle[0]), 0.0});
    rotate_scratch_.resize(k);
    std::vector<ThreadId>& occupants = rotate_scratch_;
    for (std::size_t i = 0; i < k; ++i)
        occupants[i] = core_occupant_[cores_in_cycle[i]];
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t dest = cores_in_cycle[(i + 1) % k];
        const ThreadId id = occupants[i];
        const ThreadId previous = occupants[(i + 1) % k];
        core_occupant_[dest] = id;
        if (id != kNone) {
            thread_core_[id] = dest;
            threads_[id].stall_until_s =
                std::max(threads_[id].stall_until_s,
                         now_ + perf_model_.migration_stall_s(dest));
            occupant_arrived(dest, id);
            ++result_.migrations;
        } else if (previous != kNone) {
            core_vacated(dest);  // a hole rotated onto this core
        }
    }
}

void Simulator::occupant_arrived(std::size_t core, ThreadId id) {
    if (!core_gated_[core]) return;
    core_gated_[core] = false;
    // Rail ramp + state restore serialises after any other pending stall.
    Thread& t = threads_[id];
    t.stall_until_s = std::max(now_, t.stall_until_s) +
                      power_model_.params().wakeup_latency_s;
}

void Simulator::core_vacated(std::size_t core) {
    core_idle_since_s_[core] = now_;
}

bool Simulator::thread_active_this_phase(const Thread& t) const {
    return !t.finished && t.remaining_instructions > 0.0;
}

double Simulator::effective_frequency(std::size_t core) const {
    return dtm_active_ || watchdog_active_ ? chip_->dvfs().f_min_hz
                                           : set_frequency_hz_[core];
}

const linalg::Vector& Simulator::compute_step_power() {
    const std::size_t n = chip_->core_count();
    // Every element is written below (failed cores included), so the reused
    // buffer needs no zero-fill.
    linalg::Vector& core_power = step_power_;
    const power::PowerParams& pwr = power_model_.params();
    for (std::size_t c = 0; c < n; ++c) {
        if (injector_ && injector_->core_failed(c)) {
            // Fail-stop: a dead core is power-cut (its occupant was evicted
            // when the fault landed).
            core_power[c] = 0.0;
            last_core_power_w_[c] = 0.0;
            continue;
        }
        const ThreadId id = core_occupant_[c];
        double watts = power_model_.idle_power_w(temps_[c]);
        if (id == kNone && pwr.power_gating) {
            if (!core_gated_[c] &&
                now_ - core_idle_since_s_[c] >= pwr.gate_after_idle_s)
                core_gated_[c] = true;
            if (core_gated_[c]) watts = pwr.gated_power_w;
        }
        if (id != kNone) {
            Thread& t = threads_[id];
            const bool stalled = now_ < t.stall_until_s;
            if (thread_active_this_phase(t) && !stalled) {
                const double f = effective_frequency(c);
                const perf::PhasePoint& point = thread_phase_point(id);
                const double activity = perf_model_.power_activity(
                    point, c, f, power_model_.params().f_ref_hz);
                watts = power_model_.active_power_w(point.nominal_power_w, f,
                                                    activity, temps_[c]);
                t.current_cpi =
                    perf_model_.effective_cpi(point, c, f, noc_delay_s_[c]);
            } else {
                t.current_cpi = 0.0;
            }
            t.current_power_w = watts;
        }
        core_power[c] = watts;
        last_core_power_w_[c] = watts;
    }
    return core_power;
}

void Simulator::advance_progress(double dt) {
    for (Thread& t : threads_) {
        if (t.finished || t.remaining_instructions <= 0.0) continue;
        const std::size_t core = thread_core_[t.id];
        if (core == kNone) continue;
        // Fraction of the step the thread is not migration-stalled.
        double run_fraction = 1.0;
        if (now_ + dt <= t.stall_until_s) {
            run_fraction = 0.0;
        } else if (now_ < t.stall_until_s) {
            run_fraction = (now_ + dt - t.stall_until_s) / dt;
        }
        if (run_fraction <= 0.0) continue;
        const double f = effective_frequency(core);
        const perf::PhasePoint& point = thread_phase_point(t.id);
        const double ips = perf_model_.instructions_per_second(
            point, core, f, noc_delay_s_[core]);
        t.remaining_instructions =
            std::max(0.0, t.remaining_instructions - ips * dt * run_fraction);
    }
    // Sliding-average power history (exponential window).
    const double alpha =
        std::min(1.0, dt / std::max(dt, config_.power_history_window_s));
    for (Thread& t : threads_) {
        if (thread_core_.size() > t.id && thread_core_[t.id] != kNone)
            t.recent_power_w += alpha * (t.current_power_w - t.recent_power_w);
    }
}

void Simulator::assign_phase_budgets(Task& task) {
    const auto& phases = task.profile->phases;
    // Skip degenerate all-idle phases outright.
    while (task.phase < phases.size()) {
        const workload::PhaseSpec& p = phases[task.phase];
        const bool has_work =
            p.master_instructions > 0.0 ||
            (task.thread_count > 1 && p.worker_instructions > 0.0);
        if (has_work) break;
        ++task.phase;
    }
    if (task.phase >= phases.size()) return;
    const workload::PhaseSpec& p = phases[task.phase];
    for (ThreadId id : task.threads) {
        Thread& t = threads_[id];
        t.remaining_instructions =
            t.role == 0 ? p.master_instructions : p.worker_instructions;
    }
}

void Simulator::resolve_phases_and_completions(Scheduler& scheduler) {
    for (Task& task : tasks_) {
        if (!task.placed || task.finished) continue;
        bool phase_done = true;
        for (ThreadId id : task.threads)
            if (threads_[id].remaining_instructions > 0.0) {
                phase_done = false;
                break;
            }
        if (!phase_done) continue;

        ++task.phase;
        assign_phase_budgets(task);
        if (task.phase < task.profile->phases.size()) continue;

        // Task complete: free its cores, record, notify.
        task.finished = true;
        task.finish_s = now_;
        for (ThreadId id : task.threads) {
            Thread& t = threads_[id];
            t.finished = true;
            const std::size_t core = thread_core_[id];
            if (core != kNone) {
                core_occupant_[core] = kNone;
                core_vacated(core);
                thread_core_[id] = kNone;
            }
        }
        result_.tasks.push_back(TaskResult{task.id, task.profile->name,
                                           task.thread_count, task.arrival_s,
                                           task.start_s, task.finish_s,
                                           task_energy_j_[task.id]});
        if (obs_)
            obs_->record({now_, obs::EventKind::kTaskFinish,
                          static_cast<std::uint32_t>(task.id), 0,
                          task.finish_s - task.arrival_s});
        scheduler.on_task_finish(*this, task.id);
        offer_pending(scheduler);
    }
}

void Simulator::offer_pending(Scheduler& scheduler) {
    for (std::size_t attempts = pending_.size(); attempts > 0; --attempts) {
        const TaskId id = pending_.front();
        pending_.pop_front();
        if (scheduler.on_task_arrival(*this, id)) {
            Task& t = tasks_[id];
            t.placed = true;
            t.start_s = now_;
            assign_phase_budgets(t);
            if (obs_)
                obs_->record({now_, obs::EventKind::kTaskStart,
                              static_cast<std::uint32_t>(id),
                              static_cast<std::uint32_t>(t.thread_count), 0.0});
        } else {
            pending_.push_back(id);
            break;  // keep FIFO order: don't let later tasks jump the queue
        }
    }
}

void Simulator::update_dtm() {
    double max_core = -1e300;
    for (std::size_t c = 0; c < chip_->core_count(); ++c)
        max_core = std::max(max_core, temps_[c]);
    result_.peak_temperature_c = std::max(result_.peak_temperature_c, max_core);
    if (obs_step_peak_) obs_step_peak_->observe(max_core);
    if (sensors_) {
        // Hardware DTM sees the sensors, not ground truth — but it trusts
        // the vote-masked estimate, so one lying diode can neither blind nor
        // panic it. Without the vote filter masked == filtered readings.
        if (sensor_temps_.size() != chip_->core_count())
            sensor_temps_ = linalg::Vector(chip_->core_count());
        for (std::size_t c = 0; c < chip_->core_count(); ++c)
            sensor_temps_[c] = temps_[c];
        sensors_->observe(sensor_temps_, now_);
        max_core = sensors_->max_masked_reading();
        if (injector_)
            result_.resilience.untrusted_sensor_samples +=
                sensors_->untrusted_count();
    }
    if (!dtm_active_ && max_core > config_.t_dtm_c) {
        dtm_active_ = true;
        ++result_.dtm_triggers;
        if (obs_)
            obs_->record({now_, obs::EventKind::kDtmEngage, 0, 0, max_core});
    } else if (dtm_active_ &&
               max_core < config_.t_dtm_c - config_.dtm_hysteresis_c) {
        dtm_active_ = false;
        if (obs_)
            obs_->record({now_, obs::EventKind::kDtmRelease, 0, 0, max_core});
    }
}

void Simulator::apply_faults(Scheduler& scheduler) {
    if (!injector_) return;
    fault_started_.clear();
    fault_ended_.clear();
    std::vector<fault::FaultEvent>& started = fault_started_;
    std::vector<fault::FaultEvent>& ended = fault_ended_;
    injector_->advance(now_, &started, &ended);

    if (obs_) {
        for (const fault::FaultEvent& e : started)
            obs_->record({now_, obs::EventKind::kFaultStart,
                          static_cast<std::uint32_t>(e.kind),
                          static_cast<std::uint32_t>(e.target), 0.0});
        for (const fault::FaultEvent& e : ended)
            obs_->record({now_, obs::EventKind::kFaultEnd,
                          static_cast<std::uint32_t>(e.kind),
                          static_cast<std::uint32_t>(e.target), 0.0});
    }

    for (const fault::FaultEvent& e : started) {
        switch (e.kind) {
            case fault::FaultKind::kCorePermanent:
            case fault::FaultKind::kCoreTransient: {
                ++result_.resilience.core_failures;
                const std::size_t core = e.target;
                std::vector<ThreadId> evicted;
                const ThreadId occupant = core_occupant_[core];
                if (occupant != kNone) {
                    core_occupant_[core] = kNone;
                    thread_core_[occupant] = kNone;
                    evicted.push_back(occupant);
                }
                core_gated_[core] = false;
                scheduler.on_core_failure(*this, core, evicted);
                for (ThreadId id : evicted) {
                    if (thread_core_[id] != kNone)
                        ++result_.resilience.threads_replaced;
                    else
                        ++result_.resilience.threads_stranded;
                }
                break;
            }
            case fault::FaultKind::kSensorStuck:
            case fault::FaultKind::kSensorDrift:
            case fault::FaultKind::kSensorSpike:
            case fault::FaultKind::kSensorDropout:
                ++result_.resilience.sensor_faults;
                break;
            case fault::FaultKind::kRotationAbort:
                break;  // counted only when a rotation actually drops
        }
    }

    for (const fault::FaultEvent& e : ended) {
        if (e.kind != fault::FaultKind::kCoreTransient) continue;
        core_vacated(e.target);
        scheduler.on_core_recovery(*this, e.target);
        offer_pending(scheduler);  // regained capacity may unblock the queue
    }
    result_.resilience.faults_injected = injector_->injected_count();
}

void Simulator::update_watchdog() {
    if (!watchdog_enabled_) return;
    double truth_max = -1e300;
    for (std::size_t c = 0; c < chip_->core_count(); ++c)
        truth_max = std::max(truth_max, temps_[c]);
    // The watchdog is an independent protection circuit: it monitors its own
    // (trusted) reference above the DTM threshold and crashes the chip to
    // f_min until the DTM release point — the backstop when deceived sensors
    // keep the regular DTM asleep.
    if (!watchdog_active_ &&
        truth_max > config_.t_dtm_c + config_.watchdog_margin_c) {
        watchdog_active_ = true;
        watchdog_engaged_s_ = now_;
        ++result_.resilience.watchdog_triggers;
        if (obs_)
            obs_->record(
                {now_, obs::EventKind::kWatchdogTrip, 0, 0, truth_max});
    } else if (watchdog_active_ &&
               truth_max < config_.t_dtm_c - config_.dtm_hysteresis_c) {
        watchdog_active_ = false;
        result_.resilience.worst_recovery_s =
            std::max(result_.resilience.worst_recovery_s,
                     now_ - watchdog_engaged_s_);
        if (obs_)
            obs_->record({now_, obs::EventKind::kWatchdogRelease, 0, 0,
                          now_ - watchdog_engaged_s_});
    }
    if (truth_max > config_.t_dtm_c)
        result_.resilience.thermal_violation_s += config_.micro_step_s;
    if (injector_ && injector_->active_fault_count() > 0)
        result_.resilience.peak_during_fault_c =
            std::max(result_.resilience.peak_during_fault_c, truth_max);
}

void Simulator::check_temperatures_sane() const {
    const double bound =
        std::max(config_.max_sane_temperature_c, config_.t_dtm_c + 50.0);
    for (std::size_t i = 0; i < temps_.size(); ++i) {
        const double t = temps_[i];
        if (std::isfinite(t) && t <= bound) continue;
        const std::size_t cores = chip_->core_count();
        const std::string node =
            i < cores ? "core " + std::to_string(i)
                      : "node " + std::to_string(i) + " (non-core)";
        if (obs_)
            obs_->record({now_, obs::EventKind::kDivergence,
                          static_cast<std::uint32_t>(i), 0, t});
        throw ThermalDivergenceError(
            "Simulator: thermal divergence at t=" + std::to_string(now_) +
            " s: " + node + " reached " + std::to_string(t) +
            " C (sanity bound " + std::to_string(bound) +
            " C) — non-finite or runaway temperatures indicate divergent "
            "inputs (power, thermal model) rather than a physical run");
    }
}

void Simulator::record_trace_sample() {
    const std::size_t n = chip_->core_count();
    TraceSample s;
    s.time_s = now_;
    s.core_temperature_c.resize(n);
    s.core_power_w.resize(n);
    s.core_frequency_hz.resize(n);
    double max_t = -1e300;
    for (std::size_t c = 0; c < n; ++c) {
        s.core_temperature_c[c] = temps_[c];
        s.core_power_w[c] = last_core_power_w_[c];
        s.core_frequency_hz[c] = effective_frequency(c);
        max_t = std::max(max_t, temps_[c]);
    }
    s.max_core_temperature_c = max_t;
    result_.trace.push_back(std::move(s));
}

SimResult Simulator::run(Scheduler& scheduler) {
    if (ran_) throw std::logic_error("Simulator::run: already ran");
    ran_ = true;

    // Materialise tasks/threads sorted by arrival.
    std::stable_sort(specs_.begin(), specs_.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrival_s < b.arrival_s;
                     });
    tasks_.reserve(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        Task t;
        t.id = i;
        t.profile = specs_[i].profile;
        t.thread_count = specs_[i].thread_count;
        t.arrival_s = specs_[i].arrival_s;
        for (std::size_t r = 0; r < t.thread_count; ++r) {
            Thread th;
            th.id = threads_.size();
            th.task = i;
            th.role = r;
            t.threads.push_back(th.id);
            threads_.push_back(th);
        }
        tasks_.push_back(std::move(t));
    }
    thread_core_.assign(threads_.size(), kNone);
    task_energy_j_.assign(tasks_.size(), 0.0);

    scheduler.initialize(*this);

    const double dt = config_.micro_step_s;
    const std::size_t epoch_steps = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(config_.scheduler_epoch_s / dt)));
    if (config_.trace_interval_s > 0.0) next_trace_s_ = 0.0;

    std::size_t step = 0;
    while (now_ < config_.max_sim_time_s) {
        // Cooperative cancellation: one relaxed load per micro-step keeps a
        // hung or runaway run reapable by a supervisor (campaign deadline
        // watchdog) without any cost to the zero-allocation hot loop.
        if (cancel_ && cancel_->requested()) {
            const CancelReason reason = cancel_->reason();
            if (obs_)
                obs_->record({now_, obs::EventKind::kCancelled,
                              static_cast<std::uint32_t>(reason), 0, now_});
            throw CancelledError(
                reason, "Simulator: run cancelled (" +
                            std::string(to_string(reason)) + ") at t=" +
                            std::to_string(now_) + " s simulated");
        }
        // Inject newly arrived tasks.
        while (next_arrival_index_ < tasks_.size() &&
               tasks_[next_arrival_index_].arrival_s <= now_) {
            pending_.push_back(tasks_[next_arrival_index_].id);
            ++next_arrival_index_;
            offer_pending(scheduler);
        }
        apply_faults(scheduler);
        if (step % epoch_steps == 0) {
            refresh_noc_contention();
            offer_pending(scheduler);
            obs::ScopedPhase timer(obs_, obs::Phase::kSchedulerEpoch);
            scheduler.on_epoch(*this);
        }
        scheduler.on_step(*this);

        if (config_.trace_interval_s > 0.0 && now_ >= next_trace_s_) {
            record_trace_sample();
            next_trace_s_ += config_.trace_interval_s;
        }

        const linalg::Vector& core_power = compute_step_power();
        for (std::size_t c = 0; c < core_power.size(); ++c) {
            const double joules = core_power[c] * dt;
            result_.total_energy_j += joules;
            const ThreadId occupant = core_occupant_[c];
            if (occupant == kNone)
                result_.idle_energy_j += joules;
            else
                task_energy_j_[threads_[occupant].task] += joules;
        }
        advance_progress(dt);
        thermal_->pad_power_into(core_power, node_power_);
        {
            obs::ScopedPhase timer(obs_, obs::Phase::kMatexSolve);
            solver_->transient_into(temps_, node_power_, config_.ambient_c, dt,
                                   *ws_, temps_);
        }
        check_temperatures_sane();
        if (dtm_active_) result_.dtm_throttled_s += dt;
        if (watchdog_active_) result_.resilience.watchdog_throttled_s += dt;
        update_dtm();
        update_watchdog();
        resolve_phases_and_completions(scheduler);

        if (obs_steps_) obs_steps_->add();
        now_ = static_cast<double>(++step) * dt;

        const bool all_done =
            next_arrival_index_ == tasks_.size() && pending_.empty() &&
            std::all_of(tasks_.begin(), tasks_.end(),
                        [](const Task& t) { return t.finished; });
        if (all_done) break;
    }

    result_.simulated_time_s = now_;
    result_.all_finished = std::all_of(
        tasks_.begin(), tasks_.end(), [](const Task& t) { return t.finished; });
    double makespan = 0.0;
    for (const TaskResult& t : result_.tasks)
        makespan = std::max(makespan, t.finish_s);
    result_.makespan_s = makespan;
    if (injector_) {
        // A watchdog engaged at the end of the run still counts as an open
        // recovery interval.
        if (watchdog_active_)
            result_.resilience.worst_recovery_s =
                std::max(result_.resilience.worst_recovery_s,
                         now_ - watchdog_engaged_s_);
        result_.resilience.fault_log = injector_->log();
    }
    if (config_.trace_interval_s > 0.0) record_trace_sample();
    if (obs_) {
        // End-of-run gauges. Registration may allocate here; the run is over,
        // so the zero-allocation step contract is not in play.
        obs_->gauge("sim.peak_temperature_c").set(result_.peak_temperature_c);
        obs_->gauge("sim.peak_headroom_c")
            .set(config_.t_dtm_c - result_.peak_temperature_c);
        obs_->gauge("sim.energy_j").set(result_.total_energy_j);
        obs_->gauge("sim.makespan_s").set(result_.makespan_s);
        obs_->gauge("sim.migrations_per_s")
            .set(result_.simulated_time_s > 0.0
                     ? static_cast<double>(result_.migrations) /
                           result_.simulated_time_s
                     : 0.0);
    }
    return result_;
}

}  // namespace hp::sim
