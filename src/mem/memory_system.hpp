#pragma once

#include <cstddef>
#include <vector>

#include "arch/manycore.hpp"

namespace hp::mem {

/// Off-chip memory parameters.
struct DramParams {
    double access_latency_s = 60e-9;          ///< row activate + CAS + bus
    double bandwidth_bytes_s_per_mc = 25.6e9; ///< one DDR channel per MC
    std::size_t controllers = 4;              ///< MCs at the mesh edge
    std::size_t line_bytes = 64;
};

/// Memory controllers at the mesh boundary serving LLC misses.
///
/// An LLC miss travels from the bank to its (address-interleaved, hence
/// uniformly distributed) memory controller, pays the DRAM access latency,
/// and returns. With S-NUCA's uniform bank distribution the per-core miss
/// penalty reduces to the core-independent average bank-to-MC distance, so
/// the model exposes one zero-load penalty plus an M/D/1 channel-queueing
/// term for the aggregate miss rate.
class MemorySystem {
public:
    explicit MemorySystem(const arch::ManyCore& chip, DramParams params = {});

    const DramParams& params() const { return params_; }

    /// Cores whose routers host a memory controller (layer 0 edge midpoints).
    const std::vector<std::size_t>& controller_cores() const {
        return controller_cores_;
    }

    /// Zero-load penalty of one LLC *miss* (bank->MC round trip + DRAM),
    /// averaged over banks and controllers. Seconds.
    double miss_latency_s() const { return miss_latency_s_; }

    /// Average extra latency one LLC *access* of a thread with the given
    /// miss ratio pays. Seconds.
    double access_penalty_s(double miss_ratio) const {
        return miss_ratio * miss_latency_s_;
    }

    /// M/D/1 queueing delay at a controller when the chip misses
    /// @p total_miss_rate times per second in aggregate (spread uniformly
    /// over the controllers). Utilisation is clamped below 1.
    double queueing_delay_s(double total_miss_rate,
                            double max_utilization = 0.95) const;

    /// Aggregate miss rate at which the DRAM channels saturate (misses/s).
    double saturation_miss_rate() const;

private:
    const arch::ManyCore* chip_;
    DramParams params_;
    std::vector<std::size_t> controller_cores_;
    double miss_latency_s_ = 0.0;
};

}  // namespace hp::mem
