#include "mem/memory_system.hpp"

#include <algorithm>
#include <stdexcept>

namespace hp::mem {

MemorySystem::MemorySystem(const arch::ManyCore& chip, DramParams params)
    : chip_(&chip), params_(params) {
    if (params_.controllers == 0)
        throw std::invalid_argument("MemorySystem: need at least one MC");

    // Attach controllers to edge-midpoint routers of layer 0, cycling over
    // the four sides: bottom, top, left, right.
    const auto& plan = chip.plan();
    const std::size_t rows = plan.rows();
    const std::size_t cols = plan.cols();
    const std::size_t candidates[4] = {
        plan.index_of(0, cols / 2, 0),
        plan.index_of(rows - 1, cols / 2, 0),
        plan.index_of(rows / 2, 0, 0),
        plan.index_of(rows / 2, cols - 1, 0),
    };
    for (std::size_t m = 0; m < params_.controllers; ++m)
        controller_cores_.push_back(candidates[m % 4]);
    std::sort(controller_cores_.begin(), controller_cores_.end());
    controller_cores_.erase(
        std::unique(controller_cores_.begin(), controller_cores_.end()),
        controller_cores_.end());

    // Average bank -> controller hop distance (banks and the serving MC are
    // both address-interleaved, i.e. uniform).
    double total_hops = 0.0;
    for (std::size_t bank = 0; bank < chip.core_count(); ++bank)
        for (std::size_t mc : controller_cores_)
            total_hops += static_cast<double>(plan.manhattan_hops(bank, mc));
    const double avg_hops =
        total_hops / static_cast<double>(chip.core_count() *
                                         controller_cores_.size());
    miss_latency_s_ = 2.0 * avg_hops * chip.params().noc_hop_latency_s +
                      params_.access_latency_s;
}

double MemorySystem::queueing_delay_s(double total_miss_rate,
                                      double max_utilization) const {
    if (total_miss_rate <= 0.0) return 0.0;
    const double per_mc_rate =
        total_miss_rate / static_cast<double>(controller_cores_.size());
    const double service_s = static_cast<double>(params_.line_bytes) /
                             params_.bandwidth_bytes_s_per_mc;
    const double u = std::min(per_mc_rate * service_s, max_utilization);
    return service_s * u / (2.0 * (1.0 - u));
}

double MemorySystem::saturation_miss_rate() const {
    const double service_s = static_cast<double>(params_.line_bytes) /
                             params_.bandwidth_bytes_s_per_mc;
    return static_cast<double>(controller_cores_.size()) / service_s;
}

}  // namespace hp::mem
