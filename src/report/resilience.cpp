#include "report/resilience.hpp"

#include <ostream>
#include <sstream>

#include "fault/fault.hpp"

namespace hp::report {

std::string render_resilience(const sim::ResilienceStats& s) {
    if (s.faults_injected == 0 && s.watchdog_triggers == 0) return "";
    std::ostringstream out;
    out << "faults injected    : " << s.faults_injected << " ("
        << s.core_failures << " core, " << s.sensor_faults << " sensor, "
        << s.rotation_aborts << " rotation aborts)\n";
    out << "threads re-placed  : " << s.threads_replaced << " ("
        << s.threads_stranded << " stranded at eviction)\n";
    out << "watchdog           : " << s.watchdog_triggers << " triggers, "
        << s.watchdog_throttled_s * 1e3 << " ms emergency throttle\n";
    if (s.watchdog_triggers > 0)
        out << "worst recovery     : " << s.worst_recovery_s * 1e3
            << " ms\n";
    out << "time above T_DTM   : " << s.thermal_violation_s * 1e3
        << " ms\n";
    if (s.peak_during_fault_c > 0.0)
        out << "peak during faults : " << s.peak_during_fault_c << " C\n";
    if (s.untrusted_sensor_samples > 0)
        out << "untrusted samples  : " << s.untrusted_sensor_samples
            << " (masked by neighbour vote)\n";
    return out.str();
}

void write_fault_log(std::ostream& out, const sim::ResilienceStats& s) {
    for (const auto& e : s.fault_log)
        out << "  t=" << e.time_s << " s  " << fault::to_string(e.kind)
            << " target=" << e.target
            << (e.note.empty() ? "" : "  (" + e.note + ")") << "\n";
}

}  // namespace hp::report
