#include "report/failures.hpp"

#include <array>
#include <sstream>

namespace hp::report {

std::string render_failures(const campaign::CampaignSummary& summary) {
    const bool quiet = summary.quarantine.empty() &&
                       summary.total_retries == 0 &&
                       summary.resumed_runs == 0;
    if (quiet) return {};

    // Per-class counts over the quarantine (kNone never appears there).
    std::array<std::size_t,
               static_cast<std::size_t>(campaign::FailureClass::kUnknown) + 1>
        by_class{};
    for (const campaign::QuarantinedRun& q : summary.quarantine)
        ++by_class[static_cast<std::size_t>(q.failure_class)];

    std::ostringstream out;
    out << "failures           : " << summary.quarantine.size() << "/"
        << summary.total_runs << " quarantined";
    bool first = true;
    for (std::size_t c = 1; c < by_class.size(); ++c) {
        if (by_class[c] == 0) continue;
        out << (first ? " (" : ", ")
            << to_string(static_cast<campaign::FailureClass>(c)) << " "
            << by_class[c];
        first = false;
    }
    if (!first) out << ")";
    out << "\n";
    if (summary.total_retries > 0)
        out << "retries            : " << summary.total_retries << " across "
            << summary.retried_runs << " run"
            << (summary.retried_runs == 1 ? "" : "s") << "\n";
    if (summary.resumed_runs > 0)
        out << "resumed            : " << summary.resumed_runs
            << " runs restored from journal\n";
    for (const campaign::QuarantinedRun& q : summary.quarantine)
        out << "  quarantined " << to_string(q.key) << " ["
            << to_string(q.failure_class) << ", attempts=" << q.attempts
            << "]: " << q.error << "\n";
    return out.str();
}

}  // namespace hp::report
