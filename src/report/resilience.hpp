#pragma once

#include <iosfwd>
#include <string>

#include "sim/types.hpp"

namespace hp::report {

/// Renders the resilience section of a simulation report — fault counts,
/// graceful-degradation actions, and watchdog/recovery timing — in the same
/// `label : value` style as the CLI driver. Returns an empty string when no
/// faults were injected and the watchdog never fired (nothing to report).
std::string render_resilience(const sim::ResilienceStats& stats);

/// Writes the chronological fault log (one indented line per injected or
/// expired fault) to @p out. No-op when the log is empty.
void write_fault_log(std::ostream& out, const sim::ResilienceStats& stats);

}  // namespace hp::report
