#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace hp::report {

/// Renders the failure/quarantine section of a campaign report: a per-class
/// breakdown (how many runs ended transient / timeout / numerical_divergence
/// / invalid_config / unknown), the retry and resume totals, and one line
/// per quarantined grid cell with its error and attempt history. Returns an
/// empty string when every run succeeded on the first attempt and nothing
/// was resumed (nothing to report).
std::string render_failures(const campaign::CampaignSummary& summary);

}  // namespace hp::report
