#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace hp::report {

/// Outcome of one (scheduler, workload) run in a comparison campaign.
struct RunRecord {
    std::string scheduler;
    std::string workload;
    sim::SimResult result;
};

/// A scheduler factory: fresh instance per run (schedulers are stateful).
using SchedulerFactory =
    std::function<std::unique_ptr<sim::Scheduler>()>;

/// Runs the same workloads under several schedulers on one machine and
/// collects the results — the boilerplate behind every comparison bench in
/// this repo, packaged for downstream studies.
class ComparisonRunner {
public:
    /// All references must outlive the runner.
    ComparisonRunner(const arch::ManyCore& chip,
                     const thermal::ThermalModel& model,
                     const thermal::MatExSolver& solver,
                     sim::SimConfig config = {});

    /// Registers a scheduler under @p label.
    void add_scheduler(std::string label, SchedulerFactory factory);

    /// Registers a workload (task list) under @p label.
    void add_workload(std::string label,
                      std::vector<workload::TaskSpec> tasks);

    /// Runs every (scheduler x workload) combination; records appear in
    /// workload-major order.
    std::vector<RunRecord> run_all() const;

private:
    const arch::ManyCore* chip_;
    const thermal::ThermalModel* model_;
    const thermal::MatExSolver* solver_;
    sim::SimConfig config_;
    std::vector<std::pair<std::string, SchedulerFactory>> schedulers_;
    std::vector<std::pair<std::string, std::vector<workload::TaskSpec>>>
        workloads_;
};

/// Renders records as a GitHub-flavoured markdown table (one row per run).
std::string to_markdown(const std::vector<RunRecord>& records);

/// Writes one CSV row per run: workload, scheduler, makespan, avg response,
/// peak temperature, DTM, migrations, energy.
void write_csv(std::ostream& out, const std::vector<RunRecord>& records);

}  // namespace hp::report
