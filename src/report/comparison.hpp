#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace hp::report {

/// Outcome of one (scheduler, workload) run in a comparison campaign.
struct RunRecord {
    std::string scheduler;
    std::string workload;
    sim::SimResult result;
};

/// A scheduler factory: fresh instance per run (schedulers are stateful).
using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>()>;

/// \deprecated Thin forwarding shim over campaign::CampaignSpec +
/// campaign::run_campaign, kept for one release so existing callers keep
/// compiling. New code should use the campaign API directly: it is
/// value-semantic (no reference-lifetime contract), supports config/seed
/// axes, runs the grid on a worker pool (`jobs`), and captures per-run
/// errors instead of throwing.
///
/// Behaviour preserved from the original class: runs execute serially in
/// workload-major order, and the first failing run rethrows its error as
/// std::runtime_error (the campaign engine's per-run capture is unwound
/// here to match the historical contract).
class ComparisonRunner {
public:
    /// All references must outlive the runner (the historical contract;
    /// internally held through campaign::StudySetup::borrow).
    ComparisonRunner(const arch::ManyCore& chip,
                     const thermal::ThermalModel& model,
                     const thermal::MatExSolver& solver,
                     sim::SimConfig config = {});

    /// Registers a scheduler under @p label.
    void add_scheduler(std::string label, SchedulerFactory factory);

    /// Registers a workload (task list) under @p label.
    void add_workload(std::string label,
                      std::vector<workload::TaskSpec> tasks);

    /// Runs every (scheduler x workload) combination; records appear in
    /// workload-major order.
    std::vector<RunRecord> run_all() const;

private:
    campaign::CampaignSpec spec_;
};

/// Renders records as a GitHub-flavoured markdown table (one row per run).
std::string to_markdown(const std::vector<RunRecord>& records);

/// Writes one CSV row per run: workload, scheduler, makespan, avg response,
/// peak temperature, DTM, migrations, energy.
void write_csv(std::ostream& out, const std::vector<RunRecord>& records);

}  // namespace hp::report
