#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace hp::report {

/// Outcome of one (scheduler, workload) run in a comparison campaign.
struct RunRecord {
    std::string scheduler;
    std::string workload;
    sim::SimResult result;
};

/// A scheduler factory: fresh instance per run (schedulers are stateful).
using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>()>;

/// Flattens a campaign result into report records (in the campaign's
/// workload-major record order). Throws std::runtime_error on the first
/// failed run — report tables are for campaigns that completed; use the
/// campaign::RunRecord error fields directly when partial results are
/// expected.
std::vector<RunRecord> collect_records(const campaign::CampaignResult& out);

/// Renders records as a GitHub-flavoured markdown table (one row per run).
std::string to_markdown(const std::vector<RunRecord>& records);

/// Writes one CSV row per run: workload, scheduler, makespan, avg response,
/// peak temperature, DTM, migrations, energy.
void write_csv(std::ostream& out, const std::vector<RunRecord>& records);

}  // namespace hp::report
