#include "report/comparison.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace hp::report {

ComparisonRunner::ComparisonRunner(const arch::ManyCore& chip,
                                   const thermal::ThermalModel& model,
                                   const thermal::MatExSolver& solver,
                                   sim::SimConfig config)
    : spec_(campaign::StudySetup::borrow(chip, model, solver),
            std::move(config)) {}

void ComparisonRunner::add_scheduler(std::string label,
                                     SchedulerFactory factory) {
    if (!factory)
        throw std::invalid_argument("ComparisonRunner: null factory");
    spec_.add_scheduler(std::move(label), std::move(factory));
}

void ComparisonRunner::add_workload(std::string label,
                                    std::vector<workload::TaskSpec> tasks) {
    spec_.add_workload(std::move(label), std::move(tasks));
}

std::vector<RunRecord> ComparisonRunner::run_all() const {
    campaign::CampaignOptions options;
    options.jobs = 1;  // the historical class ran strictly serially
    const campaign::CampaignResult out = campaign::run_campaign(spec_, options);
    std::vector<RunRecord> records;
    records.reserve(out.records.size());
    for (const campaign::RunRecord& r : out.records) {
        if (r.failed)
            throw std::runtime_error("ComparisonRunner: run " +
                                     campaign::to_string(r.key) +
                                     " failed: " + r.error);
        records.push_back({r.key.scheduler, r.key.workload, r.result});
    }
    return records;
}

std::string to_markdown(const std::vector<RunRecord>& records) {
    std::ostringstream out;
    out << "| workload | scheduler | makespan [ms] | avg response [ms] | "
           "peak [C] | DTM [ms] | migrations | energy [J] |\n";
    out << "|---|---|---|---|---|---|---|---|\n";
    out.setf(std::ios::fixed);
    out.precision(2);
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << "| " << r.workload << " | " << r.scheduler << " | "
            << s.makespan_s * 1e3 << " | "
            << s.average_response_time_s() * 1e3 << " | "
            << s.peak_temperature_c << " | " << s.dtm_throttled_s * 1e3
            << " | " << s.migrations << " | " << s.total_energy_j;
        out << (s.all_finished ? " |\n" : " (INCOMPLETE) |\n");
    }
    return out.str();
}

void write_csv(std::ostream& out, const std::vector<RunRecord>& records) {
    out << "workload,scheduler,makespan_s,avg_response_s,peak_c,"
           "dtm_throttled_s,migrations,energy_j,all_finished\n";
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << r.workload << ',' << r.scheduler << ',' << s.makespan_s << ','
            << s.average_response_time_s() << ',' << s.peak_temperature_c
            << ',' << s.dtm_throttled_s << ',' << s.migrations << ','
            << s.total_energy_j << ',' << (s.all_finished ? 1 : 0) << '\n';
    }
}

}  // namespace hp::report
