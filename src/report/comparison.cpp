#include "report/comparison.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hp::report {

std::vector<RunRecord> collect_records(const campaign::CampaignResult& out) {
    std::vector<RunRecord> records;
    records.reserve(out.records.size());
    for (const campaign::RunRecord& r : out.records) {
        if (r.failed)
            throw std::runtime_error("collect_records: run " +
                                     campaign::to_string(r.key) +
                                     " failed: " + r.error);
        records.push_back({r.key.scheduler, r.key.workload, r.result});
    }
    return records;
}

std::string to_markdown(const std::vector<RunRecord>& records) {
    std::ostringstream out;
    out << "| workload | scheduler | makespan [ms] | avg response [ms] | "
           "peak [C] | DTM [ms] | migrations | energy [J] |\n";
    out << "|---|---|---|---|---|---|---|---|\n";
    out.setf(std::ios::fixed);
    out.precision(2);
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << "| " << r.workload << " | " << r.scheduler << " | "
            << s.makespan_s * 1e3 << " | "
            << s.average_response_time_s() * 1e3 << " | "
            << s.peak_temperature_c << " | " << s.dtm_throttled_s * 1e3
            << " | " << s.migrations << " | " << s.total_energy_j;
        out << (s.all_finished ? " |\n" : " (INCOMPLETE) |\n");
    }
    return out.str();
}

void write_csv(std::ostream& out, const std::vector<RunRecord>& records) {
    out << "workload,scheduler,makespan_s,avg_response_s,peak_c,"
           "dtm_throttled_s,migrations,energy_j,all_finished\n";
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << r.workload << ',' << r.scheduler << ',' << s.makespan_s << ','
            << s.average_response_time_s() << ',' << s.peak_temperature_c
            << ',' << s.dtm_throttled_s << ',' << s.migrations << ','
            << s.total_energy_j << ',' << (s.all_finished ? 1 : 0) << '\n';
    }
}

}  // namespace hp::report
