#include "report/comparison.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hp::report {

ComparisonRunner::ComparisonRunner(const arch::ManyCore& chip,
                                   const thermal::ThermalModel& model,
                                   const thermal::MatExSolver& solver,
                                   sim::SimConfig config)
    : chip_(&chip), model_(&model), solver_(&solver), config_(config) {}

void ComparisonRunner::add_scheduler(std::string label,
                                     SchedulerFactory factory) {
    if (!factory)
        throw std::invalid_argument("ComparisonRunner: null factory");
    schedulers_.emplace_back(std::move(label), std::move(factory));
}

void ComparisonRunner::add_workload(std::string label,
                                    std::vector<workload::TaskSpec> tasks) {
    workloads_.emplace_back(std::move(label), std::move(tasks));
}

std::vector<RunRecord> ComparisonRunner::run_all() const {
    std::vector<RunRecord> records;
    for (const auto& [workload_label, tasks] : workloads_) {
        for (const auto& [scheduler_label, factory] : schedulers_) {
            sim::Simulator sim(*chip_, *model_, *solver_, config_);
            sim.add_tasks(tasks);
            std::unique_ptr<sim::Scheduler> scheduler = factory();
            RunRecord record;
            record.scheduler = scheduler_label;
            record.workload = workload_label;
            record.result = sim.run(*scheduler);
            records.push_back(std::move(record));
        }
    }
    return records;
}

std::string to_markdown(const std::vector<RunRecord>& records) {
    std::ostringstream out;
    out << "| workload | scheduler | makespan [ms] | avg response [ms] | "
           "peak [C] | DTM [ms] | migrations | energy [J] |\n";
    out << "|---|---|---|---|---|---|---|---|\n";
    out.setf(std::ios::fixed);
    out.precision(2);
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << "| " << r.workload << " | " << r.scheduler << " | "
            << s.makespan_s * 1e3 << " | "
            << s.average_response_time_s() * 1e3 << " | "
            << s.peak_temperature_c << " | " << s.dtm_throttled_s * 1e3
            << " | " << s.migrations << " | " << s.total_energy_j;
        out << (s.all_finished ? " |\n" : " (INCOMPLETE) |\n");
    }
    return out.str();
}

void write_csv(std::ostream& out, const std::vector<RunRecord>& records) {
    out << "workload,scheduler,makespan_s,avg_response_s,peak_c,"
           "dtm_throttled_s,migrations,energy_j,all_finished\n";
    for (const RunRecord& r : records) {
        const auto& s = r.result;
        out << r.workload << ',' << r.scheduler << ',' << s.makespan_s << ','
            << s.average_response_time_s() << ',' << s.peak_temperature_c
            << ',' << s.dtm_throttled_s << ',' << s.migrations << ','
            << s.total_energy_j << ',' << (s.all_finished ? 1 : 0) << '\n';
    }
}

}  // namespace hp::report
