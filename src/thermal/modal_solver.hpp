#pragma once

#include <cstddef>
#include <vector>

#include "linalg/banded.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector.hpp"
#include "thermal/solver.hpp"

namespace hp::thermal {

/// Reduced-order TransientSolver: truncated modal decomposition + sparse
/// direct/Taylor propagation, the backend that scales S-NUCA thermal
/// analysis to 256/1024-core and 3D-stacked floorplans.
///
/// An RC grid's spectrum splits into a slow spreader/sink cluster (time
/// constants 0.1 s..1 s) and a fast silicon cluster (~10 ms); the paper's
/// rotation analysis lives on the slow side, but hotspot *amplitudes* have
/// large fast-mode content, so naively dropping fast modes loses tens of
/// Kelvin. This backend therefore never relies on truncation being small in
/// the field — it splits every query by horizon:
///
///  - *Steady states* are exact: B is factorised once by an RCM-ordered
///    banded Cholesky with the dense-coupled sink row bordered out through a
///    Schur complement (linalg::BandedCholesky), so a solve is O(N·b).
///  - *Short-horizon transients* (dt < τ_switch, the simulator micro-step
///    path) propagate the full offset with a substepped 3rd-order Taylor
///    expansion of e^{C·dt} over the sparse C = -A^{-1}B — O(nnz) per
///    substep, no modal projection, local error kept under tolerance_c by
///    the substep rule m ≥ (Ω·(|λ_max|dt)⁴ / 24·tol)^{1/3}.
///  - *Long-horizon transients* (dt ≥ τ_switch) use the K retained slowest
///    modes in closed form; K and τ_switch are chosen together so the
///    dropped tail Σ_{k≥K} g_k·Ω·e^{λ_k·τ_switch} is under tolerance_c
///    while the Taylor cost below τ_switch stays bounded — with the shipped
///    parameters the cut lands in the spectral gap between the clusters.
///  - *Periodic rotation analysis* (PeakTemperatureAnalyzer) gets the
///    retained modes plus cluster_pole()/conductance-solve hooks with which
///    it reconstructs the dropped modes' quasi-static response exactly and
///    low-pass-filters it through one representative fast pole λ̄.
///
/// Setup uses Householder tridiagonalization + implicit-QL
/// (linalg::tridiagonal_eigen) instead of Jacobi sweeps, keeping the
/// one-time O(N³) constant small at 513/2049 nodes.
///
/// error_bound_c() is the a-priori Kelvin bound on peak/transient queries:
/// 2·tolerance_c (propagation + tail) plus the cluster-spread term
/// P_ref·maxd·(1-e^{-Δλ/|λ̄|}) measured from per-core probe solves at
/// construction (DESIGN.md §11).
///
/// Thread safety: immutable after construction, all scratch caller-owned
/// (the TransientSolver contract).
class TruncatedModalSolver : public TransientSolver {
public:
    /// One-time setup for @p model (which must outlive the solver):
    /// eigendecomposition, mode selection against config.tolerance_c,
    /// banded factorisation of B, CSR of C and the error-bound probes.
    /// Throws std::invalid_argument on a non-positive tolerance.
    TruncatedModalSolver(const ThermalModel& model, const SolverConfig& config);

    const ThermalModel& model() const override { return *model_; }
    const char* backend_name() const override { return "modal"; }
    std::uint64_t backend_signature() const override;
    bool truncated() const override { return kept_ < total_; }
    double error_bound_c() const override { return error_bound_c_; }
    double tolerance_c() const override { return tolerance_c_; }

    std::size_t mode_count() const override { return kept_; }
    const linalg::Vector& eigenvalues() const override { return lambda_k_; }
    const linalg::Matrix& mode_shapes() const override { return v_k_; }
    linalg::Matrix modal_steady_map() const override;
    double cluster_pole() const override { return cluster_pole_; }

    /// Horizon at which queries switch from sparse Taylor propagation to the
    /// retained-mode closed form (0 when nothing is truncated).
    double tau_switch_s() const { return tau_switch_s_; }

    linalg::Vector steady_state(const linalg::Vector& node_power,
                                double ambient_celsius) const override;
    void steady_state_into(const linalg::Vector& node_power,
                           double ambient_celsius, ThermalWorkspace& workspace,
                           linalg::Vector& out) const override;
    void steady_state_batch_into(const double* node_powers, std::size_t nrhs,
                                 double ambient_celsius,
                                 ThermalWorkspace& workspace,
                                 double* out) const override;
    linalg::Vector conductance_solve(const linalg::Vector& rhs) const override;
    void conductance_solve_into(const linalg::Vector& rhs,
                                ThermalWorkspace& workspace,
                                linalg::Vector& out) const override;
    void conductance_solve_batch_into(const double* rhs, std::size_t nrhs,
                                      ThermalWorkspace& workspace,
                                      double* out) const override;

    linalg::Vector apply_exponential(const linalg::Vector& x,
                                     double dt) const override;
    void apply_exponential_into(const linalg::Vector& x, double dt,
                                ThermalWorkspace& workspace,
                                linalg::Vector& out) const override;
    void apply_exponential_batch_into(const double* xs, std::size_t nrhs,
                                      double dt, ThermalWorkspace& workspace,
                                      double* outs) const override;
    linalg::Matrix exponential(double dt) const override;

    linalg::Vector transient(const linalg::Vector& t_init,
                             const linalg::Vector& node_power,
                             double ambient_celsius, double dt) const override;
    void transient_into(const linalg::Vector& t_init,
                        const linalg::Vector& node_power,
                        double ambient_celsius, double dt,
                        ThermalWorkspace& workspace,
                        linalg::Vector& out) const override;
    void transient_batch_into(const linalg::Vector& t_init,
                              const double* node_powers, std::size_t nrhs,
                              double ambient_celsius, double dt,
                              ThermalWorkspace& workspace,
                              double* outs) const override;

    double peak_core_temperature(const linalg::Vector& t_init,
                                 const linalg::Vector& node_power,
                                 double ambient_celsius, double dt,
                                 std::size_t samples = 8) const override;
    Peak peak_core_temperature_exact(const linalg::Vector& t_init,
                                     const linalg::Vector& node_power,
                                     double ambient_celsius,
                                     double dt) const override;

    /// Taylor substep count the propagator would use for horizon @p dt
    /// (exposed for tests/benchmarks of the cost model).
    std::size_t substeps_for(double dt) const;

    /// Copies the retained-mode tables, banded factor and CSR bit-for-bit
    /// and rebinds to @p model (which must be a signature-equal replica) —
    /// no eigensolve, no refactorisation.
    std::unique_ptr<const TransientSolver> clone_rebound(
        const ThermalModel& model) const override;

private:
    /// e^{C·dt}·x via m-substep 3rd-order Taylor over the sparse C
    /// (dt < tau_switch_s_). Raw-pointer core shared by single and batch
    /// entry points; x and out may alias.
    void propagate_taylor(const double* x, double dt, ThermalWorkspace& ws,
                          double* out) const;
    /// e^{C·dt}·x via the retained modes (dt >= tau_switch_s_).
    void propagate_modal(const double* x, double dt, ThermalWorkspace& ws,
                         double* out) const;
    /// Batched propagate_taylor: gathers the RHS-major @p xs into node-major
    /// lane blocks and advances every column per sparse pass (spmm), so each
    /// CSR nonzero is streamed once per substep instead of once per RHS.
    /// Output r is bit-identical to propagate_taylor on input r. @p outs may
    /// alias @p xs.
    void propagate_taylor_batch(const double* xs, std::size_t nrhs, double dt,
                                ThermalWorkspace& ws, double* outs) const;
    /// Batched propagate_modal: one W·X matmat down, the memoised exp ladder
    /// across, one V·w matmat back — bit-identical per RHS to
    /// propagate_modal (matmat keeps matvec's accumulation order per RHS).
    /// @p outs may alias @p xs.
    void propagate_modal_batch(const double* xs, std::size_t nrhs, double dt,
                               ThermalWorkspace& ws, double* outs) const;
    void apply_exponential_raw(const double* x, double dt,
                               ThermalWorkspace& ws, double* out) const;
    void steady_state_raw(const double* node_power, double ambient_celsius,
                          ThermalWorkspace& ws, double* out) const;

    const ThermalModel* model_;
    std::size_t total_ = 0;  ///< node count N
    std::size_t kept_ = 0;   ///< retained modes K
    double tolerance_c_ = 0.0;
    double offset_scale_c_ = 0.0;
    double tau_switch_s_ = 0.0;
    double lambda_max_abs_ = 0.0;  ///< |λ| of the fastest mode (full system)
    double cluster_pole_ = 0.0;    ///< g-weighted mean dropped eigenvalue
    double error_bound_c_ = 0.0;

    linalg::Vector lambda_k_;  ///< retained eigenvalues, slowest first
    linalg::Matrix v_k_;       ///< N x K retained mode shapes
    linalg::Matrix w_k_;       ///< K x N retained left modes (V^{-1} rows)
    linalg::Vector beta_scale_;  ///< 1/μ_k: β = diag(1/μ)·W·A^{-1} scaling
    linalg::BandedCholesky conductance_chol_;  ///< bordered banded factor of B
    linalg::SparseCsr c_sparse_;               ///< CSR of C = -A^{-1}B
};

}  // namespace hp::thermal
