#include "thermal/rc_network.hpp"

#include <stdexcept>
#include <vector>

namespace hp::thermal {

namespace {

/// Adds a conductance of 1/resistance between nodes a and b of the Laplacian.
void add_coupling(linalg::Matrix& b, std::size_t a_node, std::size_t b_node,
                  double resistance) {
    const double g = 1.0 / resistance;
    b(a_node, a_node) += g;
    b(b_node, b_node) += g;
    b(a_node, b_node) -= g;
    b(b_node, a_node) -= g;
}

}  // namespace

ThermalModel::ThermalModel(const floorplan::GridFloorplan& plan,
                           const RcNetworkConfig& config)
    : core_count_(plan.core_count()) {
    const std::size_t n = core_count_;
    const std::size_t footprint = plan.layer_core_count();
    const std::size_t total = n + footprint + 1;
    const std::size_t spreader_base = n;
    const std::size_t sink = n + footprint;

    capacitance_ = linalg::Vector(total);
    for (std::size_t i = 0; i < n; ++i)
        capacitance_[i] = config.silicon_capacitance;
    for (std::size_t c = 0; c < footprint; ++c)
        capacitance_[spreader_base + c] = config.spreader_capacitance;
    // The sink scales with the footprint, not the stack height.
    capacitance_[sink] =
        config.sink_capacitance_per_core * static_cast<double>(footprint);

    conductance_ = linalg::Matrix(total, total);
    for (std::size_t i = 0; i < n; ++i) {
        // Lateral silicon conduction within each layer (each edge once).
        for (std::size_t j : plan.neighbors(i))
            if (j > i)
                add_coupling(conductance_, i, j,
                             config.silicon_lateral_resistance);
        // Vertical conduction between stacked silicon layers.
        for (std::size_t j : plan.stack_neighbors(i))
            if (j > i)
                add_coupling(conductance_, i, j, config.interlayer_resistance);
        // Only the bottom layer touches the spreader. Layer-major tile ids
        // make the footprint cell index simply i mod footprint.
        if (plan.tile(i).layer == 0)
            add_coupling(conductance_, i, spreader_base + i % footprint,
                         config.silicon_to_spreader_resistance);
    }

    for (std::size_t c = 0; c < footprint; ++c) {
        // The layer-0 tile with the same footprint position defines the
        // spreader cell's adjacency.
        for (std::size_t j : plan.neighbors(c))
            if (j > c)
                add_coupling(conductance_, spreader_base + c,
                             spreader_base + j,
                             config.spreader_lateral_resistance);
        add_coupling(conductance_, spreader_base + c, sink,
                     config.spreader_to_sink_resistance);
        // Peripheral overhang: boundary spreader cells shed extra heat into
        // the copper that extends beyond the die edge.
        const std::size_t exposed_edges = 4 - plan.neighbors(c).size();
        for (std::size_t e = 0; e < exposed_edges; ++e)
            add_coupling(conductance_, spreader_base + c, sink,
                         config.spreader_peripheral_resistance);
    }

    ambient_conductance_ = linalg::Vector(total);
    const double g_amb = static_cast<double>(footprint) /
                         config.sink_to_ambient_resistance_per_core;
    ambient_conductance_[sink] = g_amb;
    conductance_(sink, sink) += g_amb;

    validate();
    b_lu_ = std::make_shared<linalg::LuDecomposition>(conductance_);
    signature_ = compute_signature();
}

ThermalModel::ThermalModel(linalg::Vector capacitance,
                           linalg::Matrix conductance,
                           linalg::Vector ambient_conductance,
                           std::size_t core_count)
    : core_count_(core_count),
      capacitance_(std::move(capacitance)),
      conductance_(std::move(conductance)),
      ambient_conductance_(std::move(ambient_conductance)) {
    validate();
    b_lu_ = std::make_shared<linalg::LuDecomposition>(conductance_);
    signature_ = compute_signature();
}

ThermalModel ThermalModel::replica() const {
    ThermalModel copy(*this);
    // The copy above shares the LU of B through the shared_ptr; duplicate
    // the decomposition itself (a bit-for-bit table copy, no
    // refactorisation) so the replica owns all of its read-mostly state.
    copy.b_lu_ = std::make_shared<const linalg::LuDecomposition>(*b_lu_);
    return copy;
}

std::uint64_t ThermalModel::compute_signature() const {
    // FNV-1a over the exact bit patterns of the model's defining data, so
    // equality of signatures means equality of the physics (and therefore of
    // every derived solve), independent of object identity.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t word) {
        for (int b = 0; b < 8; ++b) {
            h ^= (word >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    const auto mix_double = [&](double v) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    mix(static_cast<std::uint64_t>(core_count_));
    mix(static_cast<std::uint64_t>(capacitance_.size()));
    for (std::size_t i = 0; i < capacitance_.size(); ++i)
        mix_double(capacitance_[i]);
    for (std::size_t i = 0; i < conductance_.rows(); ++i)
        for (std::size_t j = 0; j < conductance_.cols(); ++j)
            mix_double(conductance_(i, j));
    for (std::size_t i = 0; i < ambient_conductance_.size(); ++i)
        mix_double(ambient_conductance_[i]);
    return h;
}

void ThermalModel::validate() const {
    const std::size_t total = capacitance_.size();
    if (total == 0)
        throw std::invalid_argument("ThermalModel: empty network");
    if (core_count_ == 0 || core_count_ > total)
        throw std::invalid_argument("ThermalModel: invalid core count");
    if (conductance_.rows() != total || conductance_.cols() != total)
        throw std::invalid_argument("ThermalModel: B size mismatch");
    if (ambient_conductance_.size() != total)
        throw std::invalid_argument("ThermalModel: G size mismatch");
    if (!conductance_.is_symmetric(1e-9 * std::max(1.0, conductance_.max_abs())))
        throw std::invalid_argument("ThermalModel: B must be symmetric");
    for (double c : capacitance_)
        if (c <= 0.0)
            throw std::invalid_argument(
                "ThermalModel: capacitances must be positive");
}

linalg::Vector ThermalModel::pad_power(const linalg::Vector& core_power) const {
    if (core_power.size() != core_count_)
        throw std::invalid_argument("ThermalModel::pad_power: size mismatch");
    linalg::Vector full(node_count());
    for (std::size_t i = 0; i < core_count_; ++i) full[i] = core_power[i];
    return full;
}

void ThermalModel::pad_power_into(const linalg::Vector& core_power,
                                  linalg::Vector& out) const {
    if (core_power.size() != core_count_)
        throw std::invalid_argument("ThermalModel::pad_power: size mismatch");
    if (out.size() != node_count()) out = linalg::Vector(node_count());
    for (std::size_t i = 0; i < core_count_; ++i) out[i] = core_power[i];
    for (std::size_t i = core_count_; i < node_count(); ++i) out[i] = 0.0;
}

void ThermalModel::steady_state_into(const linalg::Vector& node_power,
                                     double ambient_celsius,
                                     ThermalWorkspace& workspace,
                                     linalg::Vector& out) const {
    if (node_power.size() != node_count())
        throw std::invalid_argument(
            "ThermalModel::steady_state: power vector must cover all nodes");
    workspace.resize(node_count());
    if (out.size() != node_count()) out = linalg::Vector(node_count());
    const linalg::Vector& ambient =
        workspace.ambient_rhs(ambient_conductance_, ambient_celsius);
    for (std::size_t i = 0; i < node_count(); ++i)
        workspace.rhs[i] = node_power[i] + ambient[i];
    b_lu_->solve_into(workspace.rhs, out);
}

void ThermalModel::steady_state_batch_into(const double* node_powers,
                                           std::size_t nrhs,
                                           double ambient_celsius,
                                           ThermalWorkspace& workspace,
                                           double* out) const {
    const std::size_t n = node_count();
    if (nrhs == 0) return;
    workspace.resize(n);
    const linalg::Vector& ambient =
        workspace.ambient_rhs(ambient_conductance_, ambient_celsius);
    // Build the right-hand sides directly in the solver's node-major layout
    // (node i of RHS r at i·nrhs + r) — same adds as steady_state_into.
    std::pmr::vector<double>& rhs = workspace.batch_rhs(n * nrhs);
    std::pmr::vector<double>& sol = workspace.batch_sol(n * nrhs);
    for (std::size_t i = 0; i < n; ++i) {
        double* row = rhs.data() + i * nrhs;
        const double amb = ambient[i];
        for (std::size_t r = 0; r < nrhs; ++r)
            row[r] = node_powers[r * n + i] + amb;
    }
    b_lu_->solve_batch_into(rhs.data(), nrhs, sol.data());
    for (std::size_t i = 0; i < n; ++i) {
        const double* row = sol.data() + i * nrhs;
        for (std::size_t r = 0; r < nrhs; ++r) out[r * n + i] = row[r];
    }
}

linalg::Vector ThermalModel::steady_state(const linalg::Vector& node_power,
                                          double ambient_celsius) const {
    if (node_power.size() != node_count())
        throw std::invalid_argument(
            "ThermalModel::steady_state: power vector must cover all nodes");
    return b_lu_->solve(node_power + ambient_celsius * ambient_conductance_);
}

linalg::Vector ThermalModel::ambient_equilibrium(double ambient_celsius) const {
    return b_lu_->solve(ambient_celsius * ambient_conductance_);
}

}  // namespace hp::thermal
