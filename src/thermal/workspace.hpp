#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <memory_resource>
#include <vector>

#include "linalg/vector.hpp"

namespace hp::thermal {

/// Caller-owned scratch memory for the in-place thermal kernels
/// (ThermalModel::steady_state_into, MatExSolver::apply_exponential_into /
/// transient_into).
///
/// A workspace is sized once (to the thermal model's node count) and then
/// reused for any number of queries with zero further heap traffic — the
/// simulator owns one per run, each campaign worker owns one across its runs,
/// and the peak-temperature workspaces embed one. Two memoised vectors ride
/// along:
///
///  - ambient_rhs():  T_amb·G, so the per-step steady-state right-hand side
///    is a fused add instead of two allocated temporaries;
///  - exp_table():    a small ladder of e^{λ_k·dt} vectors, one per distinct
///    dt (up to kExpLadderSlots), so a simulator stepping at a fixed dt — or
///    an analyzer probing a τ ladder of rotation intervals — pays the K
///    exponentials once per rung instead of every query. Slots recycle
///    round-robin on overflow; invalidate_exp_tables() empties the ladder in
///    O(1) (the rebind hook for callers that swap solvers at what may be a
///    recycled lambda address).
///
/// Both caches key on the source vector's identity (address) plus the scalar
/// argument, so reusing one workspace across models or dt values is correct —
/// it just recomputes. The memoised entries are the exact values the legacy
/// code computed per call (std::exp of the same product, the same multiply),
/// so cached and uncached paths are bit-identical.
///
/// Thread affinity: a workspace is mutable state — use one per thread. The
/// model/solver it serves stays immutable and shareable.
///
/// Memory placement: the memory_resource constructor routes every buffer
/// through the given resource (a worker's node-local arena in campaign
/// runs). resize() and the memos use allocator-preserving assigns, so a
/// workspace never silently migrates off the resource it was built on —
/// and since buffers are fully overwritten per query, placement can never
/// change results, only locality.
class ThermalWorkspace {
public:
    ThermalWorkspace() = default;
    explicit ThermalWorkspace(std::size_t node_count) { resize(node_count); }

    /// All buffers (present and future) allocate from @p mr.
    explicit ThermalWorkspace(std::pmr::memory_resource* mr)
        : rhs(mr),
          steady(mr),
          offset(mr),
          modal(mr),
          solver_scratch(mr),
          taylor_a(mr),
          taylor_b(mr),
          mr_(mr),
          batch_rhs_(mr),
          batch_sol_(mr),
          batch_steady_(mr),
          batch_modal_(mr),
          batch_scratch_(mr),
          batch_taylor_r_(mr),
          batch_taylor_t1_(mr),
          batch_taylor_t2_(mr),
          ambient_(mr),
          exp_values_(mr) {}

    /// Sizes every buffer for an N-node model; idempotent (and cheap) when
    /// the size is unchanged, so kernels call it defensively.
    void resize(std::size_t node_count) {
        if (nodes_ == node_count) return;
        nodes_ = node_count;
        rhs.assign(node_count);
        steady.assign(node_count);
        offset.assign(node_count);
        modal.assign(node_count);
        solver_scratch.assign(node_count);
        taylor_a.assign(node_count);
        taylor_b.assign(node_count);
        ambient_key_ = nullptr;
        invalidate_exp_tables();
    }

    std::size_t node_count() const { return nodes_; }

    // Scratch buffers, fully overwritten by every kernel that uses them (no
    // state is carried between queries through these).
    linalg::Vector rhs;     ///< steady-state right-hand side P + T_amb·G
    linalg::Vector steady;  ///< steady-state temperatures
    linalg::Vector offset;  ///< T_init - T_steady
    linalg::Vector modal;   ///< modal image V^{-1}·x (first K entries used
                            ///< by the truncated backend)
    linalg::Vector solver_scratch;  ///< banded-solve permutation scratch
    linalg::Vector taylor_a;        ///< sparse-propagator remainder term
    linalg::Vector taylor_b;        ///< sparse-propagator matvec ping-pong

    /// Memoised T_amb·G for the ambient-coupling vector @p g. Recomputed only
    /// when @p g (by address) or @p ambient_celsius changes.
    const linalg::Vector& ambient_rhs(const linalg::Vector& g,
                                      double ambient_celsius) {
        if (ambient_key_ != &g || ambient_c_ != ambient_celsius ||
            ambient_.size() != g.size()) {
            if (ambient_.size() != g.size()) ambient_.assign(g.size());
            for (std::size_t i = 0; i < g.size(); ++i)
                ambient_[i] = g[i] * ambient_celsius;
            ambient_key_ = &g;
            ambient_c_ = ambient_celsius;
        }
        return ambient_;
    }

    // Grow-only flat scratch for the batched (multi-RHS) kernels; each
    // buffer is fully overwritten by the batch query that uses it, and the
    // capacity high-water-marks, so alternating batch widths stays
    // allocation-free after warm-up. pmr so they live on the workspace's
    // resource (node-local arena in campaign workers).
    std::pmr::vector<double>& batch_rhs(std::size_t n) {
        return grown(batch_rhs_, n);
    }
    std::pmr::vector<double>& batch_sol(std::size_t n) {
        return grown(batch_sol_, n);
    }
    std::pmr::vector<double>& batch_steady(std::size_t n) {
        return grown(batch_steady_, n);
    }
    std::pmr::vector<double>& batch_modal(std::size_t n) {
        return grown(batch_modal_, n);
    }
    /// Lane-major scratch for the batched banded solve (size()·nrhs lanes).
    std::pmr::vector<double>& batch_scratch(std::size_t n) {
        return grown(batch_scratch_, n);
    }
    // Node-major ping-pong blocks of the batched sparse Taylor propagator.
    std::pmr::vector<double>& batch_taylor_r(std::size_t n) {
        return grown(batch_taylor_r_, n);
    }
    std::pmr::vector<double>& batch_taylor_t1(std::size_t n) {
        return grown(batch_taylor_t1_, n);
    }
    std::pmr::vector<double>& batch_taylor_t2(std::size_t n) {
        return grown(batch_taylor_t2_, n);
    }

    /// Distinct-dt slots the exp ladder keeps live before recycling. Sized
    /// for a HotPotato τ ladder plus the simulator micro-step and a few
    /// analyzer horizons; each slot is one K-vector, so the cap bounds the
    /// cache at a few hundred KiB even at 1024 cores.
    static constexpr std::size_t kExpLadderSlots = 24;

    /// Memoised e^{λ_k·dt} for the eigenvalue vector @p lambda: one ladder
    /// slot per distinct (lambda address, dt) pair, so alternating dt values
    /// (a τ ladder, epoch vs micro-step horizons) all stay warm, where the
    /// historical single-entry memo recomputed on every alternation. Slots
    /// recycle round-robin past kExpLadderSlots. Keys and cursors live
    /// inline; the values share one flat slot-strided buffer on mr_, so the
    /// whole ladder costs exactly one allocation (from the workspace's own
    /// resource) for a given K, and a warmed ladder serves hits and recycles
    /// without touching memory at all. The returned pointer stays valid
    /// until exp_table() is next called with a *longer* eigenvalue vector
    /// (a solver rebind to a bigger model, which re-strides the buffer).
    const double* exp_table(const linalg::Vector& lambda, double dt) {
        const std::size_t k = lambda.size();
        for (std::size_t s = 0; s < exp_used_; ++s) {
            if (exp_keys_[s] == &lambda && exp_dts_[s] == dt &&
                exp_lens_[s] == k)
                return exp_values_.data() + s * exp_stride_;
        }
        if (k > exp_stride_) {
            exp_stride_ = k;
            exp_used_ = 0;
            exp_next_ = 0;
            exp_values_.resize(kExpLadderSlots * exp_stride_);
        }
        std::size_t s;
        if (exp_used_ < kExpLadderSlots) {
            s = exp_used_++;
        } else {
            s = exp_next_;
            exp_next_ = (exp_next_ + 1) % kExpLadderSlots;
        }
        double* values = exp_values_.data() + s * exp_stride_;
        for (std::size_t i = 0; i < k; ++i)
            values[i] = std::exp(lambda[i] * dt);
        exp_keys_[s] = &lambda;
        exp_dts_[s] = dt;
        exp_lens_[s] = k;
        return values;
    }

    /// O(1) invalidation of every exp ladder entry — the hook for solver
    /// rebinds, where a new solver's eigenvalue vector may land at a freed
    /// (and thus aliasing) address. The value buffer keeps its capacity, so
    /// re-warming after an invalidation allocates nothing at unchanged K.
    void invalidate_exp_tables() {
        exp_used_ = 0;
        exp_next_ = 0;
    }

private:
    static std::pmr::vector<double>& grown(std::pmr::vector<double>& v,
                                           std::size_t n) {
        if (v.size() < n) v.resize(n);
        return v;
    }

    std::size_t nodes_ = 0;
    std::pmr::memory_resource* mr_ = std::pmr::get_default_resource();
    std::pmr::vector<double> batch_rhs_;
    std::pmr::vector<double> batch_sol_;
    std::pmr::vector<double> batch_steady_;
    std::pmr::vector<double> batch_modal_;
    std::pmr::vector<double> batch_scratch_;
    std::pmr::vector<double> batch_taylor_r_;
    std::pmr::vector<double> batch_taylor_t1_;
    std::pmr::vector<double> batch_taylor_t2_;
    linalg::Vector ambient_;
    const void* ambient_key_ = nullptr;
    double ambient_c_ = 0.0;
    std::array<const void*, kExpLadderSlots> exp_keys_{};  ///< λ addresses
    std::array<double, kExpLadderSlots> exp_dts_{};        ///< exact dt bits
    std::array<std::size_t, kExpLadderSlots> exp_lens_{};  ///< cached K
    std::pmr::vector<double> exp_values_;  ///< slot s at s·exp_stride_
    std::size_t exp_stride_ = 0;         ///< slot pitch (largest K seen)
    std::size_t exp_used_ = 0;           ///< live slots
    std::size_t exp_next_ = 0;           ///< round-robin recycle cursor
};

}  // namespace hp::thermal
