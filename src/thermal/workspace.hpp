#pragma once

#include <cmath>
#include <cstddef>
#include <memory_resource>
#include <vector>

#include "linalg/vector.hpp"

namespace hp::thermal {

/// Caller-owned scratch memory for the in-place thermal kernels
/// (ThermalModel::steady_state_into, MatExSolver::apply_exponential_into /
/// transient_into).
///
/// A workspace is sized once (to the thermal model's node count) and then
/// reused for any number of queries with zero further heap traffic — the
/// simulator owns one per run, each campaign worker owns one across its runs,
/// and the peak-temperature workspaces embed one. Two memoised vectors ride
/// along:
///
///  - ambient_rhs():  T_amb·G, so the per-step steady-state right-hand side
///    is a fused add instead of two allocated temporaries;
///  - exp_table():    e^{λ_k·dt}, so a simulator stepping at a fixed dt pays
///    the N exponentials once instead of every micro-step.
///
/// Both caches key on the source vector's identity (address) plus the scalar
/// argument, so reusing one workspace across models or dt values is correct —
/// it just recomputes. The memoised entries are the exact values the legacy
/// code computed per call (std::exp of the same product, the same multiply),
/// so cached and uncached paths are bit-identical.
///
/// Thread affinity: a workspace is mutable state — use one per thread. The
/// model/solver it serves stays immutable and shareable.
///
/// Memory placement: the memory_resource constructor routes every buffer
/// through the given resource (a worker's node-local arena in campaign
/// runs). resize() and the memos use allocator-preserving assigns, so a
/// workspace never silently migrates off the resource it was built on —
/// and since buffers are fully overwritten per query, placement can never
/// change results, only locality.
class ThermalWorkspace {
public:
    ThermalWorkspace() = default;
    explicit ThermalWorkspace(std::size_t node_count) { resize(node_count); }

    /// All buffers (present and future) allocate from @p mr.
    explicit ThermalWorkspace(std::pmr::memory_resource* mr)
        : rhs(mr),
          steady(mr),
          offset(mr),
          modal(mr),
          solver_scratch(mr),
          taylor_a(mr),
          taylor_b(mr),
          batch_rhs_(mr),
          batch_sol_(mr),
          batch_steady_(mr),
          batch_modal_(mr),
          ambient_(mr),
          exp_(mr) {}

    /// Sizes every buffer for an N-node model; idempotent (and cheap) when
    /// the size is unchanged, so kernels call it defensively.
    void resize(std::size_t node_count) {
        if (nodes_ == node_count) return;
        nodes_ = node_count;
        rhs.assign(node_count);
        steady.assign(node_count);
        offset.assign(node_count);
        modal.assign(node_count);
        solver_scratch.assign(node_count);
        taylor_a.assign(node_count);
        taylor_b.assign(node_count);
        ambient_key_ = nullptr;
        exp_key_ = nullptr;
    }

    std::size_t node_count() const { return nodes_; }

    // Scratch buffers, fully overwritten by every kernel that uses them (no
    // state is carried between queries through these).
    linalg::Vector rhs;     ///< steady-state right-hand side P + T_amb·G
    linalg::Vector steady;  ///< steady-state temperatures
    linalg::Vector offset;  ///< T_init - T_steady
    linalg::Vector modal;   ///< modal image V^{-1}·x (first K entries used
                            ///< by the truncated backend)
    linalg::Vector solver_scratch;  ///< banded-solve permutation scratch
    linalg::Vector taylor_a;        ///< sparse-propagator remainder term
    linalg::Vector taylor_b;        ///< sparse-propagator matvec ping-pong

    /// Memoised T_amb·G for the ambient-coupling vector @p g. Recomputed only
    /// when @p g (by address) or @p ambient_celsius changes.
    const linalg::Vector& ambient_rhs(const linalg::Vector& g,
                                      double ambient_celsius) {
        if (ambient_key_ != &g || ambient_c_ != ambient_celsius ||
            ambient_.size() != g.size()) {
            if (ambient_.size() != g.size()) ambient_.assign(g.size());
            for (std::size_t i = 0; i < g.size(); ++i)
                ambient_[i] = g[i] * ambient_celsius;
            ambient_key_ = &g;
            ambient_c_ = ambient_celsius;
        }
        return ambient_;
    }

    // Grow-only flat scratch for the batched (multi-RHS) kernels; each
    // buffer is fully overwritten by the batch query that uses it, and the
    // capacity high-water-marks, so alternating batch widths stays
    // allocation-free after warm-up. pmr so they live on the workspace's
    // resource (node-local arena in campaign workers).
    std::pmr::vector<double>& batch_rhs(std::size_t n) {
        return grown(batch_rhs_, n);
    }
    std::pmr::vector<double>& batch_sol(std::size_t n) {
        return grown(batch_sol_, n);
    }
    std::pmr::vector<double>& batch_steady(std::size_t n) {
        return grown(batch_steady_, n);
    }
    std::pmr::vector<double>& batch_modal(std::size_t n) {
        return grown(batch_modal_, n);
    }

    /// Memoised e^{λ_k·dt} for the eigenvalue vector @p lambda. Recomputed
    /// only when @p lambda (by address) or @p dt changes.
    const linalg::Vector& exp_table(const linalg::Vector& lambda, double dt) {
        if (exp_key_ != &lambda || exp_dt_ != dt ||
            exp_.size() != lambda.size()) {
            if (exp_.size() != lambda.size()) exp_.assign(lambda.size());
            for (std::size_t k = 0; k < lambda.size(); ++k)
                exp_[k] = std::exp(lambda[k] * dt);
            exp_key_ = &lambda;
            exp_dt_ = dt;
        }
        return exp_;
    }

private:
    static std::pmr::vector<double>& grown(std::pmr::vector<double>& v,
                                           std::size_t n) {
        if (v.size() < n) v.resize(n);
        return v;
    }

    std::size_t nodes_ = 0;
    std::pmr::vector<double> batch_rhs_;
    std::pmr::vector<double> batch_sol_;
    std::pmr::vector<double> batch_steady_;
    std::pmr::vector<double> batch_modal_;
    linalg::Vector ambient_;
    const void* ambient_key_ = nullptr;
    double ambient_c_ = 0.0;
    linalg::Vector exp_;
    const void* exp_key_ = nullptr;
    double exp_dt_ = 0.0;
};

}  // namespace hp::thermal
