#include "thermal/sensors.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hp::thermal {

SensorBank::SensorBank(std::size_t cores, SensorParams params)
    : params_(params),
      rng_(params.seed),
      noise_(0.0, params.noise_sigma_c > 0.0 ? params.noise_sigma_c : 1e-12),
      raw_(cores),
      filtered_(cores),
      masked_(cores),
      trusted_(cores, true) {
    if (cores == 0)
        throw std::invalid_argument("SensorBank: need at least one sensor");
    if (params_.quantization_c < 0.0 || params_.noise_sigma_c < 0.0 ||
        params_.sample_period_s <= 0.0 || params_.filter_alpha <= 0.0 ||
        params_.filter_alpha > 1.0 || params_.vote_threshold_c <= 0.0 ||
        params_.slew_limit_c <= 0.0)
        throw std::invalid_argument("SensorBank: bad parameters");
}

void SensorBank::set_corruptor(Corruptor corruptor) {
    corruptor_ = std::move(corruptor);
}

void SensorBank::set_neighbors(
    std::vector<std::vector<std::size_t>> neighbors) {
    if (neighbors.size() != raw_.size())
        throw std::invalid_argument(
            "SensorBank: neighbor list size must match sensor count");
    for (const auto& list : neighbors)
        for (std::size_t id : list)
            if (id >= raw_.size())
                throw std::invalid_argument(
                    "SensorBank: neighbor id out of range");
    neighbors_ = std::move(neighbors);
}

SensorBank::VoteStats SensorBank::vote_stats(
    std::size_t sensor, const linalg::Vector& values,
    const std::vector<char>* plausible) const {
    std::vector<double>& votes = votes_scratch_;
    const auto add_vote = [&](std::size_t id, bool require_plausible) {
        if (id == sensor || !std::isfinite(values[id])) return;
        if (require_plausible && plausible && !(*plausible)[id]) return;
        votes.push_back(values[id]);
    };
    const auto collect = [&](bool require_plausible) {
        votes.clear();  // capacity persists across samples
        if (!neighbors_.empty()) {
            for (std::size_t id : neighbors_[sensor])
                add_vote(id, require_plausible);
        } else {
            for (std::size_t id = 0; id < values.size(); ++id)
                add_vote(id, require_plausible);
        }
    };
    collect(true);
    // If every voter is itself implausible, fall back to the full vote —
    // a bad median still beats no median for masking purposes.
    if (votes.empty() && plausible) collect(false);
    if (votes.empty())
        return {values[sensor], values[sensor], false};  // nobody left to vote
    const double max = *std::max_element(votes.begin(), votes.end());
    const std::size_t mid = votes.size() / 2;
    std::nth_element(votes.begin(), votes.begin() + mid, votes.end());
    if (votes.size() % 2 == 1) return {votes[mid], max, true};
    const double upper = votes[mid];
    const double lower = *std::max_element(votes.begin(), votes.begin() + mid);
    return {0.5 * (lower + upper), max, true};
}

bool SensorBank::plausible_reading(std::size_t sensor, double reading,
                                   const VoteStats& vote) const {
    if (!vote.valid || !std::isfinite(vote.median)) return true;
    // Implausibly cold: well below what the surrounding silicon reports.
    // Purely spatial — a stuck-cold diode must never earn trust by being
    // stuck consistently (that is exactly the DTM-blinding fault).
    if (reading < vote.median - params_.vote_threshold_c) return false;
    // Implausibly hot: hotter than EVERY voter by the full threshold. An
    // honest hotspot under a sparse workload legitimately out-reads all its
    // idle neighbours, but it got there through its thermal RC — so a
    // sensor that was trusted last sample and moved within the slew limit
    // keeps its trust. Spikes and stuck-at faults jump discontinuously and
    // fail the continuity clause (and once untrusted, stay untrusted until
    // spatially plausible again).
    if (reading > vote.max + params_.vote_threshold_c) {
        const bool continuous =
            primed_ && trusted_[sensor] &&
            std::abs(reading - raw_[sensor]) <= params_.slew_limit_c;
        return continuous;
    }
    return true;
}

void SensorBank::observe(const linalg::Vector& true_core_temps, double now_s) {
    if (true_core_temps.size() != raw_.size())
        throw std::invalid_argument("SensorBank: temperature size mismatch");
    // Sample-and-hold: too-early and out-of-order (past) timestamps both
    // leave the held readings untouched.
    if (primed_ && now_s - last_sample_s_ < params_.sample_period_s - 1e-12)
        return;
    last_sample_s_ = now_s;

    // Pass 1: raw acquisition (noise, quantisation, fault corruption).
    if (sample_scratch_.size() != raw_.size())
        sample_scratch_ = linalg::Vector(raw_.size());
    linalg::Vector& sample = sample_scratch_;
    for (std::size_t i = 0; i < raw_.size(); ++i) {
        double reading = true_core_temps[i];
        if (params_.noise_sigma_c > 0.0) reading += noise_(rng_);
        if (params_.quantization_c > 0.0)
            reading = std::round(reading / params_.quantization_c) *
                      params_.quantization_c;
        if (corruptor_) reading = corruptor_(i, reading, now_s);
        sample[i] = reading;
    }

    // Pass 2a: provisional verdicts against the raw sample. A sensor is
    // provisionally implausible when it fails the vote over the full
    // neighbourhood; these verdicts only decide who may vote in pass 2b.
    plausible_scratch_.assign(raw_.size(), 1);
    std::vector<char>& plausible = plausible_scratch_;
    for (std::size_t i = 0; i < raw_.size(); ++i) {
        if (!std::isfinite(sample[i])) {
            plausible[i] = 0;
        } else if (params_.vote_filter) {
            plausible[i] =
                plausible_reading(i, sample[i], vote_stats(i, sample));
        }
    }

    // Pass 2b: final verdicts and masking vote only among provisionally
    // plausible sensors, so a lying diode cannot drag the median used to
    // mask its neighbours (and an honest sensor flagged in pass 2a only
    // because a liar sat in its vote set is rehabilitated).
    for (std::size_t i = 0; i < raw_.size(); ++i) {
        const double reading = sample[i];
        if (!std::isfinite(reading)) {
            // Dropout: hold the last good raw sample, mask by the vote.
            trusted_[i] = false;
            masked_[i] = vote_stats(i, sample, &plausible).median;
            if (!std::isfinite(masked_[i]))
                masked_[i] = primed_ ? filtered_[i] : true_core_temps[i];
            continue;
        }
        // Plausibility consults the held raw sample and previous verdict —
        // evaluate it before this sample overwrites them.
        const VoteStats vote = vote_stats(i, sample, &plausible);
        const bool ok =
            !params_.vote_filter || plausible_reading(i, reading, vote);
        raw_[i] = reading;
        filtered_[i] = primed_ ? filtered_[i] + params_.filter_alpha *
                                                    (reading - filtered_[i])
                               : reading;
        trusted_[i] = ok;
        masked_[i] = ok ? filtered_[i] : vote.median;
    }
    primed_ = true;
}

std::size_t SensorBank::untrusted_count() const {
    std::size_t n = 0;
    for (bool t : trusted_)
        if (!t) ++n;
    return n;
}

double SensorBank::max_reading() const {
    double m = -1e300;
    for (double r : filtered_) m = std::max(m, r);
    return m;
}

double SensorBank::max_masked_reading() const {
    double m = -1e300;
    for (double r : masked_) m = std::max(m, r);
    return m;
}

}  // namespace hp::thermal
