#include "thermal/sensors.hpp"

#include <cmath>
#include <stdexcept>

namespace hp::thermal {

SensorBank::SensorBank(std::size_t cores, SensorParams params)
    : params_(params),
      rng_(params.seed),
      noise_(0.0, params.noise_sigma_c > 0.0 ? params.noise_sigma_c : 1e-12),
      raw_(cores),
      filtered_(cores) {
    if (cores == 0)
        throw std::invalid_argument("SensorBank: need at least one sensor");
    if (params_.quantization_c < 0.0 || params_.noise_sigma_c < 0.0 ||
        params_.sample_period_s <= 0.0 || params_.filter_alpha <= 0.0 ||
        params_.filter_alpha > 1.0)
        throw std::invalid_argument("SensorBank: bad parameters");
}

void SensorBank::observe(const linalg::Vector& true_core_temps, double now_s) {
    if (true_core_temps.size() != raw_.size())
        throw std::invalid_argument("SensorBank: temperature size mismatch");
    if (primed_ && now_s - last_sample_s_ < params_.sample_period_s - 1e-12)
        return;  // hold previous readings until the next sample instant
    last_sample_s_ = now_s;

    for (std::size_t i = 0; i < raw_.size(); ++i) {
        double reading = true_core_temps[i];
        if (params_.noise_sigma_c > 0.0) reading += noise_(rng_);
        if (params_.quantization_c > 0.0)
            reading = std::round(reading / params_.quantization_c) *
                      params_.quantization_c;
        raw_[i] = reading;
        filtered_[i] = primed_ ? filtered_[i] + params_.filter_alpha *
                                                    (reading - filtered_[i])
                               : reading;
    }
    primed_ = true;
}

double SensorBank::max_reading() const {
    double m = -1e300;
    for (double r : filtered_) m = std::max(m, r);
    return m;
}

}  // namespace hp::thermal
