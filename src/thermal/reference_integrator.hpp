#pragma once

#include "linalg/vector.hpp"
#include "thermal/rc_network.hpp"

namespace hp::thermal {

/// Brute-force RK4 integrator for A·T' + B·T = P + T_amb·G.
///
/// Exists purely as an independent numerical reference: tests integrate the
/// ODE directly and compare against the analytic MatEx solution and against
/// the periodic-steady-state peak-temperature formula (Algorithm 1). Too slow
/// for simulation use.
class ReferenceIntegrator {
public:
    explicit ReferenceIntegrator(const ThermalModel& model);

    /// Integrates for @p duration seconds holding @p node_power constant,
    /// using fixed RK4 steps of at most @p max_step seconds. Returns T(end).
    linalg::Vector integrate(const linalg::Vector& t_init,
                             const linalg::Vector& node_power,
                             double ambient_celsius, double duration,
                             double max_step = 1e-4) const;

private:
    linalg::Vector derivative(const linalg::Vector& temperature,
                              const linalg::Vector& node_power,
                              double ambient_celsius) const;

    const ThermalModel* model_;
};

}  // namespace hp::thermal
