#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "floorplan/floorplan.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "thermal/workspace.hpp"

namespace hp::thermal {

/// Physical parameters of the layered RC network generated for a grid
/// floorplan. The defaults are calibrated so that a 14 nm, 0.81 mm² core at
/// its ~6 W peak power reaches ≈ 80 °C on a 45 °C-ambient 16-core chip
/// (the paper's motivational example) while a fully-loaded 64-core chip at
/// medium power sits near the 70 °C DTM threshold.
struct RcNetworkConfig {
    // Heat capacities (J/K). Silicon nodes are fast (~ms), the spreader is
    // intermediate (~100 ms) and the sink is slow (~seconds); these three
    // time scales produce the epoch-level ripple plus slow drift seen in
    // interval thermal simulation.
    double silicon_capacitance = 2.0e-3;
    double spreader_capacitance = 0.2;
    double sink_capacitance_per_core = 0.3;

    // Thermal resistances (K/W). For 0.81 mm² cores the lateral silicon path
    // (thin die, small contact area) is weak and the vertical path through
    // die + TIM dominates, so single hot cores form sharp hotspots while the
    // copper spreader does the lateral averaging.
    double silicon_lateral_resistance = 50.0;     ///< between adjacent cores
    double spreader_lateral_resistance = 4.0;     ///< between adjacent spreader cells
    double silicon_to_spreader_resistance = 7.0;  ///< vertical, per core
    double spreader_to_sink_resistance = 1.6;     ///< vertical, per core
    double sink_to_ambient_resistance_per_core = 1.8;  ///< total R = this / n
    /// The physical spreader/sink overhang extends beyond the die edge, so
    /// boundary cells shed extra heat through the peripheral copper; modelled
    /// as an additional conductance to the sink per exposed tile edge. This
    /// is what makes high-AMD (boundary) rings thermally unconstrained, the
    /// gradient HotPotato's ring ordering exploits.
    double spreader_peripheral_resistance = 3.0;  ///< per missing neighbour
    /// Vertical resistance between stacked silicon layers (bond + TSV array)
    /// in a 3D floorplan; upper layers reach the sink only through the
    /// layers below them — the classic 3D-stacking thermal penalty.
    double interlayer_resistance = 3.0;
};

/// Compact RC thermal model A·T' + B·T = P + T_amb·G  (paper Eq. (1)).
///
/// Node layout for an n-core chip with footprint f (= cores per layer;
/// f == n for planar chips): nodes [0, n) are silicon (core) nodes, layer by
/// layer, [n, n+f) are the heat-spreader cells under layer 0 and node n+f is
/// the heat sink, giving N = n + f + 1 thermal nodes. Stacked layers couple
/// vertically through the inter-layer (TSV/bond) resistance; only layer 0
/// touches the spreader. A is diagonal (per-node capacitance), B is a
/// symmetric positive-definite conductance matrix and G couples the sink to
/// ambient.
class ThermalModel {
public:
    /// Builds the layered network for @p plan with parameters @p config.
    ThermalModel(const floorplan::GridFloorplan& plan,
                 const RcNetworkConfig& config);

    /// Constructs a model directly from matrices, for tests and synthetic
    /// networks. @p capacitance is the diagonal of A. Throws
    /// std::invalid_argument on inconsistent sizes or an asymmetric B.
    ThermalModel(linalg::Vector capacitance, linalg::Matrix conductance,
                 linalg::Vector ambient_conductance, std::size_t core_count);

    std::size_t node_count() const { return capacitance_.size(); }
    std::size_t core_count() const { return core_count_; }

    /// Diagonal of the capacitance matrix A (J/K).
    const linalg::Vector& capacitance() const { return capacitance_; }
    /// Conductance matrix B (W/K), symmetric positive definite.
    const linalg::Matrix& conductance() const { return conductance_; }
    /// Ambient coupling vector G (W/K).
    const linalg::Vector& ambient_conductance() const {
        return ambient_conductance_;
    }

    /// Expands an n-entry per-core power vector to the full N-entry node
    /// power vector (non-core nodes dissipate nothing).
    linalg::Vector pad_power(const linalg::Vector& core_power) const;

    /// pad_power without the allocation: writes the padded vector into the
    /// preallocated @p out (node_count() entries, non-core tail zeroed).
    void pad_power_into(const linalg::Vector& core_power,
                        linalg::Vector& out) const;

    /// Steady-state temperatures T = B^{-1}(P + T_amb·G)  (paper Eq. (3)).
    /// @p node_power must have node_count() entries (use pad_power).
    linalg::Vector steady_state(const linalg::Vector& node_power,
                                double ambient_celsius) const;

    /// steady_state without allocations: the right-hand side is a fused add
    /// of @p node_power and the workspace's memoised T_amb·G, solved in place
    /// into @p out (resized on first use, untouched thereafter). Bit-identical
    /// to steady_state — same products, sums and substitution order. @p out
    /// may alias @p node_power but not a workspace buffer.
    void steady_state_into(const linalg::Vector& node_power,
                           double ambient_celsius, ThermalWorkspace& workspace,
                           linalg::Vector& out) const;

    /// Batched steady_state_into: solves B·T_r = P_r + T_amb·G for @p nrhs
    /// node-power vectors in one multi-RHS substitution pass. @p node_powers
    /// and @p out are RHS-major (RHS r occupies the contiguous range
    /// [r·node_count(), (r+1)·node_count())); the transposes to the solver's
    /// node-major layout are exact copies, and each RHS runs through exactly
    /// steady_state_into's add and substitution order, so every output vector
    /// is bit-identical to a looped steady_state_into call. @p out must not
    /// alias @p node_powers or a workspace buffer.
    void steady_state_batch_into(const double* node_powers, std::size_t nrhs,
                                 double ambient_celsius,
                                 ThermalWorkspace& workspace,
                                 double* out) const;

    /// The ambient-only equilibrium B^{-1}·T_amb·G — every node at T_amb.
    linalg::Vector ambient_equilibrium(double ambient_celsius) const;

    /// Cached LU decomposition of B, shared with the MatEx solver.
    const linalg::LuDecomposition& conductance_lu() const { return *b_lu_; }

    /// Content hash (FNV-1a over the bit patterns of A, B, G and the core
    /// count), computed once at construction. Two models with identical
    /// matrices share a signature even when they are distinct objects — the
    /// solver/simulator misuse guard compares signatures, so a solver built
    /// for an equal model is accepted while one built for a different
    /// floorplan or parameterisation is rejected.
    std::uint64_t signature() const { return signature_; }

    /// Deep copy that shares nothing with this model: matrices are copied
    /// bit-for-bit and the cached LU of B is duplicated rather than shared
    /// (no refactorisation — the decomposition itself is copied). The
    /// replica has the same signature, so solvers and simulators accept it
    /// interchangeably. Used by the campaign engine to give each NUMA node
    /// its own read-only copy of the study bundle.
    ThermalModel replica() const;

private:
    void validate() const;
    std::uint64_t compute_signature() const;

    std::size_t core_count_;
    linalg::Vector capacitance_;
    linalg::Matrix conductance_;
    linalg::Vector ambient_conductance_;
    std::shared_ptr<const linalg::LuDecomposition> b_lu_;
    std::uint64_t signature_ = 0;
};

}  // namespace hp::thermal
