#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "thermal/workspace.hpp"

namespace hp::thermal {

/// Analytic transient solver after MatEx (Pagani et al., DATE'15) — the
/// exact "dense" TransientSolver backend.
///
/// Diagonalises C = -A^{-1}B once via the symmetrised eigenproblem
/// S = A^{-1/2} B A^{-1/2} (A is diagonal, B symmetric positive definite, so
/// all eigenvalues of C are strictly negative — exactly the property the
/// paper's periodic-steady-state argument, Eq. (8)-(9), relies on). After the
/// one-time O(N^3) setup, evaluating the exact transient response
///
///   T(t) = T_steady + e^{Ct} (T_init - T_steady)          (paper Eq. (4))
///
/// for any t costs a pair of O(N^2) matrix-vector products, with no
/// time-stepping error.
///
/// Thread safety: immutable after construction — the eigendecomposition and
/// every derived table are computed in the constructor and all member
/// functions are const with no mutable state or lazy caches. One solver may
/// therefore be shared read-only by any number of concurrent simulations
/// (the campaign engine relies on this; see campaign::StudySetup).
class MatExSolver : public TransientSolver {
public:
    /// One-time eigendecomposition of the model's C matrix. The solver keeps
    /// a reference to @p model, which must outlive it.
    explicit MatExSolver(const ThermalModel& model);

    const ThermalModel& model() const override { return *model_; }

    // Fidelity metadata: the dense backend keeps the whole spectrum, so it
    // is exact and its retained-mode views are simply λ and V.
    const char* backend_name() const override { return "dense"; }
    std::uint64_t backend_signature() const override {
        return detail::backend_signature_hash("dense", lambda_.size(), 0.0,
                                              model_->signature());
    }
    bool truncated() const override { return false; }
    double error_bound_c() const override { return 0.0; }
    double tolerance_c() const override { return 0.0; }
    std::size_t mode_count() const override { return lambda_.size(); }
    const linalg::Matrix& mode_shapes() const override { return v_; }
    linalg::Matrix modal_steady_map() const override;
    double cluster_pole() const override { return 0.0; }

    /// Eigenvalues of C, ascending (all strictly negative; 1/|λ| are the
    /// network's thermal time constants in seconds).
    const linalg::Vector& eigenvalues() const override { return lambda_; }

    /// Eigenvector matrix V with C = V·diag(λ)·V^{-1}.
    const linalg::Matrix& eigenvectors() const { return v_; }
    const linalg::Matrix& eigenvectors_inverse() const { return v_inv_; }

    // Steady state delegates to the model's shared LU (bit-identical to the
    // historical direct calls on ThermalModel).
    linalg::Vector steady_state(const linalg::Vector& node_power,
                                double ambient_celsius) const override;
    void steady_state_into(const linalg::Vector& node_power,
                           double ambient_celsius, ThermalWorkspace& workspace,
                           linalg::Vector& out) const override;
    void steady_state_batch_into(const double* node_powers, std::size_t nrhs,
                                 double ambient_celsius,
                                 ThermalWorkspace& workspace,
                                 double* out) const override;
    linalg::Vector conductance_solve(const linalg::Vector& rhs) const override;
    void conductance_solve_into(const linalg::Vector& rhs,
                                ThermalWorkspace& workspace,
                                linalg::Vector& out) const override;

    /// Applies e^{C·dt} to @p x in O(N^2).
    linalg::Vector apply_exponential(const linalg::Vector& x,
                                     double dt) const override;

    /// apply_exponential without allocations: modal projection into the
    /// workspace, decay through its memoised e^{λ·dt} table, projection back
    /// into @p out (resized on first use). Bit-identical to
    /// apply_exponential. @p out may alias @p x; neither may be a workspace
    /// buffer other than workspace.offset for @p x (the transient path).
    void apply_exponential_into(const linalg::Vector& x, double dt,
                                ThermalWorkspace& workspace,
                                linalg::Vector& out) const override;

    /// Batched apply_exponential_into: applies e^{C·dt} to @p nrhs RHS-major
    /// vectors (RHS r occupies [r·N, (r+1)·N) of @p xs and @p outs) through
    /// one pair of multi-RHS projections. Each RHS keeps the single-vector
    /// accumulation order, so output r is bit-identical to
    /// apply_exponential_into on input r. @p outs may alias @p xs.
    void apply_exponential_batch_into(const double* xs, std::size_t nrhs,
                                      double dt, ThermalWorkspace& workspace,
                                      double* outs) const override;

    /// Materialises the full matrix e^{C·dt} (O(N^3); used by caches and
    /// tests, not in per-epoch simulation).
    linalg::Matrix exponential(double dt) const override;

    /// Exact temperature after holding @p node_power constant for @p dt
    /// seconds starting from @p t_init (paper Eq. (4)).
    linalg::Vector transient(const linalg::Vector& t_init,
                             const linalg::Vector& node_power,
                             double ambient_celsius, double dt) const override;

    /// transient without allocations — the simulator's per-micro-step kernel.
    /// Bit-identical to transient. @p out may alias @p t_init (the usual
    /// temps → temps update); it must not alias @p node_power or a workspace
    /// buffer.
    void transient_into(const linalg::Vector& t_init,
                        const linalg::Vector& node_power,
                        double ambient_celsius, double dt,
                        ThermalWorkspace& workspace,
                        linalg::Vector& out) const override;

    /// Batched transient_into from one shared @p t_init across @p nrhs
    /// RHS-major node-power vectors: batched steady solve, offsets built in
    /// place, one batched exponential, steady added back. Output r is
    /// bit-identical to transient_into with power vector r. @p outs must not
    /// alias @p node_powers.
    void transient_batch_into(const linalg::Vector& t_init,
                              const double* node_powers, std::size_t nrhs,
                              double ambient_celsius, double dt,
                              ThermalWorkspace& workspace,
                              double* outs) const override;

    /// Largest core temperature reached anywhere in (0, dt] while holding
    /// @p node_power, conservatively estimated by sampling @p samples points
    /// of the exact solution (the per-node transient is not monotonic, so the
    /// endpoint alone can miss an interior hump).
    double peak_core_temperature(const linalg::Vector& t_init,
                                 const linalg::Vector& node_power,
                                 double ambient_celsius, double dt,
                                 std::size_t samples = 8) const override;

    /// Location and value of a core-temperature peak (the backend-neutral
    /// thermal::Peak; aliased here for source compatibility).
    using Peak = thermal::Peak;

    /// Exact peak core temperature over [0, dt] via the MatEx method
    /// (Pagani et al.): per core the transient is a sum of decaying
    /// exponentials T_i(t) = steady_i + Σ_k c_ik e^{λ_k t}, whose interior
    /// extremum is the root of the analytic derivative — found by Newton
    /// iteration with bisection fallback, no time-stepping or sampling
    /// error.
    Peak peak_core_temperature_exact(const linalg::Vector& t_init,
                                     const linalg::Vector& node_power,
                                     double ambient_celsius,
                                     double dt) const override;

    /// Copies λ/V/V^{-1} bit-for-bit and rebinds to @p model (which must be
    /// a signature-equal replica) — no eigensolve.
    std::unique_ptr<const TransientSolver> clone_rebound(
        const ThermalModel& model) const override;

private:
    const ThermalModel* model_;
    linalg::Vector lambda_;
    linalg::Matrix v_;
    linalg::Matrix v_inv_;
};

}  // namespace hp::thermal
